//! `lisa-serve` — the mapping-as-a-service daemon and its client.
//!
//! ```text
//! lisa-serve serve [--model <path>]... [--models <dir>]
//!            [--listen <addr>] [--stdio] [--port-file <path>]
//!            [--cache-dir <dir>] [--cache-mem <n>]
//!            [--workers <n>] [--queue <n>] [--parallelism <n>]
//!            [--events <path>] [--verbose]
//!
//! lisa-serve client [--connect <addr>] [--kernel <spec>]
//!            [--arch <key>] [--seed <n>] [--max-ii <n>] [--strategy <spec>]
//!            [--stats] [--shutdown]
//! ```
//!
//! The daemon loads each `lisa-model v1` once (`--model` per file,
//! `--models` for a directory of `*.model`/`*.lisa-model` files) and
//! serves mapping requests over the length-prefixed frame protocol —
//! on a TCP listener (`--listen`, default `127.0.0.1:0`; the bound
//! address goes to stderr and, with `--port-file`, to a file scripts
//! can read) or on stdin/stdout (`--stdio`). Identical requests are
//! answered from the two-tier result cache: an in-memory LRU
//! (`--cache-mem` entries) over an optional on-disk directory
//! (`--cache-dir`) that survives restarts. At most `--workers`
//! computations run at once with `--queue` more waiting; beyond that
//! requests are rejected with `status overloaded`. `--events` appends
//! per-request telemetry as JSONL.
//!
//! The client builds a `lisa-request v1` document from a kernel spec
//! (a PolyBench name, `core:<kernel>`, or `rand:<seed>`), sends it,
//! and prints the response on stdout. `--stats` fetches the daemon
//! counters; `--shutdown` stops the daemon. Exit status 1 means the
//! final response was `error` or `overloaded`.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use lisa::core::{LisaConfig, MapRequest, ModelRegistry};
use lisa::dfg::{generate_random_dfg, polybench, Dfg, RandomDfgConfig};
use lisa::events::{EventSink, JsonlObserver, MultiObserver, Observer, StderrObserver};
use lisa::serve::protocol::{read_frame, response_status, write_frame};
use lisa::serve::{serve_stdio, serve_tcp, ServeConfig, ServeEngine};

struct ServeOptions {
    models: Vec<PathBuf>,
    model_dirs: Vec<PathBuf>,
    listen: String,
    stdio: bool,
    port_file: Option<PathBuf>,
    events: Option<PathBuf>,
    verbose: bool,
    config: ServeConfig,
}

struct ClientOptions {
    connect: String,
    kernel: Option<String>,
    arch: String,
    seed: u64,
    max_ii: u32,
    strategy: lisa::mapper::StrategySpec,
    stats: bool,
    shutdown: bool,
}

fn usage() -> String {
    "usage: lisa-serve serve [--model path]... [--models dir] [--listen addr] [--stdio] \
     [--port-file path] [--cache-dir dir] [--cache-mem n] [--workers n] [--queue n] \
     [--parallelism n] [--events path] [--verbose]\n\
     \x20      lisa-serve client [--connect addr] [--kernel spec] [--arch key] [--seed n] \
     [--max-ii n] [--strategy sa|evolutionary|constructive|mixed|lane,lane,...] \
     [--stats] [--shutdown]"
        .to_string()
}

fn parse_serve_args() -> Result<ServeOptions, String> {
    let mut args = std::env::args().skip(2);
    let mut opts = ServeOptions {
        models: Vec::new(),
        model_dirs: Vec::new(),
        listen: "127.0.0.1:0".to_string(),
        stdio: false,
        port_file: None,
        events: None,
        verbose: false,
        config: ServeConfig::default(),
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--model" => opts.models.push(PathBuf::from(value("--model")?)),
            "--models" => opts.model_dirs.push(PathBuf::from(value("--models")?)),
            "--listen" => opts.listen = value("--listen")?,
            "--stdio" => opts.stdio = true,
            "--port-file" => opts.port_file = Some(PathBuf::from(value("--port-file")?)),
            "--cache-dir" => opts.config.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--cache-mem" => {
                opts.config.mem_cache = value("--cache-mem")?
                    .parse()
                    .map_err(|e| format!("bad --cache-mem: {e}"))?
            }
            "--workers" => {
                opts.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?
            }
            "--queue" => {
                opts.config.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("bad --queue: {e}"))?
            }
            "--parallelism" => {
                opts.config.parallelism = value("--parallelism")?
                    .parse()
                    .map_err(|e| format!("bad --parallelism: {e}"))?
            }
            "--events" => opts.events = Some(PathBuf::from(value("--events")?)),
            "--verbose" => opts.verbose = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if opts.models.is_empty() && opts.model_dirs.is_empty() {
        return Err(format!(
            "serve needs at least one --model or --models\n{}",
            usage()
        ));
    }
    Ok(opts)
}

fn parse_client_args() -> Result<ClientOptions, String> {
    let mut args = std::env::args().skip(2);
    let mut opts = ClientOptions {
        connect: "127.0.0.1:4161".to_string(),
        kernel: None,
        arch: "4x4".to_string(),
        seed: 2022,
        max_ii: 16,
        strategy: Default::default(),
        stats: false,
        shutdown: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--connect" => opts.connect = value("--connect")?,
            "--kernel" => opts.kernel = Some(value("--kernel")?),
            "--arch" => opts.arch = value("--arch")?,
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--max-ii" => {
                opts.max_ii = value("--max-ii")?
                    .parse()
                    .map_err(|e| format!("bad --max-ii: {e}"))?
            }
            "--strategy" => {
                opts.strategy = lisa::mapper::StrategySpec::parse(&value("--strategy")?)
                    .map_err(|e| format!("bad --strategy: {e}"))?
            }
            "--stats" => opts.stats = true,
            "--shutdown" => opts.shutdown = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if opts.kernel.is_none() && !opts.stats && !opts.shutdown {
        return Err(format!(
            "client needs --kernel, --stats, or --shutdown\n{}",
            usage()
        ));
    }
    Ok(opts)
}

fn build_dfg(spec: &str) -> Result<Dfg, String> {
    if let Some(seed) = spec.strip_prefix("rand:") {
        let seed: u64 = seed.parse().map_err(|e| format!("bad rand seed: {e}"))?;
        Ok(generate_random_dfg(&RandomDfgConfig::default(), seed))
    } else if let Some(core) = spec.strip_prefix("core:") {
        polybench::kernel_core(core).map_err(|e| e.to_string())
    } else {
        polybench::kernel(spec).map_err(|e| e.to_string())
    }
}

fn build_sink(opts: &ServeOptions) -> Result<EventSink, String> {
    let mut observers: Vec<Arc<dyn Observer>> = Vec::new();
    if opts.verbose {
        observers.push(Arc::new(StderrObserver::verbose()));
    }
    if let Some(path) = &opts.events {
        let jsonl =
            JsonlObserver::to_file(path).map_err(|e| format!("opening {}: {e}", path.display()))?;
        observers.push(Arc::new(jsonl));
    }
    Ok(match observers.len() {
        0 => EventSink::null(),
        1 => EventSink::new(observers.remove(0)),
        _ => EventSink::new(Arc::new(MultiObserver::new(observers))),
    })
}

fn run_serve(opts: ServeOptions) -> Result<(), String> {
    let config = LisaConfig::fast();
    let mut registry = ModelRegistry::new();
    for path in &opts.models {
        registry
            .load_file(path, &config)
            .map_err(|e| e.to_string())?;
    }
    for dir in &opts.model_dirs {
        registry.load_dir(dir, &config).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "serving {} model(s): {}",
        registry.len(),
        registry.accelerators().join(", ")
    );

    let sink = build_sink(&opts)?;
    let engine = ServeEngine::new(registry, opts.config.clone(), sink)
        .map_err(|e| format!("starting engine: {e}"))?;

    if opts.stdio {
        let mut stdin = std::io::stdin().lock();
        let mut stdout = std::io::stdout().lock();
        serve_stdio(&engine, &mut stdin, &mut stdout).map_err(|e| format!("stdio session: {e}"))?;
        return Ok(());
    }

    let listener =
        TcpListener::bind(&opts.listen).map_err(|e| format!("binding {}: {e}", opts.listen))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    eprintln!("listening on {addr}");
    if let Some(path) = &opts.port_file {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    serve_tcp(Arc::new(engine), listener).map_err(|e| format!("serving: {e}"))?;
    eprintln!("shutdown complete");
    Ok(())
}

/// Sends one frame and prints the answer. Returns the response body.
fn exchange(conn: &mut TcpStream, payload: &[u8]) -> Result<String, String> {
    write_frame(conn, payload).map_err(|e| format!("send: {e}"))?;
    let frame = read_frame(conn)
        .map_err(|e| format!("receive: {e}"))?
        .ok_or_else(|| "daemon closed the connection".to_string())?;
    String::from_utf8(frame).map_err(|e| format!("non-UTF-8 response: {e}"))
}

fn run_client(opts: ClientOptions) -> Result<(), String> {
    let mut conn = TcpStream::connect(&opts.connect)
        .map_err(|e| format!("connecting {}: {e}", opts.connect))?;

    let mut failed = false;
    if let Some(spec) = &opts.kernel {
        let request = MapRequest {
            accelerator: opts.arch.clone(),
            seed: opts.seed,
            max_ii: opts.max_ii,
            strategy: opts.strategy.clone(),
            dfg: build_dfg(spec)?,
        };
        let body = exchange(&mut conn, request.canonical_text().as_bytes())?;
        print!("{body}");
        failed = matches!(response_status(&body), Some("error" | "overloaded") | None);
    }
    if opts.stats {
        print!("{}", exchange(&mut conn, b"stats")?);
    }
    if opts.shutdown {
        exchange(&mut conn, b"shutdown")?;
        eprintln!("daemon acknowledged shutdown");
    }
    if failed {
        std::process::exit(1);
    }
    Ok(())
}

fn main() {
    let mode = std::env::args().nth(1);
    let result = match mode.as_deref() {
        Some("serve") => parse_serve_args().and_then(run_serve),
        Some("client") => parse_client_args().and_then(run_client),
        Some("--help" | "-h") | None => Err(usage()),
        Some(other) => Err(format!("unknown mode {other}\n{}", usage())),
    };
    if let Err(msg) = result {
        eprintln!("{msg}");
        std::process::exit(2);
    }
}
