//! `lisa-map` — command-line mapper: place and route a kernel on a
//! modelled spatial accelerator, or train the label models offline.
//!
//! ```text
//! lisa-map <kernel> [--arch <key>] [--mapper lisa|sa|greedy|ilp]
//!          [--model <path>] [--unroll <k>] [--max-ii <n>] [--seed <n>]
//!          [--strategy sa|evolutionary|constructive|mixed|<lane,lane,...>]
//!          [--predictor <path>|off] [--capture-movements <path>]
//!          [--verbose] [--show]
//!
//! lisa-map train [--arch <key>] [--full] [--dfgs <n>] [--seed <n>]
//!          [--checkpoint <dir>] [--resume <dir>] [--stop-after <stage>]
//!          [--out <path>] [--verbose] [--quiet]
//!
//! lisa-map train-predictor --pairs <path> --out <path>
//!          [--epochs <n>] [--seed <n>]
//!
//! kernel:  one of the 12 PolyBench kernels (gemm, atax, ...),
//!          `core:<kernel>` for the systolic compute core, or
//!          `rand:<seed>` for a synthetic DFG
//! --arch:  3x3 | 4x4 | 4x4-lr | 4x4-lm | 8x8 | systolic   (default 4x4),
//!          or any `ROWSxCOLS` (e.g. 16x16) for a baseline CGRA — big
//!          fabrics index hop distances with the landmark oracle
//! --show:  print the time-extended mapping grid (Fig. 5 style)
//! ```
//!
//! The `lisa` mapper trains the GNN label models for the chosen
//! accelerator on the fly (quick scale); pass `--model <path>` to load a
//! model previously written by `lisa-map train --out`, or use
//! `--mapper sa` for an untrained baseline run.
//!
//! `train` runs the staged pipeline (`generate_dfgs -> generate_labels ->
//! filter_and_split -> train_nets -> evaluate`) with progress on stderr.
//! With `--checkpoint <dir>` each stage persists its artifacts as it
//! goes; `--resume <dir>` picks a killed run back up from those files and
//! produces a byte-identical model. `--stop-after <stage>` ends the run
//! early (useful with `--checkpoint` to split work across invocations).
//!
//! The predict-then-verify movement filter closes a capture → train →
//! gate loop: `--capture-movements <path>` journals `(movement features,
//! Δcost)` pairs from any annealing run as a `lisa-movement-set v1`
//! file, `train-predictor` fits a movement predictor to such a file, and
//! `--predictor <path>` gates subsequent runs' routers with it (`off`,
//! the default, maps exactly as the unfiltered binary). `--verbose`
//! prints the run's aggregate filter counters as a final
//! `filter: proposals=... router_invocations=...` line on stdout.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use lisa::arch::Accelerator;
use lisa::core::{Lisa, LisaConfig, Pipeline, Stage, MODEL_FILE};
use lisa::dfg::{generate_random_dfg, polybench, unroll::unroll, Dfg, RandomDfgConfig};
use lisa::events::{EventSink, MultiObserver, Observer, PipelineEvent, StderrObserver};
use lisa::gnn::TrainConfig;
use lisa::labels::movement::{parse_movement_set, write_movement_set, MovementPredictor};
use lisa::labels::MovementRecorder;
use lisa::mapper::display::render;
use lisa::mapper::exact::{ExactMapper, ExactParams};
use lisa::mapper::greedy::GreedyMapper;
use lisa::mapper::schedule::IiSearch;
use lisa::mapper::{FilterStats, SaMapper, SaParams, StrategySpec};

struct Options {
    kernel: String,
    arch: String,
    mapper: String,
    model: Option<PathBuf>,
    unroll: u32,
    max_ii: u32,
    seed: u64,
    strategy: StrategySpec,
    predictor: Option<PathBuf>,
    capture: Option<PathBuf>,
    verbose: bool,
    show: bool,
}

struct TrainPredictorOptions {
    pairs: PathBuf,
    out: PathBuf,
    epochs: usize,
    seed: u64,
}

/// Sums every chain's `SaFilterSummary` counters across the whole run
/// (all IIs, all chains) for the end-of-run summary line.
#[derive(Debug, Default)]
struct FilterTotals(Mutex<FilterStats>);

impl FilterTotals {
    fn snapshot(&self) -> FilterStats {
        match self.0.lock() {
            Ok(guard) => *guard,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }
}

impl Observer for FilterTotals {
    fn event(&self, event: &PipelineEvent) {
        if let PipelineEvent::SaFilterSummary {
            proposals,
            admitted,
            rejected,
            audited,
            false_rejects,
            router_invocations,
            audit_router_invocations,
            ..
        } = event
        {
            let mut totals = match self.0.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            totals.merge(&FilterStats {
                proposals: *proposals,
                admitted: *admitted,
                rejected: *rejected,
                audited: *audited,
                false_rejects: *false_rejects,
                router_invocations: *router_invocations,
                audit_router_invocations: *audit_router_invocations,
            });
        }
    }
}

struct TrainOptions {
    arch: String,
    full: bool,
    dfgs: Option<usize>,
    seed: Option<u64>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    stop_after: Option<Stage>,
    out: Option<PathBuf>,
    verbose: bool,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let kernel = args.next().ok_or_else(usage)?;
    if kernel == "--help" || kernel == "-h" {
        return Err(usage());
    }
    let mut opts = Options {
        kernel,
        arch: "4x4".to_string(),
        mapper: "lisa".to_string(),
        model: None,
        unroll: 1,
        max_ii: 16,
        seed: 2022,
        strategy: StrategySpec::default(),
        predictor: None,
        capture: None,
        verbose: false,
        show: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--arch" => opts.arch = value("--arch")?,
            "--mapper" => opts.mapper = value("--mapper")?,
            "--model" => opts.model = Some(PathBuf::from(value("--model")?)),
            "--unroll" => {
                opts.unroll = value("--unroll")?
                    .parse()
                    .map_err(|e| format!("bad --unroll: {e}"))?
            }
            "--max-ii" => {
                opts.max_ii = value("--max-ii")?
                    .parse()
                    .map_err(|e| format!("bad --max-ii: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--strategy" => {
                opts.strategy = StrategySpec::parse(&value("--strategy")?)
                    .map_err(|e| format!("bad --strategy: {e}"))?
            }
            "--predictor" => {
                let v = value("--predictor")?;
                opts.predictor = if v == "off" {
                    None
                } else {
                    Some(PathBuf::from(v))
                };
            }
            "--capture-movements" => {
                opts.capture = Some(PathBuf::from(value("--capture-movements")?))
            }
            "--verbose" => opts.verbose = true,
            "--show" => opts.show = true,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn parse_train_predictor_args() -> Result<TrainPredictorOptions, String> {
    let mut args = std::env::args().skip(2);
    let mut pairs = None;
    let mut out = None;
    let mut epochs = 200;
    let mut seed = 2022;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", train_predictor_usage()))
        };
        match flag.as_str() {
            "--pairs" => pairs = Some(PathBuf::from(value("--pairs")?)),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--epochs" => {
                epochs = value("--epochs")?
                    .parse()
                    .map_err(|e| format!("bad --epochs: {e}"))?
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--help" | "-h" => return Err(train_predictor_usage()),
            other => return Err(format!("unknown flag {other}\n{}", train_predictor_usage())),
        }
    }
    Ok(TrainPredictorOptions {
        pairs: pairs.ok_or_else(|| format!("--pairs is required\n{}", train_predictor_usage()))?,
        out: out.ok_or_else(|| format!("--out is required\n{}", train_predictor_usage()))?,
        epochs,
        seed,
    })
}

fn parse_train_args() -> Result<TrainOptions, String> {
    let mut args = std::env::args().skip(2);
    let mut opts = TrainOptions {
        arch: "4x4".to_string(),
        full: false,
        dfgs: None,
        seed: None,
        checkpoint: None,
        resume: false,
        stop_after: None,
        out: None,
        verbose: false,
        quiet: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", train_usage()))
        };
        match flag.as_str() {
            "--arch" => opts.arch = value("--arch")?,
            "--full" => opts.full = true,
            "--dfgs" => {
                opts.dfgs = Some(
                    value("--dfgs")?
                        .parse()
                        .map_err(|e| format!("bad --dfgs: {e}"))?,
                )
            }
            "--seed" => {
                opts.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?,
                )
            }
            "--checkpoint" => opts.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--resume" => {
                opts.checkpoint = Some(PathBuf::from(value("--resume")?));
                opts.resume = true;
            }
            "--stop-after" => {
                let name = value("--stop-after")?;
                opts.stop_after = Some(Stage::from_name(&name).ok_or_else(|| {
                    format!(
                        "unknown stage `{name}` (stages: {})",
                        Stage::ALL
                            .iter()
                            .map(|s| s.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?)
            }
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--verbose" => opts.verbose = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(train_usage()),
            other => return Err(format!("unknown flag {other}\n{}", train_usage())),
        }
    }
    if opts.resume {
        let dir = opts.checkpoint.as_ref().expect("--resume sets checkpoint");
        if !dir.is_dir() {
            return Err(format!(
                "--resume {}: no such checkpoint directory",
                dir.display()
            ));
        }
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: lisa-map <kernel|core:<kernel>|rand:<seed>> \
     [--arch 3x3|4x4|4x4-lr|4x4-lm|8x8|systolic|<RxC>] \
     [--mapper lisa|sa|greedy|ilp] [--model path] [--unroll k] [--max-ii n] [--seed n] \
     [--strategy sa|evolutionary|constructive|mixed|lane,lane,...] \
     [--predictor path|off] [--capture-movements path] [--verbose] [--show]\n\
     \x20      lisa-map train --help             for offline label training\n\
     \x20      lisa-map train-predictor --help   for movement-predictor training"
        .to_string()
}

fn train_predictor_usage() -> String {
    "usage: lisa-map train-predictor --pairs path --out path [--epochs n] [--seed n]".to_string()
}

fn train_usage() -> String {
    "usage: lisa-map train [--arch 3x3|4x4|4x4-lr|4x4-lm|8x8|systolic|<RxC>] [--full] [--dfgs n] \
     [--seed n] [--checkpoint dir] [--resume dir] [--stop-after stage] [--out path] \
     [--verbose] [--quiet]"
        .to_string()
}

/// Resolves an `--arch` key: first the named catalog, then a bare
/// `ROWSxCOLS` dimension spec (e.g. `16x16`) building a baseline CGRA —
/// the escape hatch for fabrics beyond the paper suite, where the
/// accelerator automatically switches its hop-distance index from the
/// dense table to the landmark oracle.
fn build_arch(key: &str) -> Result<Accelerator, String> {
    if let Some(acc) = Accelerator::standard(key) {
        return Ok(acc);
    }
    if let Some((r, c)) = key.split_once('x') {
        if let (Ok(rows), Ok(cols)) = (r.parse::<usize>(), c.parse::<usize>()) {
            if rows > 0 && cols > 0 {
                return Ok(Accelerator::cgra(key, rows, cols));
            }
        }
    }
    Err(format!("unknown architecture {key}\n{}", usage()))
}

fn build_dfg(spec: &str, factor: u32) -> Result<Dfg, String> {
    let base = if let Some(seed) = spec.strip_prefix("rand:") {
        let seed: u64 = seed.parse().map_err(|e| format!("bad rand seed: {e}"))?;
        generate_random_dfg(&RandomDfgConfig::default(), seed)
    } else if let Some(core) = spec.strip_prefix("core:") {
        polybench::kernel_core(core).map_err(|e| e.to_string())?
    } else {
        polybench::kernel(spec).map_err(|e| e.to_string())?
    };
    Ok(if factor > 1 {
        unroll(&base, factor)
    } else {
        base
    })
}

/// The quick-scale config the `lisa` mapper trains (and imports) with.
fn mapping_config(
    acc: &Accelerator,
    seed: u64,
    strategy: StrategySpec,
    predictor: Option<PathBuf>,
) -> LisaConfig {
    let mut config = LisaConfig::fast();
    config.training_dfgs = 24;
    config.seed = seed;
    config.strategy = strategy;
    config.predictor = predictor;
    if acc.is_spatial_only() {
        config = config.for_systolic();
    }
    config
}

fn run_train(opts: TrainOptions) -> Result<(), String> {
    let acc = build_arch(&opts.arch)?;
    let mut config = if opts.full {
        LisaConfig::default()
    } else {
        LisaConfig::fast()
    };
    if let Some(n) = opts.dfgs {
        config.training_dfgs = n;
    }
    if let Some(seed) = opts.seed {
        config.seed = seed;
    }
    if acc.is_spatial_only() {
        config = config.for_systolic();
    }

    let mut pipeline = Pipeline::new(&acc, config);
    if !opts.quiet {
        let observer = if opts.verbose {
            StderrObserver::verbose()
        } else {
            StderrObserver::new()
        };
        pipeline = pipeline.with_observer(EventSink::new(Arc::new(observer)));
    }
    if let Some(dir) = &opts.checkpoint {
        pipeline = pipeline.with_checkpoint_dir(dir);
    } else if opts.stop_after.is_some() && opts.out.is_none() {
        eprintln!("note: --stop-after without --checkpoint discards all work");
    }
    if let Some(stage) = opts.stop_after {
        pipeline = pipeline.stop_after(stage);
    }

    let lisa = pipeline.run().map_err(|e| e.to_string())?;
    match lisa {
        Some(lisa) => {
            let stats = lisa.stats();
            eprintln!(
                "trained for {}: {} DFGs kept of {}, label accuracies {}",
                acc.name(),
                stats.dfgs_kept,
                stats.dfgs_generated,
                stats.accuracy.summary()
            );
            if let Some(out) = &opts.out {
                std::fs::write(out, lisa.export_model())
                    .map_err(|e| format!("writing {}: {e}", out.display()))?;
                eprintln!("model written to {}", out.display());
            } else if let Some(dir) = &opts.checkpoint {
                eprintln!("model written to {}", dir.join(MODEL_FILE).display());
            } else {
                // No destination given: emit the model on stdout so the
                // run is not thrown away (`lisa-map train > model.txt`).
                print!("{}", lisa.export_model());
            }
        }
        None => {
            let stage = opts.stop_after.expect("run ends early only on stop_after");
            match &opts.checkpoint {
                Some(dir) => eprintln!(
                    "stopped after {stage}; artifacts in {} (resume with --resume)",
                    dir.display()
                ),
                None => eprintln!("stopped after {stage}"),
            }
        }
    }
    Ok(())
}

fn run_train_predictor(opts: TrainPredictorOptions) -> Result<(), String> {
    let text = std::fs::read_to_string(&opts.pairs)
        .map_err(|e| format!("{}: {e}", opts.pairs.display()))?;
    let set = parse_movement_set(&text).map_err(|e| format!("{}: {e}", opts.pairs.display()))?;
    let config = TrainConfig {
        epochs: opts.epochs,
        ..TrainConfig::paper()
    };
    let (predictor, report) = MovementPredictor::train(&set, &config, opts.seed)
        .map_err(|e| format!("training on {}: {e}", opts.pairs.display()))?;
    std::fs::write(&opts.out, predictor.export())
        .map_err(|e| format!("writing {}: {e}", opts.out.display()))?;
    let improving = set.pairs.iter().filter(|p| p.delta_cost <= 0.0).count();
    eprintln!(
        "trained movement predictor on {} pairs ({improving} improving): \
         final loss {:.6}, threshold {:?}; written to {}",
        set.len(),
        report.final_loss(),
        predictor.threshold(),
        opts.out.display()
    );
    Ok(())
}

fn load_predictor(path: &PathBuf) -> Result<Arc<MovementPredictor>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let predictor =
        MovementPredictor::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(Arc::new(predictor))
}

fn load_model(path: &PathBuf, acc: &Accelerator, config: &LisaConfig) -> Result<Lisa, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let lisa = Lisa::import_model(config, &text).map_err(|e| format!("{}: {e}", path.display()))?;
    if lisa.accelerator_name() != acc.name() {
        eprintln!(
            "warning: model was trained for {} but mapping on {}",
            lisa.accelerator_name(),
            acc.name()
        );
    }
    Ok(lisa)
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("train") {
        let opts = match parse_train_args() {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        if let Err(msg) = run_train(opts) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("train-predictor") {
        let opts = match parse_train_predictor_args() {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        if let Err(msg) = run_train_predictor(opts) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        return;
    }

    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let acc = match build_arch(&opts.arch) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let dfg = match build_dfg(&opts.kernel, opts.unroll) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "mapping {} ({} nodes, {} edges) on {} with {}",
        dfg.name(),
        dfg.node_count(),
        dfg.edge_count(),
        acc.name(),
        opts.mapper
    );

    // Event plumbing: the movement recorder captures training pairs, the
    // totals observer aggregates filter counters for the `--verbose`
    // summary line. The null sink keeps unobserved runs on the historical
    // fast path.
    let totals = Arc::new(FilterTotals::default());
    let recorder = opts
        .capture
        .as_ref()
        .map(|_| Arc::new(MovementRecorder::new()));
    let sink = if opts.verbose || recorder.is_some() {
        let mut observers: Vec<Arc<dyn Observer>> = Vec::new();
        if let Some(rec) = &recorder {
            observers.push(Arc::clone(rec) as Arc<dyn Observer>);
        }
        if opts.verbose {
            observers.push(Arc::clone(&totals) as Arc<dyn Observer>);
            observers.push(Arc::new(StderrObserver::verbose()));
        }
        EventSink::new(Arc::new(MultiObserver::new(observers)))
    } else {
        EventSink::null()
    };
    if opts.predictor.is_some() && matches!(opts.mapper.as_str(), "greedy" | "ilp") {
        eprintln!("note: --predictor only gates the annealing mappers (lisa, sa); ignored");
    }
    if opts.strategy != StrategySpec::default() && matches!(opts.mapper.as_str(), "greedy" | "ilp")
    {
        eprintln!("note: --strategy only selects portfolio lanes (lisa, sa); ignored");
    }

    let search = IiSearch {
        max_ii: Some(opts.max_ii),
    };
    let (outcome, mapping) = match opts.mapper.as_str() {
        "lisa" => {
            let config = mapping_config(
                &acc,
                opts.seed,
                opts.strategy.clone(),
                opts.predictor.clone(),
            );
            let mut lisa = if let Some(path) = &opts.model {
                match load_model(path, &acc, &config) {
                    Ok(l) => l,
                    Err(msg) => {
                        eprintln!("{msg}");
                        std::process::exit(2);
                    }
                }
            } else {
                eprintln!("training label models (quick scale)...");
                match Lisa::train_for(&acc, &config) {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("training failed: {e}");
                        std::process::exit(1);
                    }
                }
            };
            match lisa.load_movement_filter() {
                Ok(true) => eprintln!("movement filter attached"),
                Ok(false) => {}
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
            let lisa = lisa.with_observer(sink.clone());
            lisa.map_capped(&dfg, &acc, opts.max_ii)
        }
        "sa" => {
            let mut sa = SaMapper::new(SaParams::paper(), opts.seed)
                .with_strategy(opts.strategy.clone())
                .with_observer(sink.clone());
            if let Some(path) = &opts.predictor {
                match load_predictor(path) {
                    Ok(p) => {
                        eprintln!("movement filter attached (threshold {:?})", p.threshold());
                        sa = sa.with_movement_filter(p);
                    }
                    Err(msg) => {
                        eprintln!("{msg}");
                        std::process::exit(2);
                    }
                }
            }
            search.run_with_mapping(&mut sa, &dfg, &acc)
        }
        "greedy" => {
            let mut greedy = GreedyMapper::default();
            search.run_with_mapping(&mut greedy, &dfg, &acc)
        }
        "ilp" => {
            let mut ilp = ExactMapper::new(ExactParams::default());
            search.run_with_mapping(&mut ilp, &dfg, &acc)
        }
        other => {
            eprintln!("unknown mapper {other}\n{}", usage());
            std::process::exit(2);
        }
    };

    if let (Some(path), Some(rec)) = (&opts.capture, &recorder) {
        let set = rec.snapshot();
        match std::fs::write(path, write_movement_set(&set)) {
            Ok(()) => eprintln!(
                "captured {} movement pairs to {}",
                set.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("writing {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if opts.verbose {
        let t = totals.snapshot();
        println!(
            "filter: proposals={} admitted={} rejected={} audited={} false_rejects={} \
             router_invocations={} audit_router_invocations={}",
            t.proposals,
            t.admitted,
            t.rejected,
            t.audited,
            t.false_rejects,
            t.router_invocations,
            t.audit_router_invocations
        );
    }

    match (outcome.ii, mapping) {
        (Some(ii), Some(m)) => {
            m.verify().expect("mapping invariants hold");
            println!(
                "mapped at II {ii} in {:.2?}: {} routing cells, makespan {}",
                outcome.compile_time,
                outcome.routing_cells,
                m.makespan()
            );
            if opts.show {
                println!("{}", render(&m));
            }
        }
        _ => {
            println!(
                "could not map within II {} (took {:.2?})",
                opts.max_ii, outcome.compile_time
            );
            std::process::exit(1);
        }
    }
}
