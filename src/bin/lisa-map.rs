//! `lisa-map` — command-line mapper: place and route a kernel on a
//! modelled spatial accelerator.
//!
//! ```text
//! lisa-map <kernel> [--arch <key>] [--mapper lisa|sa|greedy|ilp]
//!          [--unroll <k>] [--max-ii <n>] [--seed <n>] [--show]
//!
//! kernel:  one of the 12 PolyBench kernels (gemm, atax, ...),
//!          `core:<kernel>` for the systolic compute core, or
//!          `rand:<seed>` for a synthetic DFG
//! --arch:  3x3 | 4x4 | 4x4-lr | 4x4-lm | 8x8 | systolic   (default 4x4)
//! --show:  print the time-extended mapping grid (Fig. 5 style)
//! ```
//!
//! The `lisa` mapper trains the GNN label models for the chosen
//! accelerator on the fly (quick scale); use `--mapper sa` for an
//! untrained baseline run.

use lisa::arch::Accelerator;
use lisa::core::{Lisa, LisaConfig};
use lisa::dfg::{generate_random_dfg, polybench, unroll::unroll, Dfg, RandomDfgConfig};
use lisa::mapper::display::render;
use lisa::mapper::exact::{ExactMapper, ExactParams};
use lisa::mapper::greedy::GreedyMapper;
use lisa::mapper::schedule::IiSearch;
use lisa::mapper::{SaMapper, SaParams};

struct Options {
    kernel: String,
    arch: String,
    mapper: String,
    unroll: u32,
    max_ii: u32,
    seed: u64,
    show: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let kernel = args.next().ok_or_else(usage)?;
    if kernel == "--help" || kernel == "-h" {
        return Err(usage());
    }
    let mut opts = Options {
        kernel,
        arch: "4x4".to_string(),
        mapper: "lisa".to_string(),
        unroll: 1,
        max_ii: 16,
        seed: 2022,
        show: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--arch" => opts.arch = value("--arch")?,
            "--mapper" => opts.mapper = value("--mapper")?,
            "--unroll" => {
                opts.unroll = value("--unroll")?
                    .parse()
                    .map_err(|e| format!("bad --unroll: {e}"))?
            }
            "--max-ii" => {
                opts.max_ii = value("--max-ii")?
                    .parse()
                    .map_err(|e| format!("bad --max-ii: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--show" => opts.show = true,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: lisa-map <kernel|core:<kernel>|rand:<seed>> [--arch 3x3|4x4|4x4-lr|4x4-lm|8x8|systolic] \
     [--mapper lisa|sa|greedy|ilp] [--unroll k] [--max-ii n] [--seed n] [--show]"
        .to_string()
}

fn build_arch(key: &str) -> Result<Accelerator, String> {
    Ok(match key {
        "3x3" => Accelerator::cgra("3x3", 3, 3),
        "4x4" => Accelerator::cgra("4x4", 4, 4),
        "4x4-lr" => Accelerator::cgra("4x4-lr", 4, 4).with_regs_per_pe(1),
        "4x4-lm" => Accelerator::cgra("4x4-lm", 4, 4)
            .with_memory(lisa::arch::MemoryConnectivity::LeftColumn),
        "8x8" => Accelerator::cgra("8x8", 8, 8),
        "systolic" => Accelerator::systolic("systolic-5x5", 5, 5),
        other => return Err(format!("unknown architecture {other}\n{}", usage())),
    })
}

fn build_dfg(spec: &str, factor: u32) -> Result<Dfg, String> {
    let base = if let Some(seed) = spec.strip_prefix("rand:") {
        let seed: u64 = seed.parse().map_err(|e| format!("bad rand seed: {e}"))?;
        generate_random_dfg(&RandomDfgConfig::default(), seed)
    } else if let Some(core) = spec.strip_prefix("core:") {
        polybench::kernel_core(core).map_err(|e| e.to_string())?
    } else {
        polybench::kernel(spec).map_err(|e| e.to_string())?
    };
    Ok(if factor > 1 {
        unroll(&base, factor)
    } else {
        base
    })
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let acc = match build_arch(&opts.arch) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let dfg = match build_dfg(&opts.kernel, opts.unroll) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "mapping {} ({} nodes, {} edges) on {} with {}",
        dfg.name(),
        dfg.node_count(),
        dfg.edge_count(),
        acc.name(),
        opts.mapper
    );

    let search = IiSearch {
        max_ii: Some(opts.max_ii),
    };
    let (outcome, mapping) = match opts.mapper.as_str() {
        "lisa" => {
            eprintln!("training label models (quick scale)...");
            let mut config = LisaConfig::fast();
            config.training_dfgs = 24;
            config.seed = opts.seed;
            if acc.is_spatial_only() {
                config = config.for_systolic();
            }
            let lisa = Lisa::train_for(&acc, &config);
            lisa.map_capped(&dfg, &acc, opts.max_ii)
        }
        "sa" => {
            let mut sa = SaMapper::new(SaParams::paper(), opts.seed);
            search.run_with_mapping(&mut sa, &dfg, &acc)
        }
        "greedy" => {
            let mut greedy = GreedyMapper::default();
            search.run_with_mapping(&mut greedy, &dfg, &acc)
        }
        "ilp" => {
            let mut ilp = ExactMapper::new(ExactParams::default());
            search.run_with_mapping(&mut ilp, &dfg, &acc)
        }
        other => {
            eprintln!("unknown mapper {other}\n{}", usage());
            std::process::exit(2);
        }
    };

    match (outcome.ii, mapping) {
        (Some(ii), Some(m)) => {
            m.verify().expect("mapping invariants hold");
            println!(
                "mapped at II {ii} in {:.2?}: {} routing cells, makespan {}",
                outcome.compile_time,
                outcome.routing_cells,
                m.makespan()
            );
            if opts.show {
                println!("{}", render(&m));
            }
        }
        _ => {
            println!(
                "could not map within II {} (took {:.2?})",
                opts.max_ii, outcome.compile_time
            );
            std::process::exit(1);
        }
    }
}
