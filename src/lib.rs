//! # LISA — GNN-based portable mapping on spatial accelerators
//!
//! A from-scratch Rust reproduction of *LISA: Graph Neural Network based
//! Portable Mapping on Spatial Accelerators* (HPCA 2022). This facade
//! crate re-exports the workspace members:
//!
//! * [`dfg`] — dataflow-graph IR, analyses, PolyBench kernels, generators;
//! * [`arch`] — CGRA and systolic-array models, the modulo routing
//!   resource graph, and the power model;
//! * [`mapper`] — the Dijkstra router, vanilla/label-aware simulated
//!   annealing, and the exact branch-and-bound (ILP substitute);
//! * [`gnn`] — tensors, reverse-mode autodiff, and the four label
//!   networks;
//! * [`labels`] — the Attributes Generator, label extraction, iterative
//!   training-data generation, and the label filter;
//! * [`core`] — the end-to-end [`Lisa`] framework;
//! * [`serve`] — the mapping-as-a-service daemon: framed protocol,
//!   two-tier content-addressed result cache, and serving engine.
//!
//! # Example
//!
//! ```
//! use lisa::arch::Accelerator;
//! use lisa::core::{Lisa, LisaConfig};
//! use lisa::dfg::polybench;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let acc = Accelerator::cgra("4x4", 4, 4);
//! let lisa = Lisa::train_for(&acc, &LisaConfig::fast())?;
//! let dfg = polybench::kernel("doitgen")?;
//! let (outcome, _) = lisa.map_capped(&dfg, &acc, 8);
//! assert!(outcome.mapped());
//! # Ok(())
//! # }
//! ```

pub use lisa_arch as arch;
pub use lisa_core as core;
pub use lisa_dfg as dfg;
pub use lisa_events as events;
pub use lisa_gnn as gnn;
pub use lisa_labels as labels;
pub use lisa_mapper as mapper;
pub use lisa_serve as serve;

pub use lisa_core::{Lisa, LisaConfig};
