#!/usr/bin/env sh
# Tier-1 verification (see ROADMAP.md). Must pass from a clean checkout
# with no network access: the workspace is hermetic — every dependency is
# a workspace-path crate, so `--offline` is always safe.
set -eu
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline
cargo test -q --offline

echo "verify: OK"
