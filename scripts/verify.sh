#!/usr/bin/env sh
# Tier-1 verification (see ROADMAP.md). Must pass from a clean checkout
# with no network access: the workspace is hermetic — every dependency is
# a workspace-path crate, so `--offline` is always safe.
set -eu
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline
cargo test -q --offline

# Bench smoke: run the micro-benches once each (heavy tier is skipped),
# which writes target/bench/BENCH_<suite>.json; bench_check fails if
# BENCH_mapping.json or BENCH_gnn.json is missing, malformed, or lacks
# the required movement/portfolio/GNN entries.
cargo test -q --offline -p lisa-bench --benches
cargo run -q --offline -p lisa-bench --bin bench_check

echo "verify: OK"
