#!/usr/bin/env sh
# Tier-1 verification (see ROADMAP.md). Must pass from a clean checkout
# with no network access: the workspace is hermetic — every dependency is
# a workspace-path crate, so `--offline` is always safe.
set -eu
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline
cargo test -q --offline

# Bench smoke: run the mapping micro-benches once each (heavy tier is
# skipped), which writes target/bench/BENCH_mapping.json; bench_check
# fails if the file is missing, malformed, or lacks the required
# movement/portfolio entries.
cargo test -q --offline -p lisa-bench --benches
cargo run -q --offline -p lisa-bench --bin bench_check

echo "verify: OK"
