#!/usr/bin/env sh
# Tier-1 verification (see ROADMAP.md). Must pass from a clean checkout
# with no network access: the workspace is hermetic — every dependency is
# a workspace-path crate, so `--offline` is always safe.
set -eu
cd "$(dirname "$0")/.."

# The whole tier is warning-free: any rustc warning fails the build.
RUSTFLAGS="-D warnings ${RUSTFLAGS:-}"
export RUSTFLAGS

cargo fmt --check
cargo build --release --offline
cargo test -q --offline

# Bench smoke: run the micro-benches once each (heavy tier is skipped),
# which writes target/bench/BENCH_<suite>.json; bench_check fails if
# BENCH_mapping.json, BENCH_gnn.json, or BENCH_pipeline.json is missing,
# malformed, or lacks the required entries.
cargo test -q --offline -p lisa-bench --benches
cargo run -q --offline -p lisa-bench --bin bench_check

# Pipeline kill/resume smoke: a checkpointed training run stopped after
# the label stage must resume to a model byte-identical with an
# uninterrupted run of the same config.
SMOKE_DIR="target/pipeline-smoke"
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
cargo run -q --release --offline --bin lisa-map -- \
    train --arch 4x4 --dfgs 6 --quiet --out "$SMOKE_DIR/cold.model"
cargo run -q --release --offline --bin lisa-map -- \
    train --arch 4x4 --dfgs 6 --quiet \
    --checkpoint "$SMOKE_DIR/ckpt" --stop-after labels
cargo run -q --release --offline --bin lisa-map -- \
    train --arch 4x4 --dfgs 6 --quiet --resume "$SMOKE_DIR/ckpt"
cmp "$SMOKE_DIR/cold.model" "$SMOKE_DIR/ckpt/model.lisa-model"
echo "verify: pipeline resume is byte-identical"

echo "verify: OK"
