#!/usr/bin/env sh
# Tier-1 verification (see ROADMAP.md). Must pass from a clean checkout
# with no network access: the workspace is hermetic — every dependency is
# a workspace-path crate, so `--offline` is always safe.
set -eu
cd "$(dirname "$0")/.."

# The whole tier is warning-free: any rustc warning fails the build.
RUSTFLAGS="-D warnings ${RUSTFLAGS:-}"
export RUSTFLAGS

cargo fmt --check

# Static invariant gate (DESIGN.md "Static invariant catalog"): any
# unwaived determinism/unsafe/panic-path finding fails the tier. The
# JSON report is kept as a diffable artifact next to the bench JSONs.
cargo run -q --release --offline -p lisa-lint
mkdir -p target/lint
cargo run -q --release --offline -p lisa-lint -- --json >target/lint/lint.json
echo "verify: lisa-lint clean"

cargo build --release --offline
cargo test -q --offline

# Bench smoke: run the micro-benches once each (heavy tier is skipped),
# which writes target/bench/BENCH_<suite>.json; bench_check fails if
# BENCH_mapping.json, BENCH_gnn.json, BENCH_pipeline.json, or
# BENCH_serve.json is missing, malformed, or lacks the required entries.
cargo test -q --offline -p lisa-bench --benches
cargo run -q --offline -p lisa-bench --bin bench_check

# Big-fabric mapping smoke: map a small kernel end-to-end on a 16×16
# CGRA (256 PEs — beyond the dense hop-table threshold, so the landmark
# distance oracle is exercised). The untrained SA baseline with a small
# kernel and a tight II cap keeps the wall-clock bounded (~seconds).
cargo run -q --release --offline --bin lisa-map -- \
    doitgen --arch 16x16 --mapper sa --max-ii 8 --seed 7
echo "verify: 16x16 fabric maps end-to-end on the distance oracle"

# Strategy-lane smoke: the constructive lane alone must land a verified
# mapping of doitgen on the 4x4 (it is deterministic and orders of
# magnitude cheaper than annealing), and the mixed heterogeneous
# portfolio (constructive + sa + evolutionary) must map as well.
# lisa-map exits nonzero if the mapping fails to verify.
cargo run -q --release --offline --bin lisa-map -- \
    doitgen --arch 4x4 --mapper sa --strategy constructive --max-ii 8 --seed 7
cargo run -q --release --offline --bin lisa-map -- \
    doitgen --arch 4x4 --mapper sa --strategy mixed --max-ii 8 --seed 7
echo "verify: constructive lane and mixed portfolio map doitgen on the 4x4"

# Predict-then-verify smoke: close the capture -> train -> gate loop.
# The capture run (its own seed, mirroring filter_ab: the predictor
# serves *later* mappings of the same kernel) journals (movement
# features, delta-cost) pairs as a free by-product of mapping;
# train-predictor fits the movement filter from them; every gated re-map
# must still verify (lisa-map exits nonzero otherwise), reject at least
# one proposal, and summed over three seeds invoke the router strictly
# less often than the unfiltered runs, read from the `filter:` summary
# both arms print with --verbose. (Summing damps per-seed trajectory
# noise; the real measurement is filter_ab's interleaved median-of-5.)
FILTER_DIR="target/filter-smoke"
rm -rf "$FILTER_DIR"
mkdir -p "$FILTER_DIR"
cargo run -q --release --offline --bin lisa-map -- \
    gemm --arch 4x4 --mapper sa --max-ii 8 --seed 40007 --verbose \
    --capture-movements "$FILTER_DIR/pairs.txt" >"$FILTER_DIR/cap.out"
cargo run -q --release --offline --bin lisa-map -- \
    train-predictor --pairs "$FILTER_DIR/pairs.txt" \
    --out "$FILTER_DIR/movement.predictor" --epochs 60
OFF_CALLS=0
ON_CALLS=0
for SEED in 7 8 9; do
    cargo run -q --release --offline --bin lisa-map -- \
        gemm --arch 4x4 --mapper sa --max-ii 8 --seed "$SEED" --verbose \
        >"$FILTER_DIR/off$SEED.out"
    cargo run -q --release --offline --bin lisa-map -- \
        gemm --arch 4x4 --mapper sa --max-ii 8 --seed "$SEED" --verbose \
        --predictor "$FILTER_DIR/movement.predictor" >"$FILTER_DIR/on$SEED.out"
    grep -q 'filter: .* rejected=0 ' "$FILTER_DIR/off$SEED.out"
    if ! grep -q 'filter: .* rejected=[1-9]' "$FILTER_DIR/on$SEED.out"; then
        echo "verify: movement filter rejected nothing (seed $SEED)" >&2
        exit 1
    fi
    OFF=$(sed -n 's/.* router_invocations=\([0-9][0-9]*\).*/\1/p' "$FILTER_DIR/off$SEED.out")
    ON=$(sed -n 's/.* router_invocations=\([0-9][0-9]*\).*/\1/p' "$FILTER_DIR/on$SEED.out")
    if [ -z "$OFF" ] || [ -z "$ON" ]; then
        echo "verify: movement filter summary missing (seed $SEED)" >&2
        exit 1
    fi
    OFF_CALLS=$((OFF_CALLS + OFF))
    ON_CALLS=$((ON_CALLS + ON))
done
if [ "$ON_CALLS" -ge "$OFF_CALLS" ]; then
    echo "verify: movement filter saved no router work (off=$OFF_CALLS on=$ON_CALLS)" >&2
    exit 1
fi
echo "verify: movement filter cuts router invocations ($OFF_CALLS -> $ON_CALLS) and the mappings verify"

# Pipeline kill/resume smoke: a checkpointed training run stopped after
# the label stage must resume to a model byte-identical with an
# uninterrupted run of the same config.
SMOKE_DIR="target/pipeline-smoke"
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
cargo run -q --release --offline --bin lisa-map -- \
    train --arch 4x4 --dfgs 6 --quiet --out "$SMOKE_DIR/cold.model"
cargo run -q --release --offline --bin lisa-map -- \
    train --arch 4x4 --dfgs 6 --quiet \
    --checkpoint "$SMOKE_DIR/ckpt" --stop-after labels
cargo run -q --release --offline --bin lisa-map -- \
    train --arch 4x4 --dfgs 6 --quiet --resume "$SMOKE_DIR/ckpt"
cmp "$SMOKE_DIR/cold.model" "$SMOKE_DIR/ckpt/model.lisa-model"
echo "verify: pipeline resume is byte-identical"

# Serving smoke: start the daemon on an ephemeral port with a disk-backed
# result cache, map the same kernel twice (the repeat must be a memory-tier
# hit, byte-identical, without invoking the annealer), then restart the
# daemon on the same cache directory and check the disk tier answers the
# request byte-identically with zero anneals.
SERVE_DIR="$SMOKE_DIR/serve"
mkdir -p "$SERVE_DIR"
SERVE_BIN="target/release/lisa-serve"
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT

start_daemon() {
    rm -f "$SERVE_DIR/addr"
    "$SERVE_BIN" serve --model "$SMOKE_DIR/cold.model" \
        --listen 127.0.0.1:0 --port-file "$SERVE_DIR/addr" \
        --cache-dir "$SERVE_DIR/cache" \
        --events "$SERVE_DIR/$1.events.jsonl" 2>"$SERVE_DIR/$1.log" &
    SERVE_PID=$!
    tries=0
    while [ ! -s "$SERVE_DIR/addr" ]; do
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ] || ! kill -0 "$SERVE_PID" 2>/dev/null; then
            echo "verify: daemon failed to start" >&2
            cat "$SERVE_DIR/$1.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR="$(cat "$SERVE_DIR/addr")"
}

start_daemon daemon1
"$SERVE_BIN" client --connect "$ADDR" --kernel gemm --arch 4x4 --max-ii 8 \
    >"$SERVE_DIR/r1"
"$SERVE_BIN" client --connect "$ADDR" --kernel gemm --arch 4x4 --max-ii 8 \
    >"$SERVE_DIR/r2"
cmp "$SERVE_DIR/r1" "$SERVE_DIR/r2"
grep -q '^status ok$' "$SERVE_DIR/r1"
"$SERVE_BIN" client --connect "$ADDR" --stats >"$SERVE_DIR/stats1"
grep -q '^anneals 1$' "$SERVE_DIR/stats1"
grep -q '^hit_memory 1$' "$SERVE_DIR/stats1"
"$SERVE_BIN" client --connect "$ADDR" --shutdown
wait "$SERVE_PID"
SERVE_PID=""

start_daemon daemon2
"$SERVE_BIN" client --connect "$ADDR" --kernel gemm --arch 4x4 --max-ii 8 \
    >"$SERVE_DIR/r3"
cmp "$SERVE_DIR/r1" "$SERVE_DIR/r3"
"$SERVE_BIN" client --connect "$ADDR" --stats >"$SERVE_DIR/stats2"
grep -q '^anneals 0$' "$SERVE_DIR/stats2"
grep -q '^hit_disk 1$' "$SERVE_DIR/stats2"
"$SERVE_BIN" client --connect "$ADDR" --shutdown
wait "$SERVE_PID"
SERVE_PID=""
trap - EXIT
echo "verify: serve cache is byte-identical across restarts"

echo "verify: OK"
