//! Shared training configuration and loop helpers.

use lisa_rng::Rng;

use crate::{Adam, Graph, ParamStore, VarId};

/// Hyperparameters of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset (paper §VI-B: 500).
    pub epochs: usize,
    /// Gradient-accumulation batch size.
    pub batch_size: usize,
    /// Learning rate (paper: 0.001).
    pub lr: f64,
    /// Weight decay (paper: 0.0005).
    pub weight_decay: f64,
    /// Seed for epoch shuffling.
    pub shuffle_seed: u64,
}

impl TrainConfig {
    /// The paper's training recipe.
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 500,
            batch_size: 32,
            lr: 1e-3,
            weight_decay: 5e-4,
            shuffle_seed: 0,
        }
    }

    /// Reduced recipe for tests.
    pub fn fast() -> Self {
        TrainConfig {
            epochs: 60,
            ..TrainConfig::paper()
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::paper()
    }
}

/// Per-run training diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Mean loss of the final epoch.
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }

    /// Whether the loss improved from first to last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

/// Generic minibatch loop: `loss_fn(graph, store, sample_index)` must build
/// the forward pass for one sample and return its scalar loss var.
///
/// Loss gradients are averaged within each batch; one Adam step runs per
/// batch.
pub(crate) fn run_training(
    store: &mut ParamStore,
    sample_count: usize,
    config: &TrainConfig,
    mut loss_fn: impl FnMut(&mut Graph, &ParamStore, usize) -> VarId,
) -> TrainReport {
    let mut adam = Adam::new(config.lr, config.weight_decay);
    let mut rng = Rng::seed_from_u64(config.shuffle_seed);
    let mut order: Vec<usize> = (0..sample_count).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size.max(1)) {
            store.zero_grads();
            let mut batch_graphs = Vec::with_capacity(batch.len());
            for &i in batch {
                let mut g = Graph::new();
                let loss = loss_fn(&mut g, store, i);
                epoch_loss += g.value(loss).item();
                batch_graphs.push((g, loss));
            }
            // Average gradients over the batch by scaling each sample's
            // contribution (backward of a pre-scaled loss).
            for (g, loss) in &batch_graphs {
                g.backward(*loss, store);
            }
            store.scale_grads(1.0 / batch.len() as f64);
            adam.step(store);
        }
        epoch_losses.push(epoch_loss / sample_count.max(1) as f64);
    }
    TrainReport { epoch_losses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn training_fits_a_linear_map() {
        // Learn y = 2a - b from samples.
        let mut store = ParamStore::new(0);
        let w = store.alloc(1, 2);
        let data: Vec<(Vec<f64>, f64)> = (0..40)
            .map(|i| {
                let a = f64::from(i % 7) - 3.0;
                let b = f64::from(i % 5) - 2.0;
                (vec![a, b], 2.0 * a - b)
            })
            .collect();
        let cfg = TrainConfig {
            epochs: 300,
            batch_size: 8,
            lr: 0.02,
            weight_decay: 0.0,
            shuffle_seed: 1,
        };
        let report = run_training(&mut store, data.len(), &cfg, |g, s, i| {
            let wv = g.param(s, w);
            let x = g.input(Tensor::vector(data[i].0.clone()));
            let y = g.matvec(wv, x);
            g.squared_error(y, data[i].1)
        });
        assert!(report.improved());
        assert!(report.final_loss() < 1e-3, "loss {}", report.final_loss());
        let weights = store.value(w).data();
        assert!((weights[0] - 2.0).abs() < 0.05);
        assert!((weights[1] + 1.0).abs() < 0.05);
    }

    #[test]
    fn report_statistics() {
        let r = TrainReport {
            epoch_losses: vec![3.0, 2.0, 1.0],
        };
        assert_eq!(r.final_loss(), 1.0);
        assert!(r.improved());
        let empty = TrainReport {
            epoch_losses: vec![],
        };
        assert!(empty.final_loss().is_nan());
        assert!(!empty.improved());
    }
}
