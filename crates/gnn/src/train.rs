//! Shared training configuration and the deterministic minibatch loop.
//!
//! Each shuffled batch is split into fixed-size **micro-batch units**
//! (the unit size is a property of the model, not of the thread count).
//! Every unit builds one forward/backward pass into its own detached
//! [`ParamGrads`] sink, and the sinks are reduced into the store in
//! ascending unit order. Because the unit boundaries and the reduction
//! order are both independent of `parallelism`, training with any number
//! of worker threads produces bit-identical weights to the sequential
//! loop (pinned by tests here and in `tests/determinism.rs`).

use lisa_events::{EventSink, PipelineEvent};
use lisa_rng::Rng;

use crate::{Adam, Graph, ParamGrads, ParamStore, VarId};

/// Hyperparameters of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset (paper §VI-B: 500).
    pub epochs: usize,
    /// Gradient-accumulation batch size.
    pub batch_size: usize,
    /// Learning rate (paper: 0.001).
    pub lr: f64,
    /// Weight decay (paper: 0.0005).
    pub weight_decay: f64,
    /// Seed for epoch shuffling.
    pub shuffle_seed: u64,
    /// Worker threads for gradient computation (min 1). Any value
    /// produces bit-identical weights: only wall-clock changes.
    pub parallelism: usize,
}

impl TrainConfig {
    /// The paper's training recipe.
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 500,
            batch_size: 32,
            lr: 1e-3,
            weight_decay: 5e-4,
            shuffle_seed: 0,
            parallelism: 1,
        }
    }

    /// Reduced recipe for tests.
    pub fn fast() -> Self {
        TrainConfig {
            epochs: 60,
            ..TrainConfig::paper()
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::paper()
    }
}

/// Per-run training diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Mean loss of the final epoch.
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }

    /// Whether the loss improved from first to last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

/// Generic minibatch loop: `loss_fn(graph, store, unit)` must build the
/// batched forward pass for the unit's samples and return the **sum** of
/// their losses as a scalar var (gradients are averaged over the full
/// batch here, exactly as the historical per-sample loop did).
///
/// `micro_batch` fixes how many samples share one tape; it is part of the
/// numeric contract (like `batch_size`) and must not depend on
/// `config.parallelism`. One Adam step runs per batch.
///
/// `network` names the model in the [`PipelineEvent::EpochLoss`] events
/// emitted to `sink` after each epoch; it is caller-supplied because the
/// same model type can back several logical networks (e.g. `EdgeMlp`
/// serves both `same_level` and `temporal`). Events are pure
/// observations: they never alter the training trajectory.
pub(crate) fn run_training(
    store: &mut ParamStore,
    sample_count: usize,
    config: &TrainConfig,
    micro_batch: usize,
    network: &'static str,
    sink: &EventSink,
    loss_fn: impl Fn(&mut Graph, &ParamStore, &[usize]) -> VarId + Sync,
) -> TrainReport {
    let micro = micro_batch.max(1);
    let workers = config.parallelism.max(1);
    let mut adam = Adam::new(config.lr, config.weight_decay);
    let mut rng = Rng::seed_from_u64(config.shuffle_seed);
    let mut order: Vec<usize> = (0..sample_count).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    // One tape for the whole run: reset() keeps its buffers.
    let mut seq_graph = Graph::new();
    for epoch in 0..config.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size.max(1)) {
            store.zero_grads();
            let units: Vec<&[usize]> = batch.chunks(micro).collect();
            let mut sinks: Vec<ParamGrads> = units
                .iter()
                .map(|_| ParamGrads::zeros_like(store))
                .collect();
            let mut losses = vec![0.0; units.len()];
            if workers > 1 && units.len() > 1 {
                run_units_parallel(store, &loss_fn, &units, &mut sinks, &mut losses, workers);
            } else {
                for ((unit, sink), loss_out) in units.iter().zip(&mut sinks).zip(&mut losses) {
                    seq_graph.reset();
                    let loss = loss_fn(&mut seq_graph, store, unit);
                    *loss_out = seq_graph.value(loss).item();
                    seq_graph.backward_into(loss, sink);
                }
            }
            // Ordered reduction: ascending unit index, regardless of
            // which worker produced each sink — the canonical summation
            // tree that makes parallel and sequential runs bit-identical.
            for (sink, loss) in sinks.iter().zip(&losses) {
                store.add_grads(sink);
                epoch_loss += loss;
            }
            store.scale_grads(1.0 / batch.len() as f64);
            adam.step(store);
        }
        let mean_loss = epoch_loss / sample_count.max(1) as f64;
        epoch_losses.push(mean_loss);
        if sink.is_active() {
            sink.emit(PipelineEvent::EpochLoss {
                network,
                epoch,
                loss: mean_loss,
            });
        }
    }
    TrainReport { epoch_losses }
}

/// Fans a batch's units out over scoped worker threads, each with its own
/// reusable tape, writing into disjoint contiguous slices of the
/// per-unit sinks. No worker ever touches the store or another worker's
/// sink, so the result is identical to running the units sequentially.
fn run_units_parallel(
    store: &ParamStore,
    loss_fn: &(impl Fn(&mut Graph, &ParamStore, &[usize]) -> VarId + Sync),
    units: &[&[usize]],
    sinks: &mut [ParamGrads],
    losses: &mut [f64],
    workers: usize,
) {
    let per = units.len().div_ceil(workers.min(units.len()));
    std::thread::scope(|scope| {
        let mut start = 0;
        for (sink_chunk, loss_chunk) in sinks.chunks_mut(per).zip(losses.chunks_mut(per)) {
            let unit_chunk = &units[start..start + sink_chunk.len()];
            start += sink_chunk.len();
            scope.spawn(move || {
                let mut g = Graph::new();
                for ((unit, sink), loss_out) in unit_chunk.iter().zip(sink_chunk).zip(loss_chunk) {
                    g.reset();
                    let loss = loss_fn(&mut g, store, unit);
                    *loss_out = g.value(loss).item();
                    g.backward_into(loss, sink);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn linear_fit(cfg: &TrainConfig) -> (ParamStore, TrainReport) {
        linear_fit_observed(cfg, &EventSink::null())
    }

    /// Learns y = 2a - b from samples, reporting to `sink`.
    fn linear_fit_observed(cfg: &TrainConfig, sink: &EventSink) -> (ParamStore, TrainReport) {
        let mut store = ParamStore::new(0);
        let w = store.alloc(1, 2);
        let data: Vec<(Vec<f64>, f64)> = (0..40)
            .map(|i| {
                let a = f64::from(i % 7) - 3.0;
                let b = f64::from(i % 5) - 2.0;
                (vec![a, b], 2.0 * a - b)
            })
            .collect();
        let report = run_training(
            &mut store,
            data.len(),
            cfg,
            1,
            "linear",
            sink,
            |g, s, unit| {
                let i = unit[0];
                let wv = g.param(s, w);
                let x = g.input(Tensor::vector(data[i].0.clone()));
                let y = g.matvec(wv, x);
                g.squared_error(y, data[i].1)
            },
        );
        (store, report)
    }

    #[test]
    fn training_fits_a_linear_map() {
        let cfg = TrainConfig {
            epochs: 300,
            batch_size: 8,
            lr: 0.02,
            weight_decay: 0.0,
            shuffle_seed: 1,
            parallelism: 1,
        };
        let (store, report) = linear_fit(&cfg);
        assert!(report.improved());
        assert!(report.final_loss() < 1e-3, "loss {}", report.final_loss());
        let weights = store.value(crate::params::param_id_for_io(0)).data();
        assert!((weights[0] - 2.0).abs() < 0.05);
        assert!((weights[1] + 1.0).abs() < 0.05);
    }

    #[test]
    fn parallel_training_is_bit_identical_to_sequential() {
        let base = TrainConfig {
            epochs: 40,
            batch_size: 8,
            lr: 0.02,
            weight_decay: 1e-4,
            shuffle_seed: 3,
            parallelism: 1,
        };
        let (seq, seq_report) = linear_fit(&base);
        for workers in [2, 3, 8] {
            let cfg = TrainConfig {
                parallelism: workers,
                ..base
            };
            let (par, par_report) = linear_fit(&cfg);
            let id = crate::params::param_id_for_io(0);
            assert_eq!(
                seq.value(id).data(),
                par.value(id).data(),
                "weights diverged at parallelism {workers}"
            );
            assert_eq!(seq_report, par_report, "losses diverged at {workers}");
        }
    }

    #[test]
    fn observer_receives_one_epoch_loss_per_epoch() {
        use lisa_events::RecordingObserver;
        use std::sync::Arc;

        let cfg = TrainConfig {
            epochs: 7,
            batch_size: 8,
            lr: 0.02,
            weight_decay: 0.0,
            shuffle_seed: 1,
            parallelism: 1,
        };
        let recorder = Arc::new(RecordingObserver::default());
        let sink = EventSink::new(recorder.clone());
        let (_, report) = linear_fit_observed(&cfg, &sink);
        let events = recorder.take();
        assert_eq!(events.len(), cfg.epochs);
        for (epoch, event) in events.iter().enumerate() {
            assert_eq!(
                *event,
                PipelineEvent::EpochLoss {
                    network: "linear",
                    epoch,
                    loss: report.epoch_losses[epoch],
                }
            );
        }
    }

    #[test]
    fn observer_does_not_change_the_trajectory() {
        use lisa_events::RecordingObserver;
        use std::sync::Arc;

        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 8,
            lr: 0.02,
            weight_decay: 1e-4,
            shuffle_seed: 5,
            parallelism: 1,
        };
        let (silent, silent_report) = linear_fit(&cfg);
        let sink = EventSink::new(Arc::new(RecordingObserver::default()));
        let (observed, observed_report) = linear_fit_observed(&cfg, &sink);
        let id = crate::params::param_id_for_io(0);
        assert_eq!(silent.value(id).data(), observed.value(id).data());
        assert_eq!(silent_report, observed_report);
    }

    #[test]
    fn report_statistics() {
        let r = TrainReport {
            epoch_losses: vec![3.0, 2.0, 1.0],
        };
        assert_eq!(r.final_loss(), 1.0);
        assert!(r.improved());
        let empty = TrainReport {
            epoch_losses: vec![],
        };
        assert!(empty.final_loss().is_nan());
        assert!(!empty.improved());
    }
}
