//! Plain-text serialisation of parameter stores.
//!
//! Training is the expensive one-off step of the LISA pipeline (the paper
//! retrains per accelerator); persisting the learned weights lets a
//! deployment reuse them across compiler invocations. The format is a
//! deliberately simple line-oriented text format — no external
//! dependencies, stable across platforms, easy to diff:
//!
//! ```text
//! lisa-gnn-params v1
//! tensors <count>
//! tensor <rows> <cols>
//! <row-major f64 values, one line per row>
//! ...
//! ```

use std::error::Error;
use std::fmt;

use crate::{ParamStore, Tensor};

/// Errors produced while parsing serialised parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseParamsError {
    /// Missing or wrong header line.
    BadHeader,
    /// A structural line (`tensors`/`tensor`) was malformed.
    BadStructure {
        /// Line number (1-based).
        line: usize,
    },
    /// A value failed to parse as `f64`.
    BadValue {
        /// Line number (1-based).
        line: usize,
    },
    /// Fewer tensors/rows than declared.
    UnexpectedEof,
    /// The tensor shapes do not match the receiving store.
    ShapeMismatch {
        /// Index of the offending tensor.
        index: usize,
    },
}

impl fmt::Display for ParseParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseParamsError::BadHeader => write!(f, "missing `lisa-gnn-params v1` header"),
            ParseParamsError::BadStructure { line } => {
                write!(f, "malformed structure at line {line}")
            }
            ParseParamsError::BadValue { line } => {
                write!(f, "unparseable value at line {line}")
            }
            ParseParamsError::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseParamsError::ShapeMismatch { index } => {
                write!(f, "tensor {index} shape does not match the target store")
            }
        }
    }
}

impl Error for ParseParamsError {}

/// Serialises every tensor of the store.
///
/// # Example
///
/// ```
/// use lisa_gnn::{ParamStore, io};
///
/// let mut store = ParamStore::new(1);
/// store.alloc(2, 3);
/// let text = io::store_to_text(&store);
/// let mut restored = ParamStore::new(99);
/// restored.alloc(2, 3);
/// io::load_store_from_text(&mut restored, &text)?;
/// # Ok::<(), lisa_gnn::io::ParseParamsError>(())
/// ```
pub fn store_to_text(store: &ParamStore) -> String {
    let mut out = String::from("lisa-gnn-params v1\n");
    out.push_str(&format!("tensors {}\n", store.len()));
    for i in 0..store.len() {
        let t = store.value(crate::params::param_id_for_io(i));
        out.push_str(&format!("tensor {} {}\n", t.rows(), t.cols()));
        for r in 0..t.rows() {
            let row: Vec<String> = (0..t.cols())
                .map(|c| format!("{:?}", t.get(r, c)))
                .collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
    }
    out
}

/// Loads serialised values into an existing store whose tensors must have
/// identical shapes (i.e. a freshly constructed model of the same
/// architecture).
///
/// # Errors
///
/// Returns a [`ParseParamsError`] on malformed input or shape mismatch;
/// the store is left unchanged on error.
pub fn load_store_from_text(store: &mut ParamStore, text: &str) -> Result<(), ParseParamsError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseParamsError::UnexpectedEof)?;
    if header.trim() != "lisa-gnn-params v1" {
        return Err(ParseParamsError::BadHeader);
    }
    let (ln, counts) = lines.next().ok_or(ParseParamsError::UnexpectedEof)?;
    let count: usize = counts
        .strip_prefix("tensors ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or(ParseParamsError::BadStructure { line: ln + 1 })?;
    if count != store.len() {
        return Err(ParseParamsError::ShapeMismatch { index: 0 });
    }

    let mut parsed: Vec<Tensor> = Vec::with_capacity(count);
    for index in 0..count {
        let (ln, shape) = lines.next().ok_or(ParseParamsError::UnexpectedEof)?;
        let rest = shape
            .strip_prefix("tensor ")
            .ok_or(ParseParamsError::BadStructure { line: ln + 1 })?;
        let mut parts = rest.split_whitespace();
        let rows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ParseParamsError::BadStructure { line: ln + 1 })?;
        let cols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ParseParamsError::BadStructure { line: ln + 1 })?;
        let expected = store.value(crate::params::param_id_for_io(index));
        if (expected.rows(), expected.cols()) != (rows, cols) {
            return Err(ParseParamsError::ShapeMismatch { index });
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let (ln, row) = lines.next().ok_or(ParseParamsError::UnexpectedEof)?;
            for v in row.split_whitespace() {
                let value: f64 = v
                    .parse()
                    .map_err(|_| ParseParamsError::BadValue { line: ln + 1 })?;
                data.push(value);
            }
        }
        if data.len() != rows * cols {
            return Err(ParseParamsError::UnexpectedEof);
        }
        parsed.push(Tensor::from_vec(rows, cols, data));
    }
    for (i, t) in parsed.into_iter().enumerate() {
        store.set_value(crate::params::param_id_for_io(i), t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new(42);
        s.alloc(2, 3);
        s.alloc(1, 4);
        s.alloc(3, 1);
        s
    }

    #[test]
    fn roundtrip_preserves_values() {
        let store = sample_store();
        let text = store_to_text(&store);
        let mut fresh = ParamStore::new(7); // different init
        fresh.alloc(2, 3);
        fresh.alloc(1, 4);
        fresh.alloc(3, 1);
        load_store_from_text(&mut fresh, &text).unwrap();
        for i in 0..store.len() {
            let id = crate::params::param_id_for_io(i);
            assert_eq!(store.value(id), fresh.value(id));
        }
    }

    #[test]
    fn roundtrip_is_bit_exact_for_awkward_floats() {
        let mut store = ParamStore::new(0);
        let id = store.alloc_with(Tensor::vector(vec![
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            -0.0,
            1e300,
        ]));
        let text = store_to_text(&store);
        let mut fresh = ParamStore::new(1);
        fresh.alloc(4, 1);
        load_store_from_text(&mut fresh, &text).unwrap();
        for (a, b) in store.value(id).data().iter().zip(fresh.value(id).data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bad_header_rejected() {
        let mut s = sample_store();
        assert_eq!(
            load_store_from_text(&mut s, "nonsense\n"),
            Err(ParseParamsError::BadHeader)
        );
    }

    #[test]
    fn shape_mismatch_rejected_and_store_untouched() {
        let store = sample_store();
        let text = store_to_text(&store);
        let mut other = ParamStore::new(3);
        other.alloc(2, 3);
        other.alloc(1, 4);
        other.alloc(2, 2); // wrong shape
        let before = other.value(crate::params::param_id_for_io(0)).clone();
        assert!(matches!(
            load_store_from_text(&mut other, &text),
            Err(ParseParamsError::ShapeMismatch { index: 2 })
        ));
        assert_eq!(&before, other.value(crate::params::param_id_for_io(0)));
    }

    #[test]
    fn truncated_input_rejected() {
        let store = sample_store();
        let text = store_to_text(&store);
        let cut = &text[..text.len() / 2];
        let mut s = sample_store();
        assert!(load_store_from_text(&mut s, cut).is_err());
    }
}
