//! Reverse-mode automatic differentiation over a dynamically built tape.
//!
//! Each forward pass builds a fresh [`Graph`] (define-by-run, like
//! PyTorch): every operation appends a node holding its output value and
//! the information backward needs. [`Graph::backward`] then walks the tape
//! in reverse, accumulating gradients into intermediate nodes and — for
//! parameter leaves — into the [`ParamStore`].
//!
//! The op set is exactly what the paper's four label networks (Eq. 1–7)
//! require: matrix–vector products, elementwise arithmetic, ReLU,
//! guarded reciprocals, concatenation, scalar broadcast, and
//! min/max/mean pooling over neighbour sets.

use crate::{ParamId, ParamStore, Tensor};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarId(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant input; no gradient flows out.
    Input,
    /// Parameter leaf; gradient accumulates into the store.
    Param(ParamId),
    /// `W x` where `W` is a matrix var and `x` a column vector.
    MatVec(VarId, VarId),
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Hadamard(VarId, VarId),
    /// `s * x` with `s` a 1×1 var broadcast over `x`.
    Scale(VarId, VarId),
    Relu(VarId),
    /// Guarded elementwise reciprocal: `1/x`, or 1 where `|x| < eps`
    /// (the paper sets the normalisation factor to one on zero
    /// denominators, §IV-B).
    Recip(VarId),
    /// Vertical concatenation of column vectors.
    Concat(Vec<VarId>),
    /// Elementwise mean over a set of same-shaped vectors.
    PoolMean(Vec<VarId>),
    /// Elementwise max; gradient flows to the argmax element.
    PoolMax(Vec<VarId>),
    /// Elementwise min; gradient flows to the argmin element.
    PoolMin(Vec<VarId>),
    /// Elementwise sum over a set of same-shaped vectors.
    PoolSum(Vec<VarId>),
    /// Squared error `(x - target)^2` of a 1×1 var against a constant.
    SquaredError(VarId, f64),
}

const RECIP_EPS: f64 = 1e-6;

#[derive(Debug, Clone)]
struct Node {
    op: Op,
    value: Tensor,
}

/// A dynamically built computation graph.
///
/// # Example
///
/// ```
/// use lisa_gnn::{Graph, ParamStore, Tensor};
///
/// let mut store = ParamStore::new(0);
/// let w = store.alloc_with(Tensor::from_vec(1, 2, vec![2.0, -1.0]));
/// let mut g = Graph::new();
/// let wv = g.param(&store, w);
/// let x = g.input(Tensor::vector(vec![3.0, 4.0]));
/// let y = g.matvec(wv, x);           // 2*3 - 4 = 2
/// let loss = g.squared_error(y, 0.0); // 4
/// assert_eq!(g.value(loss).item(), 4.0);
/// g.backward(loss, &mut store);
/// // dL/dW = 2*(y-0) * x^T = [12, 16]
/// assert_eq!(store.grad(w).data(), &[12.0, 16.0]);
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    fn push(&mut self, op: Op, value: Tensor) -> VarId {
        self.nodes.push(Node { op, value });
        VarId(self.nodes.len() - 1)
    }

    /// The forward value of a var.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Number of tape nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a constant input.
    pub fn input(&mut self, value: Tensor) -> VarId {
        self.push(Op::Input, value)
    }

    /// Adds a parameter leaf (value copied from the store).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        self.push(Op::Param(id), store.value(id).clone())
    }

    /// Matrix–vector product.
    pub fn matvec(&mut self, w: VarId, x: VarId) -> VarId {
        let v = self.nodes[w.0].value.matvec(&self.nodes[x.0].value);
        self.push(Op::MatVec(w, x), v)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(Op::Hadamard(a, b), v)
    }

    /// Broadcast scalar × vector.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not 1×1.
    pub fn scale(&mut self, s: VarId, x: VarId) -> VarId {
        let k = self.nodes[s.0].value.item();
        let v = self.nodes[x.0].value.scale(k);
        self.push(Op::Scale(s, x), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: VarId) -> VarId {
        let src = &self.nodes[x.0].value;
        let v = Tensor::from_vec(
            src.rows(),
            src.cols(),
            src.data().iter().map(|&v| v.max(0.0)).collect(),
        );
        self.push(Op::Relu(x), v)
    }

    /// Guarded elementwise reciprocal (1 where the input is ~0).
    pub fn recip(&mut self, x: VarId) -> VarId {
        let src = &self.nodes[x.0].value;
        let v = Tensor::from_vec(
            src.rows(),
            src.cols(),
            src.data()
                .iter()
                .map(|&v| if v.abs() < RECIP_EPS { 1.0 } else { 1.0 / v })
                .collect(),
        );
        self.push(Op::Recip(x), v)
    }

    /// Vertical concatenation of column vectors.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or any part is not a column vector.
    pub fn concat(&mut self, parts: Vec<VarId>) -> VarId {
        assert!(!parts.is_empty(), "concat needs at least one part");
        let mut data = Vec::new();
        for &p in &parts {
            let t = &self.nodes[p.0].value;
            assert_eq!(t.cols(), 1, "concat parts must be column vectors");
            data.extend_from_slice(t.data());
        }
        let v = Tensor::vector(data);
        self.push(Op::Concat(parts), v)
    }

    /// Elementwise mean over same-shaped vectors.
    pub fn pool_mean(&mut self, parts: Vec<VarId>) -> VarId {
        let v = self.pool_value(&parts, Pool::Mean);
        self.push(Op::PoolMean(parts), v)
    }

    /// Elementwise max over same-shaped vectors.
    pub fn pool_max(&mut self, parts: Vec<VarId>) -> VarId {
        let v = self.pool_value(&parts, Pool::Max);
        self.push(Op::PoolMax(parts), v)
    }

    /// Elementwise min over same-shaped vectors.
    pub fn pool_min(&mut self, parts: Vec<VarId>) -> VarId {
        let v = self.pool_value(&parts, Pool::Min);
        self.push(Op::PoolMin(parts), v)
    }

    /// Elementwise sum over same-shaped vectors.
    pub fn pool_sum(&mut self, parts: Vec<VarId>) -> VarId {
        let v = self.pool_value(&parts, Pool::Sum);
        self.push(Op::PoolSum(parts), v)
    }

    /// Squared error of a 1×1 prediction against a constant target.
    ///
    /// # Panics
    ///
    /// Panics if `pred` is not 1×1.
    pub fn squared_error(&mut self, pred: VarId, target: f64) -> VarId {
        let d = self.nodes[pred.0].value.item() - target;
        self.push(Op::SquaredError(pred, target), Tensor::scalar(d * d))
    }

    fn pool_value(&self, parts: &[VarId], pool: Pool) -> Tensor {
        assert!(!parts.is_empty(), "pooling needs at least one part");
        let first = &self.nodes[parts[0].0].value;
        let (rows, cols) = (first.rows(), first.cols());
        let mut out = first.clone();
        for &p in &parts[1..] {
            let t = &self.nodes[p.0].value;
            assert_eq!((t.rows(), t.cols()), (rows, cols), "pool shape mismatch");
            for (o, &v) in out.data_mut().iter_mut().zip(t.data()) {
                match pool {
                    Pool::Mean | Pool::Sum => *o += v,
                    Pool::Max => *o = o.max(v),
                    Pool::Min => *o = o.min(v),
                }
            }
        }
        if pool == Pool::Mean {
            out = out.scale(1.0 / parts.len() as f64);
        }
        out
    }

    /// Runs the backward pass from `loss` (which must be 1×1), adding
    /// parameter gradients into `store`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a 1×1 var.
    pub fn backward(&self, loss: VarId, store: &mut ParamStore) {
        assert_eq!(self.nodes[loss.0].value.len(), 1, "loss must be scalar");
        let mut grads: Vec<Tensor> = self
            .nodes
            .iter()
            .map(|n| Tensor::zeros(n.value.rows(), n.value.cols()))
            .collect();
        grads[loss.0] = Tensor::scalar(1.0);
        for i in (0..self.nodes.len()).rev() {
            if grads[i].norm() == 0.0 {
                continue;
            }
            let g = grads[i].clone();
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(pid) => store.accumulate_grad(*pid, &g),
                Op::MatVec(w, x) => {
                    let wv = &self.nodes[w.0].value;
                    let xv = &self.nodes[x.0].value;
                    grads[w.0].add_assign(&g.outer(xv));
                    grads[x.0].add_assign(&wv.t_matvec(&g));
                }
                Op::Add(a, b) => {
                    grads[a.0].add_assign(&g);
                    grads[b.0].add_assign(&g);
                }
                Op::Sub(a, b) => {
                    grads[a.0].add_assign(&g);
                    grads[b.0].add_assign(&g.scale(-1.0));
                }
                Op::Hadamard(a, b) => {
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    grads[a.0].add_assign(&g.hadamard(&bv));
                    grads[b.0].add_assign(&g.hadamard(&av));
                }
                Op::Scale(s, x) => {
                    let k = self.nodes[s.0].value.item();
                    let xv = &self.nodes[x.0].value;
                    let ds = g.hadamard(xv).sum();
                    grads[s.0].add_assign(&Tensor::scalar(ds));
                    grads[x.0].add_assign(&g.scale(k));
                }
                Op::Relu(x) => {
                    let xv = &self.nodes[x.0].value;
                    let masked = Tensor::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data()
                            .iter()
                            .zip(xv.data())
                            .map(|(&gv, &v)| if v > 0.0 { gv } else { 0.0 })
                            .collect(),
                    );
                    grads[x.0].add_assign(&masked);
                }
                Op::Recip(x) => {
                    let xv = &self.nodes[x.0].value;
                    let dx = Tensor::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data()
                            .iter()
                            .zip(xv.data())
                            .map(|(&gv, &v)| {
                                if v.abs() < RECIP_EPS {
                                    0.0
                                } else {
                                    -gv / (v * v)
                                }
                            })
                            .collect(),
                    );
                    grads[x.0].add_assign(&dx);
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let len = self.nodes[p.0].value.len();
                        let slice = Tensor::vector(g.data()[offset..offset + len].to_vec());
                        grads[p.0].add_assign(&slice);
                        offset += len;
                    }
                }
                Op::PoolMean(parts) => {
                    let share = g.scale(1.0 / parts.len() as f64);
                    for &p in parts {
                        grads[p.0].add_assign(&share);
                    }
                }
                Op::PoolSum(parts) => {
                    for &p in parts {
                        grads[p.0].add_assign(&g);
                    }
                }
                Op::PoolMax(parts) => self.pool_extreme_backward(parts, i, &g, &mut grads, true),
                Op::PoolMin(parts) => self.pool_extreme_backward(parts, i, &g, &mut grads, false),
                Op::SquaredError(x, target) => {
                    let d = self.nodes[x.0].value.item() - target;
                    grads[x.0].add_assign(&Tensor::scalar(2.0 * d * g.item()));
                }
            }
        }
    }

    /// Routes max/min-pool gradients to the element that achieved the
    /// extremum (first wins on ties).
    fn pool_extreme_backward(
        &self,
        parts: &[VarId],
        out_idx: usize,
        g: &Tensor,
        grads: &mut [Tensor],
        is_max: bool,
    ) {
        let out = &self.nodes[out_idx].value;
        for k in 0..out.len() {
            let target = out.data()[k];
            for &p in parts {
                let v = self.nodes[p.0].value.data()[k];
                let hit = if is_max { v >= target } else { v <= target };
                if hit {
                    grads[p.0].data_mut()[k] += g.data()[k];
                    break;
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pool {
    Mean,
    Max,
    Min,
    Sum,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of the gradient of `loss_fn` w.r.t. every
    /// weight of every parameter.
    fn check_grads(
        store: &mut ParamStore,
        params: &[ParamId],
        loss_fn: &dyn Fn(&mut Graph, &ParamStore) -> VarId,
    ) {
        // Analytic gradients.
        store.zero_grads();
        let mut g = Graph::new();
        let loss = loss_fn(&mut g, store);
        g.backward(loss, store);
        let analytic: Vec<Tensor> = params.iter().map(|&p| store.grad(p).clone()).collect();

        let eps = 1e-5;
        for (pi, &p) in params.iter().enumerate() {
            for k in 0..store.value(p).len() {
                let orig = store.value(p).data()[k];
                let probe = |store: &ParamStore, w: f64| {
                    let mut s = store.clone();
                    let mut t = s.value(p).clone();
                    t.data_mut()[k] = w;
                    s.set_value(p, t);
                    let mut g = Graph::new();
                    let l = loss_fn(&mut g, &s);
                    g.value(l).item()
                };
                let numeric = (probe(store, orig + eps) - probe(store, orig - eps)) / (2.0 * eps);
                let got = analytic[pi].data()[k];
                assert!(
                    (numeric - got).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "param {pi} weight {k}: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn matvec_and_mse_gradcheck() {
        let mut store = ParamStore::new(3);
        let w = store.alloc(2, 3);
        let r = store.alloc(1, 2);
        let loss_fn = move |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let rv = g.param(s, r);
            let x = g.input(Tensor::vector(vec![0.5, -1.0, 2.0]));
            let h = g.matvec(wv, x);
            let h = g.relu(h);
            let y = g.matvec(rv, h);
            g.squared_error(y, 1.5)
        };
        check_grads(&mut store, &[w, r], &loss_fn);
    }

    #[test]
    fn pooling_gradcheck() {
        let mut store = ParamStore::new(5);
        let w = store.alloc(2, 6);
        let loss_fn = move |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let a = g.input(Tensor::vector(vec![1.0, 2.0]));
            let b = g.input(Tensor::vector(vec![-1.0, 4.0]));
            let c = g.input(Tensor::vector(vec![0.5, -3.0]));
            let mean = g.pool_mean(vec![a, b, c]);
            let max = g.pool_max(vec![a, b, c]);
            let min = g.pool_min(vec![a, b, c]);
            let cat = g.concat(vec![mean, max, min]);
            let h = g.matvec(wv, cat);
            let s2 = g.pool_sum(vec![h]);
            let first = g.input(Tensor::from_vec(1, 2, vec![1.0, 1.0]));
            let y = g.matvec(first, s2);
            g.squared_error(y, 0.3)
        };
        check_grads(&mut store, &[w], &loss_fn);
    }

    #[test]
    fn recip_scale_hadamard_gradcheck() {
        let mut store = ParamStore::new(8);
        let w = store.alloc(1, 2);
        let loss_fn = move |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let x = g.input(Tensor::vector(vec![2.0, -0.5]));
            let r = g.recip(x);
            let sc = g.matvec(wv, r); // scalar
            let y0 = g.input(Tensor::vector(vec![1.0, 3.0]));
            let scaled = g.scale(sc, y0);
            let h = g.hadamard(scaled, y0);
            let ones = g.input(Tensor::from_vec(1, 2, vec![1.0, 1.0]));
            let y = g.matvec(ones, h);
            g.squared_error(y, -0.2)
        };
        check_grads(&mut store, &[w], &loss_fn);
    }

    #[test]
    fn recip_guard_at_zero() {
        let mut g = Graph::new();
        let x = g.input(Tensor::vector(vec![0.0, 2.0]));
        let r = g.recip(x);
        assert_eq!(g.value(r).data(), &[1.0, 0.5]);
    }

    #[test]
    fn sub_backward() {
        let mut store = ParamStore::new(2);
        let w = store.alloc(1, 2);
        let loss_fn = move |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let a = g.input(Tensor::vector(vec![1.0, 2.0]));
            let b = g.input(Tensor::vector(vec![3.0, -1.0]));
            let d = g.sub(a, b);
            let y = g.matvec(wv, d);
            g.squared_error(y, 0.0)
        };
        check_grads(&mut store, &[w], &loss_fn);
    }

    #[test]
    fn value_access() {
        let mut g = Graph::new();
        let a = g.input(Tensor::scalar(2.0));
        let b = g.input(Tensor::scalar(3.0));
        let c = g.add(a, b);
        assert_eq!(g.value(c).item(), 5.0);
        assert_eq!(g.len(), 3);
    }
}
