//! Reverse-mode automatic differentiation over a dynamically built tape.
//!
//! Each forward pass builds a [`Graph`] (define-by-run, like PyTorch):
//! every operation appends a node holding its output value and the
//! information backward needs. [`Graph::backward`] then walks the tape in
//! reverse, accumulating gradients into intermediate nodes and — for
//! parameter leaves — into the [`ParamStore`] (or a detached
//! [`ParamGrads`] sink via [`Graph::backward_into`], which is what the
//! deterministic parallel trainer uses).
//!
//! Two throughput features shape the tape:
//!
//! * **Arena reuse** — [`Graph::reset`] clears the tape but keeps every
//!   backing buffer in an internal free pool, so a training loop reuses
//!   one graph's allocations across all samples and epochs instead of
//!   reallocating per sample. Backward likewise keeps its per-node
//!   gradient scratch between calls.
//! * **Inference mode** — [`Graph::inference`] builds a forward-only
//!   graph that skips op journaling (every node is recorded as an
//!   input): values are identical to a recording graph, backward is
//!   unavailable and panics. `predict()` paths use this.
//!
//! The op set is what the paper's four label networks (Eq. 1–7) require:
//! matrix–vector and batched matrix–matrix products, elementwise
//! arithmetic (scalar and column-broadcast forms), ReLU, guarded
//! reciprocals, concatenation, min/max/mean pooling over neighbour sets,
//! and a fused gather-and-pool over a CSR adjacency that aggregates all
//! nodes of a layer at once. Batched ops are bit-compatible with their
//! per-column scalar counterparts: column `j` of `matmul`'s output equals
//! `matvec` on column `j` exactly, and `gather_pool` reproduces the
//! historical concat(mean, max, min) column by column.

use std::sync::Arc;

use crate::{ParamGrads, ParamId, ParamStore, Tensor};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarId(usize);

/// A node-to-neighbours adjacency in compressed sparse row form, shared
/// cheaply (two `Arc` clones) between tape ops and across worker threads.
///
/// Consumer `j`'s neighbours are `indices[offsets[j]..offsets[j + 1]]`,
/// each a column index into the source matrix of a
/// [`Graph::gather_pool`].
#[derive(Debug, Clone)]
pub struct CsrAdjacency {
    offsets: Arc<[u32]>,
    indices: Arc<[u32]>,
}

impl CsrAdjacency {
    /// Builds the CSR form of a neighbour-list adjacency.
    ///
    /// # Panics
    ///
    /// Panics if an index exceeds `u32::MAX`.
    pub fn from_neighbors(neighbors: &[Vec<usize>]) -> Self {
        let mut offsets = Vec::with_capacity(neighbors.len() + 1);
        let mut indices = Vec::with_capacity(neighbors.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for ns in neighbors {
            for &u in ns {
                indices.push(u32::try_from(u).expect("neighbor index overflows u32"));
            }
            offsets.push(u32::try_from(indices.len()).expect("adjacency overflows u32"));
        }
        CsrAdjacency {
            offsets: offsets.into(),
            indices: indices.into(),
        }
    }

    /// Number of consumers (rows of the CSR form).
    pub fn consumer_count(&self) -> usize {
        self.offsets.len() - 1
    }

    fn neighbors(&self, j: usize) -> &[u32] {
        &self.indices[self.offsets[j] as usize..self.offsets[j + 1] as usize]
    }

    /// Borrows the CSR arrays without touching the `Arc` refcounts.
    pub(crate) fn view(&self) -> CsrView<'_> {
        CsrView {
            offsets: &self.offsets,
            indices: &self.indices,
        }
    }
}

/// Borrowed CSR adjacency: the same `offsets`/`indices` layout as
/// [`CsrAdjacency`] but over plain slices, so compiled plans can refill
/// scratch-owned vectors per prediction instead of paying two `Arc`
/// allocations per call. [`gather_pool_forward`] consumes this form;
/// the owning type lends one via [`CsrAdjacency::view`].
#[derive(Clone, Copy)]
pub(crate) struct CsrView<'a> {
    pub(crate) offsets: &'a [u32],
    pub(crate) indices: &'a [u32],
}

impl CsrView<'_> {
    /// Number of consumers (rows of the CSR form).
    pub(crate) fn consumer_count(&self) -> usize {
        self.offsets.len() - 1
    }

    fn neighbors(&self, j: usize) -> &[u32] {
        &self.indices[self.offsets[j] as usize..self.offsets[j + 1] as usize]
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Constant input; no gradient flows out.
    Input,
    /// Parameter leaf; gradient accumulates into the sink.
    Param(ParamId),
    /// `W x` where `W` is a matrix var and `x` a column vector.
    MatVec(VarId, VarId),
    /// `W X` with `X` a column-stacked batch; column `j` of the result is
    /// bit-identical to `MatVec` on column `j`.
    MatMul(VarId, VarId),
    Add(VarId, VarId),
    /// `X + b` broadcasting the column vector `b` over every column.
    AddCols(VarId, VarId),
    Sub(VarId, VarId),
    Hadamard(VarId, VarId),
    /// `s * x` with `s` a 1×1 var broadcast over `x`.
    Scale(VarId, VarId),
    /// Column-wise gating: column `j` of `x` scaled by `nu[j]`.
    ScaleCols(VarId, VarId),
    Relu(VarId),
    /// Guarded elementwise reciprocal: `1/x`, or 1 where `|x| < eps`
    /// (the paper sets the normalisation factor to one on zero
    /// denominators, §IV-B).
    Recip(VarId),
    /// Vertical concatenation of column vectors.
    Concat(Vec<VarId>),
    /// Elementwise mean over a set of same-shaped vectors.
    PoolMean(Vec<VarId>),
    /// Elementwise max; gradient flows to the argmax element.
    PoolMax(Vec<VarId>),
    /// Elementwise min; gradient flows to the argmin element.
    PoolMin(Vec<VarId>),
    /// Elementwise sum over a set of same-shaped vectors.
    PoolSum(Vec<VarId>),
    /// Fused per-consumer (mean, max, min) pooling of source columns
    /// selected through a CSR adjacency; stacks the three poolings
    /// vertically. Consumers without neighbours get a zero column.
    GatherPool {
        src: VarId,
        adj: CsrAdjacency,
    },
    /// Squared error `(x - target)^2` of a 1×1 var against a constant.
    SquaredError(VarId, f64),
    /// `scale * Σ_j (pred[j] - targets[j])^2` over a 1×n prediction row.
    RowSse {
        pred: VarId,
        targets: Arc<[f64]>,
        scale: f64,
    },
}

pub(crate) const RECIP_EPS: f64 = 1e-6;

/// Forward fill of [`Graph::gather_pool`]: for each consumer `j` of
/// `adj`, pools the columns of `srcv` named by its neighbour list and
/// stacks `[mean; max; min]` into `out`, which must hold
/// `3 * srcv.rows() * adj.consumer_count()` elements. Every element is
/// written — consumers without neighbours get explicit zero columns —
/// so `out` does not need to be pre-zeroed.
///
/// Shared by the tape op and the compiled inference plans so the two
/// paths stay bit-identical: one accumulation order, one mean scaling.
pub(crate) fn gather_pool_forward(srcv: &Tensor, adj: CsrView<'_>, out: &mut [f64]) {
    let h = srcv.rows();
    let n_out = adj.consumer_count();
    let cols = srcv.cols();
    let data = srcv.data();
    debug_assert_eq!(out.len(), 3 * h * n_out);
    // The three poolings write into separate row bands; splitting them up
    // front keeps the inner loops on plain slices with no per-element
    // shape math. Per output element the fold over the neighbor list is
    // the historical one — the first neighbor's value seeds sum/max/min,
    // the rest fold in list order, the mean applies the same `1/len`
    // reciprocal — so results are bit-identical.
    // Validate every neighbour index once up front: the gather loops
    // below re-walk the same list `h` times and rely on this bound for
    // unchecked loads.
    assert!(
        adj.indices.iter().all(|&u| (u as usize) < cols),
        "neighbor index out of range"
    );
    let (avg_band, rest_bands) = out.split_at_mut(h * n_out);
    let (max_band, min_band) = rest_bands.split_at_mut(h * n_out);
    for j in 0..n_out {
        let neigh = adj.neighbors(j);
        let Some((&first, rest)) = neigh.split_first() else {
            // Neighbour-less consumers pool to zero columns. Writing the
            // zeros here (instead of relying on a pre-zeroed `out`) means
            // every element of `out` is written, so callers may hand in a
            // stale buffer without paying a full clear first.
            for k in 0..h {
                avg_band[k * n_out + j] = 0.0;
                max_band[k * n_out + j] = 0.0;
                min_band[k * n_out + j] = 0.0;
            }
            continue;
        };
        let inv = 1.0 / neigh.len() as f64;
        for k in 0..h {
            let row = k * cols;
            // SAFETY: every index was asserted `< cols` above, `k < h`,
            // and `data` holds `h * cols` elements, so
            // `row + u < h * cols`.
            let v0 = unsafe { *data.get_unchecked(row + first as usize) };
            let (mut sum, mut max, mut min) = (v0, v0, v0);
            for &u in rest {
                // SAFETY: `u` was asserted `< cols` above, so
                // `row + u < h * cols` as for `first`.
                let v = unsafe { *data.get_unchecked(row + u as usize) };
                sum += v;
                max = max.max(v);
                min = min.min(v);
            }
            // SAFETY: `k < h` and `j < n_out`, so `k * n_out + j` lies
            // within each `h * n_out`-element band.
            unsafe {
                *avg_band.get_unchecked_mut(k * n_out + j) = sum * inv;
                *max_band.get_unchecked_mut(k * n_out + j) = max;
                *min_band.get_unchecked_mut(k * n_out + j) = min;
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    op: Op,
    value: Tensor,
}

/// Routes parameter gradients either into the store's accumulator (the
/// sequential path) or a detached sink (one per micro-batch unit in the
/// deterministic parallel trainer).
enum GradSink<'a> {
    Store(&'a mut ParamStore),
    Grads(&'a mut ParamGrads),
}

impl GradSink<'_> {
    fn accumulate(&mut self, id: ParamId, delta: &Tensor) {
        match self {
            GradSink::Store(s) => s.accumulate_grad(id, delta),
            GradSink::Grads(g) => g.accumulate(id, delta),
        }
    }
}

/// A dynamically built computation graph.
///
/// # Example
///
/// ```
/// use lisa_gnn::{Graph, ParamStore, Tensor};
///
/// let mut store = ParamStore::new(0);
/// let w = store.alloc_with(Tensor::from_vec(1, 2, vec![2.0, -1.0]));
/// let mut g = Graph::new();
/// let wv = g.param(&store, w);
/// let x = g.input(Tensor::vector(vec![3.0, 4.0]));
/// let y = g.matvec(wv, x);           // 2*3 - 4 = 2
/// let loss = g.squared_error(y, 0.0); // 4
/// assert_eq!(g.value(loss).item(), 4.0);
/// g.backward(loss, &mut store);
/// // dL/dW = 2*(y-0) * x^T = [12, 16]
/// assert_eq!(store.grad(w).data(), &[12.0, 16.0]);
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    recording: bool,
    /// Recycled backing buffers for node values and backward temporaries.
    pool: Vec<Vec<f64>>,
    /// Per-node gradient tensors reused across backward calls.
    grad_scratch: Vec<Tensor>,
}

impl Graph {
    /// Creates an empty recording graph (supports backward).
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            recording: true,
            pool: Vec::new(),
            grad_scratch: Vec::new(),
        }
    }

    /// Creates an empty forward-only graph: ops skip journaling (each
    /// node is stored as a plain input), values are identical to a
    /// recording graph, and [`Self::backward`] panics.
    pub fn inference() -> Self {
        Graph {
            recording: false,
            ..Graph::new()
        }
    }

    /// Whether the graph journals ops for backward.
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Runs `f` with this thread's shared forward-only tape, so ad-hoc
    /// single-sample `predict()` calls reuse one arena per thread
    /// instead of reallocating node buffers every call. The tape is
    /// reset before `f` runs; a reentrant call falls back to a fresh
    /// temporary graph.
    pub fn with_inference_tape<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
        thread_local! {
            static TAPE: std::cell::RefCell<Graph> =
                std::cell::RefCell::new(Graph::inference());
        }
        TAPE.with(|tape| match tape.try_borrow_mut() {
            Ok(mut g) => {
                g.reset();
                f(&mut g)
            }
            Err(_) => f(&mut Graph::inference()),
        })
    }

    /// Clears the tape for a fresh forward pass while keeping every
    /// allocation: node value buffers move to an internal free pool and
    /// are handed back to subsequent ops. Gradient scratch from previous
    /// backward calls is retained too. Var ids from before the reset are
    /// invalidated.
    pub fn reset(&mut self) {
        // Cap the free pool at what the next forward pass of this shape
        // can consume: input tensors are allocated outside the arena, so
        // without a bound every reset would grow the pool by the number
        // of inputs and a long-lived tape would leak.
        let cap = self.nodes.len();
        while let Some(node) = self.nodes.pop() {
            if self.pool.len() < cap {
                self.pool.push(node.value.into_data());
            }
        }
    }

    /// Pops a recycled buffer (cleared) or allocates a fresh one.
    fn take_buf(&mut self) -> Vec<f64> {
        let mut b = self.pool.pop().unwrap_or_default();
        b.clear();
        b
    }

    fn push(&mut self, op: Op, value: Tensor) -> VarId {
        let op = if self.recording { op } else { Op::Input };
        self.nodes.push(Node { op, value });
        VarId(self.nodes.len() - 1)
    }

    /// The forward value of a var.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Number of tape nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a constant input.
    pub fn input(&mut self, value: Tensor) -> VarId {
        self.push(Op::Input, value)
    }

    /// Adds a parameter leaf (value copied from the store).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        let mut buf = self.take_buf();
        let v = store.value(id);
        buf.extend_from_slice(v.data());
        let t = Tensor::from_vec(v.rows(), v.cols(), buf);
        self.push(Op::Param(id), t)
    }

    /// Matrix–vector product.
    pub fn matvec(&mut self, w: VarId, x: VarId) -> VarId {
        let mut buf = self.take_buf();
        let wv = &self.nodes[w.0].value;
        let xv = &self.nodes[x.0].value;
        assert_eq!(xv.cols(), 1, "matvec rhs must be a column vector");
        assert_eq!(wv.cols(), xv.rows(), "matvec shape mismatch");
        buf.resize(wv.rows(), 0.0);
        crate::tensor::matmul_kernel(wv.data(), xv.data(), (wv.rows(), wv.cols(), 1), &mut buf);
        let v = Tensor::from_vec(wv.rows(), 1, buf);
        self.push(Op::MatVec(w, x), v)
    }

    /// Batched matrix product `W X`: every column of `X` is one sample or
    /// node, and column `j` of the result is bit-identical to
    /// `matvec(w, column j)`.
    pub fn matmul(&mut self, w: VarId, x: VarId) -> VarId {
        let mut buf = self.take_buf();
        let wv = &self.nodes[w.0].value;
        let xv = &self.nodes[x.0].value;
        assert_eq!(wv.cols(), xv.rows(), "matmul shape mismatch");
        buf.resize(wv.rows() * xv.cols(), 0.0);
        crate::tensor::matmul_kernel(
            wv.data(),
            xv.data(),
            (wv.rows(), wv.cols(), xv.cols()),
            &mut buf,
        );
        let v = Tensor::from_vec(wv.rows(), xv.cols(), buf);
        self.push(Op::MatMul(w, x), v)
    }

    fn zip_op(&mut self, a: VarId, b: VarId, op: Op, f: impl Fn(f64, f64) -> f64) -> VarId {
        let mut buf = self.take_buf();
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(
            (av.rows(), av.cols()),
            (bv.rows(), bv.cols()),
            "shape mismatch"
        );
        buf.extend(av.data().iter().zip(bv.data()).map(|(&x, &y)| f(x, y)));
        let v = Tensor::from_vec(av.rows(), av.cols(), buf);
        self.push(op, v)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        self.zip_op(a, b, Op::Add(a, b), |x, y| x + y)
    }

    /// Adds a bias column to every column of a batched matrix:
    /// `out[r, j] = x[r, j] + b[r]`. Column `j` is bit-identical to
    /// `add(column j, b)`.
    pub fn add_cols(&mut self, x: VarId, b: VarId) -> VarId {
        let mut buf = self.take_buf();
        let xv = &self.nodes[x.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(bv.cols(), 1, "add_cols bias must be a column vector");
        assert_eq!(xv.rows(), bv.rows(), "add_cols shape mismatch");
        for (row, &bias) in xv.data().chunks_exact(xv.cols().max(1)).zip(bv.data()) {
            buf.extend(row.iter().map(|&v| v + bias));
        }
        let v = Tensor::from_vec(xv.rows(), xv.cols(), buf);
        self.push(Op::AddCols(x, b), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        self.zip_op(a, b, Op::Sub(a, b), |x, y| x - y)
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: VarId, b: VarId) -> VarId {
        self.zip_op(a, b, Op::Hadamard(a, b), |x, y| x * y)
    }

    /// Broadcast scalar × vector.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not 1×1.
    pub fn scale(&mut self, s: VarId, x: VarId) -> VarId {
        let mut buf = self.take_buf();
        let k = self.nodes[s.0].value.item();
        let xv = &self.nodes[x.0].value;
        buf.extend(xv.data().iter().map(|&v| v * k));
        let v = Tensor::from_vec(xv.rows(), xv.cols(), buf);
        self.push(Op::Scale(s, x), v)
    }

    /// Column-wise gating of a batched matrix: `out[r, j] = x[r, j] *
    /// nu[j]` with `nu` an n×1 vector of per-column scalars. Column `j`
    /// is bit-identical to `scale(nu[j], column j)`.
    pub fn scale_cols(&mut self, nu: VarId, x: VarId) -> VarId {
        let mut buf = self.take_buf();
        let nuv = &self.nodes[nu.0].value;
        let xv = &self.nodes[x.0].value;
        assert_eq!(nuv.cols(), 1, "scale_cols gate must be a column vector");
        assert_eq!(nuv.rows(), xv.cols(), "scale_cols shape mismatch");
        for row in xv.data().chunks_exact(xv.cols().max(1)) {
            buf.extend(row.iter().zip(nuv.data()).map(|(&v, &k)| v * k));
        }
        let v = Tensor::from_vec(xv.rows(), xv.cols(), buf);
        self.push(Op::ScaleCols(nu, x), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: VarId) -> VarId {
        let mut buf = self.take_buf();
        let src = &self.nodes[x.0].value;
        buf.extend(src.data().iter().map(|&v| v.max(0.0)));
        let v = Tensor::from_vec(src.rows(), src.cols(), buf);
        self.push(Op::Relu(x), v)
    }

    /// Guarded elementwise reciprocal (1 where the input is ~0).
    pub fn recip(&mut self, x: VarId) -> VarId {
        let mut buf = self.take_buf();
        let src = &self.nodes[x.0].value;
        buf.extend(
            src.data()
                .iter()
                .map(|&v| if v.abs() < RECIP_EPS { 1.0 } else { 1.0 / v }),
        );
        let v = Tensor::from_vec(src.rows(), src.cols(), buf);
        self.push(Op::Recip(x), v)
    }

    /// Vertical concatenation of column vectors.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or any part is not a column vector.
    pub fn concat(&mut self, parts: Vec<VarId>) -> VarId {
        assert!(!parts.is_empty(), "concat needs at least one part");
        let mut buf = self.take_buf();
        for &p in &parts {
            let t = &self.nodes[p.0].value;
            assert_eq!(t.cols(), 1, "concat parts must be column vectors");
            buf.extend_from_slice(t.data());
        }
        let v = Tensor::vector(buf);
        self.push(Op::Concat(parts), v)
    }

    /// Elementwise mean over same-shaped vectors.
    pub fn pool_mean(&mut self, parts: Vec<VarId>) -> VarId {
        let v = self.pool_value(&parts, Pool::Mean);
        self.push(Op::PoolMean(parts), v)
    }

    /// Elementwise max over same-shaped vectors.
    pub fn pool_max(&mut self, parts: Vec<VarId>) -> VarId {
        let v = self.pool_value(&parts, Pool::Max);
        self.push(Op::PoolMax(parts), v)
    }

    /// Elementwise min over same-shaped vectors.
    pub fn pool_min(&mut self, parts: Vec<VarId>) -> VarId {
        let v = self.pool_value(&parts, Pool::Min);
        self.push(Op::PoolMin(parts), v)
    }

    /// Elementwise sum over same-shaped vectors.
    pub fn pool_sum(&mut self, parts: Vec<VarId>) -> VarId {
        let v = self.pool_value(&parts, Pool::Sum);
        self.push(Op::PoolSum(parts), v)
    }

    /// Fused neighbourhood aggregation over a whole layer: for each
    /// consumer `j` of `adj`, pools the source columns named by its
    /// neighbour list and stacks `[mean; max; min]` into a `3h × n`
    /// output. Consumers without neighbours get a zero column. Column `j`
    /// is bit-identical to the historical
    /// `concat(pool_mean, pool_max, pool_min)` over the same columns.
    ///
    /// # Panics
    ///
    /// Panics if a neighbour index is out of range for `src`'s columns.
    pub fn gather_pool(&mut self, src: VarId, adj: &CsrAdjacency) -> VarId {
        let mut buf = self.take_buf();
        let srcv = &self.nodes[src.0].value;
        let h = srcv.rows();
        let n_out = adj.consumer_count();
        buf.resize(3 * h * n_out, 0.0);
        gather_pool_forward(srcv, adj.view(), &mut buf);
        let v = Tensor::from_vec(3 * h, n_out, buf);
        self.push(
            Op::GatherPool {
                src,
                adj: adj.clone(),
            },
            v,
        )
    }

    /// Squared error of a 1×1 prediction against a constant target.
    ///
    /// # Panics
    ///
    /// Panics if `pred` is not 1×1.
    pub fn squared_error(&mut self, pred: VarId, target: f64) -> VarId {
        let d = self.nodes[pred.0].value.item() - target;
        self.push(Op::SquaredError(pred, target), Tensor::scalar(d * d))
    }

    /// Summed squared error of a 1×n prediction row against per-column
    /// targets, times `scale`: `scale * Σ_j (pred[j] - targets[j])²`.
    /// With ascending-`j` summation this matches the historical
    /// per-sample `squared_error` + `pool_sum` + `scale` chain bit for
    /// bit.
    ///
    /// # Panics
    ///
    /// Panics unless `pred` is a row whose width equals `targets.len()`.
    pub fn row_squared_error(&mut self, pred: VarId, targets: Arc<[f64]>, scale: f64) -> VarId {
        let pv = &self.nodes[pred.0].value;
        assert_eq!(pv.rows(), 1, "row_squared_error expects a 1×n row");
        assert_eq!(
            pv.cols(),
            targets.len(),
            "row_squared_error target count mismatch"
        );
        let mut acc = 0.0;
        for (&p, &t) in pv.data().iter().zip(targets.iter()) {
            let d = p - t;
            acc += d * d;
        }
        let v = Tensor::scalar(acc * scale);
        self.push(
            Op::RowSse {
                pred,
                targets,
                scale,
            },
            v,
        )
    }

    fn pool_value(&mut self, parts: &[VarId], pool: Pool) -> Tensor {
        assert!(!parts.is_empty(), "pooling needs at least one part");
        let mut buf = self.take_buf();
        let first = &self.nodes[parts[0].0].value;
        let (rows, cols) = (first.rows(), first.cols());
        buf.extend_from_slice(first.data());
        for &p in &parts[1..] {
            let t = &self.nodes[p.0].value;
            assert_eq!((t.rows(), t.cols()), (rows, cols), "pool shape mismatch");
            for (o, &v) in buf.iter_mut().zip(t.data()) {
                match pool {
                    Pool::Mean | Pool::Sum => *o += v,
                    Pool::Max => *o = o.max(v),
                    Pool::Min => *o = o.min(v),
                }
            }
        }
        if pool == Pool::Mean {
            let k = 1.0 / parts.len() as f64;
            for o in &mut buf {
                *o *= k;
            }
        }
        Tensor::from_vec(rows, cols, buf)
    }

    /// Runs the backward pass from `loss` (which must be 1×1), adding
    /// parameter gradients into `store`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a 1×1 var, or if the graph was built with
    /// [`Graph::inference`].
    pub fn backward(&mut self, loss: VarId, store: &mut ParamStore) {
        self.backward_impl(loss, &mut GradSink::Store(store));
    }

    /// Like [`Self::backward`], but accumulates parameter gradients into
    /// a detached [`ParamGrads`] sink instead of the store. The parallel
    /// trainer gives each micro-batch unit its own sink and reduces them
    /// in ascending unit order, which is what keeps multi-threaded
    /// training bit-identical to sequential.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a 1×1 var, or if the graph was built with
    /// [`Graph::inference`].
    pub fn backward_into(&mut self, loss: VarId, sink: &mut ParamGrads) {
        self.backward_impl(loss, &mut GradSink::Grads(sink));
    }

    fn backward_impl(&mut self, loss: VarId, sink: &mut GradSink<'_>) {
        assert!(
            self.recording,
            "backward requires a recording graph (Graph::new), not Graph::inference"
        );
        assert_eq!(self.nodes[loss.0].value.len(), 1, "loss must be scalar");
        let mut grads = std::mem::take(&mut self.grad_scratch);
        if grads.len() < self.nodes.len() {
            grads.resize(self.nodes.len(), Tensor::zeros(0, 0));
        }
        for (slot, n) in grads.iter_mut().zip(&self.nodes) {
            slot.reset_zeroed(n.value.rows(), n.value.cols());
        }
        grads[loss.0].data_mut()[0] = 1.0;
        for i in (0..self.nodes.len()).rev() {
            if grads[i].norm() == 0.0 {
                continue;
            }
            let mut gbuf = self.pool.pop().unwrap_or_default();
            gbuf.clear();
            gbuf.extend_from_slice(grads[i].data());
            let g = Tensor::from_vec(grads[i].rows(), grads[i].cols(), gbuf);
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(pid) => sink.accumulate(*pid, &g),
                Op::MatVec(w, x) => {
                    let wv = &self.nodes[w.0].value;
                    let xv = &self.nodes[x.0].value;
                    grads[w.0].add_assign(&g.outer(xv));
                    grads[x.0].add_assign(&wv.t_matvec(&g));
                }
                Op::MatMul(w, x) => {
                    let wv = &self.nodes[w.0].value;
                    let xv = &self.nodes[x.0].value;
                    // dW = G Xᵀ, dX = Wᵀ G, accumulated in place.
                    grads[w.0].matmul_t_acc(&g, xv);
                    grads[x.0].t_matmul_acc(wv, &g);
                }
                Op::Add(a, b) => {
                    grads[a.0].add_assign(&g);
                    grads[b.0].add_assign(&g);
                }
                Op::AddCols(x, b) => {
                    grads[x.0].add_assign(&g);
                    // db[r] = Σ_j g[r, j], ascending j.
                    let db = grads[b.0].data_mut();
                    for (slot, row) in db.iter_mut().zip(g.data().chunks_exact(g.cols().max(1))) {
                        let mut acc = 0.0;
                        for &v in row {
                            acc += v;
                        }
                        *slot += acc;
                    }
                }
                Op::Sub(a, b) => {
                    grads[a.0].add_assign(&g);
                    grads[b.0].add_assign(&g.scale(-1.0));
                }
                Op::Hadamard(a, b) => {
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    grads[a.0].add_assign(&g.hadamard(&bv));
                    grads[b.0].add_assign(&g.hadamard(&av));
                }
                Op::Scale(s, x) => {
                    let k = self.nodes[s.0].value.item();
                    let xv = &self.nodes[x.0].value;
                    let ds = g.hadamard(xv).sum();
                    grads[s.0].add_assign(&Tensor::scalar(ds));
                    grads[x.0].add_assign(&g.scale(k));
                }
                Op::ScaleCols(nu, x) => {
                    let nuv = &self.nodes[nu.0].value;
                    let xv = &self.nodes[x.0].value;
                    let cols = xv.cols();
                    // dnu[j] = Σ_r g[r, j] x[r, j], ascending r — the same
                    // reduction scale's `g.hadamard(x).sum()` performs on
                    // one column.
                    {
                        let dnu = grads[nu.0].data_mut();
                        for (j, slot) in dnu.iter_mut().enumerate() {
                            let mut acc = 0.0;
                            for r in 0..xv.rows() {
                                acc += g.data()[r * cols + j] * xv.data()[r * cols + j];
                            }
                            *slot += acc;
                        }
                    }
                    // dx[r, j] = g[r, j] * nu[j].
                    let dx = grads[x.0].data_mut();
                    for (orow, grow) in dx
                        .chunks_exact_mut(cols.max(1))
                        .zip(g.data().chunks_exact(cols.max(1)))
                    {
                        for ((o, &gv), &k) in orow.iter_mut().zip(grow).zip(nuv.data()) {
                            *o += gv * k;
                        }
                    }
                }
                Op::Relu(x) => {
                    let xv = &self.nodes[x.0].value;
                    let masked = Tensor::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data()
                            .iter()
                            .zip(xv.data())
                            .map(|(&gv, &v)| if v > 0.0 { gv } else { 0.0 })
                            .collect(),
                    );
                    grads[x.0].add_assign(&masked);
                }
                Op::Recip(x) => {
                    let xv = &self.nodes[x.0].value;
                    let dx = Tensor::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data()
                            .iter()
                            .zip(xv.data())
                            .map(|(&gv, &v)| {
                                if v.abs() < RECIP_EPS {
                                    0.0
                                } else {
                                    -gv / (v * v)
                                }
                            })
                            .collect(),
                    );
                    grads[x.0].add_assign(&dx);
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let len = self.nodes[p.0].value.len();
                        let slice = Tensor::vector(g.data()[offset..offset + len].to_vec());
                        grads[p.0].add_assign(&slice);
                        offset += len;
                    }
                }
                Op::PoolMean(parts) => {
                    let share = g.scale(1.0 / parts.len() as f64);
                    for &p in parts {
                        grads[p.0].add_assign(&share);
                    }
                }
                Op::PoolSum(parts) => {
                    for &p in parts {
                        grads[p.0].add_assign(&g);
                    }
                }
                Op::PoolMax(parts) => {
                    pool_extreme_backward(&self.nodes, parts, i, &g, &mut grads, true)
                }
                Op::PoolMin(parts) => {
                    pool_extreme_backward(&self.nodes, parts, i, &g, &mut grads, false)
                }
                Op::GatherPool { src, adj } => {
                    let srcv = &self.nodes[src.0].value;
                    let out = &self.nodes[i].value;
                    let h = srcv.rows();
                    let n_src = srcv.cols();
                    let n_out = adj.consumer_count();
                    let dsrc = grads[src.0].data_mut();
                    // Consumers descending, and min → max → mean within a
                    // consumer: the reverse-tape order of the historical
                    // per-node pool_mean / pool_max / pool_min ops.
                    for j in (0..n_out).rev() {
                        let neigh = adj.neighbors(j);
                        if neigh.is_empty() {
                            continue;
                        }
                        for k in 0..h {
                            let target = out.get(2 * h + k, j);
                            for &u in neigh {
                                if srcv.get(k, u as usize) <= target {
                                    dsrc[k * n_src + u as usize] += g.get(2 * h + k, j);
                                    break;
                                }
                            }
                        }
                        for k in 0..h {
                            let target = out.get(h + k, j);
                            for &u in neigh {
                                if srcv.get(k, u as usize) >= target {
                                    dsrc[k * n_src + u as usize] += g.get(h + k, j);
                                    break;
                                }
                            }
                        }
                        let inv = 1.0 / neigh.len() as f64;
                        for &u in neigh {
                            for k in 0..h {
                                dsrc[k * n_src + u as usize] += g.get(k, j) * inv;
                            }
                        }
                    }
                }
                Op::SquaredError(x, target) => {
                    let d = self.nodes[x.0].value.item() - target;
                    grads[x.0].add_assign(&Tensor::scalar(2.0 * d * g.item()));
                }
                Op::RowSse {
                    pred,
                    targets,
                    scale,
                } => {
                    let pv = &self.nodes[pred.0].value;
                    let gs = g.item() * scale;
                    let dp = grads[pred.0].data_mut();
                    for ((o, &p), &t) in dp.iter_mut().zip(pv.data()).zip(targets.iter()) {
                        let d = p - t;
                        *o += 2.0 * d * gs;
                    }
                }
            }
            self.pool.push(g.into_data());
        }
        self.grad_scratch = grads;
    }
}

/// Routes max/min-pool gradients to the element that achieved the
/// extremum (first wins on ties).
fn pool_extreme_backward(
    nodes: &[Node],
    parts: &[VarId],
    out_idx: usize,
    g: &Tensor,
    grads: &mut [Tensor],
    is_max: bool,
) {
    let out = &nodes[out_idx].value;
    for k in 0..out.len() {
        let target = out.data()[k];
        for &p in parts {
            let v = nodes[p.0].value.data()[k];
            let hit = if is_max { v >= target } else { v <= target };
            if hit {
                grads[p.0].data_mut()[k] += g.data()[k];
                break;
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pool {
    Mean,
    Max,
    Min,
    Sum,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of the gradient of `loss_fn` w.r.t. every
    /// weight of every parameter.
    fn check_grads(
        store: &mut ParamStore,
        params: &[ParamId],
        loss_fn: &dyn Fn(&mut Graph, &ParamStore) -> VarId,
    ) {
        // Analytic gradients.
        store.zero_grads();
        let mut g = Graph::new();
        let loss = loss_fn(&mut g, store);
        g.backward(loss, store);
        let analytic: Vec<Tensor> = params.iter().map(|&p| store.grad(p).clone()).collect();

        let eps = 1e-5;
        for (pi, &p) in params.iter().enumerate() {
            for k in 0..store.value(p).len() {
                let orig = store.value(p).data()[k];
                let probe = |store: &ParamStore, w: f64| {
                    let mut s = store.clone();
                    let mut t = s.value(p).clone();
                    t.data_mut()[k] = w;
                    s.set_value(p, t);
                    let mut g = Graph::new();
                    let l = loss_fn(&mut g, &s);
                    g.value(l).item()
                };
                let numeric = (probe(store, orig + eps) - probe(store, orig - eps)) / (2.0 * eps);
                let got = analytic[pi].data()[k];
                assert!(
                    (numeric - got).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "param {pi} weight {k}: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn matvec_and_mse_gradcheck() {
        let mut store = ParamStore::new(3);
        let w = store.alloc(2, 3);
        let r = store.alloc(1, 2);
        let loss_fn = move |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let rv = g.param(s, r);
            let x = g.input(Tensor::vector(vec![0.5, -1.0, 2.0]));
            let h = g.matvec(wv, x);
            let h = g.relu(h);
            let y = g.matvec(rv, h);
            g.squared_error(y, 1.5)
        };
        check_grads(&mut store, &[w, r], &loss_fn);
    }

    #[test]
    fn pooling_gradcheck() {
        let mut store = ParamStore::new(5);
        let w = store.alloc(2, 6);
        let loss_fn = move |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let a = g.input(Tensor::vector(vec![1.0, 2.0]));
            let b = g.input(Tensor::vector(vec![-1.0, 4.0]));
            let c = g.input(Tensor::vector(vec![0.5, -3.0]));
            let mean = g.pool_mean(vec![a, b, c]);
            let max = g.pool_max(vec![a, b, c]);
            let min = g.pool_min(vec![a, b, c]);
            let cat = g.concat(vec![mean, max, min]);
            let h = g.matvec(wv, cat);
            let s2 = g.pool_sum(vec![h]);
            let first = g.input(Tensor::from_vec(1, 2, vec![1.0, 1.0]));
            let y = g.matvec(first, s2);
            g.squared_error(y, 0.3)
        };
        check_grads(&mut store, &[w], &loss_fn);
    }

    #[test]
    fn recip_scale_hadamard_gradcheck() {
        let mut store = ParamStore::new(8);
        let w = store.alloc(1, 2);
        let loss_fn = move |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let x = g.input(Tensor::vector(vec![2.0, -0.5]));
            let r = g.recip(x);
            let sc = g.matvec(wv, r); // scalar
            let y0 = g.input(Tensor::vector(vec![1.0, 3.0]));
            let scaled = g.scale(sc, y0);
            let h = g.hadamard(scaled, y0);
            let ones = g.input(Tensor::from_vec(1, 2, vec![1.0, 1.0]));
            let y = g.matvec(ones, h);
            g.squared_error(y, -0.2)
        };
        check_grads(&mut store, &[w], &loss_fn);
    }

    #[test]
    fn recip_guard_at_zero() {
        let mut g = Graph::new();
        let x = g.input(Tensor::vector(vec![0.0, 2.0]));
        let r = g.recip(x);
        assert_eq!(g.value(r).data(), &[1.0, 0.5]);
    }

    #[test]
    fn sub_backward() {
        let mut store = ParamStore::new(2);
        let w = store.alloc(1, 2);
        let loss_fn = move |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let a = g.input(Tensor::vector(vec![1.0, 2.0]));
            let b = g.input(Tensor::vector(vec![3.0, -1.0]));
            let d = g.sub(a, b);
            let y = g.matvec(wv, d);
            g.squared_error(y, 0.0)
        };
        check_grads(&mut store, &[w], &loss_fn);
    }

    #[test]
    fn value_access() {
        let mut g = Graph::new();
        let a = g.input(Tensor::scalar(2.0));
        let b = g.input(Tensor::scalar(3.0));
        let c = g.add(a, b);
        assert_eq!(g.value(c).item(), 5.0);
        assert_eq!(g.len(), 3);
    }

    fn batch_input() -> Tensor {
        Tensor::from_vec(3, 4, (0..12).map(|i| 0.3 - f64::from(i) * 0.17).collect())
    }

    #[test]
    fn matmul_and_row_sse_gradcheck() {
        let mut store = ParamStore::new(6);
        let w = store.alloc(2, 3);
        let r = store.alloc(1, 2);
        let targets: Arc<[f64]> = vec![0.4, -0.9, 1.3, 0.0].into();
        let loss_fn = move |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let rv = g.param(s, r);
            let x = g.input(batch_input());
            let h = g.matmul(wv, x);
            let h = g.relu(h);
            let p = g.matmul(rv, h);
            g.row_squared_error(p, targets.clone(), 0.25)
        };
        check_grads(&mut store, &[w, r], &loss_fn);
    }

    #[test]
    fn add_cols_scale_cols_gradcheck() {
        let mut store = ParamStore::new(9);
        let w = store.alloc(2, 3);
        let b = store.alloc(2, 1);
        let nu = store.alloc(4, 1);
        let r = store.alloc(1, 2);
        let targets: Arc<[f64]> = vec![1.0, 0.0, -0.5, 2.0].into();
        let loss_fn = move |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let bv = g.param(s, b);
            let nuv = g.param(s, nu);
            let rv = g.param(s, r);
            let x = g.input(batch_input());
            let h = g.matmul(wv, x);
            let h = g.add_cols(h, bv);
            let h = g.relu(h);
            let h = g.scale_cols(nuv, h);
            let p = g.matmul(rv, h);
            g.row_squared_error(p, targets.clone(), 1.0)
        };
        check_grads(&mut store, &[w, b, nu, r], &loss_fn);
    }

    #[test]
    fn gather_pool_gradcheck() {
        let mut store = ParamStore::new(12);
        let w = store.alloc(2, 3);
        let r = store.alloc(1, 6);
        // Mixed degrees including an isolated consumer and a repeated
        // neighbour, to exercise tie routing and the zero column.
        let adj = CsrAdjacency::from_neighbors(&[
            vec![1, 2],
            vec![0],
            vec![],
            vec![0, 1, 2, 3],
            vec![3, 3],
        ]);
        let targets: Arc<[f64]> = vec![0.2, -0.4, 0.0, 1.1, -0.6].into();
        let loss_fn = move |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let rv = g.param(s, r);
            let x = g.input(Tensor::from_vec(
                3,
                5,
                (0..15).map(|i| 0.2 + f64::from(i) * 0.23).collect(),
            ));
            let m = g.matmul(wv, x);
            let pooled = g.gather_pool(m, &adj);
            let p = g.matmul(rv, pooled);
            g.row_squared_error(p, targets.clone(), 0.2)
        };
        check_grads(&mut store, &[w, r], &loss_fn);
    }

    /// The batched ops must reproduce the scalar per-column ops bit for
    /// bit — this is the numeric contract that lets the models switch to
    /// batched forwards "without changing any numeric result".
    #[test]
    fn batched_ops_match_scalar_ops_bitwise() {
        let mut store = ParamStore::new(21);
        let w = store.alloc(2, 3);
        let b = store.alloc(2, 1);
        let x = batch_input();
        let nu_vals = [0.7, -1.3, 0.25, 2.0];

        let mut gb = Graph::new();
        let wv = gb.param(&store, w);
        let bv = gb.param(&store, b);
        let xv = gb.input(x.clone());
        let nuv = gb.input(Tensor::vector(nu_vals.to_vec()));
        let h = gb.matmul(wv, xv);
        let h = gb.add_cols(h, bv);
        let h = gb.relu(h);
        let h = gb.scale_cols(nuv, h);
        let batched = gb.value(h).clone();

        for j in 0..x.cols() {
            let mut gs = Graph::new();
            let wv = gs.param(&store, w);
            let bv = gs.param(&store, b);
            let xj = gs.input(x.column(j));
            let nuj = gs.input(Tensor::scalar(nu_vals[j]));
            let h = gs.matvec(wv, xj);
            let h = gs.add(h, bv);
            let h = gs.relu(h);
            let h = gs.scale(nuj, h);
            assert_eq!(batched.column(j).data(), gs.value(h).data());
        }
    }

    #[test]
    fn gather_pool_matches_pool_concat_bitwise() {
        let src = Tensor::from_vec(2, 4, (0..8).map(|i| 0.5 - f64::from(i) * 0.41).collect());
        let neighbors: Vec<Vec<usize>> = vec![vec![1, 3, 0], vec![2], vec![], vec![0, 1]];
        let adj = CsrAdjacency::from_neighbors(&neighbors);

        let mut gb = Graph::new();
        let s = gb.input(src.clone());
        let pooled = gb.gather_pool(s, &adj);
        let batched = gb.value(pooled).clone();

        for (j, ns) in neighbors.iter().enumerate() {
            let mut gs = Graph::new();
            let expected = if ns.is_empty() {
                Tensor::zeros(6, 1)
            } else {
                let cols: Vec<VarId> = ns.iter().map(|&u| gs.input(src.column(u))).collect();
                let mean = gs.pool_mean(cols.clone());
                let max = gs.pool_max(cols.clone());
                let min = gs.pool_min(cols);
                let cat = gs.concat(vec![mean, max, min]);
                gs.value(cat).clone()
            };
            assert_eq!(batched.column(j).data(), expected.data());
        }
    }

    #[test]
    fn row_sse_matches_sum_of_squared_errors_bitwise() {
        let preds = Tensor::from_vec(1, 3, vec![0.31, -1.7, 2.9]);
        let targets = [0.5, -2.0, 3.0];

        let mut ga = Graph::new();
        let p = ga.input(preds.clone());
        let loss = ga.row_squared_error(p, targets.to_vec().into(), 1.0 / 3.0);

        let mut gb = Graph::new();
        let errs: Vec<VarId> = (0..3)
            .map(|j| {
                let pj = gb.input(Tensor::scalar(preds.get(0, j)));
                gb.squared_error(pj, targets[j])
            })
            .collect();
        let sum = gb.pool_sum(errs);
        let k = gb.input(Tensor::scalar(1.0 / 3.0));
        let scaled = gb.scale(k, sum);
        assert_eq!(ga.value(loss).item(), gb.value(scaled).item());
    }

    #[test]
    fn inference_mode_matches_recording_values() {
        let mut store = ParamStore::new(17);
        let w = store.alloc(2, 3);
        let run = |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let x = g.input(batch_input());
            let h = g.matmul(wv, x);
            g.relu(h)
        };
        let mut rec = Graph::new();
        let a = run(&mut rec, &store);
        let mut inf = Graph::inference();
        let b = run(&mut inf, &store);
        assert!(!inf.is_recording());
        assert_eq!(rec.value(a).data(), inf.value(b).data());
    }

    #[test]
    #[should_panic(expected = "backward requires a recording graph")]
    fn inference_backward_panics() {
        let mut store = ParamStore::new(0);
        let w = store.alloc(1, 1);
        let mut g = Graph::inference();
        let wv = g.param(&store, w);
        let loss = g.squared_error(wv, 0.0);
        g.backward(loss, &mut store);
    }

    #[test]
    fn reset_reuses_tape_and_preserves_results() {
        let mut store = ParamStore::new(4);
        let w = store.alloc(2, 2);
        let mut g = Graph::new();
        let mut runs = Vec::new();
        for round in 0..3 {
            g.reset();
            assert!(g.is_empty());
            let wv = g.param(&store, w);
            let x = g.input(Tensor::vector(vec![1.0 + f64::from(round), -0.5]));
            let h = g.matvec(wv, x);
            let loss = g.squared_error_sum(h);
            runs.push(g.value(loss).item());
            store.zero_grads();
            g.backward(loss, &mut store);
        }
        // Same weights, different inputs: finite and distinct results.
        assert!(runs.iter().all(|v| v.is_finite()));
        assert_ne!(runs[0], runs[1]);

        // Re-running round 0's input after resets reproduces it exactly.
        g.reset();
        let wv = g.param(&store, w);
        let x = g.input(Tensor::vector(vec![1.0, -0.5]));
        let h = g.matvec(wv, x);
        let loss = g.squared_error_sum(h);
        assert_eq!(g.value(loss).item(), runs[0]);
    }

    impl Graph {
        /// Test helper: reduce a column vector to a scalar loss.
        fn squared_error_sum(&mut self, h: VarId) -> VarId {
            let n = self.value(h).rows();
            let ones = self.input(Tensor::from_vec(1, n, vec![1.0; n]));
            let y = self.matvec(ones, h);
            self.squared_error(y, 0.0)
        }
    }

    #[test]
    fn backward_into_matches_backward() {
        let mut store = ParamStore::new(5);
        let w = store.alloc(2, 3);
        let r = store.alloc(1, 2);
        let build = |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let rv = g.param(s, r);
            let x = g.input(batch_input());
            let h = g.matmul(wv, x);
            let p = g.matmul(rv, h);
            g.row_squared_error(p, vec![0.0; 4].into(), 1.0)
        };

        store.zero_grads();
        let mut g1 = Graph::new();
        let l1 = build(&mut g1, &store);
        g1.backward(l1, &mut store);

        let mut sink = ParamGrads::zeros_like(&store);
        let mut g2 = Graph::new();
        let l2 = build(&mut g2, &store);
        g2.backward_into(l2, &mut sink);

        for &p in &[w, r] {
            assert_eq!(store.grad(p).data(), sink.grad(p).data());
        }
    }
}
