//! Dense row-major matrices/vectors for the GNN engine.
//!
//! The label networks are tiny (hidden dimensions of ten-odd channels), so
//! a plain `Vec<f64>` matrix is the right tool: no BLAS, no SIMD, no
//! generic element type — just correct, allocation-light arithmetic.

use std::fmt;

/// A dense `rows × cols` matrix of `f64`. Column vectors are `n × 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Tensor { rows, cols, data }
    }

    /// Creates a column vector.
    pub fn vector(data: Vec<f64>) -> Self {
        let rows = data.len();
        Tensor {
            rows,
            cols: 1,
            data,
        }
    }

    /// Creates a 1×1 tensor holding a scalar.
    pub fn scalar(v: f64) -> Self {
        Tensor::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing buffer (for the tape
    /// arena's buffer recycling).
    pub(crate) fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Reshapes in place to a zero-filled `rows × cols`, reusing the
    /// existing allocation when its capacity suffices.
    pub(crate) fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes in place to `rows × cols` without clearing retained
    /// contents — only growth is zero-filled. For destinations whose
    /// every element the caller immediately overwrites (e.g. the fused
    /// gather-pool fill), this skips `reset_zeroed`'s full memset.
    pub(crate) fn reset_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// The single element of a 1×1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 1×1.
    pub fn item(&self) -> f64 {
        assert_eq!(self.len(), 1, "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Matrix × column-vector product.
    ///
    /// The inner loops run on iterators (`chunks_exact`/`zip`) rather than
    /// indexed accesses so the optimiser can elide bounds checks; the
    /// accumulation order is unchanged, so results are bit-identical to
    /// the historical indexed implementation (pinned by the golden-value
    /// tests below).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != x.rows` or `x` is not a column vector.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols, 1, "matvec rhs must be a column vector");
        assert_eq!(self.cols, x.rows, "matvec shape mismatch");
        let mut out = Tensor::zeros(self.rows, 1);
        for (row, o) in self.data.chunks_exact(self.cols).zip(&mut out.data) {
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(&x.data) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Matrix × matrix product: `self (m×k) · other (k×n) → m×n`.
    ///
    /// Column `j` of the result is bit-identical to
    /// `self.matvec(other.column(j))`: the reduction over `k` runs in the
    /// same ascending order, so batching N column vectors into one matrix
    /// never changes a numeric result.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        matmul_kernel(
            &self.data,
            &other.data,
            (self.rows, self.cols, other.cols),
            &mut out.data,
        );
        out
    }

    /// Transposed product `self^T (m×k from k×m) · other (k×n) → m×n`.
    ///
    /// Column `j` matches `self.t_matvec(other.column(j))` bit-for-bit
    /// (reduction over the shared `k` dimension in ascending row order).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Tensor::zeros(self.cols, other.cols);
        out.t_matmul_acc(self, other);
        out
    }

    /// Product with a transposed right operand:
    /// `self (m×k) · other^T (k×n from n×k) → m×n`. This is the shape of
    /// the weight gradient of a batched product (`dW = G · Xᵀ`): entry
    /// `(r, c)` reduces over the batch dimension in ascending order — the
    /// same order in which the sequential per-sample loop accumulated its
    /// outer products.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Tensor::zeros(self.rows, other.rows);
        out.matmul_t_acc(self, other);
        out
    }

    /// Accumulates `self += a · bᵀ` (see [`Self::matmul_t`]).
    ///
    /// Tiled like [`matmul_kernel`]: four rows of `a` are processed per
    /// pass, so each streamed row of `b` feeds four independent dot-product
    /// accumulators. Every `(r, c)` entry still reduces over the shared
    /// column dimension in ascending order with its own scalar accumulator,
    /// so results stay bit-identical to the untiled loop.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul_t_acc(&mut self, a: &Tensor, b: &Tensor) {
        assert_eq!(a.cols, b.cols, "matmul_t shape mismatch");
        assert_eq!(
            (self.rows, self.cols),
            (a.rows, b.rows),
            "matmul_t output shape mismatch"
        );
        let dims = (a.rows, a.cols, b.rows);
        if dims.0 == 0 || dims.1 == 0 || dims.2 == 0 {
            // Empty reduction or empty output: the untiled loops never
            // iterated here, so the partial sums stay untouched.
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if avx2_available() {
            // SAFETY: the call is gated on the runtime AVX2 probe.
            return unsafe { matmul_t_avx2(&a.data, &b.data, dims, &mut self.data) };
        }
        matmul_t_body(&a.data, &b.data, dims, &mut self.data);
    }

    /// Accumulates `self += aᵀ · b` (see [`Self::t_matmul`]).
    ///
    /// The reduction dimension is the *outer* loop (rows of `a` and `b` in
    /// ascending order), so blocking the output rows four at a time — four
    /// scalars of each `a` row driving four output rows per streamed `b`
    /// row — reorders nothing within any single element's accumulation
    /// chain; results stay bit-identical to the untiled loop.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn t_matmul_acc(&mut self, a: &Tensor, b: &Tensor) {
        assert_eq!(a.rows, b.rows, "t_matmul shape mismatch");
        assert_eq!(
            (self.rows, self.cols),
            (a.cols, b.cols),
            "t_matmul output shape mismatch"
        );
        let dims = (a.rows, a.cols, b.cols);
        if dims.0 == 0 || dims.1 == 0 || dims.2 == 0 {
            // Empty reduction or empty output: the untiled loops never
            // iterated here, so the partial sums stay untouched.
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if avx2_available() {
            // SAFETY: the call is gated on the runtime AVX2 probe.
            return unsafe { t_matmul_avx2(&a.data, &b.data, dims, &mut self.data) };
        }
        t_matmul_body(&a.data, &b.data, dims, &mut self.data);
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product. Panics on shape mismatch.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// In-place accumulation `self += other`. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales every element.
    pub fn scale(&self, k: f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * k).collect(),
        }
    }

    /// Outer product of two column vectors: `self * other^T`.
    ///
    /// Iterator-based like [`Self::matvec`]; each product is written once,
    /// so there is no accumulation order to preserve.
    ///
    /// # Panics
    ///
    /// Panics unless both are column vectors.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, 1, "outer lhs must be a column vector");
        assert_eq!(other.cols, 1, "outer rhs must be a column vector");
        let mut out = Tensor::zeros(self.rows, other.rows);
        for (&a, out_row) in self
            .data
            .iter()
            .zip(out.data.chunks_exact_mut(other.rows.max(1)))
        {
            for (o, &b) in out_row.iter_mut().zip(&other.data) {
                *o = a * b;
            }
        }
        out
    }

    /// Transposed matrix × column-vector product: `self^T * x`.
    ///
    /// Accumulates over rows of `self` in ascending order, exactly like
    /// the historical indexed implementation (golden-value tests pin
    /// this), with the inner loops on iterators to drop bounds checks.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != x.rows` or `x` is not a column vector.
    pub fn t_matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols, 1, "t_matvec rhs must be a column vector");
        assert_eq!(self.rows, x.rows, "t_matvec shape mismatch");
        let mut out = Tensor::zeros(self.cols, 1);
        for (row, &xv) in self.data.chunks_exact(self.cols.max(1)).zip(&x.data) {
            for (o, &a) in out.data.iter_mut().zip(row) {
                *o += a * xv;
            }
        }
        out
    }

    /// Copies column `j` out as a fresh column vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols`.
    pub fn column(&self, j: usize) -> Tensor {
        assert!(j < self.cols, "column index out of range");
        let data = self
            .data
            .iter()
            .skip(j)
            .step_by(self.cols)
            .copied()
            .collect();
        Tensor::vector(data)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

/// Row-block height of the tiled kernels: four output rows are processed
/// per pass, so every value streamed from the right-hand operand feeds
/// four independent FMA chains before the next load. The label networks'
/// operand panels (at most a few tens of KB) are already cache-resident,
/// so a single ascending pass over the reduction dimension per row block
/// is the cache-optimal schedule — no repacking or k-panelling needed.
const MR: usize = 4;

/// Column-tile width of the register-blocked microkernel. An `MR`×`NR`
/// tile of the output is staged in locals for the whole reduction, so
/// each element is loaded and stored once instead of once per `k` step —
/// the output traffic drops from `m·k·n` to `m·n` accesses. 4×8 doubles
/// fit the vector register file with room for the broadcast scalars and
/// the shared `b` tile.
const NR: usize = 8;

/// Accumulator seed and store-back epilogue selectors for the fused
/// kernels. `Z` picks the seed: `false` seeds each tile from `out`'s
/// current contents (partial sums accumulate), `true` seeds with literal
/// `0.0` — bit-identical to zeroing the buffer first and accumulating,
/// since both chains start from the same `+0.0`, but without the memset.
/// `E` picks what happens once per element at store-back, *after* the
/// element's complete ascending-`k` reduction chain — the same position
/// the separate epilogue pass it replaces would run in, so fused and
/// two-pass results are bit-identical.
const E_NONE: u8 = 0;
/// `out[r, j] = acc + bias[r]` (per-row bias broadcast down columns).
const E_BIAS: u8 = 1;
/// `out[r, j] = max(acc + bias[r], 0)` (bias then ReLU clamp).
const E_BIAS_RELU: u8 = 2;
/// `out[r, j] = acc + add[r, j]` (element-wise addend matrix).
const E_ADD: u8 = 3;

/// One register-blocked row band of the matmul: `R` rows of `a` (each of
/// length `k`) against all of `b`, accumulating into `R` rows of `out`.
///
/// Full `NR`-wide column tiles stage their output elements in a local
/// `R`×`NR` accumulator: seeded per `Z` (from `out` or with zeros),
/// updated once per `k` step, written back once through the `E`
/// epilogue. The column tail past the last full tile keeps the same
/// form. Either way every `out[r, j]` receives its `k` partial products
/// in ascending order starting from its seed — the exact addition
/// sequence of the historical scalar nest, so results stay bit-identical.
#[inline(always)]
fn kernel_rows<const R: usize, const Z: bool, const E: u8>(
    a: &[f64],
    b: &[f64],
    k: usize,
    n: usize,
    out: &mut [f64],
    bias: &[f64],
    add: &[f64],
) {
    debug_assert_eq!(a.len(), R * k);
    debug_assert_eq!(out.len(), R * n);
    let mut j0 = 0;
    while j0 + NR <= n {
        kernel_tile::<R, NR, Z, E>(a, b, k, n, j0, out, bias, add);
        j0 += NR;
    }
    // Column tail: one const-width tile of the exact remaining width, so
    // the tail costs a single extra pass over `b` (a 4/2/1 cascade would
    // stream `b` up to three times) while staying register-resident.
    match n - j0 {
        0 => {}
        1 => kernel_tile::<R, 1, Z, E>(a, b, k, n, j0, out, bias, add),
        2 => kernel_tile::<R, 2, Z, E>(a, b, k, n, j0, out, bias, add),
        3 => kernel_tile::<R, 3, Z, E>(a, b, k, n, j0, out, bias, add),
        4 => kernel_tile::<R, 4, Z, E>(a, b, k, n, j0, out, bias, add),
        5 => kernel_tile::<R, 5, Z, E>(a, b, k, n, j0, out, bias, add),
        6 => kernel_tile::<R, 6, Z, E>(a, b, k, n, j0, out, bias, add),
        _ => kernel_tile::<R, 7, Z, E>(a, b, k, n, j0, out, bias, add),
    }
}

/// One `R`×`W` register tile of the matmul at column offset `j0`: seeded
/// from `out`'s current contents, advanced once per `k` step, written
/// back once. Per element the reduction is still a single ascending-`k`
/// chain starting from the prior value — bit-identical to the historical
/// streaming nest.
///
/// The tile windows are addressed without bounds checks: [`kernel_rows`]
/// only issues tiles with `j0 + W <= n` over slices it has already
/// asserted to hold exactly `R * k` (`a`) and `R * n` (`out`) elements,
/// and the checks otherwise re-run per `k` step inside the hottest loop
/// of the crate.
#[inline(always)]
fn kernel_tile<const R: usize, const W: usize, const Z: bool, const E: u8>(
    a: &[f64],
    b: &[f64],
    k: usize,
    n: usize,
    j0: usize,
    out: &mut [f64],
    bias: &[f64],
    add: &[f64],
) {
    debug_assert!(j0 + W <= n);
    debug_assert_eq!(a.len(), R * k);
    debug_assert_eq!(out.len(), R * n);
    let mut acc = [[0.0f64; W]; R];
    if !Z {
        for (rr, tile) in acc.iter_mut().enumerate() {
            // SAFETY: `rr < R`, `j0 + W <= n`, and `out` holds `R * n`
            // elements, so the window lies within `out`.
            tile.copy_from_slice(unsafe { out.get_unchecked(rr * n + j0..rr * n + j0 + W) });
        }
    }
    for (i, b_row) in b.chunks_exact(n).enumerate() {
        // SAFETY: `chunks_exact(n)` yields rows of exactly `n` elements
        // and `j0 + W <= n`, so the window lies within the row; a `&[f64]`
        // of length `W` has the same layout as `&[f64; W]`.
        let bt = unsafe { &*(b_row.get_unchecked(j0..j0 + W).as_ptr() as *const [f64; W]) };
        for (rr, tile) in acc.iter_mut().enumerate() {
            // SAFETY: `rr < R` and `i < k`, so `rr * k + i < R * k`.
            let x = unsafe { *a.get_unchecked(rr * k + i) };
            for (t, &bv) in tile.iter_mut().zip(bt) {
                *t += x * bv;
            }
        }
    }
    for (rr, tile) in acc.iter().enumerate() {
        // SAFETY: same window as the seeding bound above.
        let dst = unsafe { out.get_unchecked_mut(rr * n + j0..rr * n + j0 + W) };
        // `E` is const, so all but one arm fold away per monomorphisation.
        match E {
            E_BIAS => {
                let bv = bias[rr];
                for (o, &t) in dst.iter_mut().zip(tile) {
                    *o = t + bv;
                }
            }
            E_BIAS_RELU => {
                let bv = bias[rr];
                for (o, &t) in dst.iter_mut().zip(tile) {
                    *o = (t + bv).max(0.0);
                }
            }
            E_ADD => {
                let aw = &add[rr * n + j0..rr * n + j0 + W];
                for ((o, &t), &v) in dst.iter_mut().zip(tile).zip(aw) {
                    *o = t + v;
                }
            }
            _ => dst.copy_from_slice(tile),
        }
    }
}

/// The shared `m×k · k×n` kernel behind [`Tensor::matmul`], operating on
/// raw buffers so the tape arena can target recycled allocations.
///
/// `out` must hold `m * n` zeros (or a partial sum to accumulate onto).
/// Rows are processed in register-blocked bands of [`MR`] (remainder
/// bands of 1–3 rows take the same microkernel at a smaller height), and
/// columns in [`NR`]-wide tiles held in locals across the reduction —
/// see [`kernel_rows`]. Within every tile the reduction still walks `k`
/// in ascending order per element — the same floating point addition
/// sequence as `matvec`'s scalar accumulator, which is what keeps
/// batched, per-column, and tiled results bit-identical.
///
/// Zero dimensions are an explicit no-op: an empty reduction (`k = 0`)
/// or an empty output (`m = 0` or `n = 0`) leaves `out`'s partial sums
/// untouched, exactly like the historical loops whose `chunks_exact`
/// iterators produced no chunks over the empty buffers.
pub(crate) fn matmul_kernel(a: &[f64], b: &[f64], dims: (usize, usize, usize), out: &mut [f64]) {
    let (m, k, n) = dims;
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    matmul_dispatch::<false, E_NONE>(a, b, &[], &[], dims, out);
}

/// `out = a (m×k) · b (k×n)`, overwriting `out` without requiring it to
/// be pre-zeroed: accumulator tiles are seeded with literal `0.0`
/// instead of `out`'s prior contents. Both chains start from the same
/// `+0.0` a freshly zeroed buffer holds, so the result is bit-identical
/// to `reset_zeroed` + [`matmul_kernel`] — minus the memset. An empty
/// reduction (`k = 0`) writes the zero matrix, honouring the overwrite
/// contract; `m = 0` or `n = 0` means there is nothing to write.
pub(crate) fn matmul_overwrite(a: &[f64], b: &[f64], dims: (usize, usize, usize), out: &mut [f64]) {
    let (m, k, n) = dims;
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    matmul_dispatch::<true, E_NONE>(a, b, &[], &[], dims, out);
}

/// `out = a·b + bias` broadcast down columns (`bias` is per-row), with
/// an optional ReLU clamp — the fused form of the compiled plans'
/// `Affine` op. Overwrite semantics as in [`matmul_overwrite`]; the
/// epilogue runs once per element after its complete reduction chain,
/// in the exact position of the separate pass it replaces, so fused and
/// two-pass results are bit-identical.
pub(crate) fn matmul_affine(
    a: &[f64],
    b: &[f64],
    bias: &[f64],
    relu: bool,
    dims: (usize, usize, usize),
    out: &mut [f64],
) {
    let (m, k, n) = dims;
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(bias.len(), m);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if relu {
        matmul_dispatch::<true, E_BIAS_RELU>(a, b, bias, &[], dims, out);
    } else {
        matmul_dispatch::<true, E_BIAS>(a, b, bias, &[], dims, out);
    }
}

/// `out = a·b + add` element-wise — the fused form of the compiled
/// plans' `Fma` op. Overwrite semantics as in [`matmul_overwrite`]; the
/// addend fold runs once per element after its complete reduction chain,
/// in the exact position of the separate pass it replaces, so fused and
/// two-pass results are bit-identical. `add` must not alias `out`.
pub(crate) fn matmul_add(
    a: &[f64],
    b: &[f64],
    add: &[f64],
    dims: (usize, usize, usize),
    out: &mut [f64],
) {
    let (m, k, n) = dims;
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(add.len(), m * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    matmul_dispatch::<true, E_ADD>(a, b, &[], add, dims, out);
}

#[inline(always)]
fn matmul_dispatch<const Z: bool, const E: u8>(
    a: &[f64],
    b: &[f64],
    bias: &[f64],
    add: &[f64],
    dims: (usize, usize, usize),
    out: &mut [f64],
) {
    // Tiny products (the edge/spatial nets' 5×5 column-vector chains)
    // gain nothing from wider vectors; the out-of-line call into the
    // AVX2 twin would be pure overhead, so they stay on the inline body.
    #[cfg(target_arch = "x86_64")]
    {
        let (m, k, n) = dims;
        if m * k * n >= 128 && avx2_available() {
            // SAFETY: the call is gated on the runtime AVX2 probe.
            return unsafe { matmul_kernel_avx2::<Z, E>(a, b, bias, add, dims, out) };
        }
    }
    matmul_kernel_body::<Z, E>(a, b, bias, add, dims, out);
}

/// Narrows the epilogue operands to the rows of one `R`-row band
/// starting at `r`: the bias vector is indexed per row, the addend
/// matrix per element. `E` is const, so the irrelevant arms (and the
/// slicing they would do on the empty placeholder slices) fold away.
#[inline(always)]
fn band_epilogue<'a, const E: u8>(
    bias: &'a [f64],
    add: &'a [f64],
    r: usize,
    n: usize,
) -> (&'a [f64], &'a [f64]) {
    match E {
        E_BIAS | E_BIAS_RELU => (&bias[r..], add),
        E_ADD => (bias, &add[r * n..]),
        _ => (bias, add),
    }
}

#[inline(always)]
fn matmul_kernel_body<const Z: bool, const E: u8>(
    a: &[f64],
    b: &[f64],
    bias: &[f64],
    add: &[f64],
    dims: (usize, usize, usize),
    out: &mut [f64],
) {
    let (m, k, n) = dims;
    // Short outputs (the label networks' hidden dims) run as one band of
    // exactly `m` rows: `b` is streamed once instead of once per band,
    // and all `m` accumulation chains stay live together.
    match m {
        1 => return kernel_rows::<1, Z, E>(a, b, k, n, out, bias, add),
        2 => return kernel_rows::<2, Z, E>(a, b, k, n, out, bias, add),
        3 => return kernel_rows::<3, Z, E>(a, b, k, n, out, bias, add),
        4 => return kernel_rows::<4, Z, E>(a, b, k, n, out, bias, add),
        5 => return kernel_rows::<5, Z, E>(a, b, k, n, out, bias, add),
        6 => return kernel_rows::<6, Z, E>(a, b, k, n, out, bias, add),
        _ => {}
    }
    let mut r = 0;
    while r + MR <= m {
        let (bs, ads) = band_epilogue::<E>(bias, add, r, n);
        kernel_rows::<MR, Z, E>(
            &a[r * k..(r + MR) * k],
            b,
            k,
            n,
            &mut out[r * n..(r + MR) * n],
            bs,
            ads,
        );
        r += MR;
    }
    let (bs, ads) = band_epilogue::<E>(bias, add, r, n);
    match m - r {
        0 => {}
        1 => kernel_rows::<1, Z, E>(&a[r * k..], b, k, n, &mut out[r * n..], bs, ads),
        2 => kernel_rows::<2, Z, E>(&a[r * k..], b, k, n, &mut out[r * n..], bs, ads),
        _ => kernel_rows::<3, Z, E>(&a[r * k..], b, k, n, &mut out[r * n..], bs, ads),
    }
}

/// `out += a (m×k) · bᵀ (k×n from n×k)` — the body behind
/// [`Tensor::matmul_t_acc`]. Four rows of `a` are processed per pass, so
/// each streamed row of `b` feeds four independent dot-product
/// accumulators. Every `(r, c)` entry still reduces over the shared
/// column dimension in ascending order with its own scalar accumulator,
/// so results stay bit-identical to the untiled loop.
#[inline(always)]
fn matmul_t_body(a: &[f64], b: &[f64], dims: (usize, usize, usize), out: &mut [f64]) {
    let (m, k, n) = dims;
    let mut r = 0;
    while r + MR <= m {
        let a_block = &a[r * k..(r + MR) * k];
        let (a0, rest) = a_block.split_at(k);
        let (a1, rest) = rest.split_at(k);
        let (a2, a3) = rest.split_at(k);
        let out_block = &mut out[r * n..(r + MR) * n];
        let (o0, rest) = out_block.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        for (c, b_row) in b.chunks_exact(k).enumerate() {
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for (j, &y) in b_row.iter().enumerate() {
                s0 += a0[j] * y;
                s1 += a1[j] * y;
                s2 += a2[j] * y;
                s3 += a3[j] * y;
            }
            o0[c] += s0;
            o1[c] += s1;
            o2[c] += s2;
            o3[c] += s3;
        }
        r += MR;
    }
    for (a_row, out_row) in a[r * k..]
        .chunks_exact(k)
        .zip(out[r * n..].chunks_exact_mut(n))
    {
        for (b_row, o) in b.chunks_exact(k).zip(out_row) {
            let mut acc = 0.0;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o += acc;
        }
    }
}

/// `out += aᵀ (m×kk from kk×m) · b (kk×n)` — the body behind
/// [`Tensor::t_matmul_acc`]. The reduction dimension is the *outer* loop
/// (rows of `a` and `b` in ascending order), so blocking the output rows
/// four at a time — four scalars of each `a` row driving four output
/// rows per streamed `b` row — reorders nothing within any single
/// element's accumulation chain; results stay bit-identical to the
/// untiled loop.
#[inline(always)]
fn t_matmul_body(a: &[f64], b: &[f64], dims: (usize, usize, usize), out: &mut [f64]) {
    let (_kk, m, n) = dims;
    for (a_row, b_row) in a.chunks_exact(m).zip(b.chunks_exact(n)) {
        let mut c = 0;
        while c + MR <= m {
            let (x0, x1, x2, x3) = (a_row[c], a_row[c + 1], a_row[c + 2], a_row[c + 3]);
            let out_block = &mut out[c * n..(c + MR) * n];
            let (o0, rest) = out_block.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            for (j, &bv) in b_row.iter().enumerate() {
                o0[j] += x0 * bv;
                o1[j] += x1 * bv;
                o2[j] += x2 * bv;
                o3[j] += x3 * bv;
            }
            c += MR;
        }
        for (&av, out_row) in a_row[c..].iter().zip(out[c * n..].chunks_exact_mut(n)) {
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// One-time runtime probe for AVX2, memoised so the hot kernels pay a
/// single relaxed atomic load per call.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static PROBE: AtomicU8 = AtomicU8::new(0);
    match PROBE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("avx2");
            PROBE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// AVX2-compiled twins of the kernel bodies. `#[target_feature]` lifts
/// the compilation subtarget of the (always-inlined) shared bodies from
/// the baseline x86-64 SSE2 to 256-bit vectors, so the auto-vectoriser
/// widens the independent per-column FMA chains. Vector width only
/// changes how many *independent* output elements advance per
/// instruction; each element's own reduction is a sequential dependency
/// chain the vectoriser must preserve (Rust never enables fast-math
/// reassociation or FMA contraction), so the wide paths are bit-identical
/// to the portable ones — the dispatch is invisible to everything
/// downstream, including serialized models and golden outputs.
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX2 (see [`avx2_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_kernel_avx2<const Z: bool, const E: u8>(
    a: &[f64],
    b: &[f64],
    bias: &[f64],
    add: &[f64],
    dims: (usize, usize, usize),
    out: &mut [f64],
) {
    matmul_kernel_body::<Z, E>(a, b, bias, add, dims, out);
}

/// See [`matmul_kernel_avx2`].
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX2 (see [`avx2_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_t_avx2(a: &[f64], b: &[f64], dims: (usize, usize, usize), out: &mut [f64]) {
    matmul_t_body(a, b, dims, out);
}

/// See [`matmul_kernel_avx2`].
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX2 (see [`avx2_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn t_matmul_avx2(a: &[f64], b: &[f64], dims: (usize, usize, usize), out: &mut [f64]) {
    t_matmul_body(a, b, dims, out);
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_basic() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Tensor::vector(vec![1.0, 0.0, -1.0]);
        let y = a.matvec(&x);
        assert_eq!(y.data(), &[-2.0, -2.0]);
    }

    #[test]
    fn t_matvec_matches_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = Tensor::vector(vec![1.0, 2.0]);
        let out = a.t_matvec(&y);
        // A^T y = [1+8, 2+10, 3+12]
        assert_eq!(out.data(), &[9.0, 12.0, 15.0]);
    }

    #[test]
    fn outer_product() {
        let a = Tensor::vector(vec![1.0, 2.0]);
        let b = Tensor::vector(vec![3.0, 4.0, 5.0]);
        let o = a.outer(&b);
        assert_eq!(o.rows(), 2);
        assert_eq!(o.cols(), 3);
        assert_eq!(o.get(1, 2), 10.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::vector(vec![1.0, -2.0]);
        let b = Tensor::vector(vec![3.0, 4.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -6.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Tensor::zeros(2, 1);
        a.add_assign(&Tensor::vector(vec![1.0, 1.0]));
        a.add_assign(&Tensor::vector(vec![0.5, -1.0]));
        assert_eq!(a.data(), &[1.5, 0.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::vector(vec![1.0]);
        let b = Tensor::vector(vec![1.0, 2.0]);
        let _ = a.add(&b);
    }

    #[test]
    fn sum_and_norm() {
        let a = Tensor::vector(vec![3.0, 4.0]);
        assert_eq!(a.sum(), 7.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn column_extracts() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.column(0).data(), &[1.0, 4.0]);
        assert_eq!(a.column(2).data(), &[3.0, 6.0]);
    }

    /// Golden values for the iterator-ized kernels: irrational-ish inputs
    /// computed once with the historical indexed loops. Exact `==`
    /// comparison pins both the result and the accumulation order.
    #[test]
    fn matvec_golden_values() {
        let a = Tensor::from_vec(3, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]);
        let x = Tensor::vector(vec![1.5, -2.5, 3.5]);
        let y = a.matvec(&x);
        assert_eq!(
            y.data(),
            &[
                0.1 * 1.5 + 0.2 * -2.5 + 0.3 * 3.5,
                0.4 * 1.5 + 0.5 * -2.5 + 0.6 * 3.5,
                0.7 * 1.5 + 0.8 * -2.5 + 0.9 * 3.5,
            ]
        );
        // Literal golden doubles (captured from the pre-refactor engine).
        assert_eq!(
            y.data(),
            &[
                0.700_000_000_000_000_1,
                1.450_000_000_000_000_2,
                2.199_999_999_999_999_7
            ]
        );
    }

    #[test]
    fn t_matvec_golden_values() {
        let a = Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let x = Tensor::vector(vec![1.1, -0.7, 2.3]);
        let out = a.t_matvec(&x);
        // Ascending-row accumulation: (0 + a00*x0) + a10*x1 + a20*x2.
        assert_eq!(
            out.data(),
            &[
                0.1 * 1.1 + 0.3 * -0.7 + 0.5 * 2.3,
                0.2 * 1.1 + 0.4 * -0.7 + 0.6 * 2.3,
            ]
        );
        assert_eq!(
            out.data(),
            &[1.049_999_999_999_999_8, 1.319_999_999_999_999_8]
        );
    }

    #[test]
    fn outer_golden_values() {
        let a = Tensor::vector(vec![0.3, -1.7]);
        let b = Tensor::vector(vec![2.1, 0.9, -0.4]);
        let o = a.outer(&b);
        assert_eq!(
            o.data(),
            &[
                0.3 * 2.1,
                0.3 * 0.9,
                0.3 * -0.4,
                -1.7 * 2.1,
                -1.7 * 0.9,
                -1.7 * -0.4
            ]
        );
    }

    #[test]
    fn matmul_matches_per_column_matvec_bitwise() {
        let a = Tensor::from_vec(3, 4, (0..12).map(|i| 0.1 + f64::from(i) * 0.37).collect());
        let b = Tensor::from_vec(4, 5, (0..20).map(|i| -1.3 + f64::from(i) * 0.21).collect());
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 5);
        for j in 0..b.cols() {
            let col = a.matvec(&b.column(j));
            // Exact equality: batching must not change any bit.
            assert_eq!(c.column(j).data(), col.data());
        }
    }

    #[test]
    fn t_matmul_matches_per_column_t_matvec_bitwise() {
        let a = Tensor::from_vec(4, 3, (0..12).map(|i| 0.05 - f64::from(i) * 0.13).collect());
        let b = Tensor::from_vec(4, 2, (0..8).map(|i| 0.9 + f64::from(i) * 0.61).collect());
        let c = a.t_matmul(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 2);
        for j in 0..b.cols() {
            let col = a.t_matvec(&b.column(j));
            assert_eq!(c.column(j).data(), col.data());
        }
    }

    #[test]
    fn matmul_t_matches_accumulated_outer_bitwise() {
        // dW = G · Xᵀ must equal the sequential per-sample
        // `acc += g_j.outer(x_j)` accumulation, bit for bit.
        let g = Tensor::from_vec(2, 3, (0..6).map(|i| 0.2 + f64::from(i) * 0.71).collect());
        let x = Tensor::from_vec(4, 3, (0..12).map(|i| -0.4 + f64::from(i) * 0.29).collect());
        let batched = g.matmul_t(&x);
        let mut acc = Tensor::zeros(2, 4);
        for j in 0..3 {
            acc.add_assign(&g.column(j).outer(&x.column(j)));
        }
        assert_eq!(batched.data(), acc.data());
    }

    #[test]
    fn matmul_kernel_accumulates_onto_partial_sums() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut out = vec![1.0; 4];
        matmul_kernel(a.data(), b.data(), (2, 2, 2), &mut out);
        assert_eq!(out, vec![20.0, 23.0, 44.0, 51.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// The tiled kernels cover a full `MR` row block plus a remainder and
    /// still match the per-column scalar chains bit for bit (the small
    /// shapes above only exercise the remainder path).
    #[test]
    fn tiled_matmul_block_and_remainder_bitwise() {
        let a = Tensor::from_vec(11, 7, (0..77).map(|i| 0.1 + f64::from(i) * 0.37).collect());
        let b = Tensor::from_vec(7, 6, (0..42).map(|i| -1.3 + f64::from(i) * 0.21).collect());
        let c = a.matmul(&b);
        for j in 0..b.cols() {
            assert_eq!(c.column(j).data(), a.matvec(&b.column(j)).data());
        }
    }

    #[test]
    fn tiled_t_matmul_block_and_remainder_bitwise() {
        let a = Tensor::from_vec(5, 10, (0..50).map(|i| 0.05 - f64::from(i) * 0.13).collect());
        let b = Tensor::from_vec(5, 3, (0..15).map(|i| 0.9 + f64::from(i) * 0.61).collect());
        let c = a.t_matmul(&b);
        for j in 0..b.cols() {
            assert_eq!(c.column(j).data(), a.t_matvec(&b.column(j)).data());
        }
    }

    #[test]
    fn tiled_matmul_t_block_and_remainder_bitwise() {
        let g = Tensor::from_vec(9, 4, (0..36).map(|i| 0.2 + f64::from(i) * 0.71).collect());
        let x = Tensor::from_vec(6, 4, (0..24).map(|i| -0.4 + f64::from(i) * 0.29).collect());
        let batched = g.matmul_t(&x);
        let mut acc = Tensor::zeros(9, 6);
        for j in 0..4 {
            acc.add_assign(&g.column(j).outer(&x.column(j)));
        }
        assert_eq!(batched.data(), acc.data());
    }

    /// Zero-dimension shapes are explicit no-ops, not accidents of
    /// `chunks_exact(1)` over empty buffers.
    #[test]
    fn zero_dimension_matmul_shapes() {
        // 0×k · k×n: empty result with n columns.
        let c = Tensor::zeros(0, 3).matmul(&Tensor::zeros(3, 2));
        assert_eq!((c.rows(), c.cols()), (0, 2));
        assert!(c.is_empty());
        // m×0 · 0×n: empty reduction, so the m×n zero matrix.
        let c = Tensor::zeros(2, 0).matmul(&Tensor::zeros(0, 3));
        assert_eq!((c.rows(), c.cols()), (2, 3));
        assert_eq!(c.data(), &[0.0; 6]);
        // m×k · k×0: empty result with m rows.
        let c = Tensor::zeros(2, 3).matmul(&Tensor::zeros(3, 0));
        assert_eq!((c.rows(), c.cols()), (2, 0));
        assert!(c.is_empty());
    }

    #[test]
    fn zero_dimension_kernel_preserves_partial_sums() {
        // k = 0 contributes no terms: existing partial sums must survive.
        let mut out = vec![1.5; 6];
        matmul_kernel(&[], &[], (2, 0, 3), &mut out);
        assert_eq!(out, vec![1.5; 6]);
    }

    #[test]
    fn zero_dimension_transposed_products() {
        // t_matmul with zero-column output and zero-length reduction.
        let c = Tensor::zeros(3, 0).t_matmul(&Tensor::zeros(3, 2));
        assert_eq!((c.rows(), c.cols()), (0, 2));
        let mut acc = Tensor::zeros(2, 3);
        acc.t_matmul_acc(&Tensor::zeros(0, 2), &Tensor::zeros(0, 3));
        assert_eq!(acc.data(), &[0.0; 6]);
        // matmul_t with an empty batch dimension leaves sums untouched.
        let mut acc = Tensor::from_vec(2, 2, vec![0.5; 4]);
        acc.matmul_t_acc(&Tensor::zeros(2, 0), &Tensor::zeros(2, 0));
        assert_eq!(acc.data(), &[0.5; 4]);
    }
}
