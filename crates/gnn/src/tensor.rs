//! Dense row-major matrices/vectors for the GNN engine.
//!
//! The label networks are tiny (hidden dimensions of ten-odd channels), so
//! a plain `Vec<f64>` matrix is the right tool: no BLAS, no SIMD, no
//! generic element type — just correct, allocation-light arithmetic.

use std::fmt;

/// A dense `rows × cols` matrix of `f64`. Column vectors are `n × 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Tensor { rows, cols, data }
    }

    /// Creates a column vector.
    pub fn vector(data: Vec<f64>) -> Self {
        let rows = data.len();
        Tensor {
            rows,
            cols: 1,
            data,
        }
    }

    /// Creates a 1×1 tensor holding a scalar.
    pub fn scalar(v: f64) -> Self {
        Tensor::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// The single element of a 1×1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 1×1.
    pub fn item(&self) -> f64 {
        assert_eq!(self.len(), 1, "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Matrix × column-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != x.rows` or `x` is not a column vector.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols, 1, "matvec rhs must be a column vector");
        assert_eq!(self.cols, x.rows, "matvec shape mismatch");
        let mut out = Tensor::zeros(self.rows, 1);
        for r in 0..self.rows {
            let mut acc = 0.0;
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (a, b) in row.iter().zip(&x.data) {
                acc += a * b;
            }
            out.data[r] = acc;
        }
        out
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product. Panics on shape mismatch.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// In-place accumulation `self += other`. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales every element.
    pub fn scale(&self, k: f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * k).collect(),
        }
    }

    /// Outer product of two column vectors: `self * other^T`.
    ///
    /// # Panics
    ///
    /// Panics unless both are column vectors.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, 1, "outer lhs must be a column vector");
        assert_eq!(other.cols, 1, "outer rhs must be a column vector");
        let mut out = Tensor::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            for c in 0..other.rows {
                out.data[r * other.rows + c] = self.data[r] * other.data[c];
            }
        }
        out
    }

    /// Transposed matrix × column-vector product: `self^T * x`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != x.rows` or `x` is not a column vector.
    pub fn t_matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols, 1, "t_matvec rhs must be a column vector");
        assert_eq!(self.rows, x.rows, "t_matvec shape mismatch");
        let mut out = Tensor::zeros(self.cols, 1);
        for r in 0..self.rows {
            let xv = x.data[r];
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c] * xv;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_basic() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Tensor::vector(vec![1.0, 0.0, -1.0]);
        let y = a.matvec(&x);
        assert_eq!(y.data(), &[-2.0, -2.0]);
    }

    #[test]
    fn t_matvec_matches_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = Tensor::vector(vec![1.0, 2.0]);
        let out = a.t_matvec(&y);
        // A^T y = [1+8, 2+10, 3+12]
        assert_eq!(out.data(), &[9.0, 12.0, 15.0]);
    }

    #[test]
    fn outer_product() {
        let a = Tensor::vector(vec![1.0, 2.0]);
        let b = Tensor::vector(vec![3.0, 4.0, 5.0]);
        let o = a.outer(&b);
        assert_eq!(o.rows(), 2);
        assert_eq!(o.cols(), 3);
        assert_eq!(o.get(1, 2), 10.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::vector(vec![1.0, -2.0]);
        let b = Tensor::vector(vec![3.0, 4.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -6.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Tensor::zeros(2, 1);
        a.add_assign(&Tensor::vector(vec![1.0, 1.0]));
        a.add_assign(&Tensor::vector(vec![0.5, -1.0]));
        assert_eq!(a.data(), &[1.5, 0.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::vector(vec![1.0]);
        let b = Tensor::vector(vec![1.0, 2.0]);
        let _ = a.add(&b);
    }

    #[test]
    fn sum_and_norm() {
        let a = Tensor::vector(vec![3.0, 4.0]);
        assert_eq!(a.sum(), 7.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }
}
