//! Dense row-major matrices/vectors for the GNN engine.
//!
//! The label networks are tiny (hidden dimensions of ten-odd channels), so
//! a plain `Vec<f64>` matrix is the right tool: no BLAS, no SIMD, no
//! generic element type — just correct, allocation-light arithmetic.

use std::fmt;

/// A dense `rows × cols` matrix of `f64`. Column vectors are `n × 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Tensor { rows, cols, data }
    }

    /// Creates a column vector.
    pub fn vector(data: Vec<f64>) -> Self {
        let rows = data.len();
        Tensor {
            rows,
            cols: 1,
            data,
        }
    }

    /// Creates a 1×1 tensor holding a scalar.
    pub fn scalar(v: f64) -> Self {
        Tensor::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing buffer (for the tape
    /// arena's buffer recycling).
    pub(crate) fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Reshapes in place to a zero-filled `rows × cols`, reusing the
    /// existing allocation when its capacity suffices.
    pub(crate) fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// The single element of a 1×1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 1×1.
    pub fn item(&self) -> f64 {
        assert_eq!(self.len(), 1, "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Matrix × column-vector product.
    ///
    /// The inner loops run on iterators (`chunks_exact`/`zip`) rather than
    /// indexed accesses so the optimiser can elide bounds checks; the
    /// accumulation order is unchanged, so results are bit-identical to
    /// the historical indexed implementation (pinned by the golden-value
    /// tests below).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != x.rows` or `x` is not a column vector.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols, 1, "matvec rhs must be a column vector");
        assert_eq!(self.cols, x.rows, "matvec shape mismatch");
        let mut out = Tensor::zeros(self.rows, 1);
        for (row, o) in self.data.chunks_exact(self.cols).zip(&mut out.data) {
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(&x.data) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Matrix × matrix product: `self (m×k) · other (k×n) → m×n`.
    ///
    /// Column `j` of the result is bit-identical to
    /// `self.matvec(other.column(j))`: the reduction over `k` runs in the
    /// same ascending order, so batching N column vectors into one matrix
    /// never changes a numeric result.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        matmul_kernel(
            &self.data,
            &other.data,
            (self.rows, self.cols, other.cols),
            &mut out.data,
        );
        out
    }

    /// Transposed product `self^T (m×k from k×m) · other (k×n) → m×n`.
    ///
    /// Column `j` matches `self.t_matvec(other.column(j))` bit-for-bit
    /// (reduction over the shared `k` dimension in ascending row order).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Tensor::zeros(self.cols, other.cols);
        out.t_matmul_acc(self, other);
        out
    }

    /// Product with a transposed right operand:
    /// `self (m×k) · other^T (k×n from n×k) → m×n`. This is the shape of
    /// the weight gradient of a batched product (`dW = G · Xᵀ`): entry
    /// `(r, c)` reduces over the batch dimension in ascending order — the
    /// same order in which the sequential per-sample loop accumulated its
    /// outer products.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Tensor::zeros(self.rows, other.rows);
        out.matmul_t_acc(self, other);
        out
    }

    /// Accumulates `self += a · bᵀ` (see [`Self::matmul_t`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul_t_acc(&mut self, a: &Tensor, b: &Tensor) {
        assert_eq!(a.cols, b.cols, "matmul_t shape mismatch");
        assert_eq!(
            (self.rows, self.cols),
            (a.rows, b.rows),
            "matmul_t output shape mismatch"
        );
        for (a_row, out_row) in a
            .data
            .chunks_exact(a.cols.max(1))
            .zip(self.data.chunks_exact_mut(self.cols.max(1)))
        {
            for (b_row, o) in b.data.chunks_exact(b.cols.max(1)).zip(out_row) {
                let mut acc = 0.0;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *o += acc;
            }
        }
    }

    /// Accumulates `self += aᵀ · b` (see [`Self::t_matmul`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn t_matmul_acc(&mut self, a: &Tensor, b: &Tensor) {
        assert_eq!(a.rows, b.rows, "t_matmul shape mismatch");
        assert_eq!(
            (self.rows, self.cols),
            (a.cols, b.cols),
            "t_matmul output shape mismatch"
        );
        for (a_row, b_row) in a
            .data
            .chunks_exact(a.cols.max(1))
            .zip(b.data.chunks_exact(b.cols.max(1)))
        {
            for (&av, out_row) in a_row
                .iter()
                .zip(self.data.chunks_exact_mut(self.cols.max(1)))
            {
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product. Panics on shape mismatch.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// In-place accumulation `self += other`. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales every element.
    pub fn scale(&self, k: f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * k).collect(),
        }
    }

    /// Outer product of two column vectors: `self * other^T`.
    ///
    /// Iterator-based like [`Self::matvec`]; each product is written once,
    /// so there is no accumulation order to preserve.
    ///
    /// # Panics
    ///
    /// Panics unless both are column vectors.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, 1, "outer lhs must be a column vector");
        assert_eq!(other.cols, 1, "outer rhs must be a column vector");
        let mut out = Tensor::zeros(self.rows, other.rows);
        for (&a, out_row) in self
            .data
            .iter()
            .zip(out.data.chunks_exact_mut(other.rows.max(1)))
        {
            for (o, &b) in out_row.iter_mut().zip(&other.data) {
                *o = a * b;
            }
        }
        out
    }

    /// Transposed matrix × column-vector product: `self^T * x`.
    ///
    /// Accumulates over rows of `self` in ascending order, exactly like
    /// the historical indexed implementation (golden-value tests pin
    /// this), with the inner loops on iterators to drop bounds checks.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != x.rows` or `x` is not a column vector.
    pub fn t_matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols, 1, "t_matvec rhs must be a column vector");
        assert_eq!(self.rows, x.rows, "t_matvec shape mismatch");
        let mut out = Tensor::zeros(self.cols, 1);
        for (row, &xv) in self.data.chunks_exact(self.cols.max(1)).zip(&x.data) {
            for (o, &a) in out.data.iter_mut().zip(row) {
                *o += a * xv;
            }
        }
        out
    }

    /// Copies column `j` out as a fresh column vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols`.
    pub fn column(&self, j: usize) -> Tensor {
        assert!(j < self.cols, "column index out of range");
        let data = self
            .data
            .iter()
            .skip(j)
            .step_by(self.cols)
            .copied()
            .collect();
        Tensor::vector(data)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

/// The shared `m×k · k×n` kernel behind [`Tensor::matmul`], operating on
/// raw buffers so the tape arena can target recycled allocations.
///
/// `out` must hold `m * n` zeros (or a partial sum to accumulate onto).
/// The loop nest is row/inner/column (`ikj`): each `out[r, j]` receives
/// its `k` partial products in ascending-`i` order — the same floating
/// point addition sequence as `matvec`'s scalar accumulator, which is
/// what makes batched and per-column results bit-identical.
pub(crate) fn matmul_kernel(a: &[f64], b: &[f64], dims: (usize, usize, usize), out: &mut [f64]) {
    let (m, k, n) = dims;
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for (a_row, out_row) in a.chunks_exact(k.max(1)).zip(out.chunks_exact_mut(n.max(1))) {
        for (&av, b_row) in a_row.iter().zip(b.chunks_exact(n.max(1))) {
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_basic() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Tensor::vector(vec![1.0, 0.0, -1.0]);
        let y = a.matvec(&x);
        assert_eq!(y.data(), &[-2.0, -2.0]);
    }

    #[test]
    fn t_matvec_matches_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = Tensor::vector(vec![1.0, 2.0]);
        let out = a.t_matvec(&y);
        // A^T y = [1+8, 2+10, 3+12]
        assert_eq!(out.data(), &[9.0, 12.0, 15.0]);
    }

    #[test]
    fn outer_product() {
        let a = Tensor::vector(vec![1.0, 2.0]);
        let b = Tensor::vector(vec![3.0, 4.0, 5.0]);
        let o = a.outer(&b);
        assert_eq!(o.rows(), 2);
        assert_eq!(o.cols(), 3);
        assert_eq!(o.get(1, 2), 10.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::vector(vec![1.0, -2.0]);
        let b = Tensor::vector(vec![3.0, 4.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -6.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Tensor::zeros(2, 1);
        a.add_assign(&Tensor::vector(vec![1.0, 1.0]));
        a.add_assign(&Tensor::vector(vec![0.5, -1.0]));
        assert_eq!(a.data(), &[1.5, 0.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::vector(vec![1.0]);
        let b = Tensor::vector(vec![1.0, 2.0]);
        let _ = a.add(&b);
    }

    #[test]
    fn sum_and_norm() {
        let a = Tensor::vector(vec![3.0, 4.0]);
        assert_eq!(a.sum(), 7.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn column_extracts() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.column(0).data(), &[1.0, 4.0]);
        assert_eq!(a.column(2).data(), &[3.0, 6.0]);
    }

    /// Golden values for the iterator-ized kernels: irrational-ish inputs
    /// computed once with the historical indexed loops. Exact `==`
    /// comparison pins both the result and the accumulation order.
    #[test]
    fn matvec_golden_values() {
        let a = Tensor::from_vec(3, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]);
        let x = Tensor::vector(vec![1.5, -2.5, 3.5]);
        let y = a.matvec(&x);
        assert_eq!(
            y.data(),
            &[
                0.1 * 1.5 + 0.2 * -2.5 + 0.3 * 3.5,
                0.4 * 1.5 + 0.5 * -2.5 + 0.6 * 3.5,
                0.7 * 1.5 + 0.8 * -2.5 + 0.9 * 3.5,
            ]
        );
        // Literal golden doubles (captured from the pre-refactor engine).
        assert_eq!(
            y.data(),
            &[
                0.700_000_000_000_000_1,
                1.450_000_000_000_000_2,
                2.199_999_999_999_999_7
            ]
        );
    }

    #[test]
    fn t_matvec_golden_values() {
        let a = Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let x = Tensor::vector(vec![1.1, -0.7, 2.3]);
        let out = a.t_matvec(&x);
        // Ascending-row accumulation: (0 + a00*x0) + a10*x1 + a20*x2.
        assert_eq!(
            out.data(),
            &[
                0.1 * 1.1 + 0.3 * -0.7 + 0.5 * 2.3,
                0.2 * 1.1 + 0.4 * -0.7 + 0.6 * 2.3,
            ]
        );
        assert_eq!(
            out.data(),
            &[1.049_999_999_999_999_8, 1.319_999_999_999_999_8]
        );
    }

    #[test]
    fn outer_golden_values() {
        let a = Tensor::vector(vec![0.3, -1.7]);
        let b = Tensor::vector(vec![2.1, 0.9, -0.4]);
        let o = a.outer(&b);
        assert_eq!(
            o.data(),
            &[
                0.3 * 2.1,
                0.3 * 0.9,
                0.3 * -0.4,
                -1.7 * 2.1,
                -1.7 * 0.9,
                -1.7 * -0.4
            ]
        );
    }

    #[test]
    fn matmul_matches_per_column_matvec_bitwise() {
        let a = Tensor::from_vec(3, 4, (0..12).map(|i| 0.1 + f64::from(i) * 0.37).collect());
        let b = Tensor::from_vec(4, 5, (0..20).map(|i| -1.3 + f64::from(i) * 0.21).collect());
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 5);
        for j in 0..b.cols() {
            let col = a.matvec(&b.column(j));
            // Exact equality: batching must not change any bit.
            assert_eq!(c.column(j).data(), col.data());
        }
    }

    #[test]
    fn t_matmul_matches_per_column_t_matvec_bitwise() {
        let a = Tensor::from_vec(4, 3, (0..12).map(|i| 0.05 - f64::from(i) * 0.13).collect());
        let b = Tensor::from_vec(4, 2, (0..8).map(|i| 0.9 + f64::from(i) * 0.61).collect());
        let c = a.t_matmul(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 2);
        for j in 0..b.cols() {
            let col = a.t_matvec(&b.column(j));
            assert_eq!(c.column(j).data(), col.data());
        }
    }

    #[test]
    fn matmul_t_matches_accumulated_outer_bitwise() {
        // dW = G · Xᵀ must equal the sequential per-sample
        // `acc += g_j.outer(x_j)` accumulation, bit for bit.
        let g = Tensor::from_vec(2, 3, (0..6).map(|i| 0.2 + f64::from(i) * 0.71).collect());
        let x = Tensor::from_vec(4, 3, (0..12).map(|i| -0.4 + f64::from(i) * 0.29).collect());
        let batched = g.matmul_t(&x);
        let mut acc = Tensor::zeros(2, 4);
        for j in 0..3 {
            acc.add_assign(&g.column(j).outer(&x.column(j)));
        }
        assert_eq!(batched.data(), acc.data());
    }

    #[test]
    fn matmul_kernel_accumulates_onto_partial_sums() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut out = vec![1.0; 4];
        matmul_kernel(a.data(), b.data(), (2, 2, 2), &mut out);
        assert_eq!(out, vec![20.0, 23.0, 44.0, 51.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
