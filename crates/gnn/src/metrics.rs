//! Prediction-accuracy metrics matching the paper's definitions (§VI-B).
//!
//! "The prediction is accurate for same-level nodes association and
//! spatial mapping distance if the difference between prediction and
//! ground truth is not more than one. For temporal mapping distance, the
//! prediction is accurate if the difference is not more than two [...].
//! For scheduler order, the prediction is accurate if prediction and
//! ground truth values are the same."

/// The four label kinds of paper Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LabelKind {
    /// Label 1 — schedule order.
    ScheduleOrder,
    /// Label 2 — same-level nodes association.
    SameLevel,
    /// Label 3 — spatial mapping distance.
    Spatial,
    /// Label 4 — temporal mapping distance.
    Temporal,
}

impl LabelKind {
    /// All four labels in Table I order.
    pub const ALL: [LabelKind; 4] = [
        LabelKind::ScheduleOrder,
        LabelKind::SameLevel,
        LabelKind::Spatial,
        LabelKind::Temporal,
    ];

    /// Paper label id (1–4).
    pub fn id(self) -> u8 {
        match self {
            LabelKind::ScheduleOrder => 1,
            LabelKind::SameLevel => 2,
            LabelKind::Spatial => 3,
            LabelKind::Temporal => 4,
        }
    }

    /// Display name as used in Table I.
    pub fn name(self) -> &'static str {
        match self {
            LabelKind::ScheduleOrder => "schedule order",
            LabelKind::SameLevel => "same-level nodes association",
            LabelKind::Spatial => "spatial mapping distance",
            LabelKind::Temporal => "temporal mapping distance",
        }
    }
}

/// Whether one prediction counts as accurate for the label kind.
pub fn is_accurate(kind: LabelKind, prediction: f64, truth: f64) -> bool {
    match kind {
        // Schedule order is an ordinal: compare after rounding.
        LabelKind::ScheduleOrder => prediction.round() == truth.round(),
        LabelKind::SameLevel | LabelKind::Spatial => (prediction - truth).abs() <= 1.0,
        LabelKind::Temporal => (prediction - truth).abs() <= 2.0,
    }
}

/// Fraction of accurate predictions, or `None` for empty input.
///
/// `None` is "no data", which is distinct from "0% accurate" — use this
/// variant wherever the result ends up in a summary table so an empty
/// eval split renders as "n/a" instead of a fake score.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn try_accuracy(kind: LabelKind, predictions: &[f64], truths: &[f64]) -> Option<f64> {
    assert_eq!(predictions.len(), truths.len(), "length mismatch");
    if predictions.is_empty() {
        return None;
    }
    let hits = predictions
        .iter()
        .zip(truths)
        .filter(|&(&p, &t)| is_accurate(kind, p, t))
        .count();
    Some(hits as f64 / predictions.len() as f64)
}

/// Fraction of accurate predictions (0 for empty input).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(kind: LabelKind, predictions: &[f64], truths: &[f64]) -> f64 {
    try_accuracy(kind, predictions, truths).unwrap_or(0.0)
}

/// Mean squared error of a prediction set.
///
/// Empty inputs return the sentinel 0.0 (a perfect score) rather than
/// NaN, so callers aggregating per-benchmark metrics never propagate
/// NaN through summary tables; check emptiness upstream when "no data"
/// must be distinguished from "no error".
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(predictions: &[f64], truths: &[f64]) -> f64 {
    try_mse(predictions, truths).unwrap_or(0.0)
}

/// Mean squared error, or `None` for empty input (the "no data" case
/// that [`mse`]'s 0.0 sentinel cannot distinguish from a perfect fit).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn try_mse(predictions: &[f64], truths: &[f64]) -> Option<f64> {
    assert_eq!(predictions.len(), truths.len(), "length mismatch");
    if predictions.is_empty() {
        return None;
    }
    Some(
        predictions
            .iter()
            .zip(truths)
            .map(|(&p, &t)| (p - t) * (p - t))
            .sum::<f64>()
            / predictions.len() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_order_requires_equality_after_rounding() {
        assert!(is_accurate(LabelKind::ScheduleOrder, 2.4, 2.0));
        assert!(!is_accurate(LabelKind::ScheduleOrder, 2.6, 2.0));
    }

    #[test]
    fn spatial_tolerance_is_one() {
        assert!(is_accurate(LabelKind::Spatial, 3.9, 3.0));
        assert!(is_accurate(LabelKind::SameLevel, 2.0, 3.0));
        assert!(!is_accurate(LabelKind::Spatial, 4.1, 3.0));
    }

    #[test]
    fn temporal_tolerance_is_two() {
        assert!(is_accurate(LabelKind::Temporal, 5.9, 4.0));
        assert!(!is_accurate(LabelKind::Temporal, 6.1, 4.0));
    }

    #[test]
    fn accuracy_fraction() {
        let preds = [1.0, 2.0, 10.0];
        let truths = [1.2, 2.9, 2.0];
        let acc = accuracy(LabelKind::Spatial, &preds, &truths);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(LabelKind::Spatial, &[], &[]), 0.0);
    }

    #[test]
    fn try_variants_distinguish_no_data_from_zero() {
        assert_eq!(try_accuracy(LabelKind::Spatial, &[], &[]), None);
        assert_eq!(try_mse(&[], &[]), None);
        assert_eq!(try_accuracy(LabelKind::Spatial, &[1.0], &[1.0]), Some(1.0));
        assert_eq!(try_mse(&[1.0], &[0.0]), Some(1.0));
    }

    #[test]
    fn mse_basic() {
        assert!((mse(&[1.0, 3.0], &[0.0, 1.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ids_match_table_one() {
        assert_eq!(LabelKind::ALL.map(LabelKind::id), [1, 2, 3, 4]);
    }
}

/// Mean absolute error of a prediction set.
///
/// Empty inputs return the sentinel 0.0, like [`mse`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mae(predictions: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(predictions.len(), truths.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .zip(truths)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Coefficient of determination R² = 1 − SSE/SST.
///
/// Two degenerate cases get documented sentinels instead of NaN:
/// empty inputs return 0.0 (no evidence of fit), and zero-variance
/// targets (SST = 0, where R² is undefined) return 1.0 when the
/// predictions are exact and 0.0 otherwise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn r_squared(predictions: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(predictions.len(), truths.len(), "length mismatch");
    if truths.is_empty() {
        return 0.0;
    }
    let mean = truths.iter().sum::<f64>() / truths.len() as f64;
    let sst: f64 = truths.iter().map(|&t| (t - mean) * (t - mean)).sum();
    let sse: f64 = predictions
        .iter()
        .zip(truths)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    if sst == 0.0 {
        return if sse == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - sse / sst
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn mae_basic() {
        assert!((mae(&[1.0, 3.0], &[0.0, 1.0]) - 1.5).abs() < 1e-12);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn r_squared_perfect_and_mean_baseline() {
        let t = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&t, &t) - 1.0).abs() < 1e-12);
        // Predicting the mean everywhere gives R² = 0.
        let mean_pred = [2.5; 4];
        assert!(r_squared(&mean_pred, &t).abs() < 1e-12);
    }

    #[test]
    fn r_squared_degenerate_targets() {
        assert_eq!(r_squared(&[2.0, 2.0], &[2.0, 2.0]), 1.0);
        assert_eq!(r_squared(&[1.0, 3.0], &[2.0, 2.0]), 0.0);
    }

    #[test]
    fn empty_inputs_use_documented_sentinels() {
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(r_squared(&[], &[]), 0.0);
        assert!(mse(&[], &[]).is_finite());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_length_mismatch_panics() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
