//! Compiled inference plans: tape-free forward execution of trained
//! label networks.
//!
//! [`crate::Graph`] is a define-by-run tape: every `predict_with` call
//! re-dispatches through op construction, copies each parameter out of
//! the [`ParamStore`], and journals shapes it will never differentiate.
//! Inference-only callers pay that overhead per prediction. A compiled
//! plan freezes a trained model instead: `compile()` snapshots the
//! weights into plain [`Tensor`]s and lowers the forward pass to a flat
//! op sequence over numbered scratch buffers. Executing the plan walks
//! the sequence with no tape, no dispatch through `Graph`, and no
//! allocation after the first call on a given [`PlanScratch`] — buffers
//! are sized once and reused.
//!
//! Bit-identity contract: every plan op reuses the exact forward
//! arithmetic of its tape counterpart (`matmul_kernel`, the shared
//! [`gather_pool_forward`], the [`RECIP_EPS`] reciprocal guard, the
//! pool fold orders), so a compiled prediction is bit-for-bit equal to
//! `predict_with` on the same weights. The tests below pin that for all
//! three network architectures.

use std::cell::RefCell;

use crate::dataset::{ContextEdgeSample, NodeGraphSample};
use crate::graph::{gather_pool_forward, CsrView, RECIP_EPS};
use crate::tensor::{matmul_add, matmul_affine, matmul_kernel, matmul_overwrite};
use crate::{ParamId, ParamStore, Tensor};

/// One step of a compiled plan. `w` indexes the plan's frozen weights;
/// buffer indices refer to the executing [`PlanScratch`]. Plans are in
/// single-assignment form: every op writes a fresh buffer with a higher
/// index than any of its inputs, so in-place aliasing cannot occur.
#[derive(Debug, Clone, Copy)]
enum PlanOp {
    /// `bufs[dst] = weights[w] · bufs[src]` (the batched matmul kernel).
    MatMul { w: usize, src: usize, dst: usize },
    /// `bufs[dst][r, j] = bufs[src][r, j] + weights[w][r]` (bias column).
    AddCols { w: usize, src: usize, dst: usize },
    /// `bufs[dst] = max(bufs[src], 0)` elementwise.
    Relu { src: usize, dst: usize },
    /// `bufs[dst] = bufs[a] + bufs[b]` elementwise.
    Add { a: usize, b: usize, dst: usize },
    /// `bufs[dst][r, j] = bufs[src][r, j] * nu[j]` with `nu` supplied at
    /// run time (the spatial net's per-sample gate).
    ScaleColsNu { src: usize, dst: usize },
    /// `bufs[dst] = gather_pool(bufs[src], adj)` with the adjacency
    /// supplied at run time (per-DFG, not frozen into the plan).
    GatherPool { src: usize, dst: usize },
    /// Fused `MatMul` → `AddCols` → optional `Relu` chain (built by the
    /// peephole pass in [`ProgramBuilder::finish`], never emitted
    /// directly): the bias-plus-activation epilogue runs in place over
    /// the product, skipping two intermediate buffers. Per element the
    /// value history is unchanged — the full ascending-`k` product chain,
    /// then `+ bias[row]`, then `max(0)` — so results stay bit-identical
    /// to the unfused ops.
    Affine {
        w: usize,
        bias: usize,
        relu: bool,
        src: usize,
        dst: usize,
    },
    /// Fused `MatMul` → `Add` chain (peephole-built): the elementwise
    /// addend folds into the product buffer in place. The product is
    /// always the *left* operand of the fused addition, matching the only
    /// pattern the peephole accepts, so per-element order is unchanged.
    Fma {
        w: usize,
        src: usize,
        addend: usize,
        dst: usize,
    },
}

/// Whether `op` reads buffer `buf` (used by the fusion peephole to prove
/// an intermediate is single-use).
fn reads(op: &PlanOp, buf: usize) -> bool {
    match *op {
        PlanOp::MatMul { src, .. }
        | PlanOp::AddCols { src, .. }
        | PlanOp::Relu { src, .. }
        | PlanOp::ScaleColsNu { src, .. }
        | PlanOp::GatherPool { src, .. }
        | PlanOp::Affine { src, .. } => src == buf,
        PlanOp::Add { a, b, .. } => a == buf || b == buf,
        PlanOp::Fma { src, addend, .. } => src == buf || addend == buf,
    }
}

/// A frozen forward pass: weight snapshots plus the op sequence.
#[derive(Debug, Clone)]
pub(crate) struct Program {
    weights: Vec<Tensor>,
    ops: Vec<PlanOp>,
    /// Scratch buffers the ops address; buffer 0 is the input.
    buffers: usize,
    /// Buffer holding the final prediction after a run.
    out: usize,
}

impl Program {
    /// Sizes `scratch` for this program and hands out the input buffer
    /// (buffer 0) for the caller to fill.
    fn input_buf<'a>(&self, bufs: &'a mut Vec<Tensor>) -> &'a mut Tensor {
        if bufs.len() < self.buffers {
            bufs.resize_with(self.buffers, || Tensor::zeros(0, 0));
        }
        &mut bufs[0]
    }

    /// Executes the op sequence. `adj`/`nu` carry the per-call inputs
    /// that are not frozen into the plan (only the ops that name them
    /// read them).
    fn run(&self, bufs: &mut [Tensor], adj: Option<CsrView<'_>>, nu: &[f64]) {
        for &op in &self.ops {
            match op {
                PlanOp::MatMul { w, src, dst } => {
                    let wt = &self.weights[w];
                    let (src, dst) = src_dst(bufs, src, dst);
                    debug_assert_eq!(wt.cols(), src.rows(), "matmul shape mismatch");
                    // `matmul_overwrite` writes every element (zero-seeded
                    // accumulators), so the destination clear is skipped.
                    dst.reset_for_overwrite(wt.rows(), src.cols());
                    matmul_overwrite(
                        wt.data(),
                        src.data(),
                        (wt.rows(), wt.cols(), src.cols()),
                        dst.data_mut(),
                    );
                }
                PlanOp::AddCols { w, src, dst } => {
                    let bias = &self.weights[w];
                    let (src, dst) = src_dst(bufs, src, dst);
                    debug_assert_eq!(src.rows(), bias.rows(), "add_cols shape mismatch");
                    dst.reset_zeroed(src.rows(), src.cols());
                    let width = src.cols().max(1);
                    for ((orow, srow), &b) in dst
                        .data_mut()
                        .chunks_exact_mut(width)
                        .zip(src.data().chunks_exact(width))
                        .zip(bias.data())
                    {
                        for (o, &v) in orow.iter_mut().zip(srow) {
                            *o = v + b;
                        }
                    }
                }
                PlanOp::Relu { src, dst } => {
                    let (src, dst) = src_dst(bufs, src, dst);
                    dst.reset_zeroed(src.rows(), src.cols());
                    for (o, &v) in dst.data_mut().iter_mut().zip(src.data()) {
                        *o = v.max(0.0);
                    }
                }
                PlanOp::Add { a, b, dst } => {
                    debug_assert!(a < dst && b < dst, "plan is not in SSA form");
                    let (lo, hi) = bufs.split_at_mut(dst);
                    let (av, bv, dstv) = (&lo[a], &lo[b], &mut hi[0]);
                    assert_eq!(
                        (av.rows(), av.cols()),
                        (bv.rows(), bv.cols()),
                        "add shape mismatch"
                    );
                    dstv.reset_zeroed(av.rows(), av.cols());
                    for ((o, &x), &y) in dstv.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
                        *o = x + y;
                    }
                }
                PlanOp::ScaleColsNu { src, dst } => {
                    let (src, dst) = src_dst(bufs, src, dst);
                    debug_assert_eq!(nu.len(), src.cols(), "scale_cols gate length mismatch");
                    dst.reset_zeroed(src.rows(), src.cols());
                    let width = src.cols().max(1);
                    for (orow, srow) in dst
                        .data_mut()
                        .chunks_exact_mut(width)
                        .zip(src.data().chunks_exact(width))
                    {
                        for ((o, &v), &k) in orow.iter_mut().zip(srow).zip(nu) {
                            *o = v * k;
                        }
                    }
                }
                PlanOp::GatherPool { src, dst } => {
                    let adj = adj.expect("plan op needs an adjacency");
                    let (src, dst) = src_dst(bufs, src, dst);
                    // The pool fill writes every output element (empty
                    // consumers included), so the stale buffer contents
                    // never leak and the full clear can be skipped.
                    dst.reset_for_overwrite(3 * src.rows(), adj.consumer_count());
                    gather_pool_forward(src, adj, dst.data_mut());
                }
                PlanOp::Affine {
                    w,
                    bias,
                    relu,
                    src,
                    dst,
                } => {
                    let wt = &self.weights[w];
                    let bias_t = &self.weights[bias];
                    let (src, dst) = src_dst(bufs, src, dst);
                    debug_assert_eq!(wt.cols(), src.rows(), "matmul shape mismatch");
                    debug_assert_eq!(wt.rows(), bias_t.rows(), "add_cols shape mismatch");
                    // The bias (and optional ReLU) epilogue is fused into
                    // the kernel's tile store-back — one pass over the
                    // output instead of two, same per-element arithmetic.
                    dst.reset_for_overwrite(wt.rows(), src.cols());
                    matmul_affine(
                        wt.data(),
                        src.data(),
                        bias_t.data(),
                        relu,
                        (wt.rows(), wt.cols(), src.cols()),
                        dst.data_mut(),
                    );
                }
                PlanOp::Fma {
                    w,
                    src,
                    addend,
                    dst,
                } => {
                    debug_assert!(src < dst && addend < dst, "plan is not in SSA form");
                    let wt = &self.weights[w];
                    let (lo, hi) = bufs.split_at_mut(dst);
                    let (src, addend, dst) = (&lo[src], &lo[addend], &mut hi[0]);
                    debug_assert_eq!(wt.cols(), src.rows(), "matmul shape mismatch");
                    assert_eq!(
                        (wt.rows(), src.cols()),
                        (addend.rows(), addend.cols()),
                        "add shape mismatch"
                    );
                    // The addend fold is fused into the kernel's tile
                    // store-back — one pass over the output instead of
                    // two, same per-element arithmetic.
                    dst.reset_for_overwrite(wt.rows(), src.cols());
                    matmul_add(
                        wt.data(),
                        src.data(),
                        addend.data(),
                        (wt.rows(), wt.cols(), src.cols()),
                        dst.data_mut(),
                    );
                }
            }
        }
    }

    fn output<'a>(&self, bufs: &'a [Tensor]) -> &'a Tensor {
        &bufs[self.out]
    }
}

/// Disjoint (source, destination) buffer pair. Plans are in SSA form:
/// the destination index always exceeds the source's.
fn src_dst(bufs: &mut [Tensor], src: usize, dst: usize) -> (&Tensor, &mut Tensor) {
    debug_assert!(src < dst, "plan is not in SSA form");
    let (lo, hi) = bufs.split_at_mut(dst);
    (&lo[src], &mut hi[0])
}

/// Builds a [`Program`] while a model's `compile()` walks its forward
/// pass. Buffer 0 ([`ProgramBuilder::INPUT`]) is the caller-filled
/// input; every op allocates the next buffer index for its result.
#[derive(Debug)]
pub(crate) struct ProgramBuilder {
    weights: Vec<Tensor>,
    ops: Vec<PlanOp>,
    next: usize,
}

impl ProgramBuilder {
    /// The input buffer's index.
    pub(crate) const INPUT: usize = 0;

    pub(crate) fn new() -> Self {
        ProgramBuilder {
            weights: Vec::new(),
            ops: Vec::new(),
            next: 1,
        }
    }

    /// Freezes one parameter's current value into the plan.
    pub(crate) fn weight(&mut self, store: &ParamStore, id: ParamId) -> usize {
        self.weights.push(store.value(id).clone());
        self.weights.len() - 1
    }

    fn alloc(&mut self) -> usize {
        let b = self.next;
        self.next += 1;
        b
    }

    pub(crate) fn matmul(&mut self, w: usize, src: usize) -> usize {
        let dst = self.alloc();
        self.ops.push(PlanOp::MatMul { w, src, dst });
        dst
    }

    pub(crate) fn add_cols(&mut self, src: usize, w: usize) -> usize {
        let dst = self.alloc();
        self.ops.push(PlanOp::AddCols { w, src, dst });
        dst
    }

    pub(crate) fn relu(&mut self, src: usize) -> usize {
        let dst = self.alloc();
        self.ops.push(PlanOp::Relu { src, dst });
        dst
    }

    pub(crate) fn add(&mut self, a: usize, b: usize) -> usize {
        let dst = self.alloc();
        self.ops.push(PlanOp::Add { a, b, dst });
        dst
    }

    pub(crate) fn scale_cols_nu(&mut self, src: usize) -> usize {
        let dst = self.alloc();
        self.ops.push(PlanOp::ScaleColsNu { src, dst });
        dst
    }

    pub(crate) fn gather_pool(&mut self, src: usize) -> usize {
        let dst = self.alloc();
        self.ops.push(PlanOp::GatherPool { src, dst });
        dst
    }

    pub(crate) fn finish(self, out: usize) -> Program {
        Program {
            weights: self.weights,
            ops: fuse(self.ops, out),
            buffers: self.next,
            out,
        }
    }
}

/// Peephole fusion over a finished op sequence: adjacent
/// `MatMul`+`AddCols`(+`Relu`) chains become [`PlanOp::Affine`] and
/// `MatMul`+`Add` chains become [`PlanOp::Fma`], provided the
/// intermediate buffer is read by nothing else (checked against every
/// later op and the output index — SSA form makes that scan sufficient).
/// Fusion only rewrites *which buffers hold* intermediate values, never
/// the per-element arithmetic order, so fused and unfused programs are
/// bit-identical; the plan tests pin this against the tape.
fn fuse(ops: Vec<PlanOp>, out: usize) -> Vec<PlanOp> {
    let single_use = |ops: &[PlanOp], from: usize, buf: usize| {
        buf != out && !ops[from..].iter().any(|o| reads(o, buf))
    };
    let mut fused = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        if let PlanOp::MatMul { w, src, dst } = ops[i] {
            match ops.get(i + 1).copied() {
                Some(PlanOp::AddCols {
                    w: bias,
                    src: s2,
                    dst: d2,
                }) if s2 == dst && single_use(&ops, i + 2, dst) => {
                    if let Some(PlanOp::Relu { src: s3, dst: d3 }) = ops.get(i + 2).copied() {
                        if s3 == d2 && single_use(&ops, i + 3, d2) {
                            fused.push(PlanOp::Affine {
                                w,
                                bias,
                                relu: true,
                                src,
                                dst: d3,
                            });
                            i += 3;
                            continue;
                        }
                    }
                    fused.push(PlanOp::Affine {
                        w,
                        bias,
                        relu: false,
                        src,
                        dst: d2,
                    });
                    i += 2;
                    continue;
                }
                // Only `a == dst` fuses: the fused epilogue adds the
                // addend onto the product, i.e. the product stays the
                // left operand of the addition exactly as in the split
                // ops. (`b == dst` would swap operand order — bitwise
                // harmless for finite sums but not provably identical
                // for NaN payloads, so the peephole leaves it alone.)
                Some(PlanOp::Add { a, b, dst: d2 }) if a == dst && single_use(&ops, i + 2, dst) => {
                    fused.push(PlanOp::Fma {
                        w,
                        src,
                        addend: b,
                        dst: d2,
                    });
                    i += 2;
                    continue;
                }
                _ => {}
            }
        }
        fused.push(ops[i]);
        i += 1;
    }
    fused
}

/// Reusable execution arena for compiled plans. Buffers grow to the
/// largest shape a plan has needed and are then reused verbatim, so a
/// warm scratch performs no allocation per prediction. One scratch can
/// serve any number of plans of any architecture, sequentially.
#[derive(Debug, Default)]
pub struct PlanScratch {
    bufs: Vec<Tensor>,
    /// Spatial-net ν staging: the `[mean; sum; max; min]` aggregate.
    aux: Vec<f64>,
    /// CSR adjacency staging (offsets then indices): refilled per
    /// graph-shaped prediction so a warm scratch builds the adjacency
    /// with zero allocations.
    csr_offsets: Vec<u32>,
    csr_indices: Vec<u32>,
}

impl PlanScratch {
    pub fn new() -> Self {
        PlanScratch::default()
    }

    /// Runs `f` with this thread's shared scratch (the compiled-plan
    /// analogue of [`crate::Graph::with_inference_tape`]): repeated
    /// calls on one thread reuse one warm arena. Falls back to a fresh
    /// scratch on re-entrant use.
    pub fn with<R>(f: impl FnOnce(&mut PlanScratch) -> R) -> R {
        thread_local! {
            static SCRATCH: RefCell<PlanScratch> = RefCell::new(PlanScratch::new());
        }
        SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => f(&mut scratch),
            Err(_) => f(&mut PlanScratch::new()),
        })
    }
}

/// Compiled [`crate::models::EdgeMlp`]: two convolution layers, ReLU,
/// scalar readout, frozen weights.
#[derive(Debug, Clone)]
pub struct CompiledEdgeMlp {
    prog: Program,
    attr_dim: usize,
}

impl CompiledEdgeMlp {
    pub(crate) fn new(prog: Program, attr_dim: usize) -> Self {
        CompiledEdgeMlp { prog, attr_dim }
    }

    /// The expected attribute dimension.
    pub fn attr_dim(&self) -> usize {
        self.attr_dim
    }

    /// Predicts the label value for one attribute vector; bit-identical
    /// to the source model's `predict`.
    ///
    /// # Panics
    ///
    /// Panics if the attribute dimension differs from construction.
    pub fn predict(&self, scratch: &mut PlanScratch, attrs: &[f64]) -> f64 {
        assert_eq!(attrs.len(), self.attr_dim, "attribute dimension mismatch");
        let bufs = &mut scratch.bufs;
        let x = self.prog.input_buf(bufs);
        x.reset_zeroed(self.attr_dim, 1);
        x.data_mut().copy_from_slice(attrs);
        self.prog.run(bufs, None, &[]);
        self.prog.output(bufs).item()
    }
}

/// Compiled [`crate::models::SpatialNet`]: the Eq. 4–6 chain with the
/// per-sample ν gate evaluated tape-free.
#[derive(Debug, Clone)]
pub struct CompiledSpatial {
    prog: Program,
    /// Frozen ν projection, applied outside the op sequence because the
    /// gate input (the neighbourhood aggregate) is ragged per sample.
    w_nu: Tensor,
    attr_dim: usize,
}

impl CompiledSpatial {
    pub(crate) fn new(prog: Program, w_nu: Tensor, attr_dim: usize) -> Self {
        CompiledSpatial {
            prog,
            w_nu,
            attr_dim,
        }
    }

    /// The expected attribute dimension.
    pub fn attr_dim(&self) -> usize {
        self.attr_dim
    }

    /// Predicts the spatial mapping distance of one edge; bit-identical
    /// to the source model's `predict`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched attribute dimensions.
    pub fn predict(&self, scratch: &mut PlanScratch, sample: &ContextEdgeSample) -> f64 {
        assert_eq!(
            sample.attrs.len(),
            self.attr_dim,
            "attribute dimension mismatch"
        );
        let nu = self.nu_gate(&mut scratch.aux, sample);
        let bufs = &mut scratch.bufs;
        let x = self.prog.input_buf(bufs);
        x.reset_zeroed(self.attr_dim, 1);
        x.data_mut().copy_from_slice(&sample.attrs);
        self.prog.run(bufs, None, &[nu]);
        self.prog.output(bufs).item()
    }

    /// Eq. 5 without the tape: pools the neighbourhood into
    /// `[mean; sum; max; min]`, applies the guarded reciprocal, and
    /// projects with the frozen `Wν`. Accumulation order matches the
    /// tape's `pool_*` ops (ascending neighbours; mean scaled once at
    /// the end), so the gate is bit-identical.
    fn nu_gate(&self, cat: &mut Vec<f64>, sample: &ContextEdgeSample) -> f64 {
        let Some((first, rest)) = sample.neighbor_attrs.split_first() else {
            // Empty neighbourhood: the paper's ν = 1 (§IV-B).
            return 1.0;
        };
        let d = self.attr_dim;
        assert_eq!(first.len(), d, "neighbour dimension mismatch");
        cat.clear();
        cat.resize(4 * d, 0.0);
        {
            let (mean, tail) = cat.split_at_mut(d);
            let (sum, tail) = tail.split_at_mut(d);
            let (max, min) = tail.split_at_mut(d);
            mean.copy_from_slice(first);
            sum.copy_from_slice(first);
            max.copy_from_slice(first);
            min.copy_from_slice(first);
            for a in rest {
                assert_eq!(a.len(), d, "neighbour dimension mismatch");
                for k in 0..d {
                    let v = a[k];
                    mean[k] += v;
                    sum[k] += v;
                    max[k] = max[k].max(v);
                    min[k] = min[k].min(v);
                }
            }
            let inv = 1.0 / sample.neighbor_attrs.len() as f64;
            for v in mean {
                *v *= inv;
            }
        }
        for v in cat.iter_mut() {
            *v = if v.abs() < RECIP_EPS { 1.0 } else { 1.0 / *v };
        }
        let mut out = [0.0];
        matmul_kernel(self.w_nu.data(), cat, (1, 4 * d, 1), &mut out);
        out[0]
    }
}

/// Compiled [`crate::models::ScheduleOrderNet`]: four message-passing
/// layers over a per-call CSR adjacency.
#[derive(Debug, Clone)]
pub struct CompiledScheduleOrder {
    prog: Program,
    attr_dim: usize,
}

impl CompiledScheduleOrder {
    pub(crate) fn new(prog: Program, attr_dim: usize) -> Self {
        CompiledScheduleOrder { prog, attr_dim }
    }

    /// The expected node-attribute dimension.
    pub fn attr_dim(&self) -> usize {
        self.attr_dim
    }

    /// Predicts the schedule order of every node; bit-identical to the
    /// source model's `predict`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched adjacency or attribute shapes (neighbour
    /// list count, out-of-range neighbour indices, attribute dimension).
    pub fn predict(&self, scratch: &mut PlanScratch, sample: &NodeGraphSample) -> Vec<f64> {
        let n = sample.len();
        assert_eq!(sample.neighbors.len(), n, "inconsistent sample");
        let PlanScratch {
            bufs,
            csr_offsets,
            csr_indices,
            ..
        } = scratch;
        // Refill the scratch-owned CSR arrays (same layout and fill order
        // as `CsrAdjacency::from_neighbors`) — a warm scratch rebuilds
        // the adjacency without allocating. Index validation rides along
        // in this walk rather than in a separate `is_consistent` pass.
        csr_offsets.clear();
        csr_indices.clear();
        csr_offsets.push(0);
        for ns in &sample.neighbors {
            for &u in ns {
                assert!(u < n, "neighbor index out of range");
                csr_indices.push(u32::try_from(u).expect("neighbor index overflows u32"));
            }
            csr_offsets.push(u32::try_from(csr_indices.len()).expect("adjacency overflows u32"));
        }
        let x = self.prog.input_buf(bufs);
        x.reset_zeroed(self.attr_dim, n);
        let data = x.data_mut();
        for (j, attrs) in sample.node_attrs.iter().enumerate() {
            assert_eq!(attrs.len(), self.attr_dim, "attribute dimension mismatch");
            for (r, &v) in attrs.iter().enumerate() {
                data[r * n + j] = v;
            }
        }
        let adj = CsrView {
            offsets: csr_offsets,
            indices: csr_indices,
        };
        self.prog.run(bufs, Some(adj), &[]);
        self.prog.output(bufs).data().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{EdgeMlp, ScheduleOrderNet, SpatialNet};

    fn attrs(seed: u64, dim: usize) -> Vec<f64> {
        (0..dim)
            .map(|i| ((seed as f64 + 1.3) * (i as f64 + 0.7)).sin() * 2.5)
            .collect()
    }

    #[test]
    fn compiled_edge_mlp_is_bitwise_identical() {
        let net = EdgeMlp::new(5, 17);
        let plan = net.compile();
        let mut scratch = PlanScratch::new();
        for s in 0..8 {
            let a = attrs(s, 5);
            let tape = net.predict(&a);
            let compiled = plan.predict(&mut scratch, &a);
            assert_eq!(tape.to_bits(), compiled.to_bits(), "sample {s}");
        }
    }

    #[test]
    fn compiled_spatial_is_bitwise_identical() {
        let net = SpatialNet::new(3, 23);
        let plan = net.compile();
        let mut scratch = PlanScratch::new();
        for s in 0..8 {
            let sample = ContextEdgeSample {
                attrs: attrs(s, 3),
                neighbor_attrs: (0..s as usize % 4)
                    .map(|k| attrs(s + k as u64, 3))
                    .collect(),
                target: 0.0,
            };
            let tape = net.predict(&sample);
            let compiled = plan.predict(&mut scratch, &sample);
            assert_eq!(tape.to_bits(), compiled.to_bits(), "sample {s}");
        }
    }

    #[test]
    fn compiled_spatial_recip_guard_matches_tape() {
        // A neighbourhood summing to exactly zero exercises the
        // RECIP_EPS guard in both paths.
        let net = SpatialNet::new(2, 5);
        let plan = net.compile();
        let sample = ContextEdgeSample {
            attrs: vec![1.0, -2.0],
            neighbor_attrs: vec![vec![3.0, -1.0], vec![-3.0, 1.0]],
            target: 0.0,
        };
        let compiled = PlanScratch::with(|s| plan.predict(s, &sample));
        assert_eq!(net.predict(&sample).to_bits(), compiled.to_bits());
    }

    #[test]
    fn compiled_spatial_empty_neighbourhood_matches_tape() {
        let net = SpatialNet::new(2, 9);
        let plan = net.compile();
        let sample = ContextEdgeSample {
            attrs: vec![0.5, -1.5],
            neighbor_attrs: vec![],
            target: 0.0,
        };
        let compiled = PlanScratch::with(|s| plan.predict(s, &sample));
        assert_eq!(net.predict(&sample).to_bits(), compiled.to_bits());
    }

    #[test]
    fn compiled_schedule_order_is_bitwise_identical() {
        let net = ScheduleOrderNet::new(3, 31);
        let plan = net.compile();
        let mut scratch = PlanScratch::new();
        // A small DAG with a fan-in, a fan-out, and an isolated node.
        let sample = NodeGraphSample {
            node_attrs: (0..5).map(|i| attrs(i, 3)).collect(),
            neighbors: vec![vec![1, 2], vec![3], vec![3], vec![0], vec![]],
            targets: vec![0.0; 5],
        };
        let tape = net.predict(&sample);
        let compiled = plan.predict(&mut scratch, &sample);
        assert_eq!(tape.len(), compiled.len());
        for (i, (t, c)) in tape.iter().zip(&compiled).enumerate() {
            assert_eq!(t.to_bits(), c.to_bits(), "node {i}");
        }
    }

    #[test]
    fn one_scratch_serves_mixed_architectures() {
        // Shapes shrink and grow across calls; buffers must resize
        // correctly rather than retain stale dimensions.
        let mlp_small = EdgeMlp::new(2, 1).compile();
        let mlp_large = EdgeMlp::new(7, 2).compile();
        let order = ScheduleOrderNet::new(3, 3).compile();
        let sample = NodeGraphSample {
            node_attrs: vec![vec![1.0, 0.0, 2.0]; 4],
            neighbors: vec![vec![1], vec![2], vec![3], vec![0]],
            targets: vec![0.0; 4],
        };
        let mut scratch = PlanScratch::new();
        let large_first = mlp_large.predict(&mut scratch, &attrs(1, 7));
        let _ = order.predict(&mut scratch, &sample);
        let small = mlp_small.predict(&mut scratch, &attrs(2, 2));
        let large_again = mlp_large.predict(&mut scratch, &attrs(1, 7));
        assert_eq!(large_first.to_bits(), large_again.to_bits());
        assert_eq!(
            small.to_bits(),
            EdgeMlp::new(2, 1).predict(&attrs(2, 2)).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "attribute dimension mismatch")]
    fn compiled_edge_mlp_rejects_wrong_dimension() {
        let plan = EdgeMlp::new(3, 0).compile();
        let _ = PlanScratch::with(|s| plan.predict(s, &[1.0]));
    }
}
