//! The schedule-order network of Eq. 1–2 (label 1).
//!
//! Four message-passing layers; each layer aggregates neighbour messages
//! with a (mean, max, min) pooling triple, projects them with `W1`
//! (Eq. 1), and updates the node state as `h' = W2 (W3 h + m)` (Eq. 2).
//! In the first layer the message is `W0 × Attributes(v)` and the state is
//! an embedding of the attributes, following the paper's initialisation
//! ("the schedule order h⁰ is the ASAP value and m¹ is W1 × Attributes(v)")
//! generalised to `hidden_dim` channels. A linear readout produces the
//! scalar schedule order.

use std::sync::Arc;

use lisa_events::EventSink;

use crate::dataset::NodeGraphSample;
use crate::train::{run_training, TrainConfig, TrainReport};
use crate::{CsrAdjacency, Graph, ParamId, ParamStore, Tensor, VarId};

/// Weights of one message-passing layer.
#[derive(Debug, Clone, Copy)]
struct Layer {
    /// Eq. 1 — projects the concatenated (mean, max, min) pooled messages.
    w1: ParamId,
    /// Eq. 2 — outer update projection.
    w2: ParamId,
    /// Eq. 2 — state projection.
    w3: ParamId,
}

/// The node-level GNN predicting schedule order.
///
/// # Example
///
/// ```
/// use lisa_gnn::models::ScheduleOrderNet;
/// use lisa_gnn::dataset::NodeGraphSample;
///
/// let net = ScheduleOrderNet::new(3, 0);
/// let sample = NodeGraphSample {
///     node_attrs: vec![vec![0.0, 1.0, 2.0], vec![1.0, 0.0, 1.0]],
///     neighbors: vec![vec![1], vec![0]],
///     targets: vec![0.0, 1.0],
/// };
/// let preds = net.predict(&sample);
/// assert_eq!(preds.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ScheduleOrderNet {
    store: ParamStore,
    /// First-layer message projection (attributes → hidden).
    w0: ParamId,
    /// Attribute embedding for the initial state.
    embed: ParamId,
    layers: Vec<Layer>,
    readout: ParamId,
    attr_dim: usize,
}

/// Number of message-passing layers ("a network consisting of four
/// layers", §IV-B).
pub const LAYER_COUNT: usize = 4;

impl ScheduleOrderNet {
    /// Creates the network for nodes with `attr_dim` attributes. The
    /// hidden width equals the attribute width.
    ///
    /// # Panics
    ///
    /// Panics if `attr_dim` is zero.
    pub fn new(attr_dim: usize, seed: u64) -> Self {
        assert!(attr_dim > 0, "attribute dimension must be positive");
        let hidden_dim = attr_dim;
        let mut store = ParamStore::new(seed);
        let w0 = store.alloc(hidden_dim, attr_dim);
        let embed = store.alloc(hidden_dim, attr_dim);
        let layers = (0..LAYER_COUNT)
            .map(|_| Layer {
                w1: store.alloc(hidden_dim, 3 * hidden_dim),
                w2: store.alloc(hidden_dim, hidden_dim),
                w3: store.alloc(hidden_dim, hidden_dim),
            })
            .collect();
        let readout = store.alloc(1, hidden_dim);
        ScheduleOrderNet {
            store,
            w0,
            embed,
            layers,
            readout,
            attr_dim,
        }
    }

    /// The expected node-attribute dimension.
    pub fn attr_dim(&self) -> usize {
        self.attr_dim
    }

    /// Total learnable weights.
    pub fn weight_count(&self) -> usize {
        self.store.weight_count()
    }

    /// Serialises the learned weights (see [`crate::io`]).
    pub fn export_weights(&self) -> String {
        crate::io::store_to_text(&self.store)
    }

    /// Restores weights exported by [`Self::export_weights`] from a model
    /// of the same architecture.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or architecture mismatch; the model is
    /// unchanged on error.
    pub fn import_weights(&mut self, text: &str) -> Result<(), crate::io::ParseParamsError> {
        crate::io::load_store_from_text(&mut self.store, text)
    }

    /// Column-stacks the sample's node attributes into an
    /// `attr_dim × n` batch matrix.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent samples or mismatched attribute dimension.
    fn sample_matrix(&self, sample: &NodeGraphSample) -> Tensor {
        assert!(sample.is_consistent(), "inconsistent sample");
        let n = sample.len();
        let mut data = vec![0.0; self.attr_dim * n];
        for (j, attrs) in sample.node_attrs.iter().enumerate() {
            assert_eq!(attrs.len(), self.attr_dim, "attribute dimension mismatch");
            for (r, &v) in attrs.iter().enumerate() {
                data[r * n + j] = v;
            }
        }
        Tensor::from_vec(self.attr_dim, n, data)
    }

    /// Builds the batched forward pass over all nodes at once; returns
    /// the 1×n prediction row. Column `j` is bit-identical to the
    /// historical per-node matvec/pool chain for node `j`.
    fn forward(&self, g: &mut Graph, store: &ParamStore, x: Tensor, adj: &CsrAdjacency) -> VarId {
        let w0 = g.param(store, self.w0);
        let embed = g.param(store, self.embed);
        let x = g.input(x);
        let mut h = g.matmul(embed, x);
        let mut m = g.matmul(w0, x);
        for layer in &self.layers {
            let w1 = g.param(store, layer.w1);
            let w2 = g.param(store, layer.w2);
            let w3 = g.param(store, layer.w3);
            // Eq. 1: aggregate neighbour messages with the fused
            // (mean, max, min) gather; isolated nodes get zero columns.
            let pooled = g.gather_pool(m, adj);
            let mv = g.matmul(w1, pooled);
            // Eq. 2: h' = W2 (W3 h + m').
            let w3h = g.matmul(w3, h);
            let inner = g.add(w3h, mv);
            h = g.matmul(w2, inner);
            m = mv;
        }
        let r = g.param(store, self.readout);
        g.matmul(r, h)
    }

    /// Predicts the schedule order of every node.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent samples or mismatched attribute dimension.
    pub fn predict(&self, sample: &NodeGraphSample) -> Vec<f64> {
        Graph::with_inference_tape(|g| self.predict_with(g, sample))
    }

    /// Like [`Self::predict`], but reuses the caller's graph (reset
    /// here), so repeated predictions share one tape arena.
    pub fn predict_with(&self, g: &mut Graph, sample: &NodeGraphSample) -> Vec<f64> {
        g.reset();
        let adj = CsrAdjacency::from_neighbors(&sample.neighbors);
        let x = self.sample_matrix(sample);
        let out = self.forward(g, &self.store, x, &adj);
        g.value(out).data().to_vec()
    }

    /// Freezes the current weights into a tape-free inference plan (see
    /// [`crate::CompiledScheduleOrder`]); predictions are bit-identical
    /// to [`Self::predict`]. Later training of `self` does not affect
    /// the returned plan.
    pub fn compile(&self) -> crate::CompiledScheduleOrder {
        let mut p = crate::plan::ProgramBuilder::new();
        let w0 = p.weight(&self.store, self.w0);
        let embed = p.weight(&self.store, self.embed);
        let x = crate::plan::ProgramBuilder::INPUT;
        let mut h = p.matmul(embed, x);
        let mut m = p.matmul(w0, x);
        for layer in &self.layers {
            let w1 = p.weight(&self.store, layer.w1);
            let w2 = p.weight(&self.store, layer.w2);
            let w3 = p.weight(&self.store, layer.w3);
            let pooled = p.gather_pool(m);
            let mv = p.matmul(w1, pooled);
            let w3h = p.matmul(w3, h);
            let inner = p.add(w3h, mv);
            h = p.matmul(w2, inner);
            m = mv;
        }
        let readout = p.weight(&self.store, self.readout);
        let y = p.matmul(readout, h);
        crate::CompiledScheduleOrder::new(p.finish(y), self.attr_dim)
    }

    /// Trains on graph samples; the per-sample loss is the mean squared
    /// error over that sample's nodes.
    pub fn train(&mut self, samples: &[NodeGraphSample], config: &TrainConfig) -> TrainReport {
        self.train_observed(samples, config, "schedule_order", &EventSink::null())
    }

    /// Like [`ScheduleOrderNet::train`], emitting a per-epoch loss event
    /// to `sink` under the caller-supplied `network` name.
    pub fn train_observed(
        &mut self,
        samples: &[NodeGraphSample],
        config: &TrainConfig,
        network: &'static str,
        sink: &EventSink,
    ) -> TrainReport {
        let net = self.clone();
        // Per-sample batch matrices, CSR adjacencies, and targets are
        // shuffle-invariant: build them once, share across epochs (and
        // worker threads — CSR rows and targets are Arc-backed).
        let prepared: Vec<(Tensor, CsrAdjacency, Arc<[f64]>, f64)> = samples
            .iter()
            .map(|s| {
                (
                    net.sample_matrix(s),
                    CsrAdjacency::from_neighbors(&s.neighbors),
                    s.targets.clone().into(),
                    1.0 / s.len().max(1) as f64,
                )
            })
            .collect();
        // Micro-batch of 1: batching is across the nodes within a sample.
        run_training(
            &mut self.store,
            samples.len(),
            config,
            1,
            network,
            sink,
            |g, store, unit| {
                let (x, adj, targets, inv_n) = &prepared[unit[0]];
                let p = net.forward(g, store, x.clone(), adj);
                g.row_squared_error(p, targets.clone(), *inv_n)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain graphs where the target equals the node's depth, recoverable
    /// from attribute 0 (which we set to the depth).
    fn chain_samples(count: usize) -> Vec<NodeGraphSample> {
        (0..count)
            .map(|c| {
                let n = 4 + c % 3;
                let node_attrs: Vec<Vec<f64>> = (0..n)
                    .map(|i| vec![i as f64, 1.0, (n - i) as f64])
                    .collect();
                let mut neighbors = vec![Vec::new(); n];
                for i in 0..n - 1 {
                    neighbors[i].push(i + 1);
                    neighbors[i + 1].push(i);
                }
                let targets = (0..n).map(|i| i as f64).collect();
                NodeGraphSample {
                    node_attrs,
                    neighbors,
                    targets,
                }
            })
            .collect()
    }

    #[test]
    fn output_shape_matches_nodes() {
        let net = ScheduleOrderNet::new(3, 0);
        let s = &chain_samples(1)[0];
        assert_eq!(net.predict(s).len(), s.len());
    }

    #[test]
    fn training_reduces_loss() {
        let samples = chain_samples(12);
        let mut net = ScheduleOrderNet::new(3, 3);
        let cfg = TrainConfig {
            epochs: 120,
            lr: 3e-3,
            weight_decay: 0.0,
            ..TrainConfig::paper()
        };
        let report = net.train(&samples, &cfg);
        assert!(report.improved());
        assert!(
            report.final_loss() < report.epoch_losses[0] * 0.5,
            "loss only went {} -> {}",
            report.epoch_losses[0],
            report.final_loss()
        );
    }

    #[test]
    fn learns_depth_roughly() {
        let samples = chain_samples(12);
        let mut net = ScheduleOrderNet::new(3, 4);
        let cfg = TrainConfig {
            epochs: 250,
            lr: 3e-3,
            weight_decay: 0.0,
            ..TrainConfig::paper()
        };
        net.train(&samples, &cfg);
        let preds = net.predict(&samples[0]);
        for (i, p) in preds.iter().enumerate() {
            assert!(
                (p - i as f64).abs() < 1.2,
                "node {i}: predicted {p}, want ~{i}"
            );
        }
    }

    #[test]
    fn isolated_nodes_are_handled() {
        let net = ScheduleOrderNet::new(2, 0);
        let s = NodeGraphSample {
            node_attrs: vec![vec![1.0, 2.0]],
            neighbors: vec![vec![]],
            targets: vec![0.0],
        };
        let preds = net.predict(&s);
        assert!(preds[0].is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let s = &chain_samples(1)[0];
        let a = ScheduleOrderNet::new(3, 11).predict(s);
        let b = ScheduleOrderNet::new(3, 11).predict(s);
        assert_eq!(a, b);
    }
}
