//! The four label networks of paper §IV-B.
//!
//! | Label | Network | Module |
//! |-------|---------|--------|
//! | 1 — schedule order | 4-layer message-passing GNN (Eq. 1–2) | [`schedule_order`] |
//! | 2 — same-level association | 2-layer MLP (Eq. 3) | [`edge_mlp`] |
//! | 3 — spatial mapping distance | conv + normalised aggregation (Eq. 4–6) | [`spatial`] |
//! | 4 — temporal mapping distance | 2-layer MLP (Eq. 7) | [`edge_mlp`] |
//!
//! Labels 2 and 4 share the same architecture (the paper uses an identical
//! MLP with hidden channels equal to the number of edge attributes), so
//! one [`edge_mlp::EdgeMlp`] type serves both.

pub mod edge_mlp;
pub mod schedule_order;
pub mod spatial;

pub use edge_mlp::EdgeMlp;
pub use schedule_order::ScheduleOrderNet;
pub use spatial::SpatialNet;
