//! The spatial-mapping-distance network of Eq. 4–6 (label 3).
//!
//! Eq. 4 projects the edge's own attributes: `h¹ = W1 · attrs`.
//! Eq. 5 builds a normalisation vector ν from the *reciprocals* of four
//! aggregations (mean, sum, max, min) over the attribute vectors of the
//! edges connected to the parent and child nodes; zero denominators yield
//! factor 1. Eq. 6 combines: `h² = W2 h¹ + ν · W3 h¹`.
//!
//! The paper leaves ν's contraction implicit; we realise `ν ·` as a learnt
//! scalar gate: the four reciprocal aggregates are concatenated and
//! projected to a scalar by `Wν`, which then scales `W3 h¹`. A final
//! linear readout produces the scalar distance.

use std::sync::Arc;

use lisa_events::EventSink;

use crate::dataset::ContextEdgeSample;
use crate::train::{run_training, TrainConfig, TrainReport};
use crate::{Graph, ParamId, ParamStore, Tensor, VarId};

/// Samples per micro-batch tape. Part of the numeric contract (fixed
/// per model, never derived from the thread count) so parallel training
/// stays bit-identical to sequential.
const MICRO_BATCH: usize = 8;

/// The edge-level network with neighbourhood normalisation.
///
/// # Example
///
/// ```
/// use lisa_gnn::models::SpatialNet;
/// use lisa_gnn::dataset::ContextEdgeSample;
///
/// let net = SpatialNet::new(2, 0);
/// let sample = ContextEdgeSample {
///     attrs: vec![1.0, 2.0],
///     neighbor_attrs: vec![vec![1.0, 2.0], vec![0.5, 0.0]],
///     target: 1.0,
/// };
/// assert!(net.predict(&sample).is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct SpatialNet {
    store: ParamStore,
    w1: ParamId,
    w2: ParamId,
    w3: ParamId,
    w_nu: ParamId,
    readout: ParamId,
    attr_dim: usize,
}

impl SpatialNet {
    /// Creates the network for edges with `attr_dim` attributes.
    ///
    /// # Panics
    ///
    /// Panics if `attr_dim` is zero.
    pub fn new(attr_dim: usize, seed: u64) -> Self {
        assert!(attr_dim > 0, "attribute dimension must be positive");
        let mut store = ParamStore::new(seed);
        let w1 = store.alloc(attr_dim, attr_dim);
        let w2 = store.alloc(attr_dim, attr_dim);
        let w3 = store.alloc(attr_dim, attr_dim);
        let w_nu = store.alloc(1, 4 * attr_dim);
        let readout = store.alloc(1, attr_dim);
        SpatialNet {
            store,
            w1,
            w2,
            w3,
            w_nu,
            readout,
            attr_dim,
        }
    }

    /// The expected attribute dimension.
    pub fn attr_dim(&self) -> usize {
        self.attr_dim
    }

    /// Total learnable weights.
    pub fn weight_count(&self) -> usize {
        self.store.weight_count()
    }

    /// Serialises the learned weights (see [`crate::io`]).
    pub fn export_weights(&self) -> String {
        crate::io::store_to_text(&self.store)
    }

    /// Restores weights exported by [`Self::export_weights`] from a model
    /// of the same architecture.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or architecture mismatch; the model is
    /// unchanged on error.
    pub fn import_weights(&mut self, text: &str) -> Result<(), crate::io::ParseParamsError> {
        crate::io::load_store_from_text(&mut self.store, text)
    }

    /// Eq. 5 for one sample: the learnt scalar gate over the reciprocal
    /// neighbourhood aggregates (1 for an empty neighbourhood).
    fn nu_scalar(&self, g: &mut Graph, store: &ParamStore, sample: &ContextEdgeSample) -> VarId {
        if sample.neighbor_attrs.is_empty() {
            return g.input(Tensor::scalar(1.0));
        }
        let vars: Vec<VarId> = sample
            .neighbor_attrs
            .iter()
            .map(|a| {
                assert_eq!(a.len(), self.attr_dim, "neighbour dimension mismatch");
                g.input(Tensor::vector(a.clone()))
            })
            .collect();
        let mean = g.pool_mean(vars.clone());
        let sum = g.pool_sum(vars.clone());
        let max = g.pool_max(vars.clone());
        let min = g.pool_min(vars);
        let rm = g.recip(mean);
        let rs = g.recip(sum);
        let rx = g.recip(max);
        let rn = g.recip(min);
        let cat = g.concat(vec![rm, rs, rx, rn]);
        let w_nu = g.param(store, self.w_nu);
        g.matvec(w_nu, cat)
    }

    /// Batched forward over `B` samples; returns the 1×B prediction row.
    /// Column `j` is bit-identical to the historical per-sample
    /// matvec/scale chain for sample `j` — the ν gates are still built
    /// per sample (neighbourhoods are ragged) and gathered into one
    /// column vector that gates `W3 H¹` via `scale_cols`.
    fn forward(&self, g: &mut Graph, store: &ParamStore, samples: &[&ContextEdgeSample]) -> VarId {
        // Eq. 4, batched.
        let mut data = vec![0.0; self.attr_dim * samples.len()];
        for (j, s) in samples.iter().enumerate() {
            assert_eq!(s.attrs.len(), self.attr_dim, "attribute dimension mismatch");
            for (r, &v) in s.attrs.iter().enumerate() {
                data[r * samples.len() + j] = v;
            }
        }
        let x = g.input(Tensor::from_vec(self.attr_dim, samples.len(), data));
        let w1 = g.param(store, self.w1);
        let h1 = g.matmul(w1, x);

        // Eq. 5: one scalar gate per sample, stacked into a B×1 column.
        let nus: Vec<VarId> = samples
            .iter()
            .map(|s| self.nu_scalar(g, store, s))
            .collect();
        let nu = g.concat(nus);

        // Eq. 6: h² = W2 h¹ + ν · (W3 h¹).
        let w2 = g.param(store, self.w2);
        let w3 = g.param(store, self.w3);
        let a = g.matmul(w2, h1);
        let b = g.matmul(w3, h1);
        let gated = g.scale_cols(nu, b);
        let h2 = g.add(a, gated);

        let r = g.param(store, self.readout);
        g.matmul(r, h2)
    }

    /// Predicts the spatial mapping distance of one edge.
    ///
    /// # Panics
    ///
    /// Panics on mismatched attribute dimensions.
    pub fn predict(&self, sample: &ContextEdgeSample) -> f64 {
        Graph::with_inference_tape(|g| self.predict_with(g, sample))
    }

    /// Like [`Self::predict`], but reuses the caller's graph (reset
    /// here), so repeated predictions share one tape arena.
    pub fn predict_with(&self, g: &mut Graph, sample: &ContextEdgeSample) -> f64 {
        g.reset();
        let y = self.forward(g, &self.store, &[sample]);
        g.value(y).item()
    }

    /// Freezes the current weights into a tape-free inference plan (see
    /// [`crate::CompiledSpatial`]); predictions are bit-identical to
    /// [`Self::predict`]. Later training of `self` does not affect the
    /// returned plan.
    pub fn compile(&self) -> crate::CompiledSpatial {
        let mut p = crate::plan::ProgramBuilder::new();
        let w1 = p.weight(&self.store, self.w1);
        let w2 = p.weight(&self.store, self.w2);
        let w3 = p.weight(&self.store, self.w3);
        let readout = p.weight(&self.store, self.readout);
        // Eq. 4 then Eq. 6; the ν gate itself runs outside the op
        // sequence (ragged per-sample input) and feeds ScaleColsNu.
        let h1 = p.matmul(w1, crate::plan::ProgramBuilder::INPUT);
        let a = p.matmul(w2, h1);
        let b = p.matmul(w3, h1);
        let gated = p.scale_cols_nu(b);
        let h2 = p.add(a, gated);
        let y = p.matmul(readout, h2);
        crate::CompiledSpatial::new(
            p.finish(y),
            self.store.value(self.w_nu).clone(),
            self.attr_dim,
        )
    }

    /// Trains on the samples with MSE loss.
    pub fn train(&mut self, samples: &[ContextEdgeSample], config: &TrainConfig) -> TrainReport {
        self.train_observed(samples, config, "spatial", &EventSink::null())
    }

    /// Like [`SpatialNet::train`], emitting a per-epoch loss event to
    /// `sink` under the caller-supplied `network` name.
    pub fn train_observed(
        &mut self,
        samples: &[ContextEdgeSample],
        config: &TrainConfig,
        network: &'static str,
        sink: &EventSink,
    ) -> TrainReport {
        let net = self.clone();
        run_training(
            &mut self.store,
            samples.len(),
            config,
            MICRO_BATCH,
            network,
            sink,
            |g, store, unit| {
                let unit_samples: Vec<&ContextEdgeSample> =
                    unit.iter().map(|&i| &samples[i]).collect();
                let targets: Arc<[f64]> = unit.iter().map(|&i| samples[i].target).collect();
                let p = net.forward(g, store, &unit_samples);
                g.row_squared_error(p, targets, 1.0)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_samples(n: usize) -> Vec<ContextEdgeSample> {
        (0..n)
            .map(|i| {
                let a = f64::from((i % 4) as u32) + 0.5;
                let b = f64::from((i % 3) as u32);
                // Distance grows with attrs and neighbourhood crowding.
                let crowd = f64::from((i % 5) as u32) + 1.0;
                let neighbor_attrs = (0..(i % 5) + 1).map(|k| vec![a + k as f64, b]).collect();
                ContextEdgeSample {
                    attrs: vec![a, b],
                    neighbor_attrs,
                    target: 0.5 * a + 0.3 * crowd,
                }
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let samples = synth_samples(48);
        let mut net = SpatialNet::new(2, 2);
        let cfg = TrainConfig {
            epochs: 200,
            lr: 5e-3,
            weight_decay: 0.0,
            ..TrainConfig::paper()
        };
        let report = net.train(&samples, &cfg);
        assert!(report.improved());
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "no improvement: {:?}",
            (report.epoch_losses[0], report.final_loss())
        );
    }

    #[test]
    fn handles_empty_neighborhood() {
        let net = SpatialNet::new(2, 0);
        let s = ContextEdgeSample {
            attrs: vec![1.0, 1.0],
            neighbor_attrs: vec![],
            target: 0.0,
        };
        assert!(net.predict(&s).is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let s = &synth_samples(1)[0];
        let a = SpatialNet::new(2, 4).predict(s);
        let b = SpatialNet::new(2, 4).predict(s);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "attribute dimension mismatch")]
    fn wrong_dim_panics() {
        let net = SpatialNet::new(3, 0);
        let s = ContextEdgeSample {
            attrs: vec![1.0],
            neighbor_attrs: vec![],
            target: 0.0,
        };
        let _ = net.predict(&s);
    }
}
