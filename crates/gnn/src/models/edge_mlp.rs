//! The edge-attribute MLP of Eq. 3 / Eq. 7 (labels 2 and 4).
//!
//! "We use multilayer perceptron (MLP), consisting of two convolution
//! layers and one activation layer, to process the edge attributes. [...]
//! We set the number of hidden channels equal to the number of edge
//! attributes. We use ReLU as the activation layer." A final 1-channel
//! readout produces the scalar label value.

use std::sync::Arc;

use lisa_events::EventSink;

use crate::dataset::EdgeSample;
use crate::train::{run_training, TrainConfig, TrainReport};
use crate::{Graph, ParamId, ParamStore, Tensor, VarId};

/// Samples per micro-batch tape. Part of the numeric contract (fixed
/// per model, never derived from the thread count) so parallel training
/// stays bit-identical to sequential.
const MICRO_BATCH: usize = 8;

/// A two-layer perceptron over edge attributes with a scalar readout.
///
/// # Example
///
/// ```
/// use lisa_gnn::models::EdgeMlp;
/// use lisa_gnn::dataset::EdgeSample;
/// use lisa_gnn::TrainConfig;
///
/// // Learn target = attrs[0] + attrs[1].
/// let samples: Vec<EdgeSample> = (0..32)
///     .map(|i| {
///         let a = f64::from(i % 4);
///         let b = f64::from(i % 3);
///         EdgeSample { attrs: vec![a, b], target: a + b }
///     })
///     .collect();
/// let mut net = EdgeMlp::new(2, 7);
/// let config = TrainConfig { epochs: 400, lr: 5e-3, weight_decay: 0.0, ..TrainConfig::paper() };
/// let report = net.train(&samples, &config);
/// assert!(report.improved());
/// let pred = net.predict(&[2.0, 1.0]);
/// assert!((pred - 3.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct EdgeMlp {
    store: ParamStore,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    readout: ParamId,
    attr_dim: usize,
}

impl EdgeMlp {
    /// Creates the network for edges with `attr_dim` attributes; hidden
    /// width equals `attr_dim` per the paper.
    ///
    /// # Panics
    ///
    /// Panics if `attr_dim` is zero.
    pub fn new(attr_dim: usize, seed: u64) -> Self {
        assert!(attr_dim > 0, "attribute dimension must be positive");
        let mut store = ParamStore::new(seed);
        let w1 = store.alloc(attr_dim, attr_dim);
        let b1 = store.alloc_with(Tensor::zeros(attr_dim, 1));
        let w2 = store.alloc(attr_dim, attr_dim);
        let b2 = store.alloc_with(Tensor::zeros(attr_dim, 1));
        let readout = store.alloc(1, attr_dim);
        EdgeMlp {
            store,
            w1,
            b1,
            w2,
            b2,
            readout,
            attr_dim,
        }
    }

    /// The expected attribute dimension.
    pub fn attr_dim(&self) -> usize {
        self.attr_dim
    }

    /// Total learnable weights.
    pub fn weight_count(&self) -> usize {
        self.store.weight_count()
    }

    /// Serialises the learned weights (see [`crate::io`]).
    pub fn export_weights(&self) -> String {
        crate::io::store_to_text(&self.store)
    }

    /// Restores weights exported by [`Self::export_weights`] from a model
    /// of the same architecture.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or architecture mismatch; the model is
    /// unchanged on error.
    pub fn import_weights(&mut self, text: &str) -> Result<(), crate::io::ParseParamsError> {
        crate::io::load_store_from_text(&mut self.store, text)
    }

    /// Column-stacks attribute vectors into an `attr_dim × B` batch
    /// matrix.
    ///
    /// # Panics
    ///
    /// Panics on mismatched attribute dimension.
    fn attrs_matrix<'a>(&self, columns: impl ExactSizeIterator<Item = &'a [f64]>) -> Tensor {
        let b = columns.len();
        let mut data = vec![0.0; self.attr_dim * b];
        for (j, attrs) in columns.enumerate() {
            assert_eq!(attrs.len(), self.attr_dim, "attribute dimension mismatch");
            for (r, &v) in attrs.iter().enumerate() {
                data[r * b + j] = v;
            }
        }
        Tensor::from_vec(self.attr_dim, b, data)
    }

    /// Batched forward over `B` column-stacked samples; returns the 1×B
    /// prediction row. Column `j` is bit-identical to the historical
    /// per-sample matvec chain for sample `j`.
    fn forward(&self, g: &mut Graph, store: &ParamStore, x: Tensor) -> VarId {
        let x = g.input(x);
        let w1 = g.param(store, self.w1);
        let b1 = g.param(store, self.b1);
        let h = g.matmul(w1, x);
        let h = g.add_cols(h, b1);
        let h = g.relu(h);
        let w2 = g.param(store, self.w2);
        let b2 = g.param(store, self.b2);
        let h = g.matmul(w2, h);
        let h = g.add_cols(h, b2);
        let r = g.param(store, self.readout);
        g.matmul(r, h)
    }

    /// Predicts the label value for one attribute vector.
    ///
    /// # Panics
    ///
    /// Panics if the attribute dimension differs from construction.
    pub fn predict(&self, attrs: &[f64]) -> f64 {
        Graph::with_inference_tape(|g| self.predict_with(g, attrs))
    }

    /// Like [`Self::predict`], but reuses the caller's graph (reset
    /// here), so repeated predictions share one tape arena.
    pub fn predict_with(&self, g: &mut Graph, attrs: &[f64]) -> f64 {
        g.reset();
        let x = self.attrs_matrix(std::iter::once(attrs));
        let y = self.forward(g, &self.store, x);
        g.value(y).item()
    }

    /// Freezes the current weights into a tape-free inference plan (see
    /// [`crate::CompiledEdgeMlp`]); predictions are bit-identical to
    /// [`Self::predict`]. Later training of `self` does not affect the
    /// returned plan.
    pub fn compile(&self) -> crate::CompiledEdgeMlp {
        let mut p = crate::plan::ProgramBuilder::new();
        let w1 = p.weight(&self.store, self.w1);
        let b1 = p.weight(&self.store, self.b1);
        let w2 = p.weight(&self.store, self.w2);
        let b2 = p.weight(&self.store, self.b2);
        let readout = p.weight(&self.store, self.readout);
        let h = p.matmul(w1, crate::plan::ProgramBuilder::INPUT);
        let h = p.add_cols(h, b1);
        let h = p.relu(h);
        let h = p.matmul(w2, h);
        let h = p.add_cols(h, b2);
        let y = p.matmul(readout, h);
        crate::CompiledEdgeMlp::new(p.finish(y), self.attr_dim)
    }

    /// Trains on the samples with MSE loss.
    pub fn train(&mut self, samples: &[EdgeSample], config: &TrainConfig) -> TrainReport {
        self.train_observed(samples, config, "edge_mlp", &EventSink::null())
    }

    /// Like [`EdgeMlp::train`], emitting a per-epoch loss event to `sink`.
    /// `network` names this net in the events (an `EdgeMlp` backs both the
    /// same-level and temporal networks, so the caller must say which).
    pub fn train_observed(
        &mut self,
        samples: &[EdgeSample],
        config: &TrainConfig,
        network: &'static str,
        sink: &EventSink,
    ) -> TrainReport {
        let net = self.clone();
        run_training(
            &mut self.store,
            samples.len(),
            config,
            MICRO_BATCH,
            network,
            sink,
            |g, store, unit| {
                let x = net.attrs_matrix(unit.iter().map(|&i| samples[i].attrs.as_slice()));
                let targets: Arc<[f64]> = unit.iter().map(|&i| samples[i].target).collect();
                let p = net.forward(g, store, x);
                g.row_squared_error(p, targets, 1.0)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(n: usize) -> Vec<EdgeSample> {
        (0..n)
            .map(|i| {
                let a = f64::from((i % 5) as u32);
                let b = f64::from((i % 3) as u32);
                let c = f64::from((i % 7) as u32) * 0.5;
                EdgeSample {
                    attrs: vec![a, b, c],
                    target: 2.0 * a - b + c,
                }
            })
            .collect()
    }

    #[test]
    fn fits_linear_function() {
        let data = linear_dataset(60);
        let mut net = EdgeMlp::new(3, 1);
        let cfg = TrainConfig {
            epochs: 400,
            lr: 5e-3,
            weight_decay: 0.0,
            ..TrainConfig::paper()
        };
        let report = net.train(&data, &cfg);
        assert!(report.final_loss() < 0.1, "loss {}", report.final_loss());
        for s in &data[..10] {
            assert!((net.predict(&s.attrs) - s.target).abs() < 1.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = linear_dataset(20);
        let cfg = TrainConfig::fast();
        let mut a = EdgeMlp::new(3, 9);
        let mut b = EdgeMlp::new(3, 9);
        a.train(&data, &cfg);
        b.train(&data, &cfg);
        assert_eq!(a.predict(&[1.0, 2.0, 3.0]), b.predict(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn weight_count_matches_architecture() {
        let net = EdgeMlp::new(4, 0);
        // w1 16 + b1 4 + w2 16 + b2 4 + readout 4 = 44.
        assert_eq!(net.weight_count(), 44);
    }

    #[test]
    #[should_panic(expected = "attribute dimension mismatch")]
    fn wrong_dim_panics() {
        let net = EdgeMlp::new(3, 0);
        let _ = net.predict(&[1.0]);
    }
}
