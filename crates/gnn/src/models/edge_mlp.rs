//! The edge-attribute MLP of Eq. 3 / Eq. 7 (labels 2 and 4).
//!
//! "We use multilayer perceptron (MLP), consisting of two convolution
//! layers and one activation layer, to process the edge attributes. [...]
//! We set the number of hidden channels equal to the number of edge
//! attributes. We use ReLU as the activation layer." A final 1-channel
//! readout produces the scalar label value.

use crate::dataset::EdgeSample;
use crate::train::{run_training, TrainConfig, TrainReport};
use crate::{Graph, ParamId, ParamStore, Tensor, VarId};

/// A two-layer perceptron over edge attributes with a scalar readout.
///
/// # Example
///
/// ```
/// use lisa_gnn::models::EdgeMlp;
/// use lisa_gnn::dataset::EdgeSample;
/// use lisa_gnn::TrainConfig;
///
/// // Learn target = attrs[0] + attrs[1].
/// let samples: Vec<EdgeSample> = (0..32)
///     .map(|i| {
///         let a = f64::from(i % 4);
///         let b = f64::from(i % 3);
///         EdgeSample { attrs: vec![a, b], target: a + b }
///     })
///     .collect();
/// let mut net = EdgeMlp::new(2, 7);
/// let config = TrainConfig { epochs: 400, lr: 5e-3, weight_decay: 0.0, ..TrainConfig::paper() };
/// let report = net.train(&samples, &config);
/// assert!(report.improved());
/// let pred = net.predict(&[2.0, 1.0]);
/// assert!((pred - 3.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct EdgeMlp {
    store: ParamStore,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    readout: ParamId,
    attr_dim: usize,
}

impl EdgeMlp {
    /// Creates the network for edges with `attr_dim` attributes; hidden
    /// width equals `attr_dim` per the paper.
    ///
    /// # Panics
    ///
    /// Panics if `attr_dim` is zero.
    pub fn new(attr_dim: usize, seed: u64) -> Self {
        assert!(attr_dim > 0, "attribute dimension must be positive");
        let mut store = ParamStore::new(seed);
        let w1 = store.alloc(attr_dim, attr_dim);
        let b1 = store.alloc_with(Tensor::zeros(attr_dim, 1));
        let w2 = store.alloc(attr_dim, attr_dim);
        let b2 = store.alloc_with(Tensor::zeros(attr_dim, 1));
        let readout = store.alloc(1, attr_dim);
        EdgeMlp {
            store,
            w1,
            b1,
            w2,
            b2,
            readout,
            attr_dim,
        }
    }

    /// The expected attribute dimension.
    pub fn attr_dim(&self) -> usize {
        self.attr_dim
    }

    /// Total learnable weights.
    pub fn weight_count(&self) -> usize {
        self.store.weight_count()
    }

    /// Serialises the learned weights (see [`crate::io`]).
    pub fn export_weights(&self) -> String {
        crate::io::store_to_text(&self.store)
    }

    /// Restores weights exported by [`Self::export_weights`] from a model
    /// of the same architecture.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or architecture mismatch; the model is
    /// unchanged on error.
    pub fn import_weights(&mut self, text: &str) -> Result<(), crate::io::ParseParamsError> {
        crate::io::load_store_from_text(&mut self.store, text)
    }

    fn forward(&self, g: &mut Graph, store: &ParamStore, attrs: &[f64]) -> VarId {
        assert_eq!(attrs.len(), self.attr_dim, "attribute dimension mismatch");
        let x = g.input(Tensor::vector(attrs.to_vec()));
        let w1 = g.param(store, self.w1);
        let b1 = g.param(store, self.b1);
        let h = g.matvec(w1, x);
        let h = g.add(h, b1);
        let h = g.relu(h);
        let w2 = g.param(store, self.w2);
        let b2 = g.param(store, self.b2);
        let h = g.matvec(w2, h);
        let h = g.add(h, b2);
        let r = g.param(store, self.readout);
        g.matvec(r, h)
    }

    /// Predicts the label value for one attribute vector.
    ///
    /// # Panics
    ///
    /// Panics if the attribute dimension differs from construction.
    pub fn predict(&self, attrs: &[f64]) -> f64 {
        let mut g = Graph::new();
        let y = self.forward(&mut g, &self.store, attrs);
        g.value(y).item()
    }

    /// Trains on the samples with MSE loss.
    pub fn train(&mut self, samples: &[EdgeSample], config: &TrainConfig) -> TrainReport {
        let net = self.clone();
        run_training(&mut self.store, samples.len(), config, |g, store, i| {
            let y = net.forward(g, store, &samples[i].attrs);
            g.squared_error(y, samples[i].target)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(n: usize) -> Vec<EdgeSample> {
        (0..n)
            .map(|i| {
                let a = f64::from((i % 5) as u32);
                let b = f64::from((i % 3) as u32);
                let c = f64::from((i % 7) as u32) * 0.5;
                EdgeSample {
                    attrs: vec![a, b, c],
                    target: 2.0 * a - b + c,
                }
            })
            .collect()
    }

    #[test]
    fn fits_linear_function() {
        let data = linear_dataset(60);
        let mut net = EdgeMlp::new(3, 1);
        let cfg = TrainConfig {
            epochs: 400,
            lr: 5e-3,
            weight_decay: 0.0,
            ..TrainConfig::paper()
        };
        let report = net.train(&data, &cfg);
        assert!(report.final_loss() < 0.1, "loss {}", report.final_loss());
        for s in &data[..10] {
            assert!((net.predict(&s.attrs) - s.target).abs() < 1.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = linear_dataset(20);
        let cfg = TrainConfig::fast();
        let mut a = EdgeMlp::new(3, 9);
        let mut b = EdgeMlp::new(3, 9);
        a.train(&data, &cfg);
        b.train(&data, &cfg);
        assert_eq!(a.predict(&[1.0, 2.0, 3.0]), b.predict(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn weight_count_matches_architecture() {
        let net = EdgeMlp::new(4, 0);
        // w1 16 + b1 4 + w2 16 + b2 4 + readout 4 = 44.
        assert_eq!(net.weight_count(), 44);
    }

    #[test]
    #[should_panic(expected = "attribute dimension mismatch")]
    fn wrong_dim_panics() {
        let net = EdgeMlp::new(3, 0);
        let _ = net.predict(&[1.0]);
    }
}
