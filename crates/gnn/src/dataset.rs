//! Training-sample containers for the label networks.
//!
//! The `lisa-labels` crate converts DFGs + extracted labels into these
//! architecture-agnostic samples; this crate only sees attribute vectors,
//! adjacency, and regression targets.

/// A whole-graph sample for the node-level schedule-order network
/// (label 1). One sample per DFG.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeGraphSample {
    /// Per-node attribute vectors (all the same length).
    pub node_attrs: Vec<Vec<f64>>,
    /// Undirected adjacency: `neighbors[v]` lists the nodes exchanging
    /// messages with `v`.
    pub neighbors: Vec<Vec<usize>>,
    /// Per-node regression target (the schedule-order label).
    pub targets: Vec<f64>,
}

impl NodeGraphSample {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.node_attrs.len()
    }

    /// Whether the sample has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_attrs.is_empty()
    }

    /// Checks internal shape consistency.
    pub fn is_consistent(&self) -> bool {
        let n = self.node_attrs.len();
        if self.neighbors.len() != n || self.targets.len() != n {
            return false;
        }
        let d = self.node_attrs.first().map_or(0, Vec::len);
        self.node_attrs.iter().all(|a| a.len() == d)
            && self.neighbors.iter().all(|ns| ns.iter().all(|&u| u < n))
    }
}

/// An independent edge sample for the MLP labels — same-level association
/// (label 2) and temporal mapping distance (label 4).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSample {
    /// Edge (or dummy-edge) attribute vector.
    pub attrs: Vec<f64>,
    /// Regression target.
    pub target: f64,
}

/// An edge sample with neighbourhood context for the spatial-mapping
/// distance network (label 3): Eq. 5 aggregates over the attribute vectors
/// of the edges connected to the parent and child nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextEdgeSample {
    /// The edge's own attribute vector.
    pub attrs: Vec<f64>,
    /// Attribute vectors of edges incident to either endpoint (including
    /// this edge itself).
    pub neighbor_attrs: Vec<Vec<f64>>,
    /// Regression target.
    pub target: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_check() {
        let good = NodeGraphSample {
            node_attrs: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            neighbors: vec![vec![1], vec![0]],
            targets: vec![0.0, 1.0],
        };
        assert!(good.is_consistent());
        assert_eq!(good.len(), 2);

        let bad_adj = NodeGraphSample {
            neighbors: vec![vec![5], vec![0]],
            ..good.clone()
        };
        assert!(!bad_adj.is_consistent());

        let ragged = NodeGraphSample {
            node_attrs: vec![vec![1.0], vec![3.0, 4.0]],
            ..good
        };
        assert!(!ragged.is_consistent());
    }
}
