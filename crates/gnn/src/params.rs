//! Learnable parameter storage and the Adam optimiser.

use lisa_rng::Rng;

use crate::Tensor;

/// Handle to one learnable tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// Raw index of the parameter.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Reconstructs a [`ParamId`] from its dense index. Parameter ids are
/// allocation-ordered, so serialisation (`crate::io`) can walk a store by
/// index; models should keep the ids returned by [`ParamStore::alloc`].
pub(crate) fn param_id_for_io(index: usize) -> ParamId {
    ParamId(index)
}

/// A detached set of per-parameter gradient accumulators, shaped like a
/// [`ParamStore`]'s parameters.
///
/// The deterministic parallel trainer gives every micro-batch unit one of
/// these as its backward sink ([`crate::Graph::backward_into`]), then
/// reduces the sinks into the store in ascending unit order — a fixed
/// summation tree independent of how many worker threads produced them,
/// which is what keeps parallel training bit-identical to sequential.
#[derive(Debug, Clone, Default)]
pub struct ParamGrads {
    grads: Vec<Tensor>,
}

impl ParamGrads {
    /// Creates zeroed accumulators matching the store's parameter shapes.
    pub fn zeros_like(store: &ParamStore) -> Self {
        ParamGrads {
            grads: store
                .values
                .iter()
                .map(|v| Tensor::zeros(v.rows(), v.cols()))
                .collect(),
        }
    }

    /// Re-zeroes in place (allocating only if the store grew), so a
    /// long-lived sink is reused across batches without reallocation.
    pub fn reset_like(&mut self, store: &ParamStore) {
        if self.grads.len() != store.values.len() {
            *self = ParamGrads::zeros_like(store);
            return;
        }
        for (g, v) in self.grads.iter_mut().zip(&store.values) {
            g.reset_zeroed(v.rows(), v.cols());
        }
    }

    /// The accumulated gradient of one parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Adds to one parameter's accumulator (called by backward).
    pub(crate) fn accumulate(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0].add_assign(delta);
    }
}

/// Owns every learnable tensor of a model, its gradient accumulator, and
/// the Adam moment estimates.
#[derive(Debug, Clone)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    rng: Rng,
}

impl ParamStore {
    /// Creates an empty store whose weight initialisation draws from the
    /// given seed.
    pub fn new(seed: u64) -> Self {
        ParamStore {
            values: Vec::new(),
            grads: Vec::new(),
            m: Vec::new(),
            v: Vec::new(),
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Allocates a parameter with Xavier/Glorot-uniform initialisation.
    pub fn alloc(&mut self, rows: usize, cols: usize) -> ParamId {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| self.rng.gen_range(-bound..bound))
            .collect();
        self.alloc_with(Tensor::from_vec(rows, cols, data))
    }

    /// Allocates a parameter with explicit initial values.
    pub fn alloc_with(&mut self, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(value.rows(), value.cols()));
        self.m.push(Tensor::zeros(value.rows(), value.cols()));
        self.v.push(Tensor::zeros(value.rows(), value.cols()));
        self.values.push(value);
        id
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Current gradient accumulator of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Adds to a parameter's gradient (called by the autodiff backward
    /// pass).
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0].add_assign(delta);
    }

    /// Overwrites a parameter's value, preserving its shape. Used by tests
    /// (finite-difference checks) and model import.
    ///
    /// # Panics
    ///
    /// Panics if the replacement's shape differs.
    pub fn set_value(&mut self, id: ParamId, value: Tensor) {
        let old = &self.values[id.0];
        assert_eq!(
            (old.rows(), old.cols()),
            (value.rows(), value.cols()),
            "shape mismatch"
        );
        self.values[id.0] = value;
    }

    /// Adds a detached gradient sink into the store's accumulators (the
    /// ordered-reduction step of the parallel trainer).
    ///
    /// # Panics
    ///
    /// Panics if `other` was shaped for a different store.
    pub fn add_grads(&mut self, other: &ParamGrads) {
        assert_eq!(self.grads.len(), other.grads.len(), "param count mismatch");
        for (g, o) in self.grads.iter_mut().zip(&other.grads) {
            g.add_assign(o);
        }
    }

    /// Clears all gradient accumulators.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            let (r, c) = (g.rows(), g.cols());
            g.reset_zeroed(r, c);
        }
    }

    /// Scales every gradient accumulator (used to average over a batch).
    pub fn scale_grads(&mut self, k: f64) {
        for g in &mut self.grads {
            *g = g.scale(k);
        }
    }

    /// Number of parameters tensors (not elements).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights.
    pub fn weight_count(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }
}

/// Adam with decoupled weight decay, matching the paper's training recipe
/// (lr 0.001, weight decay 0.0005, §VI-B).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f64,
    t: u64,
}

impl Adam {
    /// Creates the optimiser with the paper's hyperparameters.
    pub fn paper() -> Self {
        Adam::new(1e-3, 5e-4)
    }

    /// Creates the optimiser with a custom learning rate and weight decay.
    pub fn new(lr: f64, weight_decay: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
        }
    }

    /// Applies one update step from the accumulated gradients, then clears
    /// them.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..store.values.len() {
            let n = store.values[i].len();
            for k in 0..n {
                let g = store.grads[i].data()[k];
                let m = self.beta1 * store.m[i].data()[k] + (1.0 - self.beta1) * g;
                let v = self.beta2 * store.v[i].data()[k] + (1.0 - self.beta2) * g * g;
                store.m[i].data_mut()[k] = m;
                store.v[i].data_mut()[k] = v;
                let m_hat = m / bc1;
                let v_hat = v / bc2;
                let w = store.values[i].data()[k];
                store.values[i].data_mut()[k] =
                    w - self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * w);
            }
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read() {
        let mut s = ParamStore::new(0);
        let id = s.alloc(3, 2);
        assert_eq!(s.value(id).rows(), 3);
        assert_eq!(s.len(), 1);
        assert_eq!(s.weight_count(), 6);
        // Xavier init stays in bound.
        let bound = (6.0 / 5.0f64).sqrt();
        assert!(s.value(id).data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn init_is_seeded() {
        let mut a = ParamStore::new(7);
        let mut b = ParamStore::new(7);
        assert_eq!(a.alloc(4, 4), b.alloc(4, 4));
        let (pa, pb) = (ParamId(0), ParamId(0));
        assert_eq!(a.value(pa), b.value(pb));
    }

    #[test]
    fn adam_minimises_a_quadratic() {
        // Minimise f(w) = (w - 3)^2 by feeding grad = 2(w - 3).
        let mut s = ParamStore::new(1);
        let id = s.alloc_with(Tensor::scalar(0.0));
        let mut adam = Adam::new(0.1, 0.0);
        for _ in 0..500 {
            let w = s.value(id).item();
            s.accumulate_grad(id, &Tensor::scalar(2.0 * (w - 3.0)));
            adam.step(&mut s);
        }
        assert!((s.value(id).item() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut s = ParamStore::new(1);
        let id = s.alloc_with(Tensor::scalar(1.0));
        let mut adam = Adam::new(0.01, 0.5);
        for _ in 0..200 {
            // Zero task gradient: only decay acts.
            adam.step(&mut s);
        }
        assert!(s.value(id).item().abs() < 0.5);
    }

    #[test]
    fn zero_grads_resets() {
        let mut s = ParamStore::new(0);
        let id = s.alloc_with(Tensor::scalar(1.0));
        s.accumulate_grad(id, &Tensor::scalar(2.0));
        assert_eq!(s.grad(id).item(), 2.0);
        s.zero_grads();
        assert_eq!(s.grad(id).item(), 0.0);
    }
}
