//! From-scratch graph neural networks for LISA's label derivation.
//!
//! The paper implements its models with PyTorch Geometric; this crate
//! re-implements the complete stack in pure Rust (see DESIGN.md
//! "Substitutions"):
//!
//! * [`Tensor`] — small dense matrices,
//! * [`Graph`] — define-by-run reverse-mode autodiff with the exact op set
//!   the paper's Eq. 1–7 need (matrix products, ReLU, guarded reciprocals,
//!   min/max/mean neighbour pooling, concatenation),
//! * [`ParamStore`]/[`Adam`] — parameter storage and the paper's optimiser
//!   (lr 0.001, weight decay 0.0005),
//! * [`models`] — the four label networks of §IV-B,
//! * [`metrics`] — the paper's accuracy definitions (§VI-B),
//! * [`dataset`] — architecture-agnostic training-sample containers.
//!
//! # Example
//!
//! ```
//! use lisa_gnn::models::EdgeMlp;
//! use lisa_gnn::dataset::EdgeSample;
//! use lisa_gnn::{metrics, TrainConfig};
//!
//! let samples: Vec<EdgeSample> = (0..24)
//!     .map(|i| EdgeSample {
//!         attrs: vec![f64::from(i % 6), 1.0],
//!         target: f64::from(i % 6),
//!     })
//!     .collect();
//! let mut net = EdgeMlp::new(2, 1);
//! net.train(&samples, &TrainConfig { epochs: 150, ..TrainConfig::paper() });
//! let preds: Vec<f64> = samples.iter().map(|s| net.predict(&s.attrs)).collect();
//! let truths: Vec<f64> = samples.iter().map(|s| s.target).collect();
//! let acc = metrics::accuracy(metrics::LabelKind::Temporal, &preds, &truths);
//! assert!(acc > 0.5);
//! ```

pub mod dataset;
mod graph;
pub mod io;
pub mod metrics;
pub mod models;
mod params;
mod plan;
mod tensor;
mod train;

pub use graph::{CsrAdjacency, Graph, VarId};
pub use params::{Adam, ParamGrads, ParamId, ParamStore};
pub use plan::{CompiledEdgeMlp, CompiledScheduleOrder, CompiledSpatial, PlanScratch};
pub use tensor::Tensor;
pub use train::{TrainConfig, TrainReport};
