//! Parallel training must be bit-identical to sequential training.
//!
//! The trainer splits each batch into fixed micro-batch units and
//! reduces the per-unit gradient sinks in ascending unit order, so the
//! floating-point summation tree never depends on the worker count.
//! These tests pin that contract end-to-end for all three models by
//! comparing the byte-exact serialised weights.

use lisa_gnn::dataset::{ContextEdgeSample, EdgeSample, NodeGraphSample};
use lisa_gnn::models::{EdgeMlp, ScheduleOrderNet, SpatialNet};
use lisa_gnn::TrainConfig;

fn config(parallelism: usize) -> TrainConfig {
    TrainConfig {
        epochs: 25,
        batch_size: 16,
        shuffle_seed: 5,
        parallelism,
        ..TrainConfig::paper()
    }
}

#[test]
fn edge_mlp_parallel_weights_are_byte_identical() {
    let samples: Vec<EdgeSample> = (0..48)
        .map(|i| EdgeSample {
            attrs: vec![f64::from(i % 5), f64::from(i % 3), 0.25 * f64::from(i % 7)],
            target: f64::from(i % 4),
        })
        .collect();
    let mut seq = EdgeMlp::new(3, 2);
    seq.train(&samples, &config(1));
    let mut par = EdgeMlp::new(3, 2);
    par.train(&samples, &config(4));
    assert_eq!(seq.export_weights(), par.export_weights());
}

#[test]
fn schedule_order_parallel_weights_are_byte_identical() {
    let samples: Vec<NodeGraphSample> = (0..24)
        .map(|c| {
            let n = 3 + c % 4;
            let node_attrs = (0..n)
                .map(|i| vec![i as f64, 1.0, (n - i) as f64])
                .collect();
            let mut neighbors = vec![Vec::new(); n];
            for i in 0..n - 1 {
                neighbors[i].push(i + 1);
                neighbors[i + 1].push(i);
            }
            NodeGraphSample {
                node_attrs,
                neighbors,
                targets: (0..n).map(|i| i as f64).collect(),
            }
        })
        .collect();
    let mut seq = ScheduleOrderNet::new(3, 2);
    seq.train(&samples, &config(1));
    let mut par = ScheduleOrderNet::new(3, 2);
    par.train(&samples, &config(4));
    assert_eq!(seq.export_weights(), par.export_weights());
}

#[test]
fn spatial_parallel_weights_are_byte_identical() {
    let samples: Vec<ContextEdgeSample> = (0..36)
        .map(|i| {
            let a = f64::from((i % 4) as u32) + 0.5;
            let neighbor_attrs = (0..i % 4).map(|k| vec![a + k as f64, 1.0]).collect();
            ContextEdgeSample {
                attrs: vec![a, f64::from((i % 3) as u32)],
                neighbor_attrs,
                target: f64::from((i % 5) as u32),
            }
        })
        .collect();
    let mut seq = SpatialNet::new(2, 2);
    seq.train(&samples, &config(1));
    let mut par = SpatialNet::new(2, 2);
    par.train(&samples, &config(4));
    assert_eq!(seq.export_weights(), par.export_weights());
}
