//! Minimal in-repo property-testing harness (the hermetic replacement for
//! `proptest`).
//!
//! A property is an ordinary `#[test]` that draws its inputs from a seeded
//! [`crate::Rng`] and runs its body over a fixed number of cases. The
//! [`props!`] macro generates the loop; on failure it reports the case
//! number and the concrete inputs (shrink-free: the inputs are printed
//! verbatim, no minimisation), then re-raises the panic so the test fails
//! normally. The case stream is derived from the property's name, so runs
//! are fully deterministic and a reported failure can be pinned as an
//! explicit regression test.
//!
//! # Example
//!
//! ```
//! lisa_rng::props! {
//!     cases = 32;
//!
//!     /// Addition commutes.
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```

use crate::Rng;

/// Derives the per-property base seed from its name (FNV-1a), so every
/// property gets an independent but reproducible case stream.
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Fresh input generator for case `case` of a property. Each case reseeds,
/// so a failure depends only on (property name, case index) — not on how
/// many values earlier cases consumed.
pub fn case_rng(name: &str, case: u32) -> Rng {
    Rng::seed_from_u64(seed_for(name) ^ (u64::from(case) << 32))
}

/// Prints the shrink-free failure report for a property case.
pub fn report(name: &str, case: u32, cases: u32, inputs: &str) {
    eprintln!(
        "property `{name}` failed at case {case}/{cases} with inputs: {inputs}\n\
         (deterministic: the stream derives from the property name; pin this \
         case as a named regression test)"
    );
}

/// Declares seeded property tests.
///
/// Each `fn name(arg in range, ...) { body }` item becomes a `#[test]`
/// running `cases` iterations; `arg in range` draws through
/// [`Rng::gen_range`], so any range accepted there works. Use plain
/// `assert!`/`assert_eq!` in the body.
#[macro_export]
macro_rules! props {
    (
        cases = $cases:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $range:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cases: u32 = $cases;
                for __case in 0..__cases {
                    let mut __rng = $crate::prop::case_rng(stringify!($name), __case);
                    $(let $arg = __rng.gen_range($range);)+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(__panic) = __outcome {
                        let mut __inputs = String::new();
                        $(
                            if !__inputs.is_empty() {
                                __inputs.push_str(", ");
                            }
                            __inputs.push_str(concat!(stringify!($arg), " = "));
                            __inputs.push_str(&format!("{:?}", $arg));
                        )+
                        $crate::prop::report(
                            stringify!($name), __case, __cases, &__inputs,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(seed_for("alpha"), seed_for("beta"));
        assert_eq!(seed_for("alpha"), seed_for("alpha"));
    }

    #[test]
    fn case_rngs_are_independent_and_stable() {
        let mut a = case_rng("prop", 0);
        let mut b = case_rng("prop", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = case_rng("prop", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    mod macro_usage {
        crate::props! {
            cases = 16;

            /// The macro wires ranges and bodies correctly.
            fn generated_inputs_are_in_range(x in 5u64..10, y in 0usize..=3) {
                assert!((5..10).contains(&x));
                assert!(y <= 3);
            }

            /// Multiple arguments draw from one per-case stream.
            fn supports_float_ranges(p in 0.0f64..1.0, q in -2.0f64..2.0) {
                assert!((0.0..1.0).contains(&p));
                assert!((-2.0..2.0).contains(&q));
            }
        }
    }

    #[test]
    fn failing_property_panics() {
        let result = std::panic::catch_unwind(|| {
            let cases = 8u32;
            for case in 0..cases {
                let mut rng = case_rng("always_fails", case);
                let x = rng.gen_range(0u64..100);
                assert!(x > 1000, "impossible");
            }
        });
        assert!(result.is_err());
    }
}
