//! Vendored deterministic random-number generation for the whole
//! workspace.
//!
//! The build environment is hermetic: no registry crates are available, so
//! this crate replaces `rand` with a small, well-known generator pair —
//! [SplitMix64] expands a `u64` seed into the state of a [xoshiro256\*\*]
//! generator, which produces the stream. Both algorithms are public-domain
//! reference designs by Blackman and Vigna with published test vectors
//! (checked in `tests`), so the stream is stable across platforms and
//! toolchain upgrades — a hard requirement for the paper's seeded SA
//! mapping and GNN training runs to stay reproducible.
//!
//! The API mirrors the subset of `rand` the workspace used (`seed_from_u64`,
//! `gen_range`, `gen`, `gen_bool`, `shuffle`), so call sites migrate by
//! swapping `rand::rngs::StdRng` for [`Rng`].
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//! [xoshiro256\*\*]: https://prng.di.unimi.it/xoshiro256starstar.c

pub mod prop;

use std::ops::{Range, RangeInclusive};

/// Seedable xoshiro256\*\* generator. The only RNG in the workspace.
///
/// # Example
///
/// ```
/// use lisa_rng::Rng;
///
/// let mut rng = Rng::seed_from_u64(42);
/// let die = rng.gen_range(1..=6u32);
/// assert!((1..=6).contains(&die));
/// let p: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed` by
    /// SplitMix64, per the xoshiro authors' seeding recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 raw bits of the stream (xoshiro256\*\* step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, span)`, unbiased (Lemire multiply-shift with
    /// rejection).
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    fn uniform_u64(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty range");
        let mut m = u128::from(self.next_u64()) * u128::from(span);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(span);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform sample from a range, mirroring `rand`'s `gen_range`.
    /// Supports `a..b` and `a..=b` over the workspace's integer types and
    /// `a..b` over `f64`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform sample of a whole type, mirroring `rand`'s `gen::<T>()`.
    /// `f64` draws from `[0, 1)` with 53 bits of precision.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// In-place Fisher–Yates shuffle, mirroring `SliceRandom::shuffle`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Sample {
    /// Draws one uniform value.
    fn sample(rng: &mut Rng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// `[0, 1)` from the top 53 bits, the standard double-precision recipe.
    fn sample(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample(self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.uniform_u64(span) as $t)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample(self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every u64 is valid.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.uniform_u64(span) as $t)
                }
            }
        )+
    };
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.gen::<f64>() * (self.end - self.start);
        // Rounding can land exactly on the excluded upper bound; fold that
        // measure-zero case back to the start like `rand` does.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference stream of splitmix64.c for seed 1234567: the seeding path
    /// must match the published algorithm bit-for-bit.
    #[test]
    fn splitmix_seeding_matches_reference() {
        // State expanded from seed 0 — first four splitmix64(0) outputs.
        let rng = Rng::seed_from_u64(0);
        assert_eq!(
            rng.s,
            [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
            ]
        );
    }

    /// xoshiro256** stepped by hand from a known state: first outputs of
    /// the reference implementation with state {1, 2, 3, 4}.
    #[test]
    fn xoshiro_stream_matches_reference() {
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    /// End-to-end golden values: the full seed → SplitMix64 → xoshiro
    /// pipeline for two seeds. Any change to these streams silently
    /// invalidates every recorded experiment, so they are pinned.
    #[test]
    fn seeded_stream_golden_values() {
        let mut rng = Rng::seed_from_u64(0);
        assert_eq!(
            [rng.next_u64(), rng.next_u64(), rng.next_u64()],
            [
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
            ]
        );
        let mut rng = Rng::seed_from_u64(2022);
        let first = rng.next_u64();
        let mut again = Rng::seed_from_u64(2022);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, 11091344671253066420, "seeds must not collide");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=5u32);
            assert_eq!(w, 5);
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
            let y = rng.gen_range(10..=12u64);
            assert!((10..=12).contains(&y));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        // Each bucket expects n/10 = 10_000; 4σ ≈ 380.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (9_500..=10_500).contains(&c),
                "bucket {i} count {c} far from uniform"
            );
        }
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = Rng::seed_from_u64(3);
        // Must not panic or hang (span overflows to 0).
        for _ in 0..100 {
            let _ = rng.gen_range(0..=u64::MAX);
        }
    }

    #[test]
    fn gen_f64_is_half_open_unit() {
        let mut rng = Rng::seed_from_u64(5);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((68_000..72_000).contains(&hits), "{hits} hits");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(17);
        for round in 0..50 {
            let mut v: Vec<usize> = (0..31).collect();
            rng.shuffle(&mut v);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..31).collect::<Vec<_>>(), "round {round}");
        }
    }

    #[test]
    fn shuffle_is_seeded_and_nontrivial() {
        let mut a = Rng::seed_from_u64(23);
        let mut b = Rng::seed_from_u64(23);
        let mut va: Vec<usize> = (0..64).collect();
        let mut vb = va.clone();
        let identity = va.clone();
        a.shuffle(&mut va);
        b.shuffle(&mut vb);
        assert_eq!(va, vb);
        assert_ne!(va, identity);
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut rng = Rng::seed_from_u64(29);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }
}
