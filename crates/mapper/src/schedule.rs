//! Minimum-II computation and the II search driver.
//!
//! Per the paper (§VI): "The compiler starts with target II equal to MII
//! and increments by one if it cannot map, until the target II exceeds the
//! maximum II." All three mappers (SA, LISA, exact) plug into the same
//! [`IiSearch`] driver through the [`IiMapper`] trait, so compilation-time
//! comparisons (Fig. 11) measure identical machinery around the algorithm
//! under test.

use std::time::{Duration, Instant};

use lisa_arch::power::{Activity, PowerModel};
use lisa_arch::Accelerator;
use lisa_dfg::{analysis, Dfg};

use crate::Mapping;

/// Resource-constrained minimum II: every DFG node needs one FU slot, so
/// `ceil(nodes / PEs)` (the paper's "theoretical lowest execution time",
/// §V-C).
pub fn res_mii(dfg: &Dfg, acc: &Accelerator) -> u32 {
    (dfg.node_count() as u32)
        .div_ceil(acc.pe_count() as u32)
        .max(1)
}

/// Minimum II: the larger of the resource and recurrence bounds.
pub fn mii(dfg: &Dfg, acc: &Accelerator) -> u32 {
    res_mii(dfg, acc).max(analysis::rec_mii(dfg))
}

/// A mapping algorithm that attempts one fixed II at a time.
pub trait IiMapper {
    /// Short display name ("SA", "LISA", "ILP"), used by the experiment
    /// harness.
    fn name(&self) -> &str;

    /// Attempts to produce a complete mapping at exactly `ii`. Returns
    /// `None` on failure (resources exhausted, time budget hit, ...).
    fn map_at_ii<'a>(&mut self, dfg: &'a Dfg, acc: &'a Accelerator, ii: u32)
        -> Option<Mapping<'a>>;
}

/// Result of an II search: the metrics every figure of §VI consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingOutcome {
    /// Mapper name.
    pub mapper: String,
    /// DFG name.
    pub dfg: String,
    /// Accelerator name.
    pub accelerator: String,
    /// Achieved II, or `None` if no II up to the maximum mapped.
    pub ii: Option<u32>,
    /// Wall-clock compilation time across all attempted IIs (Fig. 11; for
    /// failures this is the full termination time, as in the paper).
    pub compile_time: Duration,
    /// Routing cells used by the successful mapping (label quality metric).
    pub routing_cells: usize,
    /// Resource activity of the successful mapping (Fig. 10 power input).
    pub activity: Activity,
    /// Executed operations per iteration (for MOPS).
    pub ops: usize,
    /// Number of II values attempted.
    pub attempts: u32,
}

impl MappingOutcome {
    /// Whether the search found a mapping.
    pub fn mapped(&self) -> bool {
        self.ii.is_some()
    }

    /// Power efficiency in MOPS/W for the Fig. 10 comparison, or `None`
    /// if the benchmark did not map.
    pub fn mops_per_watt(&self, acc: &Accelerator, pm: &PowerModel) -> Option<f64> {
        let ii = self.ii?;
        Some(pm.mops_per_watt(acc, self.ops, self.activity, ii))
    }
}

/// II search driver: tries MII, MII+1, ... up to the configuration depth.
#[derive(Debug, Clone, Copy, Default)]
pub struct IiSearch {
    /// Optional cap below the accelerator's maximum II (used by tests to
    /// bound runtimes).
    pub max_ii: Option<u32>,
}

impl IiSearch {
    /// Runs the search and returns the outcome, discarding the mapping.
    pub fn run(&self, mapper: &mut dyn IiMapper, dfg: &Dfg, acc: &Accelerator) -> MappingOutcome {
        self.run_with_mapping(mapper, dfg, acc).0
    }

    /// Runs the search and also returns the successful mapping (used by
    /// the label extractor).
    pub fn run_with_mapping<'a>(
        &self,
        mapper: &mut dyn IiMapper,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
    ) -> (MappingOutcome, Option<Mapping<'a>>) {
        let start = Instant::now();
        let lo = mii(dfg, acc);
        let hi = self.max_ii.unwrap_or(acc.max_ii()).min(acc.max_ii());
        let mut attempts = 0;
        for ii in lo..=hi.max(lo) {
            if ii > hi {
                break;
            }
            attempts += 1;
            if let Some(m) = mapper.map_at_ii(dfg, acc, ii) {
                debug_assert!(m.is_complete());
                debug_assert_eq!(m.verify(), Ok(()));
                let outcome = MappingOutcome {
                    mapper: mapper.name().to_string(),
                    dfg: dfg.name().to_string(),
                    accelerator: acc.name().to_string(),
                    ii: Some(ii),
                    compile_time: start.elapsed(),
                    routing_cells: m.routing_cells(),
                    activity: m.activity(),
                    ops: dfg.op_count(),
                    attempts,
                };
                return (outcome, Some(m));
            }
        }
        (
            MappingOutcome {
                mapper: mapper.name().to_string(),
                dfg: dfg.name().to_string(),
                accelerator: acc.name().to_string(),
                ii: None,
                compile_time: start.elapsed(),
                routing_cells: 0,
                activity: Activity::default(),
                ops: dfg.op_count(),
                attempts,
            },
            None,
        )
    }

    /// Parallel variant of [`run`](Self::run); see
    /// [`run_with_mapping_par`](Self::run_with_mapping_par).
    pub fn run_par<M>(
        &self,
        mapper: &M,
        dfg: &Dfg,
        acc: &Accelerator,
        parallelism: usize,
    ) -> MappingOutcome
    where
        M: IiMapper + Clone + Send + Sync,
    {
        self.run_with_mapping_par(mapper, dfg, acc, parallelism).0
    }

    /// Speculative parallel II search. IIs are attempted in waves of
    /// `parallelism`; every wave is fully joined before judging, and the
    /// smallest successful II wins, so the outcome — including the
    /// `attempts` count, which bills exactly the IIs the sequential search
    /// would have tried — is byte-identical to
    /// [`run_with_mapping`](Self::run_with_mapping) for any thread count.
    /// Only `compile_time` (wall clock) differs.
    ///
    /// Each attempt runs on a clone of `mapper`, so this requires a mapper
    /// whose `map_at_ii` is a pure function of `(self, dfg, acc, ii)` —
    /// true for both annealing mappers, whose state is seed + parameters.
    pub fn run_with_mapping_par<'a, M>(
        &self,
        mapper: &M,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        parallelism: usize,
    ) -> (MappingOutcome, Option<Mapping<'a>>)
    where
        M: IiMapper + Clone + Send + Sync,
    {
        let start = Instant::now();
        let lo = mii(dfg, acc);
        let hi = self.max_ii.unwrap_or(acc.max_ii()).min(acc.max_ii());
        let stride = parallelism.max(1) as u32;
        let mut attempts = 0;
        let mut ii = lo;
        while ii <= hi {
            let wave_end = hi.min(ii + stride - 1);
            let targets: Vec<u32> = (ii..=wave_end).collect();
            let results = crate::portfolio::par_map(parallelism, targets, |_, target| {
                let mut chain = mapper.clone();
                chain.map_at_ii(dfg, acc, target)
            });
            for (offset, result) in results.into_iter().enumerate() {
                attempts += 1;
                if let Some(m) = result {
                    debug_assert!(m.is_complete());
                    debug_assert_eq!(m.verify(), Ok(()));
                    let outcome = MappingOutcome {
                        mapper: mapper.name().to_string(),
                        dfg: dfg.name().to_string(),
                        accelerator: acc.name().to_string(),
                        ii: Some(ii + offset as u32),
                        compile_time: start.elapsed(),
                        routing_cells: m.routing_cells(),
                        activity: m.activity(),
                        ops: dfg.op_count(),
                        attempts,
                    };
                    return (outcome, Some(m));
                }
            }
            ii = wave_end + 1;
        }
        (
            MappingOutcome {
                mapper: mapper.name().to_string(),
                dfg: dfg.name().to_string(),
                accelerator: acc.name().to_string(),
                ii: None,
                compile_time: start.elapsed(),
                routing_cells: 0,
                activity: Activity::default(),
                ops: dfg.op_count(),
                attempts,
            },
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::OpKind;

    #[test]
    fn res_mii_rounds_up() {
        let mut g = Dfg::new("g");
        for i in 0..17 {
            g.add_node(OpKind::Add, format!("n{i}"));
        }
        let acc = Accelerator::cgra("4x4", 4, 4);
        assert_eq!(res_mii(&g, &acc), 2);
        let acc9 = Accelerator::cgra("3x3", 3, 3);
        assert_eq!(res_mii(&g, &acc9), 2);
        let acc64 = Accelerator::cgra("8x8", 8, 8);
        assert_eq!(res_mii(&g, &acc64), 1);
    }

    #[test]
    fn mii_takes_recurrence_into_account() {
        let mut g = Dfg::new("g");
        let a = g.add_node(OpKind::Add, "a");
        let b = g.add_node(OpKind::Mul, "b");
        let c = g.add_node(OpKind::Add, "c");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(b, c).unwrap();
        g.add_recurrence_edge(c, a, 1).unwrap();
        let acc = Accelerator::cgra("4x4", 4, 4);
        // 3-op cycle at distance 1: RecMII 3 > ResMII 1.
        assert_eq!(mii(&g, &acc), 3);
    }

    #[derive(Clone)]
    struct FailThenSucceed {
        succeed_at: u32,
    }

    impl IiMapper for FailThenSucceed {
        fn name(&self) -> &str {
            "stub"
        }

        fn map_at_ii<'a>(
            &mut self,
            dfg: &'a Dfg,
            acc: &'a Accelerator,
            ii: u32,
        ) -> Option<Mapping<'a>> {
            if ii < self.succeed_at {
                return None;
            }
            // One-node DFG maps trivially.
            let mut m = Mapping::new(dfg, acc, ii).ok()?;
            m.place(lisa_dfg::NodeId::new(0), lisa_arch::PeId::new(0), 0)
                .ok()?;
            Some(m)
        }
    }

    #[test]
    fn search_increments_ii_until_success() {
        let mut g = Dfg::new("one");
        g.add_node(OpKind::Add, "a");
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut mapper = FailThenSucceed { succeed_at: 3 };
        let outcome = IiSearch::default().run(&mut mapper, &g, &acc);
        assert_eq!(outcome.ii, Some(3));
        assert_eq!(outcome.attempts, 3);
        assert!(outcome.mapped());
    }

    #[test]
    fn search_reports_failure_after_max_ii() {
        let mut g = Dfg::new("one");
        g.add_node(OpKind::Add, "a");
        let acc = Accelerator::cgra("2x2", 2, 2).with_max_ii(4);
        let mut mapper = FailThenSucceed { succeed_at: 99 };
        let outcome = IiSearch::default().run(&mut mapper, &g, &acc);
        assert_eq!(outcome.ii, None);
        assert_eq!(outcome.attempts, 4);
        assert!(!outcome.mapped());
    }

    #[test]
    fn search_cap_respected() {
        let mut g = Dfg::new("one");
        g.add_node(OpKind::Add, "a");
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut mapper = FailThenSucceed { succeed_at: 99 };
        let outcome = IiSearch { max_ii: Some(2) }.run(&mut mapper, &g, &acc);
        assert_eq!(outcome.attempts, 2);
    }

    #[test]
    fn parallel_search_matches_sequential_for_any_thread_count() {
        let mut g = Dfg::new("one");
        g.add_node(OpKind::Add, "a");
        let acc = Accelerator::cgra("2x2", 2, 2).with_max_ii(6);
        let sequential = IiSearch::default().run(&mut FailThenSucceed { succeed_at: 3 }, &g, &acc);
        for threads in [1, 2, 4, 8] {
            let par =
                IiSearch::default().run_par(&FailThenSucceed { succeed_at: 3 }, &g, &acc, threads);
            assert_eq!(par.ii, sequential.ii, "threads {threads}");
            // Speculative wave attempts beyond the winner are not billed.
            assert_eq!(par.attempts, sequential.attempts, "threads {threads}");
        }
    }

    #[test]
    fn parallel_search_failure_bills_every_ii() {
        let mut g = Dfg::new("one");
        g.add_node(OpKind::Add, "a");
        let acc = Accelerator::cgra("2x2", 2, 2).with_max_ii(4);
        let outcome = IiSearch::default().run_par(&FailThenSucceed { succeed_at: 99 }, &g, &acc, 3);
        assert_eq!(outcome.ii, None);
        assert_eq!(outcome.attempts, 4);
    }
}
