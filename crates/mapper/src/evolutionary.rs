//! Evolutionary lane: a deterministic population mapper.
//!
//! "Evolutionary Mapping of Neural Networks to Spatial Accelerators"
//! (PAPERS.md) shows population-based search covering regimes where a
//! single annealing chain stalls: a population holds several distinct
//! placement basins at once, and crossover moves whole placement
//! *regions* between them instead of re-deriving each from scratch.
//! This lane reuses the annealer's substrate wholesale:
//!
//! * **Crossover** transplants parent B's placements inside an
//!   RNG-chosen time window into a clone of elite parent A — under one
//!   transaction of the journal, so a worsening transplant rolls back to
//!   the parent in O(changes) instead of re-cloning.
//! * **Mutation** is the annealer's own [`movement`] generator at the
//!   coldest temperature (greedy accept), sharing its movement filter
//!   gating and router-work accounting.
//! * **Seeding** borrows the constructive lane's one-pass mapping as
//!   individual 0, so the population starts from a strong incumbent
//!   bound rather than a uniformly random placement.
//!
//! Determinism: every draw comes from the lane's seeded [`Rng`], the
//! population is iterated in index order, and survivors are ranked by
//! `(cost, index)` with [`f64::total_cmp`] — reruns are byte-identical.
//! Like the annealer, the lane returns `Some` only for a *complete*
//! mapping; the wall-clock budget is [`SaParams::time_limit`].

use std::time::Instant;

use lisa_arch::Accelerator;
use lisa_dfg::Dfg;
use lisa_events::{EventSink, PipelineEvent};
use lisa_rng::Rng;

use crate::constructive::construct;
use crate::predictor::{FilterStats, MovementScorer};
use crate::sa::{
    mapping_cost, movement, place_nodes, route_all, MoveBuffers, MoveStats, MovementVerdict,
    SaParams, VanillaPolicy,
};
use crate::strategy::SearchStrategy;
use crate::Mapping;

/// Population shape of the evolutionary lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvoParams {
    /// Individuals per generation.
    pub population: usize,
    /// Survivors copied unchanged into the next generation (the best
    /// `elite` by `(cost, index)`).
    pub elite: usize,
    /// [`movement`] mutations applied to each child per generation.
    pub mutations_per_child: u32,
    /// Generation budget.
    pub generations: u32,
}

impl EvoParams {
    /// Derives a population budget matched to the annealer's: the SA
    /// schedule's total movement count (temperature levels ×
    /// `moves_per_temp`, levels counted by replaying the cooling loop —
    /// no floating-point log) divided across the population's mutations,
    /// clamped to a sane generation range.
    pub fn from_sa(sa: &SaParams) -> Self {
        let population = 6;
        let mutations_per_child = 4;
        let mut levels: u64 = 0;
        let mut t = sa.initial_temp;
        while t > sa.min_temp && levels < 10_000 {
            t *= sa.cooling;
            levels += 1;
        }
        let budget = levels * u64::from(sa.moves_per_temp);
        let generations =
            (budget / (population as u64 * u64::from(mutations_per_child))).clamp(4, 48) as u32;
        EvoParams {
            population,
            elite: 2,
            mutations_per_child,
            generations,
        }
    }
}

/// The evolutionary lane. See the module docs.
pub struct EvolutionaryStrategy {
    sa: SaParams,
    evo: EvoParams,
}

impl EvolutionaryStrategy {
    /// A lane whose population budget is derived from `sa` (which also
    /// supplies the movement parameters and the time limit).
    pub fn new(sa: SaParams) -> Self {
        let evo = EvoParams::from_sa(&sa);
        EvolutionaryStrategy { sa, evo }
    }

    /// A lane with an explicit population shape.
    pub fn with_params(sa: SaParams, evo: EvoParams) -> Self {
        EvolutionaryStrategy { sa, evo }
    }

    /// The derived population shape.
    pub fn params(&self) -> &EvoParams {
        &self.evo
    }

    /// The best complete individual by `(cost, index)`, if any.
    fn best_complete<'a>(individuals: &[(f64, Mapping<'a>)]) -> Option<Mapping<'a>> {
        let mut best: Option<(f64, &Mapping<'a>)> = None;
        for (cost, m) in individuals {
            if !m.is_complete() {
                continue;
            }
            match &best {
                Some((c, _)) if *cost >= *c => {}
                _ => best = Some((*cost, m)),
            }
        }
        best.map(|(_, m)| m.clone())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner<'a>(
        &self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        ii: u32,
        seed: u64,
        filter: Option<&dyn MovementScorer>,
        fstats: &mut FilterStats,
    ) -> Option<Mapping<'a>> {
        let start = Instant::now();
        let mut rng = Rng::seed_from_u64(seed);
        let policy = VanillaPolicy;
        let mut stats = MoveStats::default();
        let mut bufs = MoveBuffers::default();
        let want_features = filter.is_some();
        let pop = self.evo.population.max(2);
        let elite = self.evo.elite.clamp(1, pop - 1);

        // Individual 0: the constructive lane's one-pass mapping — the
        // incumbent bound. (Also proves `ii` is feasible for the fabric.)
        let mut individuals: Vec<(f64, Mapping<'a>)> = Vec::with_capacity(pop);
        let (seeded, cstats) = construct(dfg, acc, ii)?;
        fstats.merge(&cstats);
        individuals.push((mapping_cost(&seeded), seeded));
        // The rest start from random greedy placements, each consuming
        // the lane RNG in index order.
        while individuals.len() < pop {
            let mut m = Mapping::new(dfg, acc, ii).ok()?;
            bufs.nodes.clear();
            bufs.nodes.extend(dfg.node_ids());
            place_nodes(&policy, &mut m, &mut bufs, stats, &mut rng);
            fstats.router_invocations += route_all(&policy, &mut m, &mut bufs);
            individuals.push((mapping_cost(&m), m));
        }
        if let Some(m) = Self::best_complete(&individuals) {
            return Some(m);
        }

        let mut order: Vec<usize> = Vec::with_capacity(pop);
        for _generation in 0..self.evo.generations {
            if start.elapsed() >= self.sa.time_limit {
                return None;
            }
            // Rank by (cost, index): total_cmp keeps the order total and
            // the index tiebreak keeps reruns byte-identical.
            order.clear();
            order.extend(0..pop);
            order.sort_by(|&a, &b| {
                individuals[a]
                    .0
                    .total_cmp(&individuals[b].0)
                    .then(a.cmp(&b))
            });

            let mut next: Vec<(f64, Mapping<'a>)> = Vec::with_capacity(pop);
            for &i in order.iter().take(elite) {
                next.push(individuals[i].clone());
            }
            for slot in elite..pop {
                let (parent_cost, parent_a) = &individuals[order[slot % elite]];
                let (_, parent_b) = &individuals[order[rng.gen_range(0..pop)]];
                let mut cost = *parent_cost;
                let mut child = parent_a.clone();

                // Crossover: transplant parent B's placements inside one
                // time window under a single journal transaction.
                let window = child.schedule_window().max(1);
                let t0 = rng.gen_range(0..window);
                let width = rng.gen_range(1..=window);
                let hi = t0.saturating_add(width).min(window);
                child.begin_txn();
                for n in dfg.node_ids() {
                    if let Some(p) = child.placement(n) {
                        if p.time >= t0 && p.time < hi {
                            child.unplace(n);
                        }
                    }
                }
                for n in dfg.node_ids() {
                    if child.placement(n).is_some() {
                        continue;
                    }
                    if let Some(p) = parent_b.placement(n) {
                        if p.time >= t0 && p.time < hi {
                            let _ = child.place(n, p.pe, p.time);
                        }
                    }
                }
                // Fill the holes the transplant could not cover, then
                // route everything that became routable.
                child.unplaced_nodes_into(&mut bufs.nodes);
                place_nodes(&policy, &mut child, &mut bufs, stats, &mut rng);
                fstats.router_invocations += route_all(&policy, &mut child, &mut bufs);
                let crossed = mapping_cost(&child);
                if crossed <= cost {
                    child.commit();
                    cost = crossed;
                } else {
                    child.rollback();
                }

                // Mutation: the annealer's movement generator at the
                // coldest temperature (greedy accept), filter-gated.
                for _ in 0..self.evo.mutations_per_child {
                    stats.attempted += 1;
                    child.begin_txn();
                    let verdict = movement(
                        &policy,
                        &mut child,
                        &self.sa,
                        &mut bufs,
                        stats,
                        &mut rng,
                        self.sa.min_temp,
                        filter,
                        fstats,
                        want_features,
                    );
                    match verdict {
                        MovementVerdict::Rejected { .. } => child.rollback(),
                        MovementVerdict::Admitted => {
                            let mutated = mapping_cost(&child);
                            if mutated <= cost {
                                if mutated < cost {
                                    stats.accepted += 1;
                                }
                                child.commit();
                                cost = mutated;
                            } else {
                                child.rollback();
                            }
                        }
                    }
                }
                next.push((cost, child));
            }
            individuals = next;
            if let Some(m) = Self::best_complete(&individuals) {
                return Some(m);
            }
        }
        None
    }
}

impl SearchStrategy for EvolutionaryStrategy {
    fn name(&self) -> &'static str {
        "evolutionary"
    }

    fn run<'a>(
        &self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        ii: u32,
        lane: usize,
        seed: u64,
        sink: &EventSink,
        filter: Option<&dyn MovementScorer>,
    ) -> (Option<Mapping<'a>>, FilterStats) {
        let mut fstats = FilterStats::default();
        let result = self.run_inner(dfg, acc, ii, seed, filter, &mut fstats);
        if sink.is_active() {
            sink.emit(PipelineEvent::SaFilterSummary {
                chain: lane,
                ii,
                proposals: fstats.proposals,
                admitted: fstats.admitted,
                rejected: fstats.rejected,
                audited: fstats.audited,
                false_rejects: fstats.false_rejects,
                router_invocations: fstats.router_invocations,
                audit_router_invocations: fstats.audit_router_invocations,
            });
        }
        (result, fstats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::polybench;

    #[test]
    fn budget_derivation_is_clamped_and_deterministic() {
        let paper = EvoParams::from_sa(&SaParams::paper());
        assert_eq!(paper, EvoParams::from_sa(&SaParams::paper()));
        assert!((4..=48).contains(&paper.generations));
        let fast = EvoParams::from_sa(&SaParams::fast());
        assert!((4..=48).contains(&fast.generations));
    }

    #[test]
    fn reruns_are_byte_identical_and_complete_mappings_verify() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        let dfg = polybench::kernel("gemm").unwrap();
        let lane = EvolutionaryStrategy::new(SaParams::fast());
        let sink = EventSink::null();
        let (a, sa) = lane.run(&dfg, &acc, 8, 1, 11, &sink, None);
        let (b, sb) = lane.run(&dfg, &acc, 8, 1, 11, &sink, None);
        assert_eq!(
            a.as_ref().map(|m| format!("{m:?}")),
            b.as_ref().map(|m| format!("{m:?}"))
        );
        assert_eq!(sa.proposals, sb.proposals);
        assert_eq!(sa.router_invocations, sb.router_invocations);
        if let Some(m) = a {
            assert!(m.is_complete());
            m.verify().unwrap();
        }
    }

    #[test]
    fn distinct_seeds_consume_distinct_trajectories() {
        // II 3 is below what the constructive seed can finish on gemm, so
        // the generational loop (and the lane RNG) actually runs.
        let acc = Accelerator::cgra("4x4", 4, 4);
        let dfg = polybench::kernel("gemm").unwrap();
        let lane = EvolutionaryStrategy::new(SaParams::fast());
        let sink = EventSink::null();
        let (_, s1) = lane.run(&dfg, &acc, 3, 0, 3, &sink, None);
        let (_, s2) = lane.run(&dfg, &acc, 3, 0, 4, &sink, None);
        // Not a strict requirement of the contract, but with the fast
        // budget the two seeds should not do literally identical work.
        assert!(
            s1.router_invocations != s2.router_invocations || s1.proposals != s2.proposals,
            "suspiciously identical trajectories across seeds"
        );
    }
}
