//! Mapping state: placements, routes, and MRRG occupancy.
//!
//! A [`Mapping`] binds one DFG to one `(accelerator, II)` pair and tracks
//! which MRRG resources are in use. All mappers (SA, label-aware SA, exact
//! branch-and-bound) mutate a `Mapping` through the same four operations —
//! [`place`](Mapping::place), [`unplace`](Mapping::unplace),
//! [`route_edge`](Mapping::route_edge), [`unroute_edge`](Mapping::unroute_edge)
//! — so resource semantics are enforced in exactly one place.

use lisa_arch::power::Activity;
use lisa_arch::{Accelerator, ArchError, Mrrg, PeId, Resource};
use lisa_dfg::{Dfg, EdgeId, NodeId};

use crate::router::{self, RouterScratch};
use crate::MapperError;

/// Where and when a node executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The PE whose FU executes the operation.
    pub pe: PeId,
    /// Absolute schedule time (cycles from iteration start). Resource
    /// occupancy folds this modulo II.
    pub time: u32,
}

/// One occupied step of a route: `resource` holds the value during `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteStep {
    /// The occupied resource.
    pub resource: Resource,
    /// Absolute cycle during which the value sits on the resource.
    pub time: u32,
}

/// Occupancy of one `(resource, modulo slot)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    Free,
    /// An operation executes here.
    Op(NodeId),
    /// Route traffic: the value produced by `value` passes at absolute
    /// `time`; `refs` edges share the step (net-based fanout reuse).
    Route {
        value: NodeId,
        time: u32,
        refs: u16,
    },
}

/// One reversible mutation, recorded while a transaction is open so
/// [`Mapping::rollback`] can undo it. Deltas are replayed in reverse
/// order, so each stores exactly the state its inverse needs.
#[derive(Debug, Clone)]
enum Delta {
    /// `place(node)` succeeded.
    Place(NodeId),
    /// `unplace(node)` removed this placement (its ripped routes are
    /// journaled separately as `Unroute` deltas by `unroute_edge`).
    Unplace(NodeId, Placement),
    /// `route_edge(edge)` succeeded.
    Route(EdgeId),
    /// `unroute_edge(edge)` released these steps.
    Unroute(EdgeId, Vec<RouteStep>),
}

/// A (possibly partial) mapping of a DFG onto an accelerator at a fixed II.
///
/// # Example
///
/// ```
/// use lisa_dfg::{Dfg, OpKind};
/// use lisa_arch::{Accelerator, PeId};
/// use lisa_mapper::Mapping;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dfg = Dfg::new("t");
/// let a = dfg.add_node(OpKind::Load, "a");
/// let b = dfg.add_node(OpKind::Store, "b");
/// let e = dfg.add_data_edge(a, b)?;
///
/// let acc = Accelerator::cgra("2x2", 2, 2);
/// let mut m = Mapping::new(&dfg, &acc, 1)?;
/// m.place(a, PeId::new(0), 0)?;
/// m.place(b, PeId::new(1), 1)?;
/// m.route_edge(e)?;
/// assert!(m.is_complete());
/// m.verify()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mapping<'a> {
    dfg: &'a Dfg,
    mrrg: Mrrg<'a>,
    window: u32,
    asap: Vec<u32>,
    alap: Vec<u32>,
    placements: Vec<Option<Placement>>,
    routes: Vec<Option<Vec<RouteStep>>>,
    cells: Vec<Cell>,
    // Incremental cost counters, maintained by every mutator so
    // `mapping_cost` is O(1) instead of rescanning grids per movement.
    unplaced: usize,
    unrouted: usize,
    route_cells: usize,
    lateness: u64,
    // Open-transaction journal (empty outside transactions).
    journal: Vec<Delta>,
    txn: bool,
    scratch: RouterScratch,
}

/// Routing cost of placing a step for `value` on `(resource, time)`:
/// `Some(1)` for a free cell, `Some(0)` when the cell already carries
/// the same value at the same absolute time (fanout reuse), `None`
/// otherwise. A free function over the occupancy grid so `route_edge`
/// can lend the router its scratch and the cost closure simultaneously.
fn step_cost(
    cells: &[Cell],
    mrrg: &Mrrg<'_>,
    resource: Resource,
    time: u32,
    value: NodeId,
) -> Option<u32> {
    match cells[mrrg.index_at(resource, time)] {
        Cell::Free => Some(1),
        Cell::Op(_) => None,
        Cell::Route {
            value: v, time: t, ..
        } => (v == value && t == time).then_some(0),
    }
}

impl<'a> Mapping<'a> {
    /// Extra schedule slack beyond the critical path, in multiples of II.
    /// Placement times live in `[0, critical_path + SLACK_IIS * II)`.
    pub const SLACK_IIS: u32 = 2;

    /// Creates an empty mapping for `dfg` on `acc` at initiation interval
    /// `ii`.
    ///
    /// # Errors
    ///
    /// Fails if the II is zero or exceeds the accelerator's configuration
    /// depth.
    pub fn new(dfg: &'a Dfg, acc: &'a Accelerator, ii: u32) -> Result<Self, ArchError> {
        let mrrg = Mrrg::new(acc, ii)?;
        let cells = vec![Cell::Free; mrrg.resource_count()];
        let asap = lisa_dfg::analysis::asap(dfg);
        let alap = lisa_dfg::analysis::alap(dfg);
        let window = asap.iter().copied().max().map_or(1, |m| m + 1) + Self::SLACK_IIS * ii;
        Ok(Mapping {
            dfg,
            mrrg,
            window,
            asap,
            alap,
            placements: vec![None; dfg.node_count()],
            routes: vec![None; dfg.edge_count()],
            cells,
            unplaced: dfg.node_count(),
            unrouted: dfg.edge_count(),
            route_cells: 0,
            lateness: 0,
            journal: Vec::new(),
            txn: false,
            scratch: RouterScratch::default(),
        })
    }

    /// The DFG being mapped.
    pub fn dfg(&self) -> &'a Dfg {
        self.dfg
    }

    /// The accelerator being mapped onto.
    pub fn accelerator(&self) -> &Accelerator {
        self.mrrg.accelerator()
    }

    /// The MRRG underlying this mapping.
    pub fn mrrg(&self) -> &Mrrg<'a> {
        &self.mrrg
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.mrrg.ii()
    }

    /// Exclusive upper bound on schedule times.
    pub fn schedule_window(&self) -> u32 {
        self.window
    }

    /// ASAP level of a node (cached at construction): no schedule can
    /// execute a node earlier than its data depth, so placement candidates
    /// start here regardless of which neighbours are currently placed.
    pub fn asap_level(&self, node: NodeId) -> u32 {
        self.asap[node.index()]
    }

    /// ALAP level of a node (cached at construction). Slack is
    /// `alap_level - asap_level`; policies use it to prioritise
    /// critical-path nodes without recomputing the analysis per movement.
    pub fn alap_level(&self, node: NodeId) -> u32 {
        self.alap[node.index()]
    }

    /// Number of nodes without a placement (O(1) running counter).
    pub fn unplaced_count(&self) -> usize {
        self.unplaced
    }

    /// Number of edges without a route (O(1) running counter).
    pub fn unrouted_count(&self) -> usize {
        self.unrouted
    }

    /// Sum of placement times over all placed nodes (O(1) running
    /// counter) — the schedule-compactness term of the SA cost.
    pub fn lateness(&self) -> u64 {
        self.lateness
    }

    /// Opens a transaction: subsequent mutations are journaled until
    /// [`commit`](Self::commit) or [`rollback`](Self::rollback).
    /// Transactions do not nest.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already open.
    pub fn begin_txn(&mut self) {
        assert!(!self.txn, "transactions do not nest");
        debug_assert!(self.journal.is_empty());
        self.txn = true;
    }

    /// Closes the open transaction, keeping all journaled mutations.
    pub fn commit(&mut self) {
        debug_assert!(self.txn, "commit without begin_txn");
        self.journal.clear();
        self.txn = false;
    }

    /// Closes the open transaction, undoing every journaled mutation in
    /// reverse order. Afterwards the mapping is byte-identical to its
    /// state at [`begin_txn`](Self::begin_txn) (the annealer
    /// debug-asserts this against a snapshot clone).
    pub fn rollback(&mut self) {
        debug_assert!(self.txn, "rollback without begin_txn");
        self.txn = false;
        while let Some(delta) = self.journal.pop() {
            match delta {
                Delta::Place(node) => {
                    let p = self.placements[node.index()]
                        .take()
                        .expect("journaled place left a placement");
                    let idx = self.mrrg.fu_index_at(p.pe, p.time);
                    debug_assert_eq!(self.cells[idx], Cell::Op(node));
                    self.cells[idx] = Cell::Free;
                    self.unplaced += 1;
                    self.lateness -= u64::from(p.time);
                }
                Delta::Unplace(node, p) => {
                    let idx = self.mrrg.fu_index_at(p.pe, p.time);
                    debug_assert_eq!(self.cells[idx], Cell::Free);
                    self.cells[idx] = Cell::Op(node);
                    self.placements[node.index()] = Some(p);
                    self.unplaced -= 1;
                    self.lateness += u64::from(p.time);
                }
                Delta::Route(edge) => {
                    let released = self.release_route(edge);
                    debug_assert!(released.is_some(), "journaled route already released");
                }
                Delta::Unroute(edge, steps) => {
                    let value = self.dfg.edge(edge).src;
                    for s in &steps {
                        let idx = self.mrrg.index_at(s.resource, s.time);
                        match &mut self.cells[idx] {
                            c @ Cell::Free => {
                                *c = Cell::Route {
                                    value,
                                    time: s.time,
                                    refs: 1,
                                };
                                self.route_cells += 1;
                            }
                            Cell::Route {
                                value: v,
                                time: t,
                                refs,
                            } => {
                                debug_assert!(*v == value && *t == s.time);
                                *refs += 1;
                            }
                            Cell::Op(_) => unreachable!("route cell reverted to op"),
                        }
                    }
                    debug_assert!(self.routes[edge.index()].is_none());
                    self.routes[edge.index()] = Some(steps);
                    self.unrouted -= 1;
                }
            }
        }
    }

    /// Current placement of a node, if any.
    pub fn placement(&self, node: NodeId) -> Option<Placement> {
        self.placements[node.index()]
    }

    /// Current route of an edge, if routed.
    pub fn route(&self, edge: EdgeId) -> Option<&[RouteStep]> {
        self.routes[edge.index()].as_deref()
    }

    /// Whether the FU of `pe` is free at `time` (modulo II).
    pub fn fu_free(&self, pe: PeId, time: u32) -> bool {
        self.cells[self.mrrg.fu_index_at(pe, time)] == Cell::Free
    }

    /// Places `node` on `pe` at absolute `time`.
    ///
    /// # Errors
    ///
    /// Fails if the node is already placed, the time is outside the
    /// schedule window, the PE cannot execute the operation, or the FU slot
    /// is occupied. No partial state is left on failure.
    pub fn place(&mut self, node: NodeId, pe: PeId, time: u32) -> Result<(), MapperError> {
        if self.placements[node.index()].is_some() {
            return Err(MapperError::AlreadyPlaced(node));
        }
        if time >= self.window {
            return Err(MapperError::TimeOutOfWindow {
                time,
                window: self.window,
            });
        }
        if !self.mrrg.placeable(pe, self.dfg.node(node).op) {
            return Err(MapperError::Unsupported { node, pe });
        }
        let idx = self.mrrg.fu_index_at(pe, time);
        if self.cells[idx] != Cell::Free {
            return Err(MapperError::SlotOccupied { node, pe, time });
        }
        self.cells[idx] = Cell::Op(node);
        self.placements[node.index()] = Some(Placement { pe, time });
        self.unplaced -= 1;
        self.lateness += u64::from(time);
        if self.txn {
            self.journal.push(Delta::Place(node));
        }
        Ok(())
    }

    /// Removes a node's placement and rips up every route incident to it.
    /// A no-op if the node is not placed.
    pub fn unplace(&mut self, node: NodeId) {
        let Some(p) = self.placements[node.index()].take() else {
            return;
        };
        // `dfg` is a copy of the `&'a Dfg` reference, so the edge slices
        // outlive the `&mut self` calls below — no collect needed.
        let dfg = self.dfg;
        for &e in dfg.in_edges(node) {
            self.unroute_edge(e);
        }
        for &e in dfg.out_edges(node) {
            self.unroute_edge(e);
        }
        let idx = self.mrrg.fu_index_at(p.pe, p.time);
        debug_assert_eq!(self.cells[idx], Cell::Op(node));
        self.cells[idx] = Cell::Free;
        self.unplaced += 1;
        self.lateness -= u64::from(p.time);
        if self.txn {
            self.journal.push(Delta::Unplace(node, p));
        }
    }

    /// Effective consumer time of an edge: the consumer's schedule time
    /// plus `distance * II` for recurrence edges (the value crosses
    /// `distance` iterations).
    pub fn effective_dst_time(&self, edge: EdgeId) -> Option<u32> {
        let e = self.dfg.edge(edge);
        let dst = self.placements[e.dst.index()]?;
        Some(dst.time + e.kind.distance() * self.ii())
    }

    /// Routes an edge between its placed endpoints with a minimum-cost
    /// conflict-free path (Dijkstra over the time-expanded MRRG). Returns
    /// the number of *newly occupied* resource cells.
    ///
    /// # Errors
    ///
    /// Fails if an endpoint is unplaced, the edge is already routed,
    /// timing is non-causal, or no path exists.
    pub fn route_edge(&mut self, edge: EdgeId) -> Result<usize, MapperError> {
        if self.routes[edge.index()].is_some() {
            return Err(MapperError::AlreadyRouted(edge));
        }
        let e = self.dfg.edge(edge);
        let src = self.placements[e.src.index()].ok_or(MapperError::NotPlaced(e.src))?;
        let _dst = self.placements[e.dst.index()].ok_or(MapperError::NotPlaced(e.dst))?;
        let dst_time = self
            .effective_dst_time(edge)
            .expect("dst placement checked above");
        let dst_pe = self.placements[e.dst.index()].expect("checked").pe;
        if dst_time <= src.time {
            return Err(MapperError::BadTiming {
                edge,
                src_time: src.time,
                dst_time,
            });
        }
        // Split the field borrows so the router mutates the scratch while
        // the cost closure reads the occupancy grid — no per-call
        // `mem::take` of the scratch.
        let (scratch, cells, mrrg) = (&mut self.scratch, &self.cells, &self.mrrg);
        let found = router::find_route_in(
            scratch,
            mrrg,
            e.src,
            src.pe,
            src.time,
            dst_pe,
            dst_time,
            |resource, time| step_cost(cells, mrrg, resource, time, e.src),
        );
        let steps = found.ok_or(MapperError::NoRoute(edge))?;
        // Commit: the router guarantees per-cell consistency, but a path
        // may wrap onto itself modulo II; verify before mutating. Paths
        // are at most a few steps, so a pairwise scan beats allocating a
        // hash table on every routed edge.
        for (i, a) in steps.iter().enumerate() {
            let a_idx = self.mrrg.index_at(a.resource, a.time);
            for b in &steps[i + 1..] {
                if self.mrrg.index_at(b.resource, b.time) == a_idx && b.time != a.time {
                    return Err(MapperError::NoRoute(edge));
                }
            }
        }
        let mut new_cells = 0;
        for s in &steps {
            let idx = self.mrrg.index_at(s.resource, s.time);
            match &mut self.cells[idx] {
                c @ Cell::Free => {
                    *c = Cell::Route {
                        value: e.src,
                        time: s.time,
                        refs: 1,
                    };
                    new_cells += 1;
                }
                Cell::Route { value, time, refs } => {
                    debug_assert!(*value == e.src && *time == s.time);
                    *refs += 1;
                }
                Cell::Op(_) => unreachable!("router never proposes occupied op cells"),
            }
        }
        self.routes[edge.index()] = Some(steps);
        self.unrouted -= 1;
        self.route_cells += new_cells;
        if self.txn {
            self.journal.push(Delta::Route(edge));
        }
        Ok(new_cells)
    }

    /// Releases an edge's route. A no-op if the edge is unrouted.
    pub fn unroute_edge(&mut self, edge: EdgeId) {
        let Some(steps) = self.release_route(edge) else {
            return;
        };
        if self.txn {
            self.journal.push(Delta::Unroute(edge, steps));
        }
    }

    /// Frees an edge's route cells and maintains the counters, without
    /// journaling — shared by [`unroute_edge`](Self::unroute_edge) and
    /// rollback's undo of `Route` deltas. Returns the released steps.
    fn release_route(&mut self, edge: EdgeId) -> Option<Vec<RouteStep>> {
        let steps = self.routes[edge.index()].take()?;
        for s in &steps {
            let idx = self.mrrg.index_at(s.resource, s.time);
            match &mut self.cells[idx] {
                Cell::Route { refs, .. } => {
                    *refs -= 1;
                    if *refs == 0 {
                        self.cells[idx] = Cell::Free;
                        self.route_cells -= 1;
                    }
                }
                other => unreachable!("route step cell in state {other:?}"),
            }
        }
        self.unrouted += 1;
        Some(steps)
    }

    /// Nodes without a placement.
    pub fn unplaced_nodes(&self) -> Vec<NodeId> {
        self.dfg
            .node_ids()
            .filter(|n| self.placements[n.index()].is_none())
            .collect()
    }

    /// Edges without a route.
    pub fn unrouted_edges(&self) -> Vec<EdgeId> {
        self.dfg
            .edge_ids()
            .filter(|e| self.routes[e.index()].is_none())
            .collect()
    }

    /// Allocation-free variant of [`unplaced_nodes`](Self::unplaced_nodes):
    /// clears `out` and refills it in the same (id) order. The annealer
    /// calls this every movement, so hot paths reuse one buffer.
    pub fn unplaced_nodes_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(
            self.dfg
                .node_ids()
                .filter(|n| self.placements[n.index()].is_none()),
        );
    }

    /// Allocation-free variant of [`unrouted_edges`](Self::unrouted_edges).
    pub fn unrouted_edges_into(&self, out: &mut Vec<EdgeId>) {
        out.clear();
        out.extend(
            self.dfg
                .edge_ids()
                .filter(|e| self.routes[e.index()].is_none()),
        );
    }

    /// Whether every node is placed and every edge routed.
    pub fn is_complete(&self) -> bool {
        self.unplaced == 0 && self.unrouted == 0
    }

    /// Total resource cells occupied by routing — the paper's "routing
    /// cost" used to rank label candidates (§V-B). O(1) running counter;
    /// [`verify`](Self::verify) cross-checks it against a full scan.
    pub fn routing_cells(&self) -> usize {
        self.route_cells
    }

    /// Routing-cell count recomputed by scanning the occupancy grid.
    /// Used by `verify` and by the movement-throughput bench's
    /// "snapshot-clone era" engine, which must price the cost function
    /// the way the pre-journal annealer did.
    pub fn routing_cells_scan(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, Cell::Route { .. }))
            .count()
    }

    /// Activity counters for the power model (Fig. 10). Route cells are
    /// classified by scanning routes (each unique cell counted once, so
    /// fanout sharing is not double-billed).
    pub fn activity(&self) -> Activity {
        let mut a = Activity::default();
        a.compute_slots = self
            .cells
            .iter()
            .filter(|c| matches!(c, Cell::Op(_)))
            .count();
        // Ordered set (DET001): membership-only here, but the cold
        // reporting paths carry no reason to depend on hash seeding.
        let mut seen = std::collections::BTreeSet::new();
        for route in self.routes.iter().flatten() {
            for s in route {
                let idx = self.mrrg.index_at(s.resource, s.time);
                if seen.insert(idx) {
                    match s.resource {
                        Resource::Fu(_) => a.route_slots += 1,
                        Resource::Reg(_, _) => a.reg_slots += 1,
                    }
                }
            }
        }
        a
    }

    /// The latest schedule time in use (placements only), or 0 if empty.
    pub fn makespan(&self) -> u32 {
        self.placements
            .iter()
            .flatten()
            .map(|p| p.time)
            .max()
            .unwrap_or(0)
    }

    /// Re-checks every mapping invariant from scratch. Intended for tests
    /// and debug assertions; mappers maintain these incrementally.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify(&self) -> Result<(), String> {
        // Incremental counters must agree with a from-scratch recount.
        let scanned_unplaced = self.placements.iter().filter(|p| p.is_none()).count();
        if self.unplaced != scanned_unplaced {
            return Err(format!(
                "unplaced counter {} != scan {scanned_unplaced}",
                self.unplaced
            ));
        }
        let scanned_unrouted = self.routes.iter().filter(|r| r.is_none()).count();
        if self.unrouted != scanned_unrouted {
            return Err(format!(
                "unrouted counter {} != scan {scanned_unrouted}",
                self.unrouted
            ));
        }
        let scanned_cells = self.routing_cells_scan();
        if self.route_cells != scanned_cells {
            return Err(format!(
                "route-cell counter {} != scan {scanned_cells}",
                self.route_cells
            ));
        }
        let scanned_lateness: u64 = self
            .placements
            .iter()
            .flatten()
            .map(|p| u64::from(p.time))
            .sum();
        if self.lateness != scanned_lateness {
            return Err(format!(
                "lateness counter {} != scan {scanned_lateness}",
                self.lateness
            ));
        }
        if self.txn || !self.journal.is_empty() {
            return Err("verify called with an open transaction".to_string());
        }
        // Placement capability + uniqueness. Ordered map (DET001): only
        // keyed lookups run here, but `verify` reports the *first*
        // violation and must do so identically across processes.
        let mut fu_owner = std::collections::BTreeMap::new();
        for n in self.dfg.node_ids() {
            let Some(p) = self.placements[n.index()] else {
                continue;
            };
            if !self.mrrg.placeable(p.pe, self.dfg.node(n).op) {
                return Err(format!("node {} placed on unsupported {}", n.index(), p.pe));
            }
            if p.time >= self.window {
                return Err(format!("node {} outside window", n.index()));
            }
            let slot = self.mrrg.slot(p.time);
            if let Some(prev) = fu_owner.insert((p.pe, slot), n) {
                return Err(format!(
                    "FU conflict on {} slot {}: nodes {} and {}",
                    p.pe,
                    slot,
                    prev.index(),
                    n.index()
                ));
            }
        }
        // Route structure.
        for eid in self.dfg.edge_ids() {
            let Some(steps) = &self.routes[eid.index()] else {
                continue;
            };
            let e = self.dfg.edge(eid);
            let src = self.placements[e.src.index()]
                .ok_or_else(|| format!("edge {} routed with unplaced src", eid.index()))?;
            let dst = self.placements[e.dst.index()]
                .ok_or_else(|| format!("edge {} routed with unplaced dst", eid.index()))?;
            let dst_time = dst.time + e.kind.distance() * self.ii();
            if dst_time <= src.time {
                return Err(format!("edge {} non-causal", eid.index()));
            }
            let hops = dst_time - src.time;
            if steps.len() as u32 != hops - 1 {
                return Err(format!(
                    "edge {} has {} steps, expected {}",
                    eid.index(),
                    steps.len(),
                    hops - 1
                ));
            }
            // Adjacency chain: producer FU -> steps -> consumer FU.
            let mut prev = Resource::Fu(src.pe);
            let mut t = src.time;
            for s in steps {
                t += 1;
                if s.time != t {
                    return Err(format!(
                        "edge {} step at time {} != {t}",
                        eid.index(),
                        s.time
                    ));
                }
                if !self.mrrg.moves_from(prev).contains(&s.resource) {
                    return Err(format!("edge {} illegal move", eid.index()));
                }
                prev = s.resource;
            }
            if !self.mrrg.can_consume(prev, dst.pe) {
                return Err(format!("edge {} cannot reach consumer", eid.index()));
            }
            // Route cells occupied correctly & FU steps not op-occupied.
            for s in steps {
                match self.cells[self.mrrg.index_at(s.resource, s.time)] {
                    Cell::Route { value, time, .. } if value == e.src && time == s.time => {}
                    other => {
                        return Err(format!(
                            "edge {} step cell in bad state {other:?}",
                            eid.index()
                        ))
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::OpKind;

    fn chain3() -> Dfg {
        let mut g = Dfg::new("chain");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        let c = g.add_node(OpKind::Store, "c");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(b, c).unwrap();
        g
    }

    #[test]
    fn place_route_complete() {
        let dfg = chain3();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&dfg, &acc, 3).unwrap();
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        m.place(NodeId::new(1), PeId::new(1), 1).unwrap();
        m.place(NodeId::new(2), PeId::new(3), 2).unwrap();
        assert_eq!(m.route_edge(EdgeId::new(0)).unwrap(), 0); // adjacent, direct
        assert_eq!(m.route_edge(EdgeId::new(1)).unwrap(), 0);
        assert!(m.is_complete());
        m.verify().unwrap();
        assert_eq!(m.routing_cells(), 0);
    }

    #[test]
    fn distant_route_uses_cells() {
        let dfg = chain3();
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mut m = Mapping::new(&dfg, &acc, 4).unwrap();
        // a at (0,0) t0, b at (2,2) t4: Manhattan distance 4, so 3
        // intermediate hops.
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        m.place(NodeId::new(1), PeId::new(8), 4).unwrap();
        m.place(NodeId::new(2), PeId::new(8 - 1), 5).unwrap();
        let new_cells = m.route_edge(EdgeId::new(0)).unwrap();
        assert_eq!(new_cells, 3);
        m.route_edge(EdgeId::new(1)).unwrap();
        m.verify().unwrap();
        assert_eq!(m.routing_cells(), 3);
    }

    #[test]
    fn slot_conflict_rejected() {
        let dfg = chain3();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&dfg, &acc, 2).unwrap();
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        // Same PE, time 2 ≡ 0 (mod 2): conflict.
        let err = m.place(NodeId::new(1), PeId::new(0), 2).unwrap_err();
        assert!(matches!(err, MapperError::SlotOccupied { .. }));
        // Different slot is fine.
        m.place(NodeId::new(1), PeId::new(0), 1).unwrap();
    }

    #[test]
    fn non_causal_route_rejected() {
        let dfg = chain3();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&dfg, &acc, 2).unwrap();
        m.place(NodeId::new(0), PeId::new(0), 1).unwrap();
        m.place(NodeId::new(1), PeId::new(1), 1).unwrap();
        let err = m.route_edge(EdgeId::new(0)).unwrap_err();
        assert!(matches!(err, MapperError::BadTiming { .. }));
    }

    #[test]
    fn unplace_rips_routes() {
        let dfg = chain3();
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mut m = Mapping::new(&dfg, &acc, 4).unwrap();
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        m.place(NodeId::new(1), PeId::new(8), 4).unwrap();
        m.place(NodeId::new(2), PeId::new(7), 5).unwrap();
        m.route_edge(EdgeId::new(0)).unwrap();
        m.route_edge(EdgeId::new(1)).unwrap();
        m.unplace(NodeId::new(1));
        assert!(m.route(EdgeId::new(0)).is_none());
        assert!(m.route(EdgeId::new(1)).is_none());
        assert_eq!(m.routing_cells(), 0);
        assert_eq!(m.unplaced_nodes(), vec![NodeId::new(1)]);
        m.verify().unwrap();
    }

    #[test]
    fn fanout_shares_cells() {
        // a feeds b and c, both two hops away along a shared prefix.
        let mut g = Dfg::new("fan");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        let c = g.add_node(OpKind::Mul, "c");
        let e1 = g.add_data_edge(a, b).unwrap();
        let e2 = g.add_data_edge(a, c).unwrap();
        let acc = Accelerator::cgra("1x4", 1, 4);
        let mut m = Mapping::new(&g, &acc, 4).unwrap();
        m.place(a, PeId::new(0), 0).unwrap();
        m.place(b, PeId::new(2), 2).unwrap();
        m.place(c, PeId::new(3), 4).unwrap();
        let n1 = m.route_edge(e1).unwrap();
        assert_eq!(n1, 1); // through FU(1) at t1
                           // Second consumer is further out; b occupies FU(2)@2, so the route
                           // detours (e.g. hold in a register) and shares the FU(1)@1 prefix.
        let n2 = m.route_edge(e2).unwrap();
        assert!(n2 >= 1);
        m.verify().unwrap();
        // Unrouting e1 must keep e2's shared cells alive.
        m.unroute_edge(e1);
        m.verify().unwrap();
    }

    #[test]
    fn recurrence_self_loop_routes_through_registers() {
        let mut g = Dfg::new("acc");
        let x = g.add_node(OpKind::Add, "x");
        let e = g.add_recurrence_edge(x, x, 1).unwrap();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&g, &acc, 2).unwrap();
        m.place(x, PeId::new(0), 0).unwrap();
        // Effective dst time = 0 + 1*2 = 2: one intermediate step at t=1.
        let cells = m.route_edge(e).unwrap();
        assert_eq!(cells, 1);
        m.verify().unwrap();
        let route = m.route(e).unwrap();
        assert_eq!(route.len(), 1);
    }

    #[test]
    fn self_loop_at_ii1_cannot_route_without_slack() {
        // II = 1: value must return to the same FU after 1 cycle; the
        // single register hold path is Fu -> consume next cycle: distance
        // 1*1 = 1 means zero intermediate steps and self-consumption is
        // allowed (p == dest). So this *routes*.
        let mut g = Dfg::new("acc");
        let x = g.add_node(OpKind::Add, "x");
        let e = g.add_recurrence_edge(x, x, 1).unwrap();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&g, &acc, 1).unwrap();
        m.place(x, PeId::new(0), 0).unwrap();
        assert_eq!(m.route_edge(e).unwrap(), 0);
        m.verify().unwrap();
    }

    #[test]
    fn memory_constraint_enforced() {
        let dfg = chain3();
        let acc =
            Accelerator::cgra("2x2", 2, 2).with_memory(lisa_arch::MemoryConnectivity::LeftColumn);
        let mut m = Mapping::new(&dfg, &acc, 2).unwrap();
        // Node 0 is a load; PE 1 is column 1.
        let err = m.place(NodeId::new(0), PeId::new(1), 0).unwrap_err();
        assert!(matches!(err, MapperError::Unsupported { .. }));
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
    }

    #[test]
    fn activity_counts() {
        let dfg = chain3();
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mut m = Mapping::new(&dfg, &acc, 4).unwrap();
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        m.place(NodeId::new(1), PeId::new(8), 4).unwrap();
        m.place(NodeId::new(2), PeId::new(7), 5).unwrap();
        m.route_edge(EdgeId::new(0)).unwrap();
        m.route_edge(EdgeId::new(1)).unwrap();
        let a = m.activity();
        assert_eq!(a.compute_slots, 3);
        assert_eq!(a.route_slots + a.reg_slots, m.routing_cells());
    }

    #[test]
    fn window_bound_enforced() {
        let dfg = chain3();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&dfg, &acc, 2).unwrap();
        let w = m.schedule_window();
        let err = m.place(NodeId::new(0), PeId::new(0), w).unwrap_err();
        assert!(matches!(err, MapperError::TimeOutOfWindow { .. }));
    }

    #[test]
    fn txn_rollback_restores_byte_identical_state() {
        let dfg = chain3();
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mut m = Mapping::new(&dfg, &acc, 4).unwrap();
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        m.place(NodeId::new(1), PeId::new(8), 4).unwrap();
        m.route_edge(EdgeId::new(0)).unwrap();
        let before = format!("{m:?}");

        m.begin_txn();
        // Unplace rips the route, then remap elsewhere and reroute.
        m.unplace(NodeId::new(1));
        m.place(NodeId::new(1), PeId::new(1), 1).unwrap();
        m.place(NodeId::new(2), PeId::new(2), 2).unwrap();
        m.route_edge(EdgeId::new(0)).unwrap();
        m.route_edge(EdgeId::new(1)).unwrap();
        m.rollback();

        assert_eq!(format!("{m:?}"), before);
        m.verify().unwrap();
    }

    #[test]
    fn txn_commit_keeps_mutations() {
        let dfg = chain3();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&dfg, &acc, 3).unwrap();
        m.begin_txn();
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        m.place(NodeId::new(1), PeId::new(1), 1).unwrap();
        m.route_edge(EdgeId::new(0)).unwrap();
        m.commit();
        assert!(m.placement(NodeId::new(0)).is_some());
        assert!(m.route(EdgeId::new(0)).is_some());
        m.verify().unwrap();
    }

    #[test]
    fn counters_match_scans_through_mutations() {
        let dfg = chain3();
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mut m = Mapping::new(&dfg, &acc, 4).unwrap();
        assert_eq!(m.unplaced_count(), 3);
        assert_eq!(m.unrouted_count(), 2);
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        m.place(NodeId::new(1), PeId::new(8), 4).unwrap();
        m.place(NodeId::new(2), PeId::new(7), 5).unwrap();
        m.route_edge(EdgeId::new(0)).unwrap();
        m.route_edge(EdgeId::new(1)).unwrap();
        assert_eq!(m.unplaced_count(), 0);
        assert_eq!(m.unrouted_count(), 0);
        assert_eq!(m.routing_cells(), m.routing_cells_scan());
        assert_eq!(m.lateness(), 9);
        m.verify().unwrap();
        m.unplace(NodeId::new(1));
        assert_eq!(m.unplaced_count(), 1);
        assert_eq!(m.unrouted_count(), 2);
        assert_eq!(m.routing_cells(), 0);
        assert_eq!(m.lateness(), 5);
        m.verify().unwrap();
    }

    #[test]
    #[should_panic(expected = "transactions do not nest")]
    fn nested_txn_panics() {
        let dfg = chain3();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&dfg, &acc, 2).unwrap();
        m.begin_txn();
        m.begin_txn();
    }
}

impl Mapping<'_> {
    /// Route latency of an edge in cycles (`dst_eff_time - src_time`), or
    /// `None` if the edge is unrouted.
    pub fn route_latency(&self, edge: EdgeId) -> Option<u32> {
        self.routes[edge.index()].as_ref()?;
        let e = self.dfg.edge(edge);
        let src = self.placements[e.src.index()]?;
        let dst_eff = self.effective_dst_time(edge)?;
        Some(dst_eff - src.time)
    }

    /// Sum of route latencies over all routed edges — a communication-cost
    /// metric complementary to [`Self::routing_cells`].
    pub fn total_route_latency(&self) -> u32 {
        self.dfg
            .edge_ids()
            .filter_map(|e| self.route_latency(e))
            .sum()
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use lisa_dfg::OpKind;

    #[test]
    fn route_latency_matches_schedule_gap() {
        let mut g = Dfg::new("t");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Store, "b");
        let e = g.add_data_edge(a, b).unwrap();
        let acc = lisa_arch::Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&g, &acc, 4).unwrap();
        assert_eq!(m.route_latency(e), None);
        m.place(a, lisa_arch::PeId::new(0), 0).unwrap();
        m.place(b, lisa_arch::PeId::new(1), 3).unwrap();
        m.route_edge(e).unwrap();
        assert_eq!(m.route_latency(e), Some(3));
        assert_eq!(m.total_route_latency(), 3);
    }
}

/// Per-PE utilisation of a mapping: how many modulo slots of each PE are
/// busy with computation or routing. High variance indicates hot spots —
/// the congestion signature constrained architectures exhibit.
#[derive(Debug, Clone, PartialEq)]
pub struct Utilization {
    /// Busy FU slots per PE (compute + route-through), indexed by PE.
    pub busy_fu_slots: Vec<usize>,
    /// Busy register slots per PE.
    pub busy_reg_slots: Vec<usize>,
    /// The initiation interval (slots per FU).
    pub ii: u32,
}

impl Utilization {
    /// Mean FU occupancy over all PEs, in [0, 1].
    pub fn mean_fu_occupancy(&self) -> f64 {
        if self.busy_fu_slots.is_empty() {
            return 0.0;
        }
        let total: usize = self.busy_fu_slots.iter().sum();
        total as f64 / (self.busy_fu_slots.len() as f64 * f64::from(self.ii))
    }

    /// The busiest PE's FU occupancy, in [0, 1].
    pub fn peak_fu_occupancy(&self) -> f64 {
        self.busy_fu_slots
            .iter()
            .copied()
            .max()
            .map_or(0.0, |m| m as f64 / f64::from(self.ii))
    }
}

impl Mapping<'_> {
    /// Computes per-PE utilisation (see [`Utilization`]).
    pub fn utilization(&self) -> Utilization {
        let acc = self.accelerator();
        let mut busy_fu = vec![0usize; acc.pe_count()];
        let mut busy_reg = vec![0usize; acc.pe_count()];
        for v in self.dfg.node_ids() {
            if let Some(p) = self.placement(v) {
                busy_fu[p.pe.index()] += 1;
            }
        }
        // Ordered set (DET001): utilisation feeds rendered reports.
        let mut seen = std::collections::BTreeSet::new();
        for route in self.dfg.edge_ids() {
            let Some(steps) = self.route(route) else {
                continue;
            };
            for s in steps {
                let idx = self.mrrg.index_at(s.resource, s.time);
                if !seen.insert(idx) {
                    continue;
                }
                match s.resource {
                    Resource::Fu(pe) => busy_fu[pe.index()] += 1,
                    Resource::Reg(pe, _) => busy_reg[pe.index()] += 1,
                }
            }
        }
        Utilization {
            busy_fu_slots: busy_fu,
            busy_reg_slots: busy_reg,
            ii: self.ii(),
        }
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;
    use lisa_dfg::OpKind;

    #[test]
    fn utilization_counts_ops_and_routes() {
        let mut g = Dfg::new("t");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Store, "b");
        let e = g.add_data_edge(a, b).unwrap();
        let acc = lisa_arch::Accelerator::cgra("1x3", 1, 3);
        let mut m = Mapping::new(&g, &acc, 2).unwrap();
        m.place(a, lisa_arch::PeId::new(0), 0).unwrap();
        m.place(b, lisa_arch::PeId::new(2), 2).unwrap();
        m.route_edge(e).unwrap();
        let u = m.utilization();
        assert_eq!(u.busy_fu_slots[0], 1); // the load
        assert_eq!(u.busy_fu_slots[2], 1); // the store
                                           // The route passes PE1 (FU) or uses a register; either way some
                                           // middle resource is busy.
        assert!(u.busy_fu_slots[1] + u.busy_reg_slots.iter().sum::<usize>() >= 1);
        assert!(u.mean_fu_occupancy() > 0.0);
        assert!(u.peak_fu_occupancy() <= 1.0);
    }

    #[test]
    fn empty_mapping_has_zero_utilization() {
        let mut g = Dfg::new("t");
        g.add_node(OpKind::Add, "x");
        let acc = lisa_arch::Accelerator::cgra("2x2", 2, 2);
        let m = Mapping::new(&g, &acc, 3).unwrap();
        let u = m.utilization();
        assert_eq!(u.mean_fu_occupancy(), 0.0);
        assert_eq!(u.peak_fu_occupancy(), 0.0);
    }
}
