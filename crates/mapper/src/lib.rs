//! Mapping engines for spatial accelerators.
//!
//! This crate implements every mapper the LISA paper evaluates:
//!
//! * [`sa`] — vanilla simulated annealing in the CGRA-ME style (the paper's
//!   SA baseline), including the 10×-movement "SA-M" variant of Fig. 13;
//! * [`label_sa`] — the label-aware simulated annealing of Algorithm 1,
//!   plus the routing-priority-only ablation of Fig. 12;
//! * [`exact`] — an exhaustive branch-and-bound mapper standing in for the
//!   ILP baseline (see DESIGN.md "Substitutions");
//! * [`greedy`] — a deterministic list-scheduling mapper (the classic
//!   non-stochastic heuristic class the paper contrasts against);
//! * [`strategy`] — the [`SearchStrategy`] lane contract and the
//!   heterogeneous portfolio race ([`StrategySpec`] selects the mix);
//! * [`evolutionary`] — a deterministic population mapper with
//!   journal-transaction crossover;
//! * [`constructive`] — a LOCAL-style low-complexity one-pass mapper
//!   that fast-paths easy kernels;
//! * [`display`] — time-extended grid rendering of mappings (Fig. 5
//!   style);
//! * [`schedule`] — the II search driver shared by all mappers (start at
//!   the minimum II, increment on failure, paper §VI).
//!
//! All mappers operate on a shared [`Mapping`] state (placement + routing
//! over the modulo routing resource graph) and a common Dijkstra
//! [`router`].
//!
//! # Example
//!
//! ```
//! use lisa_dfg::polybench;
//! use lisa_arch::Accelerator;
//! use lisa_mapper::{schedule::IiSearch, sa::SaMapper, SaParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = polybench::kernel("doitgen")?;
//! let acc = Accelerator::cgra("4x4", 4, 4);
//! let mut mapper = SaMapper::new(SaParams::fast(), 7);
//! let outcome = IiSearch::default().run(&mut mapper, &dfg, &acc);
//! assert!(outcome.ii.is_some(), "doitgen maps on a 4x4 CGRA");
//! # Ok(())
//! # }
//! ```

pub mod constructive;
pub mod display;
mod error;
pub mod evolutionary;
pub mod exact;
pub mod greedy;
pub mod label_sa;
mod mapping;
pub mod portfolio;
pub mod predictor;
pub mod router;
pub mod sa;
pub mod schedule;
pub mod strategy;

pub use constructive::ConstructiveStrategy;
pub use error::MapperError;
pub use evolutionary::{EvoParams, EvolutionaryStrategy};
pub use label_sa::{GuidanceLabels, LabelMode, LabelSaMapper};
pub use mapping::{Mapping, Placement, RouteStep};
pub use portfolio::PortfolioParams;
pub use predictor::{FilterStats, MovementScorer, MOVEMENT_FEATURE_DIM};
pub use router::RouterScratch;
pub use sa::{anneal_chain, SaMapper, SaParams};
pub use schedule::{IiMapper, IiSearch, MappingOutcome};
pub use strategy::{LaneKind, ParseStrategyError, SearchStrategy, StrategySpec};
