//! Deterministic parallel mapping portfolio.
//!
//! Runs N independently-seeded annealing chains for the same `(DFG,
//! accelerator, II)` problem and keeps a winner chosen by
//! `(success, cost, chain index)`. Every chain's result is joined before
//! the winner is picked, so the outcome depends only on the seeds — never
//! on thread count or scheduling. That is the portfolio's determinism
//! contract: `parallelism` is purely a wall-clock knob, and
//! `parallelism = 1` is byte-identical to `parallelism = N`.
//!
//! The same result-invariant work distributor ([`par_map`]) backs the
//! parallel II search ([`crate::schedule::IiSearch::run_with_mapping_par`])
//! and the training-data generator's fan-out across DFGs.
//!
//! Threads come from `std::thread::scope` — the workspace is hermetic, so
//! no rayon.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Portfolio shape: how many chains compete and how many worker threads
/// execute them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioParams {
    /// Number of independently-seeded annealing chains per II. Chain 0
    /// uses the mapper's own seed derivation, so `chains = 1` reproduces
    /// the single-chain mapper exactly.
    pub chains: usize,
    /// Worker threads used to execute chains (and, at the framework
    /// level, IIs / training DFGs). Affects wall-clock only, never the
    /// result.
    pub parallelism: usize,
}

impl PortfolioParams {
    /// One chain on one thread: today's sequential behaviour, exactly.
    pub fn sequential() -> Self {
        PortfolioParams {
            chains: 1,
            parallelism: 1,
        }
    }

    /// `chains` chains on all available cores.
    pub fn new(chains: usize) -> Self {
        PortfolioParams {
            chains,
            parallelism: available_parallelism(),
        }
    }

    /// Same chain set on a specific thread count (used by the
    /// determinism tests to prove thread-count invariance).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }
}

impl Default for PortfolioParams {
    fn default() -> Self {
        PortfolioParams::sequential()
    }
}

/// Number of hardware threads, with a safe floor of 1.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on up to `parallelism` scoped threads and
/// returns the results in item order. The work distribution is a shared
/// atomic cursor, but each result lands in its item's slot, so the output
/// is invariant to thread count and scheduling. `parallelism <= 1` (or a
/// single item) runs inline with no threads at all.
///
/// # Panics
///
/// A panic inside `f` is re-raised with its original payload. Sibling
/// workers stop claiming new items as soon as the first panic lands, so
/// propagation is prompt: only items already in flight finish first.
pub fn par_map<T, R, F>(parallelism: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = parallelism.max(1).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    // Worker panics are caught and stashed here, then re-raised verbatim
    // after the scope joins. Letting them unwind through the scope instead
    // would replace the payload with scope's generic "a scoped thread
    // panicked" message and let every sibling drain the whole queue first.
    let aborted = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if aborted.load(Ordering::Acquire) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each item is claimed exactly once");
                match std::panic::catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(r) => *results[i].lock().expect("result slot poisoned") = Some(r),
                    Err(payload) => {
                        let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        aborted.store(true, Ordering::Release);
                        break;
                    }
                }
            });
        }
    });
    if let Some(payload) = first_panic
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .take()
    {
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every item produces a result")
        })
        .collect()
}

/// Derives the RNG seed of chain `chain` for target `ii`. Chain 0 keeps
/// the historical single-chain derivation (`seed ^ (ii << 32)`); later
/// chains decorrelate through a splitmix64-style finalizer.
pub(crate) fn chain_seed(seed: u64, chain: u64, ii: u32) -> u64 {
    let base = if chain == 0 {
        seed
    } else {
        let mut z = seed.wrapping_add(chain.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    base ^ (u64::from(ii) << 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::{SaMapper, SaParams};
    use crate::schedule::IiMapper;
    use lisa_arch::Accelerator;
    use lisa_dfg::{Dfg, OpKind};

    #[test]
    fn par_map_preserves_item_order() {
        for parallelism in [1, 2, 4, 7] {
            let items: Vec<u64> = (0..20).collect();
            let out = par_map(parallelism, items, |i, x| x * 10 + i as u64);
            let expect: Vec<u64> = (0..20).map(|x| x * 10 + x).collect();
            assert_eq!(out, expect, "parallelism {parallelism}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, empty, |_, x: u32| x).is_empty());
        assert_eq!(par_map(4, vec![9], |i, x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn par_map_reraises_the_first_panic_verbatim() {
        let err = std::panic::catch_unwind(|| {
            par_map(4, (0..16u64).collect::<Vec<u64>>(), |_, x| {
                if x == 3 {
                    panic!("chain {x} exploded with cost {}", x * 2);
                }
                x
            })
        })
        .expect_err("a worker panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic! with arguments carries a String payload");
        assert_eq!(msg, "chain 3 exploded with cost 6");
    }

    #[test]
    fn par_map_siblings_stop_after_a_panic() {
        use std::sync::atomic::AtomicUsize;
        let processed = AtomicUsize::new(0);
        let total = 512usize;
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(2, (0..total).collect::<Vec<usize>>(), |_, x| {
                if x == 0 {
                    panic!("first item fails");
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
                processed.fetch_add(1, Ordering::SeqCst);
            })
        }));
        assert!(err.is_err());
        let done = processed.load(Ordering::SeqCst);
        assert!(
            done < total - 1,
            "siblings drained the whole queue ({done} items) after a panic"
        );
    }

    #[test]
    fn chain_zero_keeps_historical_seed() {
        assert_eq!(chain_seed(42, 0, 3), 42 ^ (3u64 << 32));
        // Later chains must decorrelate from chain 0 and each other.
        assert_ne!(chain_seed(42, 1, 3), chain_seed(42, 0, 3));
        assert_ne!(chain_seed(42, 1, 3), chain_seed(42, 2, 3));
    }

    fn diamond() -> Dfg {
        let mut g = Dfg::new("diamond");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        let c = g.add_node(OpKind::Mul, "c");
        let d = g.add_node(OpKind::Store, "d");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(a, c).unwrap();
        g.add_data_edge(b, d).unwrap();
        g.add_data_edge(c, d).unwrap();
        g
    }

    #[test]
    fn single_chain_portfolio_matches_plain_mapper() {
        let dfg = diamond();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let plain = SaMapper::new(SaParams::fast(), 5).map_at_ii(&dfg, &acc, 2);
        let single = SaMapper::new(SaParams::fast(), 5)
            .with_portfolio(PortfolioParams::sequential())
            .map_at_ii(&dfg, &acc, 2);
        assert_eq!(
            plain.map(|m| format!("{m:?}")),
            single.map(|m| format!("{m:?}"))
        );
    }

    #[test]
    fn portfolio_result_is_thread_count_invariant() {
        let dfg = diamond();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let runs: Vec<Option<String>> = [1, 2, 4]
            .into_iter()
            .map(|threads| {
                SaMapper::new(SaParams::fast(), 5)
                    .with_portfolio(PortfolioParams::new(4).with_parallelism(threads))
                    .map_at_ii(&dfg, &acc, 2)
                    .map(|m| format!("{m:?}"))
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
        assert!(runs[0].is_some(), "diamond maps at II 2 on a 2x2");
    }
}
