//! Exact branch-and-bound mapper — the ILP baseline substitute.
//!
//! The paper compares against CGRA-ME's Integer Linear Programming mapper,
//! which solves placement + routing exactly for one target II and either
//! proves feasibility or exhausts a (generous) time budget. No ILP solver
//! is available offline, so we substitute an exhaustive depth-first search
//! over the identical constraint set (see DESIGN.md "Substitutions"):
//!
//! * it is **exact**: if a feasible mapping at the target II exists and the
//!   budget suffices, it is found, so with the ascending II driver the
//!   achieved II is optimal, like ILP;
//! * it **scales like ILP**: small DFG/architecture combinations solve
//!   quickly, larger ones blow past any realistic budget — reproducing the
//!   Fig. 9/11 behaviour where ILP cannot map most combinations.

use std::time::{Duration, Instant};

use lisa_arch::Accelerator;
use lisa_dfg::{Dfg, EdgeId, NodeId};

use crate::sa::candidate_slots;
use crate::schedule::IiMapper;
use crate::Mapping;

/// Search-budget parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactParams {
    /// Wall-clock budget per target II (the paper gave ILP two hours per
    /// target II; experiments here default to seconds-scale).
    pub time_limit: Duration,
    /// Hard cap on explored placements, a deterministic secondary budget.
    pub max_states: u64,
}

impl Default for ExactParams {
    fn default() -> Self {
        ExactParams {
            time_limit: Duration::from_secs(5),
            max_states: 2_000_000,
        }
    }
}

impl ExactParams {
    /// Reduced budget for unit tests.
    pub fn fast() -> Self {
        ExactParams {
            time_limit: Duration::from_millis(500),
            max_states: 50_000,
        }
    }
}

/// The exhaustive mapper. Deterministic: no randomness at all.
///
/// # Example
///
/// ```
/// use lisa_dfg::{Dfg, OpKind};
/// use lisa_arch::Accelerator;
/// use lisa_mapper::{exact::{ExactMapper, ExactParams}, schedule::IiMapper};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_node(OpKind::Load, "a");
/// let b = dfg.add_node(OpKind::Store, "b");
/// dfg.add_data_edge(a, b)?;
/// let acc = Accelerator::cgra("2x2", 2, 2);
/// let mut ilp = ExactMapper::new(ExactParams::fast());
/// assert!(ilp.map_at_ii(&dfg, &acc, 1).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactMapper {
    params: ExactParams,
}

impl ExactMapper {
    /// Creates a mapper with the given budget.
    pub fn new(params: ExactParams) -> Self {
        ExactMapper { params }
    }

    /// The search budget.
    pub fn params(&self) -> &ExactParams {
        &self.params
    }
}

struct Search<'m, 'a> {
    mapping: &'m mut Mapping<'a>,
    order: Vec<NodeId>,
    deadline: Instant,
    states_left: u64,
    timed_out: bool,
}

impl Search<'_, '_> {
    /// Depth-first search over placements in topological order. Routes
    /// every edge as soon as both endpoints are placed, so infeasible
    /// branches are cut at the earliest possible depth.
    fn dfs(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            return self.mapping.is_complete();
        }
        if self.states_left == 0 || Instant::now() >= self.deadline {
            self.timed_out = true;
            return false;
        }
        let node = self.order[depth];
        let mut candidates = candidate_slots(self.mapping, node);
        // Deterministic order: earliest time first, then PE id — mirrors
        // ILP's preference for tight schedules.
        candidates.sort_by_key(|&(pe, t)| (t, pe.index()));
        for (pe, t) in candidates {
            self.states_left = self.states_left.saturating_sub(1);
            if self.mapping.place(node, pe, t).is_err() {
                continue;
            }
            let mut routed: Vec<EdgeId> = Vec::new();
            let mut ok = true;
            let dfg = self.mapping.dfg();
            let incident: Vec<EdgeId> = dfg
                .in_edges(node)
                .iter()
                .chain(dfg.out_edges(node))
                .copied()
                .collect();
            for e in incident {
                if self.mapping.route(e).is_some() {
                    continue; // self-loop already handled via in+out dup
                }
                let edge = dfg.edge(e);
                if self.mapping.placement(edge.src).is_none()
                    || self.mapping.placement(edge.dst).is_none()
                {
                    continue;
                }
                match self.mapping.route_edge(e) {
                    Ok(_) => routed.push(e),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && self.dfs(depth + 1) {
                return true;
            }
            for e in routed {
                self.mapping.unroute_edge(e);
            }
            self.mapping.unplace(node);
            if self.timed_out {
                return false;
            }
        }
        false
    }
}

impl IiMapper for ExactMapper {
    fn name(&self) -> &str {
        "ILP"
    }

    fn map_at_ii<'a>(
        &mut self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        ii: u32,
    ) -> Option<Mapping<'a>> {
        let mut mapping = Mapping::new(dfg, acc, ii).ok()?;
        let order = dfg
            .topological_order()
            .expect("validated DFGs are acyclic over data edges");
        let mut search = Search {
            mapping: &mut mapping,
            order,
            deadline: Instant::now() + self.params.time_limit,
            states_left: self.params.max_states,
            timed_out: false,
        };
        search.dfs(0).then_some(mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{mii, IiSearch};
    use lisa_dfg::OpKind;

    fn diamond() -> Dfg {
        let mut g = Dfg::new("diamond");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        let c = g.add_node(OpKind::Mul, "c");
        let d = g.add_node(OpKind::Store, "d");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(a, c).unwrap();
        g.add_data_edge(b, d).unwrap();
        g.add_data_edge(c, d).unwrap();
        g
    }

    #[test]
    fn exact_maps_diamond_at_mii() {
        let dfg = diamond();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut ilp = ExactMapper::new(ExactParams::fast());
        let target = mii(&dfg, &acc);
        let m = ilp.map_at_ii(&dfg, &acc, target).expect("diamond maps");
        assert!(m.is_complete());
        m.verify().unwrap();
    }

    #[test]
    fn exact_finds_optimal_ii_via_search() {
        // 5 single-op nodes on a 1x2 CGRA: ResMII = 3.
        let mut g = Dfg::new("five");
        let n0 = g.add_node(OpKind::Load, "n0");
        for i in 1..5 {
            let n = g.add_node(OpKind::Add, format!("n{i}"));
            g.add_data_edge(n0, n).ok();
        }
        let acc = Accelerator::cgra("1x2", 1, 2);
        let mut ilp = ExactMapper::new(ExactParams::fast());
        let outcome = IiSearch::default().run(&mut ilp, &g, &acc);
        assert_eq!(outcome.ii, Some(3));
    }

    #[test]
    fn exact_respects_infeasibility() {
        // Two ops, 1 PE, II 1: impossible.
        let mut g = Dfg::new("two");
        let a = g.add_node(OpKind::Add, "a");
        let b = g.add_node(OpKind::Add, "b");
        g.add_data_edge(a, b).unwrap();
        let acc = Accelerator::cgra("1x1", 1, 1);
        let mut ilp = ExactMapper::new(ExactParams::fast());
        assert!(ilp.map_at_ii(&g, &acc, 1).is_none());
    }

    #[test]
    fn exact_is_deterministic() {
        let dfg = diamond();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let m1 = ExactMapper::new(ExactParams::fast()).map_at_ii(&dfg, &acc, 2);
        let m2 = ExactMapper::new(ExactParams::fast()).map_at_ii(&dfg, &acc, 2);
        let (a, b) = (m1.unwrap(), m2.unwrap());
        for n in dfg.node_ids() {
            assert_eq!(a.placement(n), b.placement(n));
        }
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // A graph big enough that 1 state cannot solve it.
        let dfg = lisa_dfg::polybench::kernel("syr2k").unwrap();
        let acc = Accelerator::cgra("4x4", 4, 4);
        let mut ilp = ExactMapper::new(ExactParams {
            time_limit: Duration::from_millis(1),
            max_states: 10,
        });
        assert!(ilp.map_at_ii(&dfg, &acc, 2).is_none());
    }

    #[test]
    fn exact_handles_recurrence_self_loop() {
        let mut g = Dfg::new("acc");
        let l = g.add_node(OpKind::Load, "l");
        let x = g.add_node(OpKind::Add, "x");
        let s = g.add_node(OpKind::Store, "s");
        g.add_data_edge(l, x).unwrap();
        g.add_data_edge(x, s).unwrap();
        g.add_recurrence_edge(x, x, 1).unwrap();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut ilp = ExactMapper::new(ExactParams::fast());
        let m = ilp.map_at_ii(&g, &acc, 1).expect("self-accumulation maps");
        m.verify().unwrap();
    }
}
