//! Predict-then-verify movement filtering: the mapper-side contract.
//!
//! The SA inner loop pays a full routing pass to price every proposed
//! movement, even though most proposals are rejected. A cheap learned
//! scorer can look at a movement *after* placement but *before* routing
//! and discard obviously-bad proposals, so the router runs only on the
//! survivors. Crucially the filter is advisory on the reject path only:
//! every movement the annealer *accepts* was routed and priced by the
//! exact incremental cost function, so accepted-state cost is provably
//! exact and mapping quality is unchanged by construction — a filter can
//! cost search progress, never correctness.
//!
//! This module defines the pieces the annealer needs without depending on
//! the learning stack: the [`MovementScorer`] trait (implemented by
//! `lisa-labels`' trained predictor), the [movement feature
//! vector](MOVEMENT_FEATURE_DIM), and the [`FilterStats`] counters that
//! make router work measurable. The gating itself lives in `sa.rs`.

use lisa_arch::PeId;
use lisa_dfg::NodeId;

use crate::mapping::Placement;
use crate::Mapping;

/// Width of the movement feature vector built by
/// [`movement_features_into`].
pub const MOVEMENT_FEATURE_DIM: usize = 14;

/// Scores a proposed movement from its feature vector, before routing.
///
/// Implementations must be deterministic pure functions of the feature
/// vector and temperature: the portfolio shares one immutable scorer
/// across all chains, and thread-count invariance of predictor-on runs
/// depends on it.
pub trait MovementScorer: Send + Sync + std::fmt::Debug {
    /// `true` admits the movement to routing; `false` rejects it without
    /// invoking the router (the annealer rolls the placement back).
    ///
    /// `temp` is the annealer's current temperature. A scorer should only
    /// reject movements whose metropolis acceptance at `temp` would be
    /// negligible: simulated annealing *needs* uphill moves while hot,
    /// and a temperature-blind gate starves tight feasibility searches
    /// of exactly the large perturbations that let them converge.
    fn admit(&self, features: &[f64], temp: f64) -> bool;
}

/// Router-work counters for one annealing chain (or a whole portfolio,
/// after [`FilterStats::merge`]). Maintained with or without a filter
/// attached, so predictor-off baselines report comparable numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Movements proposed (victims unplaced and re-placed).
    pub proposals: u64,
    /// Proposals admitted to routing (every proposal, when no filter is
    /// attached).
    pub admitted: u64,
    /// Proposals the scorer rejected before routing.
    pub rejected: u64,
    /// Rejected proposals routed anyway, measure-only, by the
    /// deterministic false-reject audit.
    pub audited: u64,
    /// Audited rejects the annealer would in fact have accepted.
    pub false_rejects: u64,
    /// `route_edge` invocations on the admitted path, including the
    /// initial mapping construction.
    pub router_invocations: u64,
    /// `route_edge` invocations spent on the audit. Kept separate so A/B
    /// comparisons of admitted-path router work stay fair.
    pub audit_router_invocations: u64,
}

impl FilterStats {
    /// Accumulates another chain's counters (portfolio aggregation).
    pub fn merge(&mut self, other: &FilterStats) {
        self.proposals += other.proposals;
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.audited += other.audited;
        self.false_rejects += other.false_rejects;
        self.router_invocations += other.router_invocations;
        self.audit_router_invocations += other.audit_router_invocations;
    }
}

/// Builds the movement feature vector: the movement's shape (how many
/// nodes moved, how far), the local placement context of the moved nodes
/// (operation class, degrees, schedule position and slack, distance to
/// placed data neighbours, target-PE congestion), and the global mapping
/// state the movement landed in (unplaced/unrouted fractions, routing
/// occupancy). Called after placement and before routing; reads only.
///
/// Layout (all values normalised to roughly `[0, 1]`; means are over the
/// moved set, pair terms over (moved node, placed data neighbour) pairs):
///
/// | idx | feature |
/// |----:|---------|
/// | 0 | moved nodes / DFG nodes |
/// | 1 | unplaced nodes after placement / DFG nodes |
/// | 2 | unrouted edges before routing / DFG edges |
/// | 3 | routing cells / (PE count · II) |
/// | 4 | mean moved-op code / op-code span |
/// | 5 | mean moved in-degree / max degree seen |
/// | 6 | mean moved out-degree / max degree seen |
/// | 7 | mean moved ASAP level / schedule window |
/// | 8 | mean moved slack (ALAP − placed time) / schedule window |
/// | 9 | mean PE distance to placed data neighbours / fabric diameter |
/// | 10 | max PE distance to placed data neighbours / fabric diameter |
/// | 11 | fraction of neighbour pairs with distance > time gap |
/// | 12 | mean target-PE FU occupancy (busy slots / II) |
/// | 13 | mean displacement (old PE → new PE) / fabric diameter |
pub(crate) fn movement_features_into(
    m: &Mapping<'_>,
    moved: &[NodeId],
    displaced: &[(NodeId, Placement)],
    out: &mut Vec<f64>,
) {
    out.clear();
    let dfg = m.dfg();
    let acc = m.accelerator();
    let ii = m.ii();
    let nodes = dfg.node_count().max(1) as f64;
    let edges = dfg.edge_count().max(1) as f64;
    let window = f64::from(m.schedule_window().max(1));
    let diameter = fabric_diameter(acc).max(1.0);

    out.push(moved.len() as f64 / nodes);
    out.push(m.unplaced_count() as f64 / nodes);
    out.push(m.unrouted_count() as f64 / edges);
    out.push(m.routing_cells() as f64 / (acc.pe_count() as f64 * f64::from(ii.max(1))));

    let mut op_sum = 0.0;
    let mut in_sum = 0.0;
    let mut out_sum = 0.0;
    let mut asap_sum = 0.0;
    let mut slack_sum = 0.0;
    let mut slack_n = 0.0;
    let mut dist_sum = 0.0;
    let mut dist_max = 0.0f64;
    let mut pair_n = 0.0;
    let mut infeasible = 0.0;
    let mut occ_sum = 0.0;
    let mut occ_n = 0.0;
    for &v in moved {
        op_sum += dfg.node(v).op.code() as f64;
        in_sum += dfg.in_degree(v) as f64;
        out_sum += dfg.out_degree(v) as f64;
        asap_sum += f64::from(m.asap_level(v));
        let Some(p) = m.placement(v) else { continue };
        slack_sum += f64::from(m.alap_level(v)) - f64::from(p.time);
        slack_n += 1.0;
        for t in 0..ii.max(1) {
            if !m.fu_free(p.pe, t) {
                occ_sum += 1.0;
            }
        }
        occ_n += f64::from(ii.max(1));
        for n in dfg.predecessors(v).chain(dfg.successors(v)) {
            let Some(np) = m.placement(n) else { continue };
            let d = f64::from(acc.spatial_distance(p.pe, np.pe));
            dist_sum += d;
            dist_max = dist_max.max(d);
            pair_n += 1.0;
            let gap = f64::from(p.time.abs_diff(np.time));
            if d > gap {
                infeasible += 1.0;
            }
        }
    }
    let moved_n = moved.len().max(1) as f64;
    // Op codes and degrees have small integer ranges; a fixed span keeps
    // the scale stable across DFGs.
    out.push(op_sum / moved_n / 16.0);
    out.push(in_sum / moved_n / 8.0);
    out.push(out_sum / moved_n / 8.0);
    out.push(asap_sum / moved_n / window);
    out.push(if slack_n > 0.0 {
        slack_sum / slack_n / window
    } else {
        0.0
    });
    out.push(if pair_n > 0.0 { dist_sum / pair_n } else { 0.0 } / diameter);
    out.push(dist_max / diameter);
    out.push(if pair_n > 0.0 {
        infeasible / pair_n
    } else {
        0.0
    });
    out.push(if occ_n > 0.0 { occ_sum / occ_n } else { 0.0 });

    let mut disp_sum = 0.0;
    let mut disp_n = 0.0;
    for &(v, old) in displaced {
        let Some(new) = m.placement(v) else { continue };
        disp_sum += f64::from(acc.spatial_distance(old.pe, new.pe));
        disp_n += 1.0;
    }
    out.push(if disp_n > 0.0 { disp_sum / disp_n } else { 0.0 } / diameter);

    debug_assert_eq!(out.len(), MOVEMENT_FEATURE_DIM);
}

/// Upper bound on pairwise PE distance, used to normalise distance
/// features. The corner-to-corner distance bounds a mesh exactly; for
/// irregular fabrics it is still a usable scale (never zero).
fn fabric_diameter(acc: &lisa_arch::Accelerator) -> f64 {
    let n = acc.pe_count();
    if n < 2 {
        return 1.0;
    }
    f64::from(acc.spatial_distance(PeId::new(0), PeId::new(n - 1))).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_arch::Accelerator;
    use lisa_dfg::{Dfg, OpKind};

    fn chain() -> Dfg {
        let mut g = Dfg::new("chain3");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        let c = g.add_node(OpKind::Store, "c");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(b, c).unwrap();
        g
    }

    #[test]
    fn feature_vector_has_declared_width_and_is_finite() {
        let dfg = chain();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&dfg, &acc, 2).unwrap();
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        m.place(NodeId::new(1), PeId::new(1), 1).unwrap();
        let moved = [NodeId::new(1), NodeId::new(2)];
        let displaced = [(
            NodeId::new(1),
            Placement {
                pe: PeId::new(3),
                time: 2,
            },
        )];
        let mut out = Vec::new();
        movement_features_into(&m, &moved, &displaced, &mut out);
        assert_eq!(out.len(), MOVEMENT_FEATURE_DIM);
        assert!(out.iter().all(|v| v.is_finite()), "{out:?}");
        // Node 2 is unplaced: 1 of 3 nodes.
        assert!((out[1] - 1.0 / 3.0).abs() < 1e-12);
        // Both edges unrouted.
        assert!((out[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn features_are_a_pure_function_of_the_state() {
        let dfg = chain();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&dfg, &acc, 2).unwrap();
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        let moved = [NodeId::new(0)];
        let mut a = Vec::new();
        let mut b = Vec::new();
        movement_features_into(&m, &moved, &[], &mut a);
        movement_features_into(&m, &moved, &[], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_movement_is_all_global_state() {
        let dfg = chain();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let m = Mapping::new(&dfg, &acc, 1).unwrap();
        let mut out = Vec::new();
        movement_features_into(&m, &[], &[], &mut out);
        assert_eq!(out.len(), MOVEMENT_FEATURE_DIM);
        assert!(out.iter().all(|v| v.is_finite()));
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn merge_accumulates_every_counter() {
        let mut a = FilterStats {
            proposals: 1,
            admitted: 2,
            rejected: 3,
            audited: 4,
            false_rejects: 5,
            router_invocations: 6,
            audit_router_invocations: 7,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            FilterStats {
                proposals: 2,
                admitted: 4,
                rejected: 6,
                audited: 8,
                false_rejects: 10,
                router_invocations: 12,
                audit_router_invocations: 14,
            }
        );
    }
}
