//! Deterministic list-scheduling mapper.
//!
//! The paper's taxonomy (§I) separates meta-heuristics (SA), mathematical
//! optimisation (ILP), and *hybrid heuristics* that schedule greedily with
//! architectural cost functions. This module provides a representative of
//! the third class: nodes are placed in height-based priority order; each
//! node takes the feasible `(pe, time)` slot with the cheapest immediate
//! placement + routing cost; a small amount of backtracking (ripping the
//! most recent placements) recovers from dead ends. It is fully
//! deterministic — useful both as a baseline and as a fast first attempt
//! before annealing.

use lisa_arch::Accelerator;
use lisa_dfg::{analysis, Dfg, EdgeId, NodeId};

use crate::sa::candidate_slots;
use crate::schedule::IiMapper;
use crate::Mapping;

/// Configuration of the greedy mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyParams {
    /// How many most-recent placements to rip up when a node has no
    /// feasible slot, per retry.
    pub backtrack_depth: usize,
    /// Maximum rip-up retries before giving up on the II.
    pub max_backtracks: usize,
}

impl Default for GreedyParams {
    fn default() -> Self {
        GreedyParams {
            backtrack_depth: 3,
            max_backtracks: 24,
        }
    }
}

/// The deterministic list-scheduling mapper.
///
/// # Example
///
/// ```
/// use lisa_dfg::polybench;
/// use lisa_arch::Accelerator;
/// use lisa_mapper::{greedy::GreedyMapper, schedule::IiSearch};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = polybench::kernel("doitgen")?;
/// let acc = Accelerator::cgra("4x4", 4, 4);
/// let mut greedy = GreedyMapper::default();
/// let outcome = IiSearch { max_ii: Some(10) }.run(&mut greedy, &dfg, &acc);
/// assert!(outcome.mapped());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GreedyMapper {
    params: GreedyParams,
}

impl GreedyMapper {
    /// Creates a mapper with explicit parameters.
    pub fn new(params: GreedyParams) -> Self {
        GreedyMapper { params }
    }

    /// The backtracking parameters.
    pub fn params(&self) -> &GreedyParams {
        &self.params
    }
}

/// Height-based priority: nodes on long downward paths first, ties broken
/// by ASAP then id — the classic modulo-scheduling list order.
fn priority_order(dfg: &Dfg) -> Vec<NodeId> {
    let asap = analysis::asap(dfg);
    let mut height = vec![0u32; dfg.node_count()];
    let order = dfg.topological_order().expect("valid DFGs are acyclic");
    for &v in order.iter().rev() {
        for s in dfg.data_successors(v) {
            height[v.index()] = height[v.index()].max(height[s.index()] + 1);
        }
    }
    let mut nodes: Vec<NodeId> = dfg.node_ids().collect();
    nodes.sort_by_key(|n| {
        (
            asap[n.index()],
            std::cmp::Reverse(height[n.index()]),
            n.index(),
        )
    });
    nodes
}

/// Tries to place `node` on its cheapest feasible slot, routing all edges
/// to already-placed neighbours. Returns the routed edges on success.
fn place_cheapest(mapping: &mut Mapping<'_>, node: NodeId) -> Option<Vec<EdgeId>> {
    let dfg = mapping.dfg();
    let mut candidates = candidate_slots(mapping, node);
    // Deterministic cost order: earliest time, then the summed distance to
    // placed neighbours, then PE id.
    candidates.sort_by_key(|&(pe, t)| {
        let mut dist = 0u32;
        for p in dfg.predecessors(node).chain(dfg.successors(node)) {
            if let Some(pp) = mapping.placement(p) {
                dist += mapping.accelerator().spatial_distance(pe, pp.pe);
            }
        }
        (t, dist, pe.index())
    });
    'candidates: for (pe, t) in candidates {
        if mapping.place(node, pe, t).is_err() {
            continue;
        }
        let incident: Vec<EdgeId> = dfg
            .in_edges(node)
            .iter()
            .chain(dfg.out_edges(node))
            .copied()
            .collect();
        let mut routed = Vec::new();
        for e in incident {
            if mapping.route(e).is_some() {
                continue;
            }
            let edge = dfg.edge(e);
            if mapping.placement(edge.src).is_none() || mapping.placement(edge.dst).is_none() {
                continue;
            }
            if mapping.route_edge(e).is_err() {
                for r in routed {
                    mapping.unroute_edge(r);
                }
                mapping.unplace(node);
                continue 'candidates;
            }
            routed.push(e);
        }
        return Some(routed);
    }
    None
}

impl IiMapper for GreedyMapper {
    fn name(&self) -> &str {
        "Greedy"
    }

    fn map_at_ii<'a>(
        &mut self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        ii: u32,
    ) -> Option<Mapping<'a>> {
        let mut mapping = Mapping::new(dfg, acc, ii).ok()?;
        let order = priority_order(dfg);
        let mut placed_stack: Vec<NodeId> = Vec::with_capacity(order.len());
        let mut idx = 0;
        let mut backtracks = 0;
        while idx < order.len() {
            let node = order[idx];
            if mapping.placement(node).is_some() {
                idx += 1;
                continue;
            }
            match place_cheapest(&mut mapping, node) {
                Some(_) => {
                    placed_stack.push(node);
                    idx += 1;
                }
                None => {
                    if backtracks >= self.params.max_backtracks || placed_stack.is_empty() {
                        return None;
                    }
                    backtracks += 1;
                    // Rip up the most recent placements and retry from the
                    // earliest ripped node.
                    let rip = self.params.backtrack_depth.min(placed_stack.len());
                    for _ in 0..rip {
                        let victim = placed_stack.pop().expect("stack non-empty");
                        mapping.unplace(victim);
                    }
                    idx = order
                        .iter()
                        .position(|n| mapping.placement(*n).is_none())
                        .expect("at least the current node is unplaced");
                }
            }
        }
        mapping.is_complete().then_some(mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::IiSearch;
    use lisa_dfg::polybench;

    #[test]
    fn greedy_maps_all_polybench_kernels_on_4x4() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        for dfg in polybench::all_kernels() {
            let mut greedy = GreedyMapper::default();
            let (outcome, mapping) =
                IiSearch { max_ii: Some(16) }.run_with_mapping(&mut greedy, &dfg, &acc);
            assert!(outcome.mapped(), "{} failed", dfg.name());
            mapping.unwrap().verify().unwrap();
        }
    }

    #[test]
    fn greedy_is_deterministic() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        let dfg = polybench::kernel("gemm").unwrap();
        let a = GreedyMapper::default().map_at_ii(&dfg, &acc, 3);
        let b = GreedyMapper::default().map_at_ii(&dfg, &acc, 3);
        match (a, b) {
            (Some(x), Some(y)) => {
                for n in dfg.node_ids() {
                    assert_eq!(x.placement(n), y.placement(n));
                }
            }
            (None, None) => {}
            _ => panic!("nondeterministic greedy"),
        }
    }

    #[test]
    fn priority_order_is_topological_within_levels() {
        let dfg = polybench::kernel("gemm").unwrap();
        let order = priority_order(&dfg);
        let asap = analysis::asap(&dfg);
        for w in order.windows(2) {
            assert!(asap[w[0].index()] <= asap[w[1].index()]);
        }
    }

    #[test]
    fn greedy_respects_infeasible_ii() {
        let mut g = Dfg::new("five");
        for i in 0..5 {
            g.add_node(lisa_dfg::OpKind::Add, format!("n{i}"));
        }
        let acc = Accelerator::cgra("1x1", 1, 1);
        assert!(GreedyMapper::default().map_at_ii(&g, &acc, 2).is_none());
    }

    #[test]
    fn greedy_is_fast() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        let dfg = polybench::kernel("syr2k").unwrap();
        let start = std::time::Instant::now();
        let mut greedy = GreedyMapper::default();
        let _ = IiSearch { max_ii: Some(16) }.run(&mut greedy, &dfg, &acc);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "greedy took {:?}",
            start.elapsed()
        );
    }
}
