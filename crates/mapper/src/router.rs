//! Dijkstra routing over the time-expanded MRRG (paper Algorithm 1,
//! line 11: "Route using Dijkstra's algorithm").
//!
//! A route for a dependency `u@(p, t_u) -> v@(q, t_v)` is a chain of
//! resources occupied at consecutive cycles `t_u + 1 .. t_v - 1`, whose
//! last element can feed the consumer FU at `t_v` (or, when
//! `t_v = t_u + 1`, the producer FU feeds the consumer directly). Every
//! hop advances time by exactly one cycle, so the search is layered: the
//! frontier at layer `k` holds resources reachable at cycle `t_u + k`.
//!
//! Costs are the number of *newly occupied* cells: reusing a cell the same
//! value already holds at the same absolute cycle (fanout prefix sharing)
//! is free, which is what makes multi-consumer nets affordable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use lisa_arch::{Mrrg, PeId, Resource};
use lisa_dfg::NodeId;

use crate::mapping::RouteStep;

/// Sentinel for "no parent" in [`RouterScratch::parent`].
const NO_PARENT: usize = usize::MAX;

/// Reusable Dijkstra state. The search arrays are epoch-stamped: a cell is
/// only valid when its epoch matches the current search's, so starting a
/// new search is O(1) and per-search work is O(states touched), not
/// O(state_count). One scratch is owned by each [`crate::Mapping`], so the
/// annealer's millions of `route_edge` calls stop reallocating.
#[derive(Clone, Default)]
pub struct RouterScratch {
    best: Vec<u32>,
    parent: Vec<usize>,
    resource: Vec<Option<Resource>>,
    epoch: Vec<u32>,
    cur: u32,
    // (cost, state index). Indices fit u32 (layers × resources per slot),
    // and the 8-byte entry keeps the heap's sift loops in fewer cache
    // lines than a (u32, usize) tuple would.
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    moves: Vec<Resource>,
}

impl fmt::Debug for RouterScratch {
    /// Opaque by design: scratch contents are transient search state, and
    /// including them in `Mapping`'s debug rendering would break the
    /// byte-identity contracts (rollback equivalence, run determinism).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RouterScratch")
    }
}

impl RouterScratch {
    /// Starts a new search over `state_count` states.
    fn begin(&mut self, state_count: usize) {
        if self.epoch.len() < state_count {
            self.best.resize(state_count, u32::MAX);
            self.parent.resize(state_count, NO_PARENT);
            self.resource.resize(state_count, None);
            self.epoch.resize(state_count, 0);
        }
        self.heap.clear();
        if self.cur == u32::MAX {
            // Epoch wrap: invalidate everything once, then restart.
            self.epoch.fill(0);
            self.cur = 0;
        }
        self.cur += 1;
    }

    fn best(&self, idx: usize) -> u32 {
        if self.epoch[idx] == self.cur {
            self.best[idx]
        } else {
            u32::MAX
        }
    }

    fn set(&mut self, idx: usize, cost: u32, resource: Resource, parent: usize) {
        self.epoch[idx] = self.cur;
        self.best[idx] = cost;
        self.resource[idx] = Some(resource);
        self.parent[idx] = parent;
    }
}

/// Finds a minimum-new-cost route with a throwaway scratch. Convenience
/// wrapper over [`find_route_in`] for one-off calls and tests; hot paths
/// (the annealer) reuse a scratch instead.
pub fn find_route(
    mrrg: &Mrrg<'_>,
    value: NodeId,
    src_pe: PeId,
    src_time: u32,
    dst_pe: PeId,
    dst_time: u32,
    step_cost: impl Fn(Resource, u32) -> Option<u32>,
) -> Option<Vec<RouteStep>> {
    let mut scratch = RouterScratch::default();
    find_route_in(
        &mut scratch,
        mrrg,
        value,
        src_pe,
        src_time,
        dst_pe,
        dst_time,
        step_cost,
    )
}

/// Finds a minimum-new-cost route.
///
/// `step_cost(resource, time)` returns `None` when the cell is unusable
/// (occupied by an op or a foreign value), `Some(0)` when the value already
/// holds the cell at the same absolute time (fanout prefix reuse is free),
/// and `Some(1)` for a fresh occupation.
///
/// Returns the intermediate steps (empty when the consumer is directly
/// adjacent one cycle later), or `None` if no conflict-free path exists.
#[allow(clippy::too_many_arguments)]
pub fn find_route_in(
    scratch: &mut RouterScratch,
    mrrg: &Mrrg<'_>,
    _value: NodeId,
    src_pe: PeId,
    src_time: u32,
    dst_pe: PeId,
    dst_time: u32,
    step_cost: impl Fn(Resource, u32) -> Option<u32>,
) -> Option<Vec<RouteStep>> {
    debug_assert!(dst_time > src_time, "router requires causal timing");
    let hops = dst_time - src_time;
    if hops == 1 {
        // Direct consumption: producer FU must be adjacent to consumer.
        return mrrg
            .can_consume(Resource::Fu(src_pe), dst_pe)
            .then(Vec::new);
    }
    let layers = (hops - 1) as usize; // intermediate steps

    // Dense state indexing: layer * resources_per_slot + resource offset.
    let per_slot = mrrg.resources_per_slot();
    let state_count = layers * per_slot;
    let resource_offset = |r: Resource| -> usize {
        match r {
            Resource::Fu(p) => p.index(),
            Resource::Reg(p, reg) => {
                mrrg.accelerator().pe_count()
                    + p.index() * mrrg.accelerator().regs_per_pe()
                    + reg as usize
            }
        }
    };
    scratch.begin(state_count);

    // The moves buffer is taken out of the scratch so the borrow checker
    // allows mutating the search arrays while iterating it; `moves_from`
    // would otherwise allocate on every expansion of the hot loop.
    let mut moves = std::mem::take(&mut scratch.moves);

    // Cone pruning: `hop_distance` is a true lower bound on the link hops
    // a value still needs, so a state at layer `k` whose PE is further
    // than the remaining `layers - k` moves (counting the final consume
    // hop) can never feed the consumer. Pruned states only ever expand to
    // other pruned states, so surviving costs, heap pop order (the total
    // order on `(cost, idx)`), and the chosen route are exactly what the
    // unpruned search would produce. This holds for *any* true lower
    // bound: on big fabrics `hop_distance` comes from a landmark oracle
    // that may under-estimate far distances, which only admits extra
    // dead-end states — never changes the route (tested below against
    // the dense index).
    let acc = mrrg.accelerator();
    let reachable =
        |r: Resource, layer: usize| acc.hop_distance(r.pe(), dst_pe) as usize <= layers - layer;

    // Seed layer 0 (cycle src_time + 1) from the producer FU.
    mrrg.moves_from_into(Resource::Fu(src_pe), &mut moves);
    for &r in &moves {
        if !reachable(r, 0) {
            continue;
        }
        let t = src_time + 1;
        let Some(cost) = step_cost(r, t) else {
            continue;
        };
        let idx = resource_offset(r);
        if cost < scratch.best(idx) {
            scratch.set(idx, cost, r, NO_PARENT);
            scratch.heap.push(Reverse((cost, idx as u32)));
        }
    }

    let mut goal: Option<usize> = None;
    while let Some(Reverse((cost, idx))) = scratch.heap.pop() {
        let idx = idx as usize;
        if cost > scratch.best(idx) {
            continue;
        }
        let layer = idx / per_slot;
        let r = scratch.resource[idx].expect("visited states hold a resource");
        let time = src_time + 1 + layer as u32;
        if layer == layers - 1 {
            // Last intermediate layer: can it feed the consumer? Pops
            // come off the heap in nondecreasing cost order, so the first
            // consumable state is optimal — nothing later in the heap can
            // strictly improve on it.
            if mrrg.can_consume(r, dst_pe) {
                goal = Some(idx);
                break;
            }
            continue;
        }
        mrrg.moves_from_into(r, &mut moves);
        for &next in &moves {
            if !reachable(next, layer + 1) {
                continue;
            }
            let nt = time + 1;
            let Some(c) = step_cost(next, nt) else {
                continue;
            };
            let nidx = (layer + 1) * per_slot + resource_offset(next);
            let ncost = cost + c;
            if ncost < scratch.best(nidx) {
                scratch.set(nidx, ncost, next, idx);
                scratch.heap.push(Reverse((ncost, nidx as u32)));
            }
        }
    }

    scratch.moves = moves;

    let goal = goal?;
    // Reconstruct.
    let mut steps = Vec::with_capacity(layers);
    let mut cur = goal;
    loop {
        let layer = cur / per_slot;
        let r = scratch.resource[cur].expect("path states hold a resource");
        steps.push(RouteStep {
            resource: r,
            time: src_time + 1 + layer as u32,
        });
        match scratch.parent[cur] {
            NO_PARENT => break,
            prev => cur = prev,
        }
    }
    steps.reverse();
    Some(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_arch::Accelerator;

    fn any_usable(_r: Resource, _t: u32) -> Option<u32> {
        Some(1)
    }

    #[test]
    fn adjacent_direct_route_is_empty() {
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mrrg = Mrrg::new(&acc, 2).unwrap();
        let steps = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(1),
            1,
            any_usable,
        )
        .unwrap();
        assert!(steps.is_empty());
    }

    #[test]
    fn non_adjacent_one_hop_fails() {
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mrrg = Mrrg::new(&acc, 2).unwrap();
        // PE0 and PE3 are diagonal: not linked.
        let r = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(3),
            1,
            any_usable,
        );
        assert!(r.is_none());
    }

    #[test]
    fn two_cycle_route_crosses_diagonal() {
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mrrg = Mrrg::new(&acc, 4).unwrap();
        let steps = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(3),
            2,
            any_usable,
        )
        .unwrap();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].time, 1);
        // Intermediate must be FU(1) or FU(2) (a register on PE0 cannot
        // reach PE3, which is not a neighbour of PE0).
        match steps[0].resource {
            Resource::Fu(p) => assert!(p.index() == 1 || p.index() == 2),
            Resource::Reg(_, _) => panic!("register cannot feed diagonal PE"),
        }
    }

    #[test]
    fn slack_route_waits_in_registers() {
        // Same source and destination PE, 3 cycles apart: hold in regs.
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mrrg = Mrrg::new(&acc, 8).unwrap();
        let steps = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(0),
            3,
            any_usable,
        )
        .unwrap();
        assert_eq!(steps.len(), 2);
    }

    #[test]
    fn blocked_cells_force_detour_or_failure() {
        let acc = Accelerator::cgra("1x3", 1, 3).with_regs_per_pe(0);
        let mrrg = Mrrg::new(&acc, 4).unwrap();
        // 0 -> 2 in 2 cycles must pass FU(1)@1; block it.
        let blocked =
            |r: Resource, t: u32| (!(r == Resource::Fu(PeId::new(1)) && t == 1)).then_some(1);
        let route = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(2),
            2,
            blocked,
        );
        assert!(route.is_none());
        // With 3 cycles there is still no path avoiding FU(1)@1? The value
        // can wait on FU(0)@1 then FU(1)@2 then consume at 3.
        let route3 = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(2),
            3,
            blocked,
        )
        .unwrap();
        assert_eq!(route3.len(), 2);
    }

    #[test]
    fn min_cost_prefers_short_paths() {
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mrrg = Mrrg::new(&acc, 8).unwrap();
        // 0 -> 8 in 4 cycles: exactly Manhattan distance, 3 intermediates.
        let steps = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(8),
            4,
            any_usable,
        )
        .unwrap();
        assert_eq!(steps.len(), 3);
        // All steps must be FU hops on a monotone staircase.
        for s in &steps {
            assert!(s.resource.is_fu());
        }
    }

    /// The result-identity contract of cone pruning: on a fabric big
    /// enough that the landmark oracle is in play (12×12, beyond the
    /// dense auto-threshold) every route — short, long-haul past the
    /// oracle's exact radius, congested, or infeasible — must be
    /// byte-identical to the one found with the exact dense table.
    #[test]
    fn oracle_and_dense_indexes_route_identically() {
        use lisa_arch::DistanceMode;

        let oracle = Accelerator::cgra("12x12", 12, 12);
        let dense = Accelerator::cgra("12x12", 12, 12).with_distance_mode(DistanceMode::Dense);
        assert_eq!(oracle.distance_index_kind(), "oracle");
        assert_eq!(dense.distance_index_kind(), "dense");
        let mrrg_o = Mrrg::new(&oracle, 4).unwrap();
        let mrrg_d = Mrrg::new(&dense, 4).unwrap();

        // Congestion pattern: scattered FUs unusable at odd cycles.
        let congested = |r: Resource, t: u32| {
            (!(matches!(r, Resource::Fu(p) if p.index() % 7 == 3) && t % 2 == 1)).then_some(1)
        };
        // (src, dst, latency): corner-to-corner crosses Manhattan 22,
        // far beyond the oracle's exact radius; the tight case gives the
        // route zero slack; the short case stays inside the exact ball.
        let cases = [
            (0usize, 143usize, 23u32),
            (0, 143, 26),
            (12, 140, 20),
            (5, 5, 3),
            (0, 7, 8),
            (130, 2, 24),
            (0, 143, 12), // infeasible: latency below Manhattan distance
        ];
        for (src, dst, latency) in cases {
            for cost in [
                &any_usable as &dyn Fn(Resource, u32) -> Option<u32>,
                &congested,
            ] {
                let ro = find_route(
                    &mrrg_o,
                    NodeId::new(0),
                    PeId::new(src),
                    0,
                    PeId::new(dst),
                    latency,
                    cost,
                );
                let rd = find_route(
                    &mrrg_d,
                    NodeId::new(0),
                    PeId::new(src),
                    0,
                    PeId::new(dst),
                    latency,
                    cost,
                );
                assert_eq!(ro, rd, "route diverged for {src}->{dst}@{latency}");
            }
        }
    }

    #[test]
    fn systolic_direction_respected() {
        let acc = Accelerator::systolic("s", 3, 3);
        let mrrg = Mrrg::new(&acc, 1).unwrap();
        // Leftward route is impossible at any latency (links forward-only,
        // and at II=1 every wait slot collides with itself; use latency 2).
        let back = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(1),
            0,
            PeId::new(0),
            2,
            any_usable,
        );
        assert!(back.is_none());
        // Forward works.
        let fwd = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(1),
            1,
            any_usable,
        );
        assert!(fwd.is_some());
    }
}
