//! Dijkstra routing over the time-expanded MRRG (paper Algorithm 1,
//! line 11: "Route using Dijkstra's algorithm").
//!
//! A route for a dependency `u@(p, t_u) -> v@(q, t_v)` is a chain of
//! resources occupied at consecutive cycles `t_u + 1 .. t_v - 1`, whose
//! last element can feed the consumer FU at `t_v` (or, when
//! `t_v = t_u + 1`, the producer FU feeds the consumer directly). Every
//! hop advances time by exactly one cycle, so the search is layered: the
//! frontier at layer `k` holds resources reachable at cycle `t_u + k`.
//!
//! Costs are the number of *newly occupied* cells: reusing a cell the same
//! value already holds at the same absolute cycle (fanout prefix sharing)
//! is free, which is what makes multi-consumer nets affordable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lisa_arch::{Mrrg, PeId, Resource};
use lisa_dfg::NodeId;

use crate::mapping::RouteStep;

/// Finds a minimum-new-cost route.
///
/// `step_cost(resource, time)` returns `None` when the cell is unusable
/// (occupied by an op or a foreign value), `Some(0)` when the value already
/// holds the cell at the same absolute time (fanout prefix reuse is free),
/// and `Some(1)` for a fresh occupation.
///
/// Returns the intermediate steps (empty when the consumer is directly
/// adjacent one cycle later), or `None` if no conflict-free path exists.
pub fn find_route(
    mrrg: &Mrrg<'_>,
    _value: NodeId,
    src_pe: PeId,
    src_time: u32,
    dst_pe: PeId,
    dst_time: u32,
    step_cost: impl Fn(Resource, u32) -> Option<u32>,
) -> Option<Vec<RouteStep>> {
    debug_assert!(dst_time > src_time, "router requires causal timing");
    let hops = dst_time - src_time;
    if hops == 1 {
        // Direct consumption: producer FU must be adjacent to consumer.
        return mrrg
            .can_consume(Resource::Fu(src_pe), dst_pe)
            .then(Vec::new);
    }
    let layers = (hops - 1) as usize; // intermediate steps

    // Dense state indexing: layer * resources_per_slot + resource offset.
    let per_slot = mrrg.resources_per_slot();
    let state_count = layers * per_slot;
    let resource_offset = |r: Resource| -> usize {
        match r {
            Resource::Fu(p) => p.index(),
            Resource::Reg(p, reg) => {
                mrrg.accelerator().pe_count()
                    + p.index() * mrrg.accelerator().regs_per_pe()
                    + reg as usize
            }
        }
    };
    let mut best = vec![u32::MAX; state_count];
    let mut parent: Vec<Option<(usize, Resource)>> = vec![None; state_count];
    let mut resources: Vec<Option<Resource>> = vec![None; state_count];

    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();

    // Seed layer 0 (cycle src_time + 1) from the producer FU.
    for r in mrrg.moves_from(Resource::Fu(src_pe)) {
        let t = src_time + 1;
        let Some(cost) = step_cost(r, t) else {
            continue;
        };
        let idx = resource_offset(r);
        if cost < best[idx] {
            best[idx] = cost;
            resources[idx] = Some(r);
            heap.push(Reverse((cost, idx)));
        }
    }

    let mut goal: Option<usize> = None;
    let mut goal_cost = u32::MAX;
    while let Some(Reverse((cost, idx))) = heap.pop() {
        if cost > best[idx] {
            continue;
        }
        let layer = idx / per_slot;
        let r = resources[idx].expect("visited states hold a resource");
        let time = src_time + 1 + layer as u32;
        if layer == layers - 1 {
            // Last intermediate layer: can it feed the consumer?
            if mrrg.can_consume(r, dst_pe) && cost < goal_cost {
                goal = Some(idx);
                goal_cost = cost;
            }
            continue;
        }
        for next in mrrg.moves_from(r) {
            let nt = time + 1;
            let Some(c) = step_cost(next, nt) else {
                continue;
            };
            let nidx = (layer + 1) * per_slot + resource_offset(next);
            let ncost = cost + c;
            if ncost < best[nidx] {
                best[nidx] = ncost;
                resources[nidx] = Some(next);
                parent[nidx] = Some((idx, r));
                heap.push(Reverse((ncost, nidx)));
            }
        }
    }

    let goal = goal?;
    // Reconstruct.
    let mut steps = Vec::with_capacity(layers);
    let mut cur = goal;
    loop {
        let layer = cur / per_slot;
        let r = resources[cur].expect("path states hold a resource");
        steps.push(RouteStep {
            resource: r,
            time: src_time + 1 + layer as u32,
        });
        match parent[cur] {
            Some((prev, _)) => cur = prev,
            None => break,
        }
    }
    steps.reverse();
    Some(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_arch::Accelerator;

    fn any_usable(_r: Resource, _t: u32) -> Option<u32> {
        Some(1)
    }

    #[test]
    fn adjacent_direct_route_is_empty() {
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mrrg = Mrrg::new(&acc, 2).unwrap();
        let steps = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(1),
            1,
            any_usable,
        )
        .unwrap();
        assert!(steps.is_empty());
    }

    #[test]
    fn non_adjacent_one_hop_fails() {
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mrrg = Mrrg::new(&acc, 2).unwrap();
        // PE0 and PE3 are diagonal: not linked.
        let r = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(3),
            1,
            any_usable,
        );
        assert!(r.is_none());
    }

    #[test]
    fn two_cycle_route_crosses_diagonal() {
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mrrg = Mrrg::new(&acc, 4).unwrap();
        let steps = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(3),
            2,
            any_usable,
        )
        .unwrap();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].time, 1);
        // Intermediate must be FU(1) or FU(2) (a register on PE0 cannot
        // reach PE3, which is not a neighbour of PE0).
        match steps[0].resource {
            Resource::Fu(p) => assert!(p.index() == 1 || p.index() == 2),
            Resource::Reg(_, _) => panic!("register cannot feed diagonal PE"),
        }
    }

    #[test]
    fn slack_route_waits_in_registers() {
        // Same source and destination PE, 3 cycles apart: hold in regs.
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mrrg = Mrrg::new(&acc, 8).unwrap();
        let steps = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(0),
            3,
            any_usable,
        )
        .unwrap();
        assert_eq!(steps.len(), 2);
    }

    #[test]
    fn blocked_cells_force_detour_or_failure() {
        let acc = Accelerator::cgra("1x3", 1, 3).with_regs_per_pe(0);
        let mrrg = Mrrg::new(&acc, 4).unwrap();
        // 0 -> 2 in 2 cycles must pass FU(1)@1; block it.
        let blocked =
            |r: Resource, t: u32| (!(r == Resource::Fu(PeId::new(1)) && t == 1)).then_some(1);
        let route = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(2),
            2,
            blocked,
        );
        assert!(route.is_none());
        // With 3 cycles there is still no path avoiding FU(1)@1? The value
        // can wait on FU(0)@1 then FU(1)@2 then consume at 3.
        let route3 = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(2),
            3,
            blocked,
        )
        .unwrap();
        assert_eq!(route3.len(), 2);
    }

    #[test]
    fn min_cost_prefers_short_paths() {
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mrrg = Mrrg::new(&acc, 8).unwrap();
        // 0 -> 8 in 4 cycles: exactly Manhattan distance, 3 intermediates.
        let steps = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(8),
            4,
            any_usable,
        )
        .unwrap();
        assert_eq!(steps.len(), 3);
        // All steps must be FU hops on a monotone staircase.
        for s in &steps {
            assert!(s.resource.is_fu());
        }
    }

    #[test]
    fn systolic_direction_respected() {
        let acc = Accelerator::systolic("s", 3, 3);
        let mrrg = Mrrg::new(&acc, 1).unwrap();
        // Leftward route is impossible at any latency (links forward-only,
        // and at II=1 every wait slot collides with itself; use latency 2).
        let back = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(1),
            0,
            PeId::new(0),
            2,
            any_usable,
        );
        assert!(back.is_none());
        // Forward works.
        let fwd = find_route(
            &mrrg,
            NodeId::new(0),
            PeId::new(0),
            0,
            PeId::new(1),
            1,
            any_usable,
        );
        assert!(fwd.is_some());
    }
}
