//! Simulated-annealing mapping: the vanilla SA baseline and the shared
//! annealing core that the label-aware variant (Algorithm 1) plugs into.
//!
//! The skeleton follows the paper's description of SA-based approaches
//! (§III-B): create an initial mapping, then repeatedly *unmap* a few nodes
//! and remap them (a *movement*), accepting worse mappings with a
//! temperature-controlled probability to escape local minima. The paper's
//! SA baseline and LISA differ **only** in three policy points — placement
//! order, PE-candidate choice, and routing order — so those are factored
//! into the [`SaPolicy`] trait and everything else is shared.

use std::time::{Duration, Instant};

use lisa_rng::Rng;

use lisa_arch::{Accelerator, PeId};
use lisa_dfg::{Dfg, EdgeId, NodeId};
use lisa_events::{EventSink, PipelineEvent};

use crate::mapping::Placement;
use crate::predictor::{movement_features_into, FilterStats, MovementScorer};
use crate::schedule::IiMapper;
use crate::Mapping;

/// Tuning parameters of the annealer.
#[derive(Debug, Clone, PartialEq)]
pub struct SaParams {
    /// Movements attempted at each temperature (paper §VI-C: 50 for SA and
    /// LISA; 500 for the SA-M ablation).
    pub moves_per_temp: u32,
    /// Starting temperature.
    pub initial_temp: f64,
    /// Multiplicative cooling factor per temperature level.
    pub cooling: f64,
    /// Annealing stops when the temperature falls below this.
    pub min_temp: f64,
    /// Wall-clock budget per target II ("not exceed time limitation",
    /// Algorithm 1 line 1).
    pub time_limit: Duration,
    /// Maximum number of nodes unmapped per movement.
    pub max_unmap: usize,
}

impl SaParams {
    /// Paper-scale parameters: 50 movements per temperature.
    pub fn paper() -> Self {
        SaParams {
            moves_per_temp: 50,
            initial_temp: 60.0,
            cooling: 0.95,
            min_temp: 0.4,
            time_limit: Duration::from_secs(10),
            max_unmap: 3,
        }
    }

    /// The SA-M ablation of Fig. 13: 10× movements at each temperature.
    pub fn sa_m() -> Self {
        SaParams {
            moves_per_temp: 500,
            ..SaParams::paper()
        }
    }

    /// Reduced budget for unit tests and doctests.
    pub fn fast() -> Self {
        SaParams {
            moves_per_temp: 25,
            initial_temp: 30.0,
            cooling: 0.85,
            min_temp: 1.0,
            time_limit: Duration::from_secs(2),
            max_unmap: 3,
        }
    }
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams::paper()
    }
}

/// Running movement statistics, exposed to policies for the paper's
/// deviation schedule σ = max{1, α·T − Acc} (Algorithm 1 line 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct MoveStats {
    /// Attempted movements so far (the paper's `T`).
    pub attempted: u32,
    /// Accepted movements so far (the paper's `Acc`).
    pub accepted: u32,
}

/// The three decision points where vanilla SA and label-aware SA differ.
///
/// Ordering hooks receive the mapping (not just the DFG) so policies can
/// use its cached per-node analyses (ASAP/ALAP) instead of recomputing
/// them on every movement.
pub trait SaPolicy {
    /// Orders unmapped nodes for placement (Algorithm 1 line 3).
    fn order_nodes(&self, mapping: &Mapping<'_>, nodes: &mut [NodeId]);

    /// Picks one of `candidates` (all feasible `(pe, time)` slots) for
    /// `node` (Algorithm 1 lines 5–8). Returns an index into `candidates`.
    fn choose_candidate(
        &self,
        mapping: &Mapping<'_>,
        node: NodeId,
        candidates: &[(PeId, u32)],
        stats: MoveStats,
        rng: &mut Rng,
    ) -> usize;

    /// Orders unrouted edges for routing (Algorithm 1 line 9).
    fn order_edges(&self, mapping: &Mapping<'_>, edges: &mut [EdgeId]);
}

/// Vanilla policy: ASAP placement order, uniformly random PE candidate,
/// edge-id routing order — the paper's SA baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct VanillaPolicy;

impl SaPolicy for VanillaPolicy {
    fn order_nodes(&self, mapping: &Mapping<'_>, nodes: &mut [NodeId]) {
        nodes.sort_by_key(|n| (mapping.asap_level(*n), n.index()));
    }

    fn choose_candidate(
        &self,
        _mapping: &Mapping<'_>,
        _node: NodeId,
        candidates: &[(PeId, u32)],
        _stats: MoveStats,
        rng: &mut Rng,
    ) -> usize {
        rng.gen_range(0..candidates.len())
    }

    fn order_edges(&self, _mapping: &Mapping<'_>, edges: &mut [EdgeId]) {
        edges.sort_by_key(|e| e.index());
    }
}

/// Cost of a (possibly partial) mapping: unplaced nodes and unrouted edges
/// dominate; routing cells break ties so tighter routings win, and a small
/// makespan term keeps schedules compact (late placements starve their
/// successors of causal slots). O(1): every term is a running counter the
/// `Mapping` maintains through its mutators.
pub(crate) fn mapping_cost(m: &Mapping<'_>) -> f64 {
    1000.0 * m.unplaced_count() as f64
        + 100.0 * m.unrouted_count() as f64
        + m.routing_cells() as f64
        + 0.01 * m.lateness() as f64
}

/// The pre-journal cost function: identical value to [`mapping_cost`] but
/// recomputed by scanning placements, routes, and the occupancy grid —
/// exactly what every movement paid before the incremental counters. Kept
/// for the movement-throughput bench's before/after comparison.
pub fn mapping_cost_scan(m: &Mapping<'_>) -> f64 {
    let lateness: u64 = m
        .dfg()
        .node_ids()
        .filter_map(|n| m.placement(n))
        .map(|p| u64::from(p.time))
        .sum();
    1000.0 * m.unplaced_nodes().len() as f64
        + 100.0 * m.unrouted_edges().len() as f64
        + m.routing_cells_scan() as f64
        + 0.01 * lateness as f64
}

/// All feasible `(pe, time)` slots for `node`, bounded by its placed data
/// neighbours: after every placed predecessor, before every placed
/// successor. If the bounds conflict, the lower bound wins and the
/// offending successor edges simply fail to route (and cost accordingly).
pub(crate) fn candidate_slots(m: &Mapping<'_>, node: NodeId) -> Vec<(PeId, u32)> {
    let mut out = Vec::new();
    candidate_slots_into(m, node, &mut out);
    out
}

/// Allocation-free variant of [`candidate_slots`]: clears `out` and
/// refills it. The annealer evaluates candidates for every remapped node
/// of every movement, so hot paths reuse one buffer.
fn candidate_slots_into(m: &Mapping<'_>, node: NodeId, out: &mut Vec<(PeId, u32)>) {
    out.clear();
    let dfg = m.dfg();
    let acc = m.accelerator();
    // A node can never execute before its data depth; this keeps
    // placements causal even when a policy orders children first.
    let mut lo = m.asap_level(node);
    for p in dfg.data_predecessors(node) {
        if let Some(pp) = m.placement(p) {
            lo = lo.max(pp.time + 1);
        }
    }
    let mut hi = m.schedule_window() - 1;
    for s in dfg.data_successors(node) {
        if let Some(sp) = m.placement(s) {
            hi = hi.min(sp.time.saturating_sub(1));
        }
    }
    if lo > hi {
        hi = m.schedule_window() - 1;
    }
    let op = dfg.node(node).op;
    for pe in 0..acc.pe_count() {
        let pe = PeId::new(pe);
        if !acc.supports(pe, op) {
            continue;
        }
        // Times fold modulo II, so sweeping 2·II consecutive cycles visits
        // every slot of the PE twice; keep only the earliest two free times
        // per PE so schedules stay compact (late placements starve their
        // successors of causal slots and deadlock the annealer).
        let span_hi = hi.min(lo + m.ii().max(2) * 2);
        let mut kept = 0;
        for t in lo..=span_hi {
            if m.fu_free(pe, t) {
                out.push((pe, t));
                kept += 1;
                if kept == 2 {
                    break;
                }
            }
        }
    }
}

/// Reusable per-anneal scratch for the movement loop. Every movement
/// needs a handful of short-lived lists (problematic nodes, victims, the
/// remap set, the unrouted-edge worklist, candidate slots); owning them
/// here turns five-plus heap allocations per movement into none.
#[derive(Debug, Default)]
pub(crate) struct MoveBuffers {
    problematic: Vec<NodeId>,
    victims: Vec<NodeId>,
    pub(crate) nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
    candidates: Vec<(PeId, u32)>,
    /// Victims' pre-movement placements (for the displacement feature).
    displaced: Vec<(NodeId, Placement)>,
    /// Movement feature vector, filled when a filter or a sink wants it.
    features: Vec<f64>,
}

/// What the movement loop decided before the accept test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MovementVerdict {
    /// Routed and ready for exact pricing (always, with no filter).
    Admitted,
    /// Predictor-rejected before routing; the caller rolls back without
    /// pricing. `audited` marks the deterministic 1-in-16 of rejects that
    /// were routed anyway, measure-only, for the false-reject counter.
    Rejected { audited: bool },
}

/// Audit cadence: the first predictor reject and every 16th after it are
/// routed measure-only, so false-reject rates stay observable at ~6% of
/// the rejected path's router cost. Deterministic — no RNG draw, so the
/// audit never perturbs the trajectory.
const AUDIT_PERIOD: u64 = 16;

/// Plateau bypass: proposals without an accepted strict improvement
/// before the filter starts duty-cycling off. While the chain makes
/// progress the gate stays fully engaged; once it stalls, one
/// `STALL_BURST`-proposal window in every `STALL_PERIOD` runs
/// unfiltered, so the chain keeps the unfiltered annealer's ability to
/// climb out of a local minimum through sequences of worsening moves
/// the predictor would prune. Counter-driven and deterministic — no RNG
/// draw, and with the filter off the counters never change behaviour.
const STALL_ONSET: u32 = 128;
/// Length of one unfiltered burst while stalled.
const STALL_BURST: u32 = 32;
/// One burst in every `STALL_PERIOD` is unfiltered while stalled.
const STALL_PERIOD: u32 = 4;

/// The annealing core shared by [`SaMapper`] and
/// [`crate::LabelSaMapper`]. `chain` tags the emitted
/// [`PipelineEvent::SaSnapshot`]s with the portfolio chain index; the
/// null sink makes the instrumentation free. With `filter` attached,
/// proposals are scored after placement and low scorers are rolled back
/// without invoking the router (predict-then-verify); with `filter`
/// absent the trajectory — every RNG draw — is identical to the
/// pre-filter annealer. Returns the per-chain [`FilterStats`] alongside
/// the mapping; a [`PipelineEvent::SaFilterSummary`] mirrors them into
/// the sink.
pub(crate) fn anneal<'a, P: SaPolicy>(
    policy: &P,
    params: &SaParams,
    dfg: &'a Dfg,
    acc: &'a Accelerator,
    ii: u32,
    rng: &mut Rng,
    chain: usize,
    sink: &EventSink,
    filter: Option<&dyn MovementScorer>,
) -> (Option<Mapping<'a>>, FilterStats) {
    let mut fstats = FilterStats::default();
    let result = anneal_inner(
        policy,
        params,
        dfg,
        acc,
        ii,
        rng,
        chain,
        sink,
        filter,
        &mut fstats,
    );
    if sink.is_active() {
        sink.emit(PipelineEvent::SaFilterSummary {
            chain,
            ii,
            proposals: fstats.proposals,
            admitted: fstats.admitted,
            rejected: fstats.rejected,
            audited: fstats.audited,
            false_rejects: fstats.false_rejects,
            router_invocations: fstats.router_invocations,
            audit_router_invocations: fstats.audit_router_invocations,
        });
    }
    (result, fstats)
}

#[allow(clippy::too_many_arguments)]
fn anneal_inner<'a, P: SaPolicy>(
    policy: &P,
    params: &SaParams,
    dfg: &'a Dfg,
    acc: &'a Accelerator,
    ii: u32,
    rng: &mut Rng,
    chain: usize,
    sink: &EventSink,
    filter: Option<&dyn MovementScorer>,
    fstats: &mut FilterStats,
) -> Option<Mapping<'a>> {
    let start = Instant::now();
    let mut mapping = Mapping::new(dfg, acc, ii).ok()?;
    let mut stats = MoveStats::default();
    let mut bufs = MoveBuffers::default();
    // Building the feature vector costs a scan of the moved set; skip it
    // unless a filter consumes it or a sink captures training pairs.
    let want_features = filter.is_some() || sink.is_active();

    // Initial mapping: every node is unmapped (Algorithm 1, first
    // iteration). Construction is never gated: with nothing placed there
    // is no movement to score.
    bufs.nodes.extend(dfg.node_ids());
    place_nodes(policy, &mut mapping, &mut bufs, stats, rng);
    fstats.router_invocations += route_all(policy, &mut mapping, &mut bufs);
    let mut cost = mapping_cost(&mapping);
    if mapping.is_complete() {
        return Some(mapping);
    }

    let mut temp = params.initial_temp;
    // Proposals since the last accepted strict improvement, for the
    // plateau bypass (see STALL_ONSET).
    let mut stall: u32 = 0;
    while temp > params.min_temp {
        for _ in 0..params.moves_per_temp {
            if start.elapsed() > params.time_limit {
                return None;
            }
            stats.attempted += 1;
            let bypass = stall >= STALL_ONSET && (stall / STALL_BURST) % STALL_PERIOD == 0;
            let gate = if bypass { None } else { filter };
            // Rejected movements are undone through the journal instead of
            // restoring a pre-movement deep clone; in debug builds a
            // snapshot cross-checks that rollback is byte-identical.
            #[cfg(debug_assertions)]
            let snapshot = format!("{mapping:?}");
            mapping.begin_txn();
            let verdict = movement(
                policy,
                &mut mapping,
                params,
                &mut bufs,
                stats,
                rng,
                temp,
                gate,
                fstats,
                want_features,
            );
            if let MovementVerdict::Rejected { audited } = verdict {
                // Predictor reject: no routing happened (audits route
                // measure-only), no pricing, no accept-test RNG draw —
                // this is exactly the work the filter saves.
                if audited && mapping_cost(&mapping) <= cost {
                    fstats.false_rejects += 1;
                }
                stall = stall.saturating_add(1);
                mapping.rollback();
                #[cfg(debug_assertions)]
                debug_assert_eq!(
                    snapshot,
                    format!("{mapping:?}"),
                    "journal rollback diverged from the pre-movement snapshot"
                );
                continue;
            }
            let new_cost = mapping_cost(&mapping);
            if want_features && sink.is_active() {
                sink.emit(PipelineEvent::SaMovementSample {
                    chain,
                    ii,
                    features: bufs.features.clone(),
                    delta_cost: new_cost - cost,
                });
            }
            if mapping.is_complete() {
                mapping.commit();
                return Some(mapping);
            }
            let accept =
                new_cost <= cost || rng.gen_bool(((cost - new_cost) / temp).exp().clamp(0.0, 1.0));
            if accept {
                mapping.commit();
                // The deviation schedule counts only strict improvements:
                // plateau moves must not mask a stuck search, or sigma
                // never widens and the label policy repeats itself. The
                // stall counter follows the same rule — plateau shuffling
                // must not keep the filter engaged on a stuck chain.
                if new_cost < cost {
                    stats.accepted += 1;
                    stall = 0;
                } else {
                    stall = stall.saturating_add(1);
                }
                cost = new_cost;
            } else {
                stall = stall.saturating_add(1);
                mapping.rollback();
                #[cfg(debug_assertions)]
                debug_assert_eq!(
                    snapshot,
                    format!("{mapping:?}"),
                    "journal rollback diverged from the pre-movement snapshot"
                );
            }
        }
        if sink.is_active() {
            sink.emit(PipelineEvent::SaSnapshot {
                chain,
                ii,
                temp,
                cost,
                unplaced: mapping.unplaced_count(),
                unrouted: mapping.unrouted_count(),
                accepted: stats.accepted,
                attempted: stats.attempted,
            });
        }
        temp *= params.cooling;
    }
    None
}

/// One SA movement: unmap a few (biased towards problematic) nodes, remap
/// them in policy order, then — unless the filter rejects the re-placed
/// state — retry every unrouted edge in policy order. The filter runs
/// after placement and before routing, and consumes no RNG, so the
/// filter-off RNG stream is bit-identical to the pre-filter annealer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn movement<P: SaPolicy>(
    policy: &P,
    mapping: &mut Mapping<'_>,
    params: &SaParams,
    bufs: &mut MoveBuffers,
    stats: MoveStats,
    rng: &mut Rng,
    temp: f64,
    filter: Option<&dyn MovementScorer>,
    fstats: &mut FilterStats,
    want_features: bool,
) -> MovementVerdict {
    let dfg = mapping.dfg();
    // Problematic nodes: endpoints of unrouted edges, plus unplaced nodes.
    mapping.unplaced_nodes_into(&mut bufs.problematic);
    for e in dfg.edge_ids() {
        if mapping.route(e).is_none() {
            let edge = dfg.edge(e);
            bufs.problematic.push(edge.src);
            bufs.problematic.push(edge.dst);
        }
    }
    let problematic = &mut bufs.problematic;
    problematic.sort_by_key(|n| n.index());
    problematic.dedup();

    // Duplicate draws retry until `count` distinct victims are found
    // (capped by the node count so the loop always terminates); earlier
    // versions silently shrank the unmap set on collisions, biasing
    // movements toward smaller perturbations than the drawn count.
    let count = rng.gen_range(1..=params.max_unmap).min(dfg.node_count());
    let victims = &mut bufs.victims;
    victims.clear();
    while victims.len() < count {
        let v = if !problematic.is_empty() && rng.gen_bool(0.7) {
            problematic[rng.gen_range(0..problematic.len())]
        } else {
            NodeId::new(rng.gen_range(0..dfg.node_count()))
        };
        if !victims.contains(&v) {
            victims.push(v);
        }
    }
    if want_features {
        bufs.displaced.clear();
        for i in 0..bufs.victims.len() {
            if let Some(p) = mapping.placement(bufs.victims[i]) {
                bufs.displaced.push((bufs.victims[i], p));
            }
        }
    }
    for i in 0..bufs.victims.len() {
        mapping.unplace(bufs.victims[i]);
    }
    // Remap everything currently unplaced (victims plus earlier failures).
    mapping.unplaced_nodes_into(&mut bufs.nodes);
    place_nodes(policy, mapping, bufs, stats, rng);
    fstats.proposals += 1;
    if want_features {
        let (nodes, mut features) = (std::mem::take(&mut bufs.nodes), {
            std::mem::take(&mut bufs.features)
        });
        movement_features_into(mapping, &nodes, &bufs.displaced, &mut features);
        bufs.nodes = nodes;
        bufs.features = features;
    }
    if let Some(scorer) = filter {
        if !scorer.admit(&bufs.features, temp) {
            fstats.rejected += 1;
            // Deterministic audit: route a fixed 1-in-AUDIT_PERIOD of
            // rejects anyway so the false-reject rate stays measurable.
            // The caller prices and rolls back; no RNG is drawn.
            if fstats.rejected % AUDIT_PERIOD == 1 {
                fstats.audited += 1;
                fstats.audit_router_invocations += route_all(policy, mapping, bufs);
                return MovementVerdict::Rejected { audited: true };
            }
            return MovementVerdict::Rejected { audited: false };
        }
    }
    fstats.admitted += 1;
    fstats.router_invocations += route_all(policy, mapping, bufs);
    MovementVerdict::Admitted
}

/// Places the nodes in `bufs.nodes` in policy order, consulting the
/// policy for each slot. The caller fills `bufs.nodes`.
pub(crate) fn place_nodes<P: SaPolicy>(
    policy: &P,
    mapping: &mut Mapping<'_>,
    bufs: &mut MoveBuffers,
    stats: MoveStats,
    rng: &mut Rng,
) {
    policy.order_nodes(mapping, &mut bufs.nodes);
    for i in 0..bufs.nodes.len() {
        let node = bufs.nodes[i];
        candidate_slots_into(mapping, node, &mut bufs.candidates);
        if bufs.candidates.is_empty() {
            continue;
        }
        let idx = policy.choose_candidate(mapping, node, &bufs.candidates, stats, rng);
        let (pe, t) = bufs.candidates[idx];
        mapping
            .place(node, pe, t)
            .expect("candidate slots are feasible by construction");
    }
}

/// Attempts to route every unrouted edge whose endpoints are placed, in
/// policy order. Failures are left unrouted for the cost function.
/// Returns the number of `route_edge` invocations — the unit of router
/// work the movement filter exists to save.
pub(crate) fn route_all<P: SaPolicy>(
    policy: &P,
    mapping: &mut Mapping<'_>,
    bufs: &mut MoveBuffers,
) -> u64 {
    mapping.unrouted_edges_into(&mut bufs.edges);
    policy.order_edges(mapping, &mut bufs.edges);
    let mut invocations = 0;
    for i in 0..bufs.edges.len() {
        let e = bufs.edges[i];
        let edge = mapping.dfg().edge(e);
        if mapping.placement(edge.src).is_none() || mapping.placement(edge.dst).is_none() {
            continue;
        }
        invocations += 1;
        let _ = mapping.route_edge(e);
    }
    invocations
}

/// The pre-PR vanilla policy: same ordering as [`VanillaPolicy`], but
/// recomputes the ASAP analysis on every `order_nodes` call — exactly what
/// the annealer paid per movement before `Mapping` cached the analysis.
/// Only the movement-throughput bench uses it (identical sort keys, so
/// trajectories stay byte-identical to [`VanillaPolicy`]).
#[derive(Debug, Clone, Copy, Default)]
struct UncachedVanillaPolicy;

impl SaPolicy for UncachedVanillaPolicy {
    fn order_nodes(&self, mapping: &Mapping<'_>, nodes: &mut [NodeId]) {
        let asap = lisa_dfg::analysis::asap(mapping.dfg());
        nodes.sort_by_key(|n| (asap[n.index()], n.index()));
    }

    fn choose_candidate(
        &self,
        mapping: &Mapping<'_>,
        node: NodeId,
        candidates: &[(PeId, u32)],
        stats: MoveStats,
        rng: &mut Rng,
    ) -> usize {
        VanillaPolicy.choose_candidate(mapping, node, candidates, stats, rng)
    }

    fn order_edges(&self, mapping: &Mapping<'_>, edges: &mut [EdgeId]) {
        VanillaPolicy.order_edges(mapping, edges);
    }
}

/// Rejected-movement restoration strategy driven by
/// [`movement_throughput`]: the historical per-movement deep clone, or the
/// transaction journal the annealer uses today.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovementEngine {
    /// Pre-journal engine: deep-clone the mapping before each movement,
    /// price the cost function by rescanning, restore the clone on reject.
    SnapshotClone,
    /// Journal engine: record deltas in a transaction, read the running
    /// cost counters, roll back on reject.
    Journal,
}

/// Runs `moves` SA movements at a fixed temperature and returns the number
/// of strict improvements accepted. Both engines consume the RNG
/// identically and price movements to the same values, so for a given seed
/// they follow byte-identical trajectories — the bench compares pure
/// engine overhead, and a unit test pins the equivalence.
pub fn movement_throughput(
    dfg: &Dfg,
    acc: &Accelerator,
    ii: u32,
    seed: u64,
    moves: u32,
    engine: MovementEngine,
) -> u32 {
    let params = SaParams::paper();
    let policy = VanillaPolicy;
    let mut rng = Rng::seed_from_u64(seed);
    let mut mapping = Mapping::new(dfg, acc, ii).expect("bench II must be valid");
    let mut stats = MoveStats::default();
    let mut fstats = FilterStats::default();
    let mut bufs = MoveBuffers::default();
    bufs.nodes.extend(dfg.node_ids());
    place_nodes(&policy, &mut mapping, &mut bufs, stats, &mut rng);
    route_all(&policy, &mut mapping, &mut bufs);
    let temp = params.initial_temp;
    let mut improved = 0;
    match engine {
        MovementEngine::SnapshotClone => {
            // Pre-PR per-movement bill: deep clone, ASAP recompute in the
            // ordering policy, full cost rescan.
            let policy = UncachedVanillaPolicy;
            let mut cost = mapping_cost_scan(&mapping);
            for _ in 0..moves {
                stats.attempted += 1;
                let snapshot = mapping.clone();
                movement(
                    &policy,
                    &mut mapping,
                    &params,
                    &mut bufs,
                    stats,
                    &mut rng,
                    temp,
                    None,
                    &mut fstats,
                    false,
                );
                let new_cost = mapping_cost_scan(&mapping);
                let accept = new_cost <= cost
                    || rng.gen_bool(((cost - new_cost) / temp).exp().clamp(0.0, 1.0));
                if accept {
                    if new_cost < cost {
                        stats.accepted += 1;
                        improved += 1;
                    }
                    cost = new_cost;
                } else {
                    mapping = snapshot;
                }
            }
        }
        MovementEngine::Journal => {
            let mut cost = mapping_cost(&mapping);
            for _ in 0..moves {
                stats.attempted += 1;
                mapping.begin_txn();
                movement(
                    &policy,
                    &mut mapping,
                    &params,
                    &mut bufs,
                    stats,
                    &mut rng,
                    temp,
                    None,
                    &mut fstats,
                    false,
                );
                let new_cost = mapping_cost(&mapping);
                let accept = new_cost <= cost
                    || rng.gen_bool(((cost - new_cost) / temp).exp().clamp(0.0, 1.0));
                if accept {
                    mapping.commit();
                    if new_cost < cost {
                        stats.accepted += 1;
                        improved += 1;
                    }
                    cost = new_cost;
                } else {
                    mapping.rollback();
                }
            }
        }
    }
    improved
}

/// The vanilla simulated-annealing mapper (the paper's SA baseline).
///
/// # Example
///
/// ```
/// use lisa_dfg::{Dfg, OpKind};
/// use lisa_arch::Accelerator;
/// use lisa_mapper::{sa::SaMapper, SaParams, schedule::IiMapper};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_node(OpKind::Load, "a");
/// let b = dfg.add_node(OpKind::Store, "b");
/// dfg.add_data_edge(a, b)?;
/// let acc = Accelerator::cgra("2x2", 2, 2);
/// let mut sa = SaMapper::new(SaParams::fast(), 1);
/// let mapping = sa.map_at_ii(&dfg, &acc, 1).expect("trivially mappable");
/// assert!(mapping.is_complete());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SaMapper {
    params: SaParams,
    seed: u64,
    name: String,
    portfolio: crate::portfolio::PortfolioParams,
    strategy: crate::strategy::StrategySpec,
    sink: EventSink,
    filter: Option<std::sync::Arc<dyn MovementScorer>>,
}

impl SaMapper {
    /// Creates a mapper with the given parameters and RNG seed. Runs a
    /// single annealing chain; see [`with_portfolio`](Self::with_portfolio).
    pub fn new(params: SaParams, seed: u64) -> Self {
        let name = if params.moves_per_temp >= 10 * SaParams::paper().moves_per_temp {
            "SA-M".to_string()
        } else {
            "SA".to_string()
        };
        SaMapper {
            params,
            seed,
            name,
            portfolio: crate::portfolio::PortfolioParams::sequential(),
            strategy: crate::strategy::StrategySpec::default(),
            sink: EventSink::null(),
            filter: None,
        }
    }

    /// Selects the portfolio's lane mix (see [`crate::StrategySpec`]).
    /// The default, `Homogeneous(Sa)`, is byte-identical to the
    /// pre-strategy mapper for every configuration.
    pub fn with_strategy(mut self, strategy: crate::strategy::StrategySpec) -> Self {
        self.strategy = strategy;
        self
    }

    /// Runs a portfolio of independently-seeded chains per II and keeps the
    /// deterministic winner. Chain 0 reproduces the single-chain mapper
    /// exactly, so `chains = 1` is byte-identical to [`new`](Self::new).
    pub fn with_portfolio(mut self, portfolio: crate::portfolio::PortfolioParams) -> Self {
        self.portfolio = portfolio;
        self
    }

    /// Streams per-temperature [`PipelineEvent::SaSnapshot`]s into `sink`
    /// (the replacement for the removed `LISA_SA_DEBUG` env var). Events
    /// never change the trajectory; the null sink restores silence.
    pub fn with_observer(mut self, sink: EventSink) -> Self {
        self.sink = sink;
        self
    }

    /// Attaches a predict-then-verify movement filter. One immutable
    /// scorer is shared by every portfolio chain; detach by rebuilding
    /// the mapper. The filter-off mapper is byte-identical to the
    /// pre-filter annealer.
    pub fn with_movement_filter(mut self, filter: std::sync::Arc<dyn MovementScorer>) -> Self {
        self.filter = Some(filter);
        self
    }

    /// The annealing parameters.
    pub fn params(&self) -> &SaParams {
        &self.params
    }
}

impl IiMapper for SaMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map_at_ii<'a>(
        &mut self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        ii: u32,
    ) -> Option<Mapping<'a>> {
        crate::strategy::run_spec(
            &self.strategy,
            |_chain| VanillaPolicy,
            &self.params,
            &self.portfolio,
            dfg,
            acc,
            ii,
            self.seed,
            &self.sink,
            self.filter.as_deref(),
        )
    }
}

/// Runs one vanilla-policy annealing chain with an optional movement
/// filter and returns the mapping (if any) together with the router-work
/// counters. Seeded exactly like chain 0 of [`SaMapper::new`] with the
/// same `seed`, so `anneal_chain(..., None)` reproduces the sequential
/// mapper byte-for-byte. This is the measurement entry point for the
/// predictor A/B bench and the quality-invariance tests; production
/// paths read the same counters from [`PipelineEvent::SaFilterSummary`].
pub fn anneal_chain<'a>(
    params: &SaParams,
    dfg: &'a Dfg,
    acc: &'a Accelerator,
    ii: u32,
    seed: u64,
    filter: Option<&dyn MovementScorer>,
) -> (Option<Mapping<'a>>, FilterStats) {
    let mut rng = Rng::seed_from_u64(crate::portfolio::chain_seed(seed, 0, ii));
    anneal(
        &VanillaPolicy,
        params,
        dfg,
        acc,
        ii,
        &mut rng,
        0,
        &EventSink::null(),
        filter,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::{polybench, OpKind};

    fn small_chain() -> Dfg {
        let mut g = Dfg::new("chain4");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        let c = g.add_node(OpKind::Mul, "c");
        let d = g.add_node(OpKind::Store, "d");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(b, c).unwrap();
        g.add_data_edge(c, d).unwrap();
        g
    }

    #[test]
    fn sa_maps_small_chain_at_ii1() {
        let dfg = small_chain();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut sa = SaMapper::new(SaParams::fast(), 42);
        let m = sa.map_at_ii(&dfg, &acc, 1).expect("should map");
        assert!(m.is_complete());
        m.verify().unwrap();
    }

    #[test]
    fn sa_maps_fig4_on_3x3() {
        // 10-node DFG on 9 PEs needs II >= 2.
        let mut g = Dfg::new("fig4ish");
        let ids: Vec<NodeId> = (0..10)
            .map(|i| {
                g.add_node(
                    if i < 2 { OpKind::Load } else { OpKind::Add },
                    format!("n{i}"),
                )
            })
            .collect();
        for (s, d) in [
            (0, 2),
            (1, 3),
            (1, 4),
            (1, 5),
            (2, 6),
            (3, 6),
            (3, 7),
            (4, 7),
            (1, 8),
            (4, 8),
            (6, 9),
            (7, 9),
        ] {
            g.add_data_edge(ids[s], ids[d]).unwrap();
        }
        let acc = Accelerator::cgra("3x3", 3, 3);
        let mut sa = SaMapper::new(SaParams::paper(), 3);
        let m = (2..=4)
            .find_map(|ii| sa.map_at_ii(&g, &acc, ii))
            .expect("fig4 fits a 3x3 within II 4");
        m.verify().unwrap();
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let dfg = small_chain();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let m1 = SaMapper::new(SaParams::fast(), 9).map_at_ii(&dfg, &acc, 1);
        let m2 = SaMapper::new(SaParams::fast(), 9).map_at_ii(&dfg, &acc, 1);
        match (m1, m2) {
            (Some(a), Some(b)) => {
                for n in dfg.node_ids() {
                    assert_eq!(a.placement(n), b.placement(n));
                }
            }
            (None, None) => {}
            _ => panic!("nondeterministic outcome"),
        }
    }

    #[test]
    fn sa_fails_when_ii_too_small() {
        // 5 nodes, 1 PE supports them, II 2 -> at most 2 slots: impossible.
        let mut g = Dfg::new("big");
        for i in 0..5 {
            g.add_node(OpKind::Add, format!("n{i}"));
        }
        let acc = Accelerator::cgra("1x1", 1, 1);
        let mut sa = SaMapper::new(SaParams::fast(), 5);
        assert!(sa.map_at_ii(&g, &acc, 2).is_none());
    }

    #[test]
    fn sa_m_naming() {
        assert_eq!(SaMapper::new(SaParams::sa_m(), 0).name(), "SA-M");
        assert_eq!(SaMapper::new(SaParams::paper(), 0).name(), "SA");
    }

    #[test]
    fn sa_maps_a_polybench_kernel() {
        let dfg = polybench::kernel("doitgen").unwrap();
        let acc = Accelerator::cgra("4x4", 4, 4);
        let mut sa = SaMapper::new(SaParams::fast(), 11);
        let mut found = None;
        for ii in crate::schedule::mii(&dfg, &acc)..=8 {
            if let Some(m) = sa.map_at_ii(&dfg, &acc, ii) {
                found = Some((ii, m));
                break;
            }
        }
        let (_, m) = found.expect("doitgen maps on 4x4 within II 8");
        m.verify().unwrap();
    }

    #[test]
    fn candidate_slots_respect_neighbour_times() {
        let dfg = small_chain();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&dfg, &acc, 4).unwrap();
        m.place(NodeId::new(0), PeId::new(0), 2).unwrap();
        // Candidates for node 1 must start at time 3.
        let cands = candidate_slots(&m, NodeId::new(1));
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|&(_, t)| t >= 3));
    }

    #[test]
    fn movement_engines_follow_identical_trajectories() {
        // The journal engine must replicate the snapshot-clone engine's
        // trajectory exactly: same RNG draws, same accept decisions, same
        // improvement count — this is the rollback-equivalence contract.
        let dfg = polybench::kernel("doitgen").unwrap();
        let acc = Accelerator::cgra("3x3", 3, 3);
        for seed in [1, 7, 42] {
            let a = movement_throughput(&dfg, &acc, 3, seed, 120, MovementEngine::SnapshotClone);
            let b = movement_throughput(&dfg, &acc, 3, seed, 120, MovementEngine::Journal);
            assert_eq!(a, b, "engines diverged for seed {seed}");
        }
    }

    #[test]
    fn observer_receives_per_temperature_snapshots() {
        use lisa_events::RecordingObserver;
        use std::sync::Arc;
        // An unmappable problem anneals through the full temperature
        // schedule, so every level emits one snapshot.
        let mut g = Dfg::new("big");
        for i in 0..5 {
            g.add_node(OpKind::Add, format!("n{i}"));
        }
        let acc = Accelerator::cgra("1x1", 1, 1);
        let recorder = Arc::new(RecordingObserver::default());
        let mut sa = SaMapper::new(SaParams::fast(), 5)
            .with_observer(lisa_events::EventSink::new(recorder.clone()));
        assert!(sa.map_at_ii(&g, &acc, 2).is_none());
        let events = recorder.take();
        assert!(
            events.iter().any(|e| matches!(
                e,
                lisa_events::PipelineEvent::SaSnapshot {
                    chain: 0,
                    ii: 2,
                    ..
                }
            )),
            "no snapshots emitted"
        );
        // With a sink attached the annealer also journals per-movement
        // training pairs and a final filter summary on the same stream.
        assert!(events.iter().any(|e| matches!(
            e,
            lisa_events::PipelineEvent::SaMovementSample {
                chain: 0,
                ii: 2,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            lisa_events::PipelineEvent::SaFilterSummary {
                chain: 0,
                ii: 2,
                rejected: 0,
                ..
            }
        )));
    }

    #[test]
    fn observer_does_not_change_the_trajectory() {
        use lisa_events::RecordingObserver;
        use std::sync::Arc;
        let dfg = small_chain();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let silent = SaMapper::new(SaParams::fast(), 9).map_at_ii(&dfg, &acc, 1);
        let observed = SaMapper::new(SaParams::fast(), 9)
            .with_observer(lisa_events::EventSink::new(Arc::new(
                RecordingObserver::default(),
            )))
            .map_at_ii(&dfg, &acc, 1);
        assert_eq!(
            silent.map(|m| format!("{m:?}")),
            observed.map(|m| format!("{m:?}"))
        );
    }

    #[test]
    fn anneal_chain_reproduces_the_sequential_mapper() {
        let dfg = polybench::kernel("doitgen").unwrap();
        let acc = Accelerator::cgra("3x3", 3, 3);
        let via_mapper = SaMapper::new(SaParams::paper(), 7).map_at_ii(&dfg, &acc, 3);
        let (via_chain, stats) = anneal_chain(&SaParams::paper(), &dfg, &acc, 3, 7, None);
        assert_eq!(
            via_mapper.map(|m| format!("{m:?}")),
            via_chain.map(|m| format!("{m:?}"))
        );
        assert!(stats.router_invocations > 0);
    }

    #[test]
    fn filter_off_counters_admit_every_proposal() {
        let dfg = polybench::kernel("doitgen").unwrap();
        let acc = Accelerator::cgra("3x3", 3, 3);
        let (_, stats) = anneal_chain(&SaParams::paper(), &dfg, &acc, 3, 42, None);
        assert_eq!(stats.admitted, stats.proposals);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.audited, 0);
        assert_eq!(stats.false_rejects, 0);
        assert_eq!(stats.audit_router_invocations, 0);
        assert!(stats.router_invocations >= stats.proposals);
    }

    /// Rejects every movement whose index (by call count) is odd — a
    /// worst-case-ish filter that exercises the reject path heavily.
    #[derive(Debug, Default)]
    struct RejectOdd(std::sync::atomic::AtomicU64);

    impl crate::predictor::MovementScorer for RejectOdd {
        fn admit(&self, _features: &[f64], _temp: f64) -> bool {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed) % 2 == 0
        }
    }

    #[test]
    fn rejecting_filter_saves_router_work_and_accepted_states_verify() {
        let dfg = polybench::kernel("doitgen").unwrap();
        let acc = Accelerator::cgra("3x3", 3, 3);
        let (off_mapping, off) = anneal_chain(&SaParams::paper(), &dfg, &acc, 3, 42, None);
        let filter = RejectOdd::default();
        let (on_mapping, on) = anneal_chain(&SaParams::paper(), &dfg, &acc, 3, 42, Some(&filter));
        // The exactness argument: whatever the filter rejected, any
        // mapping the gated annealer returns was routed and priced by the
        // exact incremental cost function.
        if let Some(m) = &off_mapping {
            m.verify().unwrap();
        }
        if let Some(m) = &on_mapping {
            m.verify().unwrap();
        }
        assert!(on.rejected > 0, "the filter never fired");
        assert_eq!(on.admitted + on.rejected, on.proposals);
        // 1-in-16 audit cadence, starting at the first reject.
        assert_eq!(on.audited, on.rejected.div_ceil(AUDIT_PERIOD));
        assert!(on.audit_router_invocations > 0);
        // The structural saving: rejected proposals never reach the
        // admitted-path router. (Total run length differs between the two
        // trajectories, so absolute counts are not comparable here; the
        // benches measure the fixed-length A/B.)
        assert!(on.admitted < on.proposals);
        assert_eq!(off.admitted, off.proposals);
    }

    #[test]
    fn cost_decreases_to_zero_on_complete() {
        let dfg = small_chain();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&dfg, &acc, 2).unwrap();
        assert!(mapping_cost(&m) >= 4000.0);
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        m.place(NodeId::new(1), PeId::new(1), 1).unwrap();
        m.place(NodeId::new(2), PeId::new(3), 2).unwrap();
        m.place(NodeId::new(3), PeId::new(2), 3).unwrap();
        for e in dfg.edge_ids() {
            m.route_edge(e).unwrap();
        }
        // Complete mapping: only routing-cells and makespan terms remain.
        let lateness = 0.01 * f64::from(0 + 1 + 2 + 3u32);
        assert!((mapping_cost(&m) - (m.routing_cells() as f64 + lateness)).abs() < 1e-9);
    }
}
