//! The [`SearchStrategy`] contract: heterogeneous mapper lanes raced by
//! one deterministic portfolio.
//!
//! The portfolio historically raced N seeds of the same annealer. This
//! module generalizes it: a *lane* is any search algorithm implementing
//! [`SearchStrategy`] over the shared substrate — [`Mapping`] (placement
//! + routing with the transaction journal), the Dijkstra router, the
//! `lisa-events` sink, and the optional movement filter. Three lanes
//! exist today:
//!
//! * [`SaStrategy`] — the existing annealer, byte-identical to the
//!   pre-refactor portfolio for the default configuration;
//! * [`crate::evolutionary::EvolutionaryStrategy`] — a deterministic
//!   population mapper whose crossover exchanges placement regions via
//!   the transaction journal and whose mutation reuses the annealer's
//!   movement generator;
//! * [`crate::constructive::ConstructiveStrategy`] — a LOCAL-style
//!   low-complexity one-pass mapper that often finishes easy kernels
//!   outright at a tiny fraction of the router work.
//!
//! **Winner rule.** Constructive lanes run first, inline, in lane-index
//! order: they are deterministic and orders of magnitude cheaper than a
//! stochastic lane, so a complete constructive mapping wins outright
//! before any thread spawns. The remaining (stochastic) lanes are then
//! raced under [`par_map`]; every lane is joined before judging and the
//! winner is the lowest-cost complete mapping, ties broken by lane
//! index. Lane seeds derive from the lane *index* (not the thread), so
//! the outcome is invariant to thread count and scheduling — the same
//! determinism contract the homogeneous portfolio always had.

use std::fmt;

use lisa_arch::Accelerator;
use lisa_dfg::Dfg;
use lisa_events::{EventSink, PipelineEvent};
use lisa_rng::Rng;

use crate::constructive::ConstructiveStrategy;
use crate::evolutionary::EvolutionaryStrategy;
use crate::portfolio::{chain_seed, par_map, PortfolioParams};
use crate::predictor::{FilterStats, MovementScorer};
use crate::sa::{anneal, mapping_cost, SaParams, SaPolicy};
use crate::Mapping;

/// Which search algorithm runs in one portfolio lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    /// Simulated annealing (the historical portfolio lane).
    Sa,
    /// Deterministic population search with journal crossover.
    Evolutionary,
    /// LOCAL-style one-pass constructive mapping.
    Constructive,
}

impl LaneKind {
    /// The stable lane name used in specs, events, and bench metrics.
    pub fn name(self) -> &'static str {
        match self {
            LaneKind::Sa => "sa",
            LaneKind::Evolutionary => "evolutionary",
            LaneKind::Constructive => "constructive",
        }
    }

    fn parse_one(name: &str) -> Option<LaneKind> {
        match name {
            "sa" => Some(LaneKind::Sa),
            "evolutionary" | "evo" => Some(LaneKind::Evolutionary),
            "constructive" => Some(LaneKind::Constructive),
            _ => None,
        }
    }
}

/// The lane mix of the `mixed` strategy alias: a constructive scout, the
/// annealer, and the evolutionary lane.
pub const MIXED_LANES: [LaneKind; 3] =
    [LaneKind::Constructive, LaneKind::Sa, LaneKind::Evolutionary];

/// How the portfolio's lanes are populated for each II attempt.
///
/// Parsed from `lisa-map --strategy`, the `strategy` field of a
/// `lisa-request v1` document, and [`Display`](fmt::Display)ed back in
/// canonical form (`parse` ∘ `to_string` is the identity on parsed
/// specs, which is what the serve cache key relies on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategySpec {
    /// Every portfolio chain runs the same lane kind. This is the
    /// historical shape; `Homogeneous(Sa)` is the default and maps
    /// byte-identically to the pre-strategy mapper.
    Homogeneous(LaneKind),
    /// An explicit lane list, raced in index order. The lane count
    /// overrides the portfolio's chain count.
    Lanes(Vec<LaneKind>),
}

impl Default for StrategySpec {
    fn default() -> Self {
        StrategySpec::Homogeneous(LaneKind::Sa)
    }
}

impl fmt::Display for StrategySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategySpec::Homogeneous(kind) => f.write_str(kind.name()),
            StrategySpec::Lanes(lanes) => {
                for (i, lane) in lanes.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    f.write_str(lane.name())?;
                }
                Ok(())
            }
        }
    }
}

/// A strategy spec that did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStrategyError {
    spec: String,
}

impl fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown strategy `{}` (expected sa, evolutionary, constructive, \
             mixed, or a comma-separated lane list)",
            self.spec
        )
    }
}

impl std::error::Error for ParseStrategyError {}

impl StrategySpec {
    /// Parses a strategy spec: a single lane name (`sa`, `evolutionary`
    /// / `evo`, `constructive`), the `mixed` alias
    /// (constructive,sa,evolutionary), or a comma-separated lane list.
    /// A one-element list normalizes to [`StrategySpec::Homogeneous`],
    /// so distinct spellings of the same mix canonicalize to one value.
    ///
    /// # Errors
    ///
    /// Returns [`ParseStrategyError`] naming the unrecognized spec.
    pub fn parse(spec: &str) -> Result<StrategySpec, ParseStrategyError> {
        let trimmed = spec.trim();
        if trimmed == "mixed" {
            return Ok(StrategySpec::Lanes(MIXED_LANES.to_vec()));
        }
        let mut lanes = Vec::new();
        for part in trimmed.split(',') {
            match LaneKind::parse_one(part.trim()) {
                Some(kind) => lanes.push(kind),
                None => {
                    return Err(ParseStrategyError {
                        spec: spec.to_string(),
                    })
                }
            }
        }
        Ok(if lanes.len() == 1 {
            StrategySpec::Homogeneous(lanes[0])
        } else {
            StrategySpec::Lanes(lanes)
        })
    }

    /// The concrete lane list for a portfolio of `chains` chains.
    /// Homogeneous specs replicate their kind across every chain —
    /// except `Homogeneous(Constructive)`, which yields one lane: the
    /// constructive mapper is deterministic, so duplicate lanes would be
    /// identical work. Explicit lane lists are returned as written.
    pub fn expand(&self, chains: usize) -> Vec<LaneKind> {
        match self {
            StrategySpec::Homogeneous(LaneKind::Constructive) => vec![LaneKind::Constructive],
            StrategySpec::Homogeneous(kind) => vec![*kind; chains.max(1)],
            StrategySpec::Lanes(lanes) => lanes.clone(),
        }
    }
}

/// One portfolio lane: a search algorithm over the shared mapping
/// substrate.
///
/// Lanes **share** the problem statement (`dfg`, `acc`, `ii`), the
/// [`Mapping`] state machine (placement + routing + transaction
/// journal), the router, the event sink, and the optional movement
/// filter. Lanes **own** their search trajectory: how the lane-derived
/// seed drives it, what intermediate states it visits, and when it
/// gives up. A lane must return `Some` only for *complete* mappings,
/// must be a pure function of its arguments (determinism contract), and
/// must emit a [`PipelineEvent::SaFilterSummary`] for its router-work
/// counters when the sink is active so A/B measurements read every lane
/// from the same stream.
pub trait SearchStrategy: Sync {
    /// The stable lane name (matches [`LaneKind::name`]).
    fn name(&self) -> &'static str;

    /// Whether the lane is a deterministic, cheap constructive pass.
    /// Constructive lanes run inline before the stochastic race and win
    /// outright when complete (see the module docs' winner rule).
    fn is_constructive(&self) -> bool {
        false
    }

    /// Runs the lane to completion. `lane` is the lane index (tags
    /// emitted events, like the portfolio chain index it generalizes);
    /// `seed` is the lane-derived RNG seed — deterministic lanes ignore
    /// it. Returns a complete mapping or `None`, plus the lane's
    /// router-work counters.
    fn run<'a>(
        &self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        ii: u32,
        lane: usize,
        seed: u64,
        sink: &EventSink,
        filter: Option<&dyn MovementScorer>,
    ) -> (Option<Mapping<'a>>, FilterStats);
}

/// The annealer as a portfolio lane. Carries the policy factory (fresh
/// policy per lane — policies may hold per-run state) and runs exactly
/// the code the homogeneous portfolio always ran, so an all-SA lane set
/// is byte-identical to the pre-strategy mapper.
pub struct SaStrategy<F> {
    make_policy: F,
    params: SaParams,
}

impl<F, P> SaStrategy<F>
where
    F: Fn(usize) -> P + Sync,
    P: SaPolicy,
{
    /// A lane running the annealer with `params`, constructing its
    /// policy through `make_policy(lane)`.
    pub fn new(make_policy: F, params: SaParams) -> Self {
        SaStrategy {
            make_policy,
            params,
        }
    }
}

impl<F, P> SearchStrategy for SaStrategy<F>
where
    F: Fn(usize) -> P + Sync,
    P: SaPolicy,
{
    fn name(&self) -> &'static str {
        "sa"
    }

    fn run<'a>(
        &self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        ii: u32,
        lane: usize,
        seed: u64,
        sink: &EventSink,
        filter: Option<&dyn MovementScorer>,
    ) -> (Option<Mapping<'a>>, FilterStats) {
        let policy = (self.make_policy)(lane);
        let mut rng = Rng::seed_from_u64(seed);
        anneal(
            &policy,
            &self.params,
            dfg,
            acc,
            ii,
            &mut rng,
            lane,
            sink,
            filter,
        )
    }
}

/// Races a heterogeneous lane set for one II and returns the winning
/// mapping under the deterministic winner rule (module docs): complete
/// constructive lanes win outright in lane order; otherwise the
/// stochastic lanes are joined and judged by
/// `(lowest cost, lowest lane index)`. Lane seeds derive from the lane
/// index via [`chain_seed`], so `parallelism` is wall-clock-only.
#[allow(clippy::too_many_arguments)]
pub(crate) fn race_lanes<'a>(
    lanes: &[&dyn SearchStrategy],
    parallelism: usize,
    dfg: &'a Dfg,
    acc: &'a Accelerator,
    ii: u32,
    seed: u64,
    sink: &EventSink,
    filter: Option<&dyn MovementScorer>,
) -> Option<Mapping<'a>> {
    // Phase A: constructive lanes, inline, in lane order. First complete
    // result short-circuits the whole race.
    for (lane, strategy) in lanes.iter().enumerate() {
        if !strategy.is_constructive() {
            continue;
        }
        let lane_seed = chain_seed(seed, lane as u64, ii);
        let (mapping, _stats) = strategy.run(dfg, acc, ii, lane, lane_seed, sink, filter);
        if let Some(m) = mapping {
            if sink.is_active() {
                sink.emit(PipelineEvent::StrategyLaneWon {
                    ii,
                    lane,
                    strategy: strategy.name(),
                    cost: mapping_cost(&m),
                });
            }
            return Some(m);
        }
    }

    // Phase B: stochastic lanes race on the shared work distributor.
    let stochastic: Vec<usize> = (0..lanes.len())
        .filter(|&lane| !lanes[lane].is_constructive())
        .collect();
    let results = par_map(parallelism, stochastic, |_, lane| {
        let lane_seed = chain_seed(seed, lane as u64, ii);
        let (mapping, _stats) = lanes[lane].run(dfg, acc, ii, lane, lane_seed, sink, filter);
        mapping.map(|m| (mapping_cost(&m), lane, m))
    });
    let mut best: Option<(f64, usize, Mapping<'a>)> = None;
    for candidate in results.into_iter().flatten() {
        match &best {
            // Strict improvement only: earlier lanes win ties.
            Some((cost, _, _)) if candidate.0 >= *cost => {}
            _ => best = Some(candidate),
        }
    }
    best.map(|(cost, lane, m)| {
        if sink.is_active() {
            sink.emit(PipelineEvent::StrategyLaneWon {
                ii,
                lane,
                strategy: lanes[lane].name(),
                cost,
            });
        }
        m
    })
}

/// Expands `spec` against the portfolio's chain count, instantiates one
/// strategy per lane kind, and races them. This is the single entry
/// point both mappers call; `Homogeneous(Sa)` reproduces the historical
/// homogeneous annealing portfolio byte-for-byte.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_spec<'a, P, F>(
    spec: &StrategySpec,
    make_policy: F,
    params: &SaParams,
    portfolio: &PortfolioParams,
    dfg: &'a Dfg,
    acc: &'a Accelerator,
    ii: u32,
    seed: u64,
    sink: &EventSink,
    filter: Option<&dyn MovementScorer>,
) -> Option<Mapping<'a>>
where
    P: SaPolicy,
    F: Fn(usize) -> P + Sync,
{
    let kinds = spec.expand(portfolio.chains.max(1));
    let sa = SaStrategy::new(make_policy, params.clone());
    let evolutionary = EvolutionaryStrategy::new(params.clone());
    let constructive = ConstructiveStrategy::new();
    let lanes: Vec<&dyn SearchStrategy> = kinds
        .iter()
        .map(|kind| match kind {
            LaneKind::Sa => &sa as &dyn SearchStrategy,
            LaneKind::Evolutionary => &evolutionary as &dyn SearchStrategy,
            LaneKind::Constructive => &constructive as &dyn SearchStrategy,
        })
        .collect();
    race_lanes(
        &lanes,
        portfolio.parallelism,
        dfg,
        acc,
        ii,
        seed,
        sink,
        filter,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_lane_and_the_aliases() {
        assert_eq!(
            StrategySpec::parse("sa").unwrap(),
            StrategySpec::Homogeneous(LaneKind::Sa)
        );
        assert_eq!(
            StrategySpec::parse("evolutionary").unwrap(),
            StrategySpec::Homogeneous(LaneKind::Evolutionary)
        );
        assert_eq!(
            StrategySpec::parse("evo").unwrap(),
            StrategySpec::Homogeneous(LaneKind::Evolutionary)
        );
        assert_eq!(
            StrategySpec::parse("constructive").unwrap(),
            StrategySpec::Homogeneous(LaneKind::Constructive)
        );
        assert_eq!(
            StrategySpec::parse("mixed").unwrap(),
            StrategySpec::Lanes(MIXED_LANES.to_vec())
        );
        assert_eq!(
            StrategySpec::parse("constructive, sa ,evo").unwrap(),
            StrategySpec::Lanes(vec![
                LaneKind::Constructive,
                LaneKind::Sa,
                LaneKind::Evolutionary
            ])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "annealing", "sa;evo", "sa,,evo", "mixed,sa"] {
            assert!(StrategySpec::parse(bad).is_err(), "accepted `{bad}`");
        }
        let err = StrategySpec::parse("warp-drive").unwrap_err();
        assert!(err.to_string().contains("warp-drive"));
    }

    #[test]
    fn display_is_canonical_and_round_trips() {
        for spec in [
            "sa",
            "evolutionary",
            "constructive",
            "mixed",
            "sa,evolutionary",
            "constructive,constructive,sa",
        ] {
            let parsed = StrategySpec::parse(spec).unwrap();
            let canonical = parsed.to_string();
            assert_eq!(
                StrategySpec::parse(&canonical).unwrap(),
                parsed,
                "`{spec}` -> `{canonical}` did not round-trip"
            );
            // Canonical form is a fixpoint.
            assert_eq!(
                StrategySpec::parse(&canonical).unwrap().to_string(),
                canonical
            );
        }
        // Alias spellings collapse to one canonical text (one cache key).
        assert_eq!(
            StrategySpec::parse("mixed").unwrap().to_string(),
            "constructive,sa,evolutionary"
        );
        assert_eq!(
            StrategySpec::parse("evo").unwrap().to_string(),
            "evolutionary"
        );
        // A one-element list is the homogeneous spec.
        assert_eq!(StrategySpec::parse("sa,").is_err(), true);
        assert_eq!(
            StrategySpec::parse(" sa ").unwrap().to_string(),
            StrategySpec::default().to_string()
        );
    }

    #[test]
    fn expand_replicates_homogeneous_and_keeps_lane_lists() {
        assert_eq!(
            StrategySpec::Homogeneous(LaneKind::Sa).expand(3),
            vec![LaneKind::Sa; 3]
        );
        assert_eq!(
            StrategySpec::Homogeneous(LaneKind::Evolutionary).expand(2),
            vec![LaneKind::Evolutionary; 2]
        );
        // Deterministic lane: duplicates would be identical work.
        assert_eq!(
            StrategySpec::Homogeneous(LaneKind::Constructive).expand(4),
            vec![LaneKind::Constructive]
        );
        let lanes = vec![LaneKind::Constructive, LaneKind::Sa];
        assert_eq!(StrategySpec::Lanes(lanes.clone()).expand(7), lanes);
        // Chain floor of 1.
        assert_eq!(StrategySpec::default().expand(0), vec![LaneKind::Sa]);
    }
}
