//! LOCAL-style constructive lane: a low-complexity one-pass mapper.
//!
//! "LOCAL: Low-Complex Mapping Algorithm for Spatial DNN Accelerators"
//! (PAPERS.md) observes that a large share of real kernels need no
//! search at all: a single greedy placement sweep in a good priority
//! order, followed by one routing pass, already lands a valid mapping.
//! This lane implements that regime check for the portfolio. It is the
//! cheapest lane by orders of magnitude — it invokes the router about
//! once per edge, where one annealing chain invokes it thousands of
//! times — so [`crate::strategy::race_lanes`] runs it inline before any
//! stochastic lane spawns, and a complete constructive mapping wins the
//! race outright.
//!
//! When the one-pass mapping is *incomplete*, the partial result is not
//! wasted: [`crate::evolutionary::EvolutionaryStrategy`] seeds its first
//! individual from [`construct`], giving the population an incumbent
//! bound that a random initial placement rarely matches.
//!
//! The lane is fully deterministic — no RNG is drawn anywhere — so one
//! lane instance is all a portfolio ever needs
//! ([`crate::StrategySpec::expand`] collapses homogeneous constructive
//! specs to a single lane).

use std::cmp::Reverse;

use lisa_arch::Accelerator;
use lisa_dfg::{Dfg, NodeId};
use lisa_events::{EventSink, PipelineEvent};

use crate::predictor::{FilterStats, MovementScorer};
use crate::sa::candidate_slots;
use crate::strategy::SearchStrategy;
use crate::Mapping;

/// Bounded repair sweeps after the first full pass. Each sweep rips up
/// every problematic node (unplaced, or endpoint of an unrouted edge)
/// and re-places the set greedily; two sweeps keep the lane's worst case
/// at a small constant multiple of one pass.
const REPAIR_PASSES: usize = 2;

/// Height-based list order shared with the greedy mapper: long downward
/// paths first, ties broken by ASAP level then node id. Height is folded
/// in decreasing-ASAP order — every data successor sits at a strictly
/// higher ASAP level than its predecessor, so this is a valid reverse
/// topological sweep without materializing a topological order.
fn priority_order(m: &Mapping<'_>) -> Vec<NodeId> {
    let dfg = m.dfg();
    let mut by_asap: Vec<NodeId> = dfg.node_ids().collect();
    by_asap.sort_by_key(|n| Reverse((m.asap_level(*n), n.index())));
    let mut height = vec![0u32; dfg.node_count()];
    for &v in &by_asap {
        for s in dfg.data_successors(v) {
            height[v.index()] = height[v.index()].max(height[s.index()] + 1);
        }
    }
    let mut nodes = by_asap;
    nodes.sort_by_key(|n| (m.asap_level(*n), Reverse(height[n.index()]), n.index()));
    nodes
}

/// Greedily places every node of `nodes` that is currently unplaced and
/// routes its edges to already-placed neighbours as it goes: cheapest
/// feasible slot first (earliest time, then summed spatial distance to
/// placed data neighbours, then PE id). A slot whose incident edges
/// don't route is undone and the next candidate tried, so a placement
/// never strands an unroutable edge silently. Every `route_edge` call —
/// success or failure — counts as one router invocation.
fn place_pass(m: &mut Mapping<'_>, nodes: &[NodeId], stats: &mut FilterStats) {
    for &node in nodes {
        if m.placement(node).is_some() {
            continue;
        }
        let dfg = m.dfg();
        let mut candidates = candidate_slots(m, node);
        candidates.sort_by_key(|&(pe, t)| {
            let mut dist = 0u32;
            for p in dfg.predecessors(node).chain(dfg.successors(node)) {
                if let Some(pp) = m.placement(p) {
                    dist += m.accelerator().spatial_distance(pe, pp.pe);
                }
            }
            (t, dist, pe.index())
        });
        'candidates: for (pe, t) in candidates {
            if m.place(node, pe, t).is_err() {
                continue;
            }
            let incident: Vec<_> = dfg
                .in_edges(node)
                .iter()
                .chain(dfg.out_edges(node))
                .copied()
                .collect();
            let mut routed = Vec::new();
            for e in incident {
                if m.route(e).is_some() {
                    continue;
                }
                let edge = dfg.edge(e);
                if m.placement(edge.src).is_none() || m.placement(edge.dst).is_none() {
                    continue;
                }
                stats.router_invocations += 1;
                if m.route_edge(e).is_err() {
                    for r in routed {
                        m.unroute_edge(r);
                    }
                    m.unplace(node);
                    continue 'candidates;
                }
                routed.push(e);
            }
            break;
        }
    }
}

/// The one-pass construction: place every node in priority order with
/// route-as-you-place, then run up to [`REPAIR_PASSES`] rip-up-and-retry
/// sweeps over the problematic set. Returns the (possibly partial)
/// mapping with the router-work counters; `None` only if `ii` is
/// infeasible for the fabric. Deterministic for fixed inputs.
pub(crate) fn construct<'a>(
    dfg: &'a Dfg,
    acc: &'a Accelerator,
    ii: u32,
) -> Option<(Mapping<'a>, FilterStats)> {
    let mut mapping = Mapping::new(dfg, acc, ii).ok()?;
    let mut stats = FilterStats::default();
    let order = priority_order(&mapping);
    place_pass(&mut mapping, &order, &mut stats);
    stats.proposals += 1;
    stats.admitted += 1;
    for _ in 0..REPAIR_PASSES {
        if mapping.is_complete() {
            break;
        }
        // Rip up the problematic set: unplaced nodes plus the endpoints
        // of every unrouted edge (unplacing also unroutes their other
        // incident edges, freeing the congested cells).
        let mut problematic = mapping.unplaced_nodes();
        for e in dfg.edge_ids() {
            if mapping.route(e).is_none() {
                let edge = dfg.edge(e);
                problematic.push(edge.src);
                problematic.push(edge.dst);
            }
        }
        problematic.sort_by_key(|n| n.index());
        problematic.dedup();
        for &n in &problematic {
            mapping.unplace(n);
        }
        place_pass(&mut mapping, &order, &mut stats);
        stats.proposals += 1;
        stats.admitted += 1;
    }
    Some((mapping, stats))
}

/// The constructive lane. See the module docs; [`SearchStrategy::run`]
/// returns `Some` only when the one-pass construction (plus bounded
/// repair) lands a complete mapping.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstructiveStrategy;

impl ConstructiveStrategy {
    /// Creates the lane (it has no parameters).
    pub fn new() -> Self {
        ConstructiveStrategy
    }
}

impl SearchStrategy for ConstructiveStrategy {
    fn name(&self) -> &'static str {
        "constructive"
    }

    fn is_constructive(&self) -> bool {
        true
    }

    fn run<'a>(
        &self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        ii: u32,
        lane: usize,
        _seed: u64,
        sink: &EventSink,
        _filter: Option<&dyn MovementScorer>,
    ) -> (Option<Mapping<'a>>, FilterStats) {
        let (mapping, stats) = match construct(dfg, acc, ii) {
            Some((m, s)) => (m, s),
            None => return (None, FilterStats::default()),
        };
        if sink.is_active() {
            sink.emit(PipelineEvent::SaFilterSummary {
                chain: lane,
                ii,
                proposals: stats.proposals,
                admitted: stats.admitted,
                rejected: stats.rejected,
                audited: stats.audited,
                false_rejects: stats.false_rejects,
                router_invocations: stats.router_invocations,
                audit_router_invocations: stats.audit_router_invocations,
            });
        }
        if mapping.is_complete() {
            (Some(mapping), stats)
        } else {
            (None, stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::polybench;
    use lisa_events::EventSink;

    #[test]
    fn construct_is_deterministic_and_verifies_when_complete() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        for kernel in ["gemm", "doitgen", "atax"] {
            let dfg = polybench::kernel(kernel).unwrap();
            let (a, sa) = construct(&dfg, &acc, 8).unwrap();
            let (b, sb) = construct(&dfg, &acc, 8).unwrap();
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{kernel} rerun diverged"
            );
            assert_eq!(sa.router_invocations, sb.router_invocations);
            if a.is_complete() {
                a.verify().unwrap();
            }
        }
    }

    #[test]
    fn router_work_is_near_the_edge_count() {
        // The lane's reason to exist: router invocations bounded by a
        // small multiple of the edge count, not the annealer's thousands.
        let acc = Accelerator::cgra("4x4", 4, 4);
        let dfg = polybench::kernel("gemm").unwrap();
        let (_, stats) = construct(&dfg, &acc, 8).unwrap();
        let edges = dfg.edge_ids().count() as u64;
        // Route-as-you-place retries failed slots, so the bound is a
        // small constant multiple of the edge count per sweep.
        assert!(
            stats.router_invocations <= edges * 8 * (1 + REPAIR_PASSES as u64),
            "router_invocations={} for {edges} edges",
            stats.router_invocations
        );
    }

    #[test]
    fn strategy_returns_only_complete_mappings() {
        let acc = Accelerator::cgra("4x4", 4, 4);
        let dfg = polybench::kernel("gemm").unwrap();
        let lane = ConstructiveStrategy::new();
        let sink = EventSink::null();
        let (mapping, stats) = lane.run(&dfg, &acc, 8, 0, 0, &sink, None);
        if let Some(m) = mapping {
            assert!(m.is_complete());
            m.verify().unwrap();
        }
        assert!(stats.proposals >= 1);
        // An impossible fabric/II yields None, not a panic.
        let tiny = Accelerator::cgra("1x1", 1, 1);
        let (none, _) = lane.run(&dfg, &tiny, 1, 0, 0, &sink, None);
        assert!(none.is_none());
    }
}
