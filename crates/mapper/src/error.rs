//! Error types for placement and routing.

use std::error::Error;
use std::fmt;

use lisa_arch::PeId;
use lisa_dfg::{EdgeId, NodeId};

/// Errors produced by placement and routing operations on a
/// [`crate::Mapping`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapperError {
    /// The PE cannot execute the node's operation.
    Unsupported {
        /// Node being placed.
        node: NodeId,
        /// Target PE.
        pe: PeId,
    },
    /// The FU slot at the target modulo cycle is already occupied.
    SlotOccupied {
        /// Node being placed.
        node: NodeId,
        /// Target PE.
        pe: PeId,
        /// Absolute schedule time requested.
        time: u32,
    },
    /// The node is already placed; unplace it first.
    AlreadyPlaced(NodeId),
    /// A routing or query operation referenced an unplaced node.
    NotPlaced(NodeId),
    /// The edge is already routed; unroute it first.
    AlreadyRouted(EdgeId),
    /// The consumer is scheduled no later than the producer, so no route
    /// of positive latency can exist.
    BadTiming {
        /// Edge being routed.
        edge: EdgeId,
        /// Producer's schedule time.
        src_time: u32,
        /// Effective consumer time (including recurrence distance).
        dst_time: u32,
    },
    /// The router found no conflict-free path for the edge.
    NoRoute(EdgeId),
    /// The schedule time exceeds the mapping's schedule window.
    TimeOutOfWindow {
        /// Requested absolute time.
        time: u32,
        /// Exclusive upper bound of the window.
        window: u32,
    },
}

impl fmt::Display for MapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapperError::Unsupported { node, pe } => {
                write!(f, "{pe} cannot execute node {}", node.index())
            }
            MapperError::SlotOccupied { node, pe, time } => write!(
                f,
                "FU slot of {pe} at time {time} occupied; cannot place node {}",
                node.index()
            ),
            MapperError::AlreadyPlaced(n) => write!(f, "node {} already placed", n.index()),
            MapperError::NotPlaced(n) => write!(f, "node {} is not placed", n.index()),
            MapperError::AlreadyRouted(e) => write!(f, "edge {} already routed", e.index()),
            MapperError::BadTiming {
                edge,
                src_time,
                dst_time,
            } => write!(
                f,
                "edge {} has non-causal timing: src at {src_time}, dst at {dst_time}",
                edge.index()
            ),
            MapperError::NoRoute(e) => write!(f, "no route found for edge {}", e.index()),
            MapperError::TimeOutOfWindow { time, window } => {
                write!(f, "time {time} outside schedule window {window}")
            }
        }
    }
}

impl Error for MapperError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            MapperError::NotPlaced(NodeId::new(1)),
            MapperError::NoRoute(EdgeId::new(2)),
            MapperError::TimeOutOfWindow { time: 9, window: 8 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
