//! Human-readable rendering of a mapping as a time-extended grid, in the
//! style of the paper's Fig. 5.
//!
//! Each modulo cycle prints the PE grid; every cell shows the operation
//! executing there, the value being routed through, a register hold, or
//! `.` for a free FU.

use std::fmt::Write as _;

use lisa_arch::Resource;

use crate::Mapping;

/// Renders the mapping as one grid per modulo cycle.
///
/// # Example
///
/// ```
/// use lisa_dfg::{Dfg, OpKind};
/// use lisa_arch::{Accelerator, PeId};
/// use lisa_mapper::{Mapping, display::render};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dfg = Dfg::new("t");
/// let a = dfg.add_node(OpKind::Load, "a");
/// let b = dfg.add_node(OpKind::Store, "b");
/// let e = dfg.add_data_edge(a, b)?;
/// let acc = Accelerator::cgra("2x2", 2, 2);
/// let mut m = Mapping::new(&dfg, &acc, 2)?;
/// m.place(a, PeId::new(0), 0)?;
/// m.place(b, PeId::new(1), 1)?;
/// m.route_edge(e)?;
/// let text = render(&m);
/// assert!(text.contains("cycle 0"));
/// assert!(text.contains("a"));
/// # Ok(())
/// # }
/// ```
pub fn render(mapping: &Mapping<'_>) -> String {
    let dfg = mapping.dfg();
    let acc = mapping.accelerator();
    let ii = mapping.ii();
    let width = cell_width(mapping);

    // Cell contents per (slot, pe): op takes precedence, then route kinds.
    let mut cells: Vec<Vec<String>> = vec![vec![".".to_string(); acc.pe_count()]; ii as usize];
    let mut regs: Vec<Vec<usize>> = vec![vec![0; acc.pe_count()]; ii as usize];

    for route in dfg.edge_ids() {
        let Some(steps) = mapping.route(route) else {
            continue;
        };
        let value = dfg.edge(route).src;
        for s in steps {
            let slot = mapping.mrrg().slot(s.time) as usize;
            match s.resource {
                Resource::Fu(pe) => {
                    cells[slot][pe.index()] = format!("~{}", dfg.node(value).name);
                }
                Resource::Reg(pe, _) => {
                    regs[slot][pe.index()] += 1;
                }
            }
        }
    }
    for v in dfg.node_ids() {
        if let Some(p) = mapping.placement(v) {
            let slot = mapping.mrrg().slot(p.time) as usize;
            cells[slot][p.pe.index()] = dfg.node(v).name.clone();
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "mapping of {} on {} at II {}",
        dfg.name(),
        acc.name(),
        ii
    );
    for slot in 0..ii as usize {
        let _ = writeln!(out, "cycle {slot}:");
        for row in 0..acc.rows() {
            let _ = write!(out, "  ");
            for col in 0..acc.cols() {
                let pe = acc.pe_at(lisa_arch::Coord { row, col });
                let mut label = cells[slot][pe.index()].clone();
                let held = regs[slot][pe.index()];
                if held > 0 {
                    let _ = write!(label, "+{held}r");
                }
                let _ = write!(out, "{label:<width$} ");
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Column width: longest node name plus routing/register markers.
fn cell_width(mapping: &Mapping<'_>) -> usize {
    mapping
        .dfg()
        .nodes()
        .iter()
        .map(|n| n.name.len() + 4)
        .max()
        .unwrap_or(8)
        .max(6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_arch::{Accelerator, PeId};
    use lisa_dfg::{Dfg, OpKind};

    #[test]
    fn render_shows_ops_routes_and_regs() {
        let mut dfg = Dfg::new("t");
        let a = dfg.add_node(OpKind::Load, "ld");
        let b = dfg.add_node(OpKind::Store, "st");
        let e = dfg.add_data_edge(a, b).unwrap();
        let acc = Accelerator::cgra("1x3", 1, 3);
        let mut m = Mapping::new(&dfg, &acc, 4).unwrap();
        m.place(a, PeId::new(0), 0).unwrap();
        // Distant in time: forces a register hold or FU re-route.
        m.place(b, PeId::new(1), 3).unwrap();
        m.route_edge(e).unwrap();
        let text = render(&m);
        assert!(text.contains("cycle 0"));
        assert!(text.contains("cycle 3"));
        assert!(text.contains("ld"));
        assert!(text.contains("st"));
        // Some routing artefact appears (either a route-through or a reg).
        assert!(text.contains("~ld") || text.contains("+1r"), "{text}");
    }

    #[test]
    fn free_cells_are_dots() {
        let mut dfg = Dfg::new("t");
        dfg.add_node(OpKind::Add, "x");
        let acc = Accelerator::cgra("2x2", 2, 2);
        let m = Mapping::new(&dfg, &acc, 1).unwrap();
        let text = render(&m);
        assert!(text.matches('.').count() >= 4);
    }
}
