//! Label-aware simulated annealing — the paper's Algorithm 1.
//!
//! The four labels of Table I steer the three policy points of the SA
//! core:
//!
//! 1. **Schedule order** (label 1) sorts unmapped nodes for placement
//!    (line 3).
//! 2. **Same-level association, spatial and temporal mapping distance**
//!    (labels 2–4) define the placement cost of each PE candidate: the sum
//!    of differences between the actual mapping distances and the labels'
//!    expected distances (line 6). Candidates are then drawn through a
//!    normal distribution whose deviation follows
//!    σ = max{1, α·T − Acc} (lines 7–8), so low acceptance rates inject
//!    randomness to break out of dead-end mappings.
//! 3. **Temporal mapping distance** (label 4) prioritises long edges in
//!    routing (line 9): edges that need many routing resources are routed
//!    while resources are still plentiful.

use lisa_rng::Rng;

use lisa_arch::{Accelerator, PeId};
use lisa_dfg::{analysis, same_level, Dfg, EdgeId, NodeId};
use lisa_events::EventSink;

use crate::portfolio::PortfolioParams;
use crate::sa::{MoveStats, SaParams, SaPolicy, VanillaPolicy};
use crate::schedule::IiMapper;
use crate::Mapping;

/// The four mapping-guidance labels of paper Table I, in the exact form
/// the label-aware mapper consumes.
///
/// Produced either by initialisation (§V-B), by extraction from a mapping
/// (training-data generation), or by the trained GNN models (inference).
#[derive(Debug, Clone, PartialEq)]
pub struct GuidanceLabels {
    /// Label 1 — schedule order per node (lower = earlier).
    pub schedule_order: Vec<f64>,
    /// Label 2 — expected spatial distance per same-level pair
    /// (dummy edge), as `(a, b, distance)`.
    pub same_level: Vec<(NodeId, NodeId, f64)>,
    /// Label 3 — expected spatial mapping distance per edge.
    pub spatial: Vec<f64>,
    /// Label 4 — expected temporal mapping distance per edge.
    pub temporal: Vec<f64>,
}

impl GuidanceLabels {
    /// Initial label values per §V-B: schedule order = ASAP, same-level
    /// association = mean shortest distance to the common
    /// ancestor/descendant, spatial distance = 0, temporal distance = 1.
    pub fn initial(dfg: &Dfg) -> Self {
        let asap = analysis::asap(dfg);
        let dummies = same_level::dummy_edges(dfg);
        let same_level = dummies
            .iter()
            .map(|d| {
                let dist = match (d.ancestor, d.descendant) {
                    (Some(a), Some(b)) => (a.mean_dist() + b.mean_dist()) / 2.0,
                    (Some(a), None) => a.mean_dist(),
                    (None, Some(b)) => b.mean_dist(),
                    (None, None) => unreachable!("dummy edges have a common node"),
                };
                (d.a, d.b, dist)
            })
            .collect();
        GuidanceLabels {
            schedule_order: asap.iter().map(|&l| f64::from(l)).collect(),
            same_level,
            spatial: vec![0.0; dfg.edge_count()],
            temporal: vec![1.0; dfg.edge_count()],
        }
    }

    /// Validates shape agreement with a DFG.
    pub fn matches(&self, dfg: &Dfg) -> bool {
        self.schedule_order.len() == dfg.node_count()
            && self.spatial.len() == dfg.edge_count()
            && self.temporal.len() == dfg.edge_count()
    }

    /// Routing priority of a node: the sum of temporal mapping distances
    /// over its incident edges — "the routing resource that a DFG node
    /// needs" (Algorithm 1 line 9).
    pub fn node_routing_need(&self, dfg: &Dfg, node: NodeId) -> f64 {
        dfg.in_edges(node)
            .iter()
            .chain(dfg.out_edges(node))
            .map(|e| self.temporal[e.index()])
            .sum()
    }
}

/// Which parts of the label guidance are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelMode {
    /// Full Algorithm 1 (placement order, placement cost, routing order).
    Full,
    /// Only label 4's routing priority on top of vanilla SA — the
    /// "SA with routing priority" ablation of Fig. 12.
    RoutingPriorityOnly,
    /// Labels steer only the initial mapping; movements behave like
    /// vanilla SA. This is the *partial label-aware SA* used when
    /// generating training data (§V-B).
    InitialOnly,
}

/// Parameters specific to the label-aware mapper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelSaConfig {
    /// α of the deviation schedule σ = max{1, α·T − Acc}.
    pub alpha: f64,
    /// Which label-guidance mode to run.
    pub mode: LabelMode,
}

impl Default for LabelSaConfig {
    fn default() -> Self {
        LabelSaConfig {
            alpha: 0.05,
            mode: LabelMode::Full,
        }
    }
}

/// The label-aware policy implementing Algorithm 1's decision points.
struct LabelPolicy<'l> {
    labels: &'l GuidanceLabels,
    config: LabelSaConfig,
    /// Same-level partners per node, precomputed for the placement cost.
    partners: Vec<Vec<(NodeId, f64)>>,
    /// Whether the annealer is past the initial mapping (used by
    /// [`LabelMode::InitialOnly`]).
    initial_done: std::cell::Cell<bool>,
}

impl<'l> LabelPolicy<'l> {
    fn new(labels: &'l GuidanceLabels, config: LabelSaConfig, dfg: &Dfg) -> Self {
        let mut partners = vec![Vec::new(); dfg.node_count()];
        for &(a, b, d) in &labels.same_level {
            partners[a.index()].push((b, d));
            partners[b.index()].push((a, d));
        }
        LabelPolicy {
            labels,
            config,
            partners,
            initial_done: std::cell::Cell::new(false),
        }
    }

    /// Placement cost of putting `node` at `(pe, t)`: Σ |actual − expected|
    /// over labels 2, 3, 4 against already-placed neighbours
    /// (Algorithm 1 line 6).
    fn placement_cost(&self, m: &Mapping<'_>, node: NodeId, pe: PeId, t: u32) -> f64 {
        let dfg = m.dfg();
        let acc = m.accelerator();
        let ii = m.ii();
        let mut cost = 0.0;
        // A value advances at most one hop per cycle, so a candidate whose
        // spatial distance to a placed neighbour exceeds the temporal gap
        // is physically unroutable; penalise it regardless of what the
        // (possibly inaccurate) labels suggest.
        let infeasible = |spatial: f64, temporal: f64| {
            if spatial > temporal {
                100.0 * (spatial - temporal)
            } else {
                0.0
            }
        };
        for &e in dfg.in_edges(node) {
            let edge = dfg.edge(e);
            if let Some(p) = m.placement(edge.src) {
                let spatial = f64::from(acc.spatial_distance(pe, p.pe));
                cost += (spatial - self.labels.spatial[e.index()]).abs();
                let temporal = f64::from(t + edge.kind.distance() * ii) - f64::from(p.time);
                cost += (temporal - self.labels.temporal[e.index()]).abs();
                cost += infeasible(spatial, temporal);
            }
        }
        for &e in dfg.out_edges(node) {
            let edge = dfg.edge(e);
            if edge.dst == node {
                continue; // self-recurrence counted once above
            }
            if let Some(c) = m.placement(edge.dst) {
                let spatial = f64::from(acc.spatial_distance(pe, c.pe));
                cost += (spatial - self.labels.spatial[e.index()]).abs();
                let temporal = f64::from(c.time + edge.kind.distance() * ii) - f64::from(t);
                cost += (temporal - self.labels.temporal[e.index()]).abs();
                cost += infeasible(spatial, temporal);
            }
        }
        for &(partner, expected) in &self.partners[node.index()] {
            if let Some(p) = m.placement(partner) {
                let spatial = f64::from(acc.spatial_distance(pe, p.pe));
                cost += (spatial - expected).abs();
            }
        }
        cost
    }

    fn label_guided(&self) -> bool {
        match self.config.mode {
            LabelMode::Full => true,
            LabelMode::RoutingPriorityOnly => false,
            LabelMode::InitialOnly => !self.initial_done.get(),
        }
    }
}

impl SaPolicy for LabelPolicy<'_> {
    fn order_nodes(&self, mapping: &Mapping<'_>, nodes: &mut [NodeId]) {
        if self.label_guided() {
            nodes.sort_by(|a, b| {
                let ka = self.labels.schedule_order[a.index()];
                let kb = self.labels.schedule_order[b.index()];
                ka.partial_cmp(&kb)
                    .expect("schedule orders are finite")
                    .then(a.index().cmp(&b.index()))
            });
        } else {
            VanillaPolicy.order_nodes(mapping, nodes);
        }
    }

    fn choose_candidate(
        &self,
        mapping: &Mapping<'_>,
        node: NodeId,
        candidates: &[(PeId, u32)],
        stats: MoveStats,
        rng: &mut Rng,
    ) -> usize {
        if !self.label_guided() {
            // After the initial mapping, InitialOnly degrades to vanilla;
            // flag the transition for subsequent calls.
            return VanillaPolicy.choose_candidate(mapping, node, candidates, stats, rng);
        }
        let mut order: Vec<(f64, usize)> = candidates
            .iter()
            .enumerate()
            .map(|(i, &(pe, t))| (self.placement_cost(mapping, node, pe, t), i))
            .collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));
        // σ = max{1, α·T − Acc}: low acceptance widens the distribution.
        let sigma =
            (self.config.alpha * f64::from(stats.attempted) - f64::from(stats.accepted)).max(1.0);
        let draw = sample_normal(rng).abs() * sigma;
        let idx = (draw.floor() as usize).min(order.len() - 1);
        order[idx].1
    }

    fn order_edges(&self, mapping: &Mapping<'_>, edges: &mut [EdgeId]) {
        let dfg = mapping.dfg();
        match self.config.mode {
            LabelMode::InitialOnly if self.initial_done.get() => {
                VanillaPolicy.order_edges(mapping, edges);
            }
            _ => {
                // Route the neediest data first: descending label-4 sum of
                // the producing node, tie-broken by the edge's own label 4.
                edges.sort_by(|&a, &b| {
                    let na = self.labels.node_routing_need(dfg, dfg.edge(a).src);
                    let nb = self.labels.node_routing_need(dfg, dfg.edge(b).src);
                    nb.partial_cmp(&na)
                        .expect("finite needs")
                        .then_with(|| {
                            self.labels.temporal[b.index()]
                                .partial_cmp(&self.labels.temporal[a.index()])
                                .expect("finite labels")
                        })
                        .then(a.index().cmp(&b.index()))
                });
            }
        }
        // The first full pass over the edges marks the end of the initial
        // mapping for InitialOnly mode.
        if self.config.mode == LabelMode::InitialOnly {
            self.initial_done.set(true);
        }
    }
}

/// Standard-normal sample via Box–Muller.
fn sample_normal(rng: &mut Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The label-aware simulated-annealing mapper (LISA's mapping stage).
///
/// # Example
///
/// ```
/// use lisa_dfg::{Dfg, OpKind};
/// use lisa_arch::Accelerator;
/// use lisa_mapper::{GuidanceLabels, LabelSaMapper, SaParams, schedule::IiMapper};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_node(OpKind::Load, "a");
/// let b = dfg.add_node(OpKind::Store, "b");
/// dfg.add_data_edge(a, b)?;
/// let labels = GuidanceLabels::initial(&dfg);
/// let acc = Accelerator::cgra("2x2", 2, 2);
/// let mut lisa = LabelSaMapper::new(labels, SaParams::fast(), 1);
/// let m = lisa.map_at_ii(&dfg, &acc, 1).expect("maps");
/// assert!(m.is_complete());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LabelSaMapper {
    labels: GuidanceLabels,
    params: SaParams,
    config: LabelSaConfig,
    seed: u64,
    name: String,
    portfolio: PortfolioParams,
    strategy: crate::strategy::StrategySpec,
    sink: EventSink,
    filter: Option<std::sync::Arc<dyn crate::predictor::MovementScorer>>,
}

impl LabelSaMapper {
    /// Creates a full label-aware mapper (Algorithm 1).
    pub fn new(labels: GuidanceLabels, params: SaParams, seed: u64) -> Self {
        LabelSaMapper {
            labels,
            params,
            config: LabelSaConfig::default(),
            seed,
            name: "LISA".to_string(),
            portfolio: PortfolioParams::sequential(),
            strategy: crate::strategy::StrategySpec::default(),
            sink: EventSink::null(),
            filter: None,
        }
    }

    /// Creates the routing-priority-only ablation of Fig. 12.
    pub fn routing_priority_only(labels: GuidanceLabels, params: SaParams, seed: u64) -> Self {
        LabelSaMapper {
            labels,
            params,
            config: LabelSaConfig {
                mode: LabelMode::RoutingPriorityOnly,
                ..LabelSaConfig::default()
            },
            seed,
            name: "SA+RP".to_string(),
            portfolio: PortfolioParams::sequential(),
            strategy: crate::strategy::StrategySpec::default(),
            sink: EventSink::null(),
            filter: None,
        }
    }

    /// Creates the partial label-aware mapper used during training-data
    /// generation: labels guide only the initial mapping (§V-B).
    pub fn initial_only(labels: GuidanceLabels, params: SaParams, seed: u64) -> Self {
        LabelSaMapper {
            labels,
            params,
            config: LabelSaConfig {
                mode: LabelMode::InitialOnly,
                ..LabelSaConfig::default()
            },
            seed,
            name: "LISA-partial".to_string(),
            portfolio: PortfolioParams::sequential(),
            strategy: crate::strategy::StrategySpec::default(),
            sink: EventSink::null(),
            filter: None,
        }
    }

    /// Runs a portfolio of independently-seeded chains per II and keeps
    /// the deterministic winner (chain 0 reproduces the single-chain
    /// mapper, so `chains = 1` is byte-identical to the constructors).
    pub fn with_portfolio(mut self, portfolio: PortfolioParams) -> Self {
        self.portfolio = portfolio;
        self
    }

    /// Selects the portfolio's lane mix (see [`crate::StrategySpec`]).
    /// The default, `Homogeneous(Sa)`, is byte-identical to the
    /// pre-strategy mapper for every configuration.
    pub fn with_strategy(mut self, strategy: crate::strategy::StrategySpec) -> Self {
        self.strategy = strategy;
        self
    }

    /// Streams per-temperature SA snapshots into `sink`. Events never
    /// change the trajectory; the null sink restores silence.
    pub fn with_observer(mut self, sink: EventSink) -> Self {
        self.sink = sink;
        self
    }

    /// Attaches a predict-then-verify movement filter (see
    /// [`crate::SaMapper::with_movement_filter`]); all portfolio chains
    /// share the one immutable scorer.
    pub fn with_movement_filter(
        mut self,
        filter: std::sync::Arc<dyn crate::predictor::MovementScorer>,
    ) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Replaces the labels (e.g. after a fresh GNN prediction).
    pub fn set_labels(&mut self, labels: GuidanceLabels) {
        self.labels = labels;
    }

    /// The active label set.
    pub fn labels(&self) -> &GuidanceLabels {
        &self.labels
    }

    /// The active guidance mode.
    pub fn mode(&self) -> LabelMode {
        self.config.mode
    }
}

impl IiMapper for LabelSaMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map_at_ii<'a>(
        &mut self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        ii: u32,
    ) -> Option<Mapping<'a>> {
        assert!(
            self.labels.matches(dfg),
            "labels do not match the DFG shape"
        );
        // Each chain gets a fresh policy: `LabelPolicy` carries the
        // InitialOnly transition flag, which must not leak across chains.
        crate::strategy::run_spec(
            &self.strategy,
            |_chain| LabelPolicy::new(&self.labels, self.config, dfg),
            &self.params,
            &self.portfolio,
            dfg,
            acc,
            ii,
            self.seed,
            &self.sink,
            self.filter.as_deref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::{polybench, OpKind};

    #[test]
    fn initial_labels_have_correct_shapes() {
        let dfg = polybench::kernel("gemm").unwrap();
        let labels = GuidanceLabels::initial(&dfg);
        assert!(labels.matches(&dfg));
        assert!(labels.spatial.iter().all(|&v| v == 0.0));
        assert!(labels.temporal.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn schedule_order_follows_asap_initially() {
        let mut g = Dfg::new("chain");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        g.add_data_edge(a, b).unwrap();
        let labels = GuidanceLabels::initial(&g);
        assert!(labels.schedule_order[0] < labels.schedule_order[1]);
    }

    #[test]
    fn lisa_maps_small_graphs() {
        let mut g = Dfg::new("y");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Load, "b");
        let c = g.add_node(OpKind::Add, "c");
        let d = g.add_node(OpKind::Store, "d");
        g.add_data_edge(a, c).unwrap();
        g.add_data_edge(b, c).unwrap();
        g.add_data_edge(c, d).unwrap();
        let labels = GuidanceLabels::initial(&g);
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut lisa = LabelSaMapper::new(labels, SaParams::fast(), 2);
        // II 1 leaves no route-through resources on a fully-occupied 2x2;
        // II 2 is the first feasible interval for this 4-node graph.
        let m = (1..=3)
            .find_map(|ii| lisa.map_at_ii(&g, &acc, ii))
            .expect("maps within II 3");
        m.verify().unwrap();
    }

    #[test]
    fn lisa_maps_polybench_kernel_on_4x4() {
        let dfg = polybench::kernel("gemm").unwrap();
        let labels = GuidanceLabels::initial(&dfg);
        let acc = Accelerator::cgra("4x4", 4, 4);
        let mut lisa = LabelSaMapper::new(labels, SaParams::fast(), 4);
        let mut ok = false;
        for ii in crate::schedule::mii(&dfg, &acc)..=8 {
            if let Some(m) = lisa.map_at_ii(&dfg, &acc, ii) {
                m.verify().unwrap();
                ok = true;
                break;
            }
        }
        assert!(ok, "gemm should map on 4x4 within II 8");
    }

    #[test]
    fn modes_have_distinct_names() {
        let dfg = polybench::kernel("mvt").unwrap();
        let labels = GuidanceLabels::initial(&dfg);
        assert_eq!(
            LabelSaMapper::new(labels.clone(), SaParams::fast(), 0).name(),
            "LISA"
        );
        assert_eq!(
            LabelSaMapper::routing_priority_only(labels.clone(), SaParams::fast(), 0).name(),
            "SA+RP"
        );
        assert_eq!(
            LabelSaMapper::initial_only(labels, SaParams::fast(), 0).name(),
            "LISA-partial"
        );
    }

    #[test]
    #[should_panic(expected = "labels do not match")]
    fn mismatched_labels_panic() {
        let dfg = polybench::kernel("mvt").unwrap();
        let other = polybench::kernel("syr2k").unwrap();
        let labels = GuidanceLabels::initial(&other);
        let acc = Accelerator::cgra("4x4", 4, 4);
        let _ = LabelSaMapper::new(labels, SaParams::fast(), 0).map_at_ii(&dfg, &acc, 2);
    }

    #[test]
    fn routing_need_sums_incident_edges() {
        let mut g = Dfg::new("v");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        let c = g.add_node(OpKind::Store, "c");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(b, c).unwrap();
        let mut labels = GuidanceLabels::initial(&g);
        labels.temporal = vec![2.0, 5.0];
        assert_eq!(labels.node_routing_need(&g, b), 7.0);
        assert_eq!(labels.node_routing_need(&g, a), 2.0);
    }

    #[test]
    fn normal_sampler_is_roughly_standard() {
        let mut rng = Rng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
