//! Golden predictor-off trajectory pins.
//!
//! These digests were captured from the annealer BEFORE the
//! predict-then-verify movement filter existed. The filter-off path must
//! stay byte-identical to that binary: same placements, same routes, for
//! the same `(dfg, accelerator, ii, seed)`. Any drift here means the
//! gating refactor changed the RNG draw order or the movement logic.

use lisa_arch::Accelerator;
use lisa_dfg::{polybench, Dfg, OpKind};
use lisa_mapper::{GuidanceLabels, IiMapper, LabelSaMapper, Mapping, SaMapper, SaParams};

/// FNV-1a over every placement and route step, in id order.
fn digest(m: &Mapping) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let put = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for v in m.dfg().node_ids() {
        match m.placement(v) {
            Some(p) => {
                put(&mut h, 1);
                put(&mut h, p.pe.index() as u64);
                put(&mut h, u64::from(p.time));
            }
            None => put(&mut h, 0),
        }
    }
    for e in m.dfg().edge_ids() {
        match m.route(e) {
            Some(steps) => {
                put(&mut h, steps.len() as u64);
                for s in steps {
                    let (kind, pe, reg) = match s.resource {
                        lisa_arch::Resource::Fu(p) => (1u64, p.index() as u64, 0u64),
                        lisa_arch::Resource::Reg(p, r) => (2u64, p.index() as u64, u64::from(r)),
                    };
                    put(&mut h, kind);
                    put(&mut h, pe);
                    put(&mut h, reg);
                    put(&mut h, u64::from(s.time));
                }
            }
            None => put(&mut h, u64::MAX),
        }
    }
    h
}

fn chain_dfg() -> Dfg {
    let mut g = Dfg::new("chain4");
    let a = g.add_node(OpKind::Load, "a");
    let b = g.add_node(OpKind::Add, "b");
    let c = g.add_node(OpKind::Mul, "c");
    let d = g.add_node(OpKind::Store, "d");
    g.add_data_edge(a, b).unwrap();
    g.add_data_edge(b, c).unwrap();
    g.add_data_edge(c, d).unwrap();
    g
}

fn sa_digest(dfg: &Dfg, acc: &Accelerator, ii: u32, seed: u64) -> u64 {
    let mut mapper = SaMapper::new(SaParams::paper(), seed);
    let m = mapper
        .map_at_ii(dfg, acc, ii)
        .expect("golden case must map");
    m.verify().unwrap();
    digest(&m)
}

fn label_sa_digest(dfg: &Dfg, acc: &Accelerator, ii: u32, seed: u64) -> u64 {
    let mut mapper = LabelSaMapper::new(GuidanceLabels::initial(dfg), SaParams::paper(), seed);
    let m = mapper
        .map_at_ii(dfg, acc, ii)
        .expect("golden case must map");
    m.verify().unwrap();
    digest(&m)
}

#[test]
fn vanilla_sa_trajectories_match_pre_filter_binary() {
    let acc3 = Accelerator::cgra("3x3", 3, 3);
    let acc2 = Accelerator::cgra("2x2", 2, 2);
    let doitgen = polybench::kernel("doitgen").unwrap();
    let chain = chain_dfg();
    let got = [
        sa_digest(&doitgen, &acc3, 3, 1),
        sa_digest(&doitgen, &acc3, 3, 7),
        sa_digest(&doitgen, &acc3, 3, 42),
        sa_digest(&chain, &acc2, 1, 42),
        sa_digest(&chain, &acc2, 2, 9),
    ];
    assert_eq!(got, GOLDEN_SA, "vanilla SA trajectory drifted");
}

#[test]
fn label_sa_trajectories_match_pre_filter_binary() {
    let acc3 = Accelerator::cgra("3x3", 3, 3);
    let doitgen = polybench::kernel("doitgen").unwrap();
    let chain = chain_dfg();
    let got = [
        label_sa_digest(&doitgen, &acc3, 3, 1),
        label_sa_digest(&doitgen, &acc3, 3, 42),
        label_sa_digest(&chain, &acc3, 1, 9),
    ];
    assert_eq!(got, GOLDEN_LABEL_SA, "label-aware SA trajectory drifted");
}

const GOLDEN_SA: [u64; 5] = [
    6022767452455792074,
    6253017857123897318,
    2509703924138623634,
    15469199065668036785,
    2349378152788221529,
];
const GOLDEN_LABEL_SA: [u64; 3] = [
    6850723976941017084,
    10280484549389806084,
    3047957704053923850,
];
