//! Determinism contract of the heterogeneous strategy portfolio.
//!
//! Three layers of pinning:
//!
//! * **Golden digests** — the default configuration (homogeneous SA
//!   lanes) must stay byte-identical to the pre-`SearchStrategy` mapper.
//!   The digests below were captured by running the pre-refactor
//!   portfolio (`PortfolioParams::new(4).with_parallelism(2)`,
//!   `SaParams::paper()`) on this exact suite.
//! * **Rerun identity** — every strategy mix maps byte-identically when
//!   run twice in the same process.
//! * **Thread-count invariance** — the mixed-lane portfolio returns the
//!   same bytes for `parallelism` 1, 2, and 4: lane seeds derive from
//!   lane indices, and all lanes are joined before the winner is judged.

use lisa_arch::Accelerator;
use lisa_dfg::{polybench, Dfg, OpKind};
use lisa_mapper::{
    GuidanceLabels, IiMapper, LabelSaMapper, Mapping, PortfolioParams, SaMapper, SaParams,
    StrategySpec,
};

/// FNV-1a over every placement and route step: byte-level identity of
/// the mapping, independent of `Debug` formatting.
fn digest(m: &Mapping) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let put = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for v in m.dfg().node_ids() {
        match m.placement(v) {
            Some(p) => {
                put(&mut h, 1);
                put(&mut h, p.pe.index() as u64);
                put(&mut h, u64::from(p.time));
            }
            None => put(&mut h, 0),
        }
    }
    for e in m.dfg().edge_ids() {
        match m.route(e) {
            Some(steps) => {
                put(&mut h, steps.len() as u64);
                for s in steps {
                    let (kind, pe, reg) = match s.resource {
                        lisa_arch::Resource::Fu(p) => (1u64, p.index() as u64, 0u64),
                        lisa_arch::Resource::Reg(p, r) => (2u64, p.index() as u64, u64::from(r)),
                    };
                    put(&mut h, kind);
                    put(&mut h, pe);
                    put(&mut h, reg);
                    put(&mut h, u64::from(s.time));
                }
            }
            None => put(&mut h, u64::MAX),
        }
    }
    h
}

fn chain_dfg() -> Dfg {
    let mut g = Dfg::new("chain4");
    let a = g.add_node(OpKind::Load, "a");
    let b = g.add_node(OpKind::Add, "b");
    let c = g.add_node(OpKind::Mul, "c");
    let d = g.add_node(OpKind::Store, "d");
    g.add_data_edge(a, b).unwrap();
    g.add_data_edge(b, c).unwrap();
    g.add_data_edge(c, d).unwrap();
    g
}

/// `(name, dfg, acc, ii, seed, sa_digest, label_sa_digest)` — digests
/// captured from the pre-refactor portfolio (see module docs).
fn golden_suite() -> Vec<(&'static str, Dfg, Accelerator, u32, u64, u64, u64)> {
    let acc3 = Accelerator::cgra("3x3", 3, 3);
    let acc2 = Accelerator::cgra("2x2", 2, 2);
    let doitgen = polybench::kernel("doitgen").unwrap();
    vec![
        (
            "doitgen/3x3/ii3/seed7",
            doitgen.clone(),
            acc3.clone(),
            3,
            7,
            11412025636391995084,
            17301522656703535662,
        ),
        (
            "doitgen/3x3/ii3/seed42",
            doitgen,
            acc3,
            3,
            42,
            5232973181229138593,
            6783208404875980690,
        ),
        (
            "chain/2x2/ii2/seed9",
            chain_dfg(),
            acc2,
            2,
            9,
            4772941992497756841,
            225515969889060149,
        ),
    ]
}

#[test]
fn default_strategy_matches_pre_refactor_golden_digests() {
    for (name, dfg, acc, ii, seed, sa_digest, label_digest) in golden_suite() {
        let mut sa = SaMapper::new(SaParams::paper(), seed)
            .with_portfolio(PortfolioParams::new(4).with_parallelism(2));
        let m = sa.map_at_ii(&dfg, &acc, ii).expect("golden case maps");
        assert_eq!(digest(&m), sa_digest, "SA digest drifted on {name}");

        let mut label = LabelSaMapper::new(GuidanceLabels::initial(&dfg), SaParams::paper(), seed)
            .with_portfolio(PortfolioParams::new(4).with_parallelism(2));
        let m = label.map_at_ii(&dfg, &acc, ii).expect("golden case maps");
        assert_eq!(digest(&m), label_digest, "LabelSA digest drifted on {name}");
    }
}

#[test]
fn explicit_strategy_sa_is_byte_identical_to_the_default() {
    for (name, dfg, acc, ii, seed, sa_digest, _) in golden_suite() {
        let mut sa = SaMapper::new(SaParams::paper(), seed)
            .with_portfolio(PortfolioParams::new(4).with_parallelism(2))
            .with_strategy(StrategySpec::parse("sa").unwrap());
        let m = sa.map_at_ii(&dfg, &acc, ii).expect("golden case maps");
        assert_eq!(digest(&m), sa_digest, "--strategy sa diverged on {name}");
    }
}

#[test]
fn mixed_portfolio_is_rerun_and_thread_count_invariant() {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let dfg = polybench::kernel("gemm").unwrap();
    let mixed = StrategySpec::parse("mixed").unwrap();
    let mut digests = Vec::new();
    for parallelism in [1, 2, 4, 1] {
        let mut sa = SaMapper::new(SaParams::fast(), 7)
            .with_portfolio(PortfolioParams::new(3).with_parallelism(parallelism))
            .with_strategy(mixed.clone());
        let m = sa.map_at_ii(&dfg, &acc, 8).expect("gemm maps at ii 8");
        m.verify().expect("mixed-lane winner verifies");
        digests.push(digest(&m));
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "mixed portfolio varied across thread counts/reruns: {digests:?}"
    );

    // Same contract for the label-aware mapper.
    let mut digests = Vec::new();
    for parallelism in [1, 4] {
        let mut label = LabelSaMapper::new(GuidanceLabels::initial(&dfg), SaParams::fast(), 7)
            .with_portfolio(PortfolioParams::new(3).with_parallelism(parallelism))
            .with_strategy(mixed.clone());
        let m = label.map_at_ii(&dfg, &acc, 8).expect("gemm maps at ii 8");
        digests.push(digest(&m));
    }
    assert_eq!(digests[0], digests[1]);
}

#[test]
fn every_lane_mix_reruns_byte_identically() {
    let acc = Accelerator::cgra("4x4", 4, 4);
    let dfg = polybench::kernel("doitgen").unwrap();
    for spec in ["constructive", "evolutionary", "sa,evolutionary", "mixed"] {
        let strategy = StrategySpec::parse(spec).unwrap();
        let run = || {
            let mut sa = SaMapper::new(SaParams::fast(), 11)
                .with_portfolio(PortfolioParams::new(2).with_parallelism(2))
                .with_strategy(strategy.clone());
            sa.map_at_ii(&dfg, &acc, 8).map(|m| digest(&m))
        };
        assert_eq!(run(), run(), "strategy `{spec}` rerun diverged");
    }
}
