//! Ready-made [`Observer`] implementations.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::{LabelGenResult, Observer, PipelineEvent};

/// Buffers every event in memory. Intended for tests.
#[derive(Default)]
pub struct RecordingObserver {
    events: Mutex<Vec<PipelineEvent>>,
}

impl RecordingObserver {
    /// Drains and returns the recorded events.
    pub fn take(&self) -> Vec<PipelineEvent> {
        std::mem::take(&mut self.events.lock().unwrap())
    }
}

impl Observer for RecordingObserver {
    fn event(&self, event: &PipelineEvent) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Human-readable progress lines on stderr.
///
/// By default the chatty per-iteration events (annealer snapshots,
/// per-epoch losses, per-round label-gen progress) are suppressed and
/// only stage/DFG-level milestones print; [`StderrObserver::verbose`]
/// prints everything — including the per-temperature annealer lines that
/// the removed `LISA_SA_DEBUG` env var used to produce.
#[derive(Debug, Default)]
pub struct StderrObserver {
    verbose: bool,
}

impl StderrObserver {
    /// Milestone lines only.
    pub fn new() -> Self {
        StderrObserver { verbose: false }
    }

    /// Every event, including per-temperature annealer snapshots.
    pub fn verbose() -> Self {
        StderrObserver { verbose: true }
    }

    fn render(&self, event: &PipelineEvent) -> Option<String> {
        match event {
            PipelineEvent::StageStarted { stage } => Some(format!("[lisa] stage {stage} ...")),
            PipelineEvent::StageFinished { stage, duration } => Some(format!(
                "[lisa] stage {stage} done in {:.2}s",
                duration.as_secs_f64()
            )),
            PipelineEvent::DfgGenerated {
                index,
                nodes,
                edges,
            } => self
                .verbose
                .then(|| format!("[lisa]   dfg {index}: {nodes} nodes, {edges} edges")),
            PipelineEvent::LabelGenRound {
                dfg_index,
                round,
                ii,
                routing_cells,
                improved,
            } => self.verbose.then(|| match ii {
                Some(ii) => format!(
                    "[lisa]   dfg {dfg_index} round {round}: II={ii} routing={routing_cells}{}",
                    if *improved { " (improved)" } else { "" }
                ),
                None => format!("[lisa]   dfg {dfg_index} round {round}: unmapped"),
            }),
            PipelineEvent::LabelGenFinished {
                dfg_index,
                result,
                resumed,
            } => {
                let suffix = if *resumed { " [resumed]" } else { "" };
                Some(match result {
                    LabelGenResult::Mapped {
                        best_ii,
                        mii,
                        candidates,
                    } => format!(
                        "[lisa]   dfg {dfg_index}: II={best_ii} (MII={mii}), {candidates} candidates{suffix}"
                    ),
                    LabelGenResult::Unmappable => {
                        format!("[lisa]   dfg {dfg_index}: unmappable{suffix}")
                    }
                })
            }
            PipelineEvent::FilterDecision {
                dfg_index,
                accepted,
                quality,
            } => self.verbose.then(|| {
                format!(
                    "[lisa]   dfg {dfg_index}: filter {} (e={quality:.3})",
                    if *accepted { "accept" } else { "reject" }
                )
            }),
            PipelineEvent::EpochLoss {
                network,
                epoch,
                loss,
            } => self
                .verbose
                .then(|| format!("[lisa]   {network} epoch {epoch}: loss {loss:.6}")),
            PipelineEvent::SaSnapshot {
                chain,
                ii,
                temp,
                cost,
                unplaced,
                unrouted,
                accepted,
                attempted,
            } => self.verbose.then(|| {
                format!(
                    "[sa] chain {chain} ii={ii} temp={temp:.4} cost={cost:.2} \
                     unplaced={unplaced} unrouted={unrouted} acc={accepted}/{attempted}"
                )
            }),
            PipelineEvent::ServeEnqueued {
                request,
                queue_depth,
            } => self
                .verbose
                .then(|| format!("[serve] request {request}: enqueued (queue {queue_depth})")),
            PipelineEvent::ServeCacheProbe { request, key, tier } => self
                .verbose
                .then(|| format!("[serve] request {request}: cache {key:016x} -> {tier}")),
            PipelineEvent::ServeAnnealStarted { request } => self
                .verbose
                .then(|| format!("[serve] request {request}: annealing")),
            PipelineEvent::ServeResponded {
                request,
                disposition,
                duration,
            } => Some(format!(
                "[serve] request {request}: {disposition} in {:.1}ms",
                duration.as_secs_f64() * 1e3
            )),
            // Per-movement training pairs are far too chatty even for
            // verbose mode; they belong in JSONL logs.
            PipelineEvent::SaMovementSample { .. } => None,
            PipelineEvent::SaFilterSummary {
                chain,
                ii,
                proposals,
                admitted,
                rejected,
                audited,
                false_rejects,
                router_invocations,
                audit_router_invocations,
            } => self.verbose.then(|| {
                format!(
                    "[sa] chain {chain} ii={ii} filter: proposals={proposals} \
                     admitted={admitted} rejected={rejected} audited={audited} \
                     false_rejects={false_rejects} router_invocations={router_invocations} \
                     audit_router_invocations={audit_router_invocations}"
                )
            }),
            PipelineEvent::StrategyLaneWon {
                ii,
                lane,
                strategy,
                cost,
            } => self.verbose.then(|| {
                format!("[portfolio] ii={ii} lane {lane} ({strategy}) won at cost {cost:.2}")
            }),
        }
    }
}

impl Observer for StderrObserver {
    fn event(&self, event: &PipelineEvent) {
        if let Some(line) = self.render(event) {
            eprintln!("{line}");
        }
    }
}

/// Writes one JSON object per event to a line-oriented log (JSONL).
///
/// Events from parallel annealer chains interleave in arrival order; the
/// determinism contract covers trained weights and mappings, not log
/// ordering.
pub struct JsonlObserver {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlObserver {
    /// Creates (truncating) the log file at `path`.
    pub fn to_file(path: &Path) -> io::Result<Self> {
        Ok(JsonlObserver::to_writer(Box::new(File::create(path)?)))
    }

    /// Wraps an arbitrary writer.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlObserver {
            writer: Mutex::new(BufWriter::new(writer)),
        }
    }

    /// Flushes buffered lines to the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.writer.lock().unwrap().flush()
    }
}

impl Observer for JsonlObserver {
    fn event(&self, event: &PipelineEvent) {
        let mut writer = self.writer.lock().unwrap();
        // A full log is diagnostics, not data: ignore write errors.
        let _ = writeln!(writer, "{}", event.to_json());
    }
}

impl Drop for JsonlObserver {
    fn drop(&mut self) {
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writer.flush();
        }
    }
}

/// Fans each event out to several observers, in order.
#[derive(Default)]
pub struct MultiObserver {
    observers: Vec<Arc<dyn Observer>>,
}

impl MultiObserver {
    /// An observer forwarding to all of `observers`.
    pub fn new(observers: Vec<Arc<dyn Observer>>) -> Self {
        MultiObserver { observers }
    }
}

impl Observer for MultiObserver {
    fn event(&self, event: &PipelineEvent) {
        for observer in &self.observers {
            observer.event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn recording_observer_drains_on_take() {
        let rec = RecordingObserver::default();
        rec.event(&PipelineEvent::StageStarted { stage: "x" });
        assert_eq!(rec.take().len(), 1);
        assert!(rec.take().is_empty());
    }

    #[test]
    fn stderr_observer_filters_chatty_events_unless_verbose() {
        let quiet = StderrObserver::new();
        let verbose = StderrObserver::verbose();
        let snapshot = PipelineEvent::SaSnapshot {
            chain: 0,
            ii: 2,
            temp: 1.0,
            cost: 5.0,
            unplaced: 1,
            unrouted: 2,
            accepted: 3,
            attempted: 9,
        };
        assert!(quiet.render(&snapshot).is_none());
        assert!(verbose.render(&snapshot).unwrap().contains("acc=3/9"));
        let milestone = PipelineEvent::StageFinished {
            stage: "TrainNets",
            duration: Duration::from_millis(1500),
        };
        assert!(quiet.render(&milestone).unwrap().contains("TrainNets"));
    }

    #[test]
    fn jsonl_observer_writes_one_line_per_event() {
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let obs = JsonlObserver::to_writer(Box::new(SharedBuf(buf.clone())));
        obs.event(&PipelineEvent::StageStarted { stage: "a" });
        obs.event(&PipelineEvent::EpochLoss {
            network: "spatial",
            epoch: 3,
            loss: 0.25,
        });
        obs.flush().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"stage_started\""));
        assert!(lines[1].contains("\"loss\":0.25"));
    }

    #[test]
    fn multi_observer_fans_out() {
        let a = Arc::new(RecordingObserver::default());
        let b = Arc::new(RecordingObserver::default());
        let multi = MultiObserver::new(vec![a.clone(), b.clone()]);
        multi.event(&PipelineEvent::StageStarted { stage: "m" });
        assert_eq!(a.take().len(), 1);
        assert_eq!(b.take().len(), 1);
    }
}
