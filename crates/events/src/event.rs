//! The pipeline event vocabulary and its JSONL encoding.

use std::time::Duration;

/// Outcome of the iterative label generator for one DFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelGenResult {
    /// At least one round produced a complete mapping.
    Mapped {
        /// Best II achieved across rounds.
        best_ii: u32,
        /// Theoretical minimum II of the (DFG, accelerator) pair.
        mii: u32,
        /// Candidates surviving both selection rounds.
        candidates: usize,
    },
    /// No round mapped; the DFG contributes no training labels.
    Unmappable,
}

/// One structured event from the training pipeline or its substages.
///
/// Identifiers use plain integers (node/edge/DFG indices) rather than the
/// typed ids of the upper crates, so this enum stays at the bottom of the
/// dependency graph and every layer can emit into the same sink.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineEvent {
    /// A pipeline stage began.
    StageStarted {
        /// Stage name (e.g. `"GenerateLabels"`).
        stage: &'static str,
    },
    /// A pipeline stage completed.
    StageFinished {
        /// Stage name.
        stage: &'static str,
        /// Wall-clock duration of the stage.
        duration: Duration,
    },
    /// One synthetic training DFG was generated.
    DfgGenerated {
        /// Index within the training set.
        index: usize,
        /// Node count.
        nodes: usize,
        /// Edge count.
        edges: usize,
    },
    /// One round of the iterative label generator finished.
    LabelGenRound {
        /// Index of the DFG being labelled.
        dfg_index: usize,
        /// Round number (0-based).
        round: usize,
        /// II achieved this round, if the round mapped.
        ii: Option<u32>,
        /// Routing cells of the round's mapping (0 when unmapped).
        routing_cells: usize,
        /// Whether the round improved on the best mapping so far.
        improved: bool,
    },
    /// The iterative label generator finished one DFG.
    LabelGenFinished {
        /// Index of the labelled DFG.
        dfg_index: usize,
        /// Mapping outcome.
        result: LabelGenResult,
        /// `true` when the outcome was restored from a checkpoint
        /// artifact instead of recomputed.
        resumed: bool,
    },
    /// The §V-C quality filter judged one labelled DFG.
    FilterDecision {
        /// Index of the DFG.
        dfg_index: usize,
        /// Whether it enters the training set.
        accepted: bool,
        /// The quality metric `e = O + σ·N`.
        quality: f64,
    },
    /// One training epoch of a label network completed.
    EpochLoss {
        /// Which network (e.g. `"schedule_order"`).
        network: &'static str,
        /// Epoch number (0-based).
        epoch: usize,
        /// Mean loss of the epoch.
        loss: f64,
    },
    /// A mapping-service request entered the daemon (serve lifecycle:
    /// enqueue → cache-probe → anneal → respond).
    ServeEnqueued {
        /// Monotonic per-daemon request id.
        request: u64,
        /// Requests already waiting for a compute slot.
        queue_depth: usize,
    },
    /// The content-addressed cache was probed for a request.
    ServeCacheProbe {
        /// Request id.
        request: u64,
        /// Hex cache key (FNV-1a 64 of the canonical request text).
        key: u64,
        /// Which tier answered: `"memory"`, `"disk"`, or `"none"`.
        tier: &'static str,
    },
    /// A cache miss entered the annealer (the expensive path).
    ServeAnnealStarted {
        /// Request id.
        request: u64,
    },
    /// The daemon answered a request.
    ServeResponded {
        /// Request id.
        request: u64,
        /// How it was served: `"hit_memory"`, `"hit_disk"`, `"computed"`,
        /// `"coalesced"`, `"overloaded"`, or `"error"`.
        disposition: &'static str,
        /// Wall-clock time from enqueue to response.
        duration: Duration,
    },
    /// Per-temperature snapshot of a simulated-annealing chain (the
    /// replacement for the `LISA_SA_DEBUG` env-var path).
    SaSnapshot {
        /// Portfolio chain index.
        chain: usize,
        /// Target II of the annealing run.
        ii: u32,
        /// Current temperature.
        temp: f64,
        /// Current mapping cost.
        cost: f64,
        /// Unplaced node count.
        unplaced: usize,
        /// Unrouted edge count.
        unrouted: usize,
        /// Accepted movements so far.
        accepted: u32,
        /// Attempted movements so far.
        attempted: u32,
    },
    /// One routed-and-priced SA movement: the training pair for the
    /// predict-then-verify movement filter. Emitted only when a sink is
    /// listening (building the feature vector is skipped otherwise).
    SaMovementSample {
        /// Portfolio chain index.
        chain: usize,
        /// Target II of the annealing run.
        ii: u32,
        /// Movement feature vector (`lisa_mapper::predictor` layout).
        features: Vec<f64>,
        /// Exact cost delta `new_cost - old_cost` measured after routing.
        delta_cost: f64,
    },
    /// End-of-chain totals of the movement-filter counters. Emitted once
    /// per annealing chain, with or without a filter attached, so A/B
    /// router-work comparisons read from the same stream.
    SaFilterSummary {
        /// Portfolio chain index.
        chain: usize,
        /// Target II of the annealing run.
        ii: u32,
        /// Movements proposed (victims unplaced and re-placed).
        proposals: u64,
        /// Proposals the predictor admitted to routing (with no filter
        /// attached every proposal is admitted).
        admitted: u64,
        /// Proposals the predictor rejected before routing.
        rejected: u64,
        /// Rejected proposals routed anyway for the false-reject audit.
        audited: u64,
        /// Audited rejects the annealer would have accepted.
        false_rejects: u64,
        /// `route_edge` invocations on the admitted path (incl. the
        /// initial construction).
        router_invocations: u64,
        /// `route_edge` invocations spent on the audit (measure-only).
        audit_router_invocations: u64,
    },
    /// The portfolio's winner for one II attempt: which lane produced
    /// the mapping the deterministic winner rule kept.
    StrategyLaneWon {
        /// Target II of the race.
        ii: u32,
        /// Winning lane index (generalizes the portfolio chain index).
        lane: usize,
        /// Stable lane name (`sa`, `evolutionary`, `constructive`).
        strategy: &'static str,
        /// Cost of the winning mapping.
        cost: f64,
    },
}

impl PipelineEvent {
    /// A stable snake_case tag naming the variant (the JSONL `"event"`
    /// field).
    pub fn tag(&self) -> &'static str {
        match self {
            PipelineEvent::StageStarted { .. } => "stage_started",
            PipelineEvent::StageFinished { .. } => "stage_finished",
            PipelineEvent::DfgGenerated { .. } => "dfg_generated",
            PipelineEvent::LabelGenRound { .. } => "label_gen_round",
            PipelineEvent::LabelGenFinished { .. } => "label_gen_finished",
            PipelineEvent::FilterDecision { .. } => "filter_decision",
            PipelineEvent::EpochLoss { .. } => "epoch_loss",
            PipelineEvent::ServeEnqueued { .. } => "serve_enqueued",
            PipelineEvent::ServeCacheProbe { .. } => "serve_cache_probe",
            PipelineEvent::ServeAnnealStarted { .. } => "serve_anneal_started",
            PipelineEvent::ServeResponded { .. } => "serve_responded",
            PipelineEvent::SaSnapshot { .. } => "sa_snapshot",
            PipelineEvent::SaMovementSample { .. } => "sa_movement_sample",
            PipelineEvent::SaFilterSummary { .. } => "sa_filter_summary",
            PipelineEvent::StrategyLaneWon { .. } => "strategy_lane_won",
        }
    }

    /// Encodes the event as a single-line JSON object (the hermetic build
    /// has no serde; the vocabulary is small enough to encode by hand).
    pub fn to_json(&self) -> String {
        let mut fields = vec![format!("\"event\":\"{}\"", self.tag())];
        match self {
            PipelineEvent::StageStarted { stage } => {
                fields.push(format!("\"stage\":\"{stage}\""));
            }
            PipelineEvent::StageFinished { stage, duration } => {
                fields.push(format!("\"stage\":\"{stage}\""));
                fields.push(format!(
                    "\"duration_ms\":{:.3}",
                    duration.as_secs_f64() * 1e3
                ));
            }
            PipelineEvent::DfgGenerated {
                index,
                nodes,
                edges,
            } => {
                fields.push(format!("\"index\":{index}"));
                fields.push(format!("\"nodes\":{nodes}"));
                fields.push(format!("\"edges\":{edges}"));
            }
            PipelineEvent::LabelGenRound {
                dfg_index,
                round,
                ii,
                routing_cells,
                improved,
            } => {
                fields.push(format!("\"dfg_index\":{dfg_index}"));
                fields.push(format!("\"round\":{round}"));
                fields.push(match ii {
                    Some(ii) => format!("\"ii\":{ii}"),
                    None => "\"ii\":null".to_string(),
                });
                fields.push(format!("\"routing_cells\":{routing_cells}"));
                fields.push(format!("\"improved\":{improved}"));
            }
            PipelineEvent::LabelGenFinished {
                dfg_index,
                result,
                resumed,
            } => {
                fields.push(format!("\"dfg_index\":{dfg_index}"));
                match result {
                    LabelGenResult::Mapped {
                        best_ii,
                        mii,
                        candidates,
                    } => {
                        fields.push("\"mapped\":true".to_string());
                        fields.push(format!("\"best_ii\":{best_ii}"));
                        fields.push(format!("\"mii\":{mii}"));
                        fields.push(format!("\"candidates\":{candidates}"));
                    }
                    LabelGenResult::Unmappable => {
                        fields.push("\"mapped\":false".to_string());
                    }
                }
                fields.push(format!("\"resumed\":{resumed}"));
            }
            PipelineEvent::FilterDecision {
                dfg_index,
                accepted,
                quality,
            } => {
                fields.push(format!("\"dfg_index\":{dfg_index}"));
                fields.push(format!("\"accepted\":{accepted}"));
                fields.push(format!("\"quality\":{}", json_f64(*quality)));
            }
            PipelineEvent::EpochLoss {
                network,
                epoch,
                loss,
            } => {
                fields.push(format!("\"network\":\"{network}\""));
                fields.push(format!("\"epoch\":{epoch}"));
                fields.push(format!("\"loss\":{}", json_f64(*loss)));
            }
            PipelineEvent::ServeEnqueued {
                request,
                queue_depth,
            } => {
                fields.push(format!("\"request\":{request}"));
                fields.push(format!("\"queue_depth\":{queue_depth}"));
            }
            PipelineEvent::ServeCacheProbe { request, key, tier } => {
                fields.push(format!("\"request\":{request}"));
                fields.push(format!("\"key\":\"{key:016x}\""));
                fields.push(format!("\"tier\":\"{tier}\""));
            }
            PipelineEvent::ServeAnnealStarted { request } => {
                fields.push(format!("\"request\":{request}"));
            }
            PipelineEvent::ServeResponded {
                request,
                disposition,
                duration,
            } => {
                fields.push(format!("\"request\":{request}"));
                fields.push(format!("\"disposition\":\"{disposition}\""));
                fields.push(format!(
                    "\"duration_ms\":{:.3}",
                    duration.as_secs_f64() * 1e3
                ));
            }
            PipelineEvent::SaSnapshot {
                chain,
                ii,
                temp,
                cost,
                unplaced,
                unrouted,
                accepted,
                attempted,
            } => {
                fields.push(format!("\"chain\":{chain}"));
                fields.push(format!("\"ii\":{ii}"));
                fields.push(format!("\"temp\":{}", json_f64(*temp)));
                fields.push(format!("\"cost\":{}", json_f64(*cost)));
                fields.push(format!("\"unplaced\":{unplaced}"));
                fields.push(format!("\"unrouted\":{unrouted}"));
                fields.push(format!("\"accepted\":{accepted}"));
                fields.push(format!("\"attempted\":{attempted}"));
            }
            PipelineEvent::SaMovementSample {
                chain,
                ii,
                features,
                delta_cost,
            } => {
                fields.push(format!("\"chain\":{chain}"));
                fields.push(format!("\"ii\":{ii}"));
                let xs: Vec<String> = features.iter().map(|&v| json_f64(v)).collect();
                fields.push(format!("\"features\":[{}]", xs.join(",")));
                fields.push(format!("\"delta_cost\":{}", json_f64(*delta_cost)));
            }
            PipelineEvent::SaFilterSummary {
                chain,
                ii,
                proposals,
                admitted,
                rejected,
                audited,
                false_rejects,
                router_invocations,
                audit_router_invocations,
            } => {
                fields.push(format!("\"chain\":{chain}"));
                fields.push(format!("\"ii\":{ii}"));
                fields.push(format!("\"proposals\":{proposals}"));
                fields.push(format!("\"admitted\":{admitted}"));
                fields.push(format!("\"rejected\":{rejected}"));
                fields.push(format!("\"audited\":{audited}"));
                fields.push(format!("\"false_rejects\":{false_rejects}"));
                fields.push(format!("\"router_invocations\":{router_invocations}"));
                fields.push(format!(
                    "\"audit_router_invocations\":{audit_router_invocations}"
                ));
            }
            PipelineEvent::StrategyLaneWon {
                ii,
                lane,
                strategy,
                cost,
            } => {
                fields.push(format!("\"ii\":{ii}"));
                fields.push(format!("\"lane\":{lane}"));
                fields.push(format!("\"strategy\":\"{strategy}\""));
                fields.push(format!("\"cost\":{}", json_f64(*cost)));
            }
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// JSON has no NaN/Infinity literals; encode them as null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique() {
        let events = [
            PipelineEvent::StageStarted { stage: "s" },
            PipelineEvent::StageFinished {
                stage: "s",
                duration: Duration::ZERO,
            },
            PipelineEvent::DfgGenerated {
                index: 0,
                nodes: 1,
                edges: 0,
            },
            PipelineEvent::LabelGenRound {
                dfg_index: 0,
                round: 0,
                ii: None,
                routing_cells: 0,
                improved: false,
            },
            PipelineEvent::LabelGenFinished {
                dfg_index: 0,
                result: LabelGenResult::Unmappable,
                resumed: false,
            },
            PipelineEvent::FilterDecision {
                dfg_index: 0,
                accepted: true,
                quality: 1.0,
            },
            PipelineEvent::EpochLoss {
                network: "n",
                epoch: 0,
                loss: 0.5,
            },
            PipelineEvent::ServeEnqueued {
                request: 1,
                queue_depth: 0,
            },
            PipelineEvent::ServeCacheProbe {
                request: 1,
                key: 0xfeed,
                tier: "memory",
            },
            PipelineEvent::ServeAnnealStarted { request: 1 },
            PipelineEvent::ServeResponded {
                request: 1,
                disposition: "computed",
                duration: Duration::ZERO,
            },
            PipelineEvent::SaSnapshot {
                chain: 0,
                ii: 2,
                temp: 1.0,
                cost: 3.0,
                unplaced: 0,
                unrouted: 1,
                accepted: 2,
                attempted: 4,
            },
            PipelineEvent::SaMovementSample {
                chain: 0,
                ii: 2,
                features: vec![1.0, 2.0],
                delta_cost: -3.5,
            },
            PipelineEvent::SaFilterSummary {
                chain: 0,
                ii: 2,
                proposals: 10,
                admitted: 7,
                rejected: 3,
                audited: 1,
                false_rejects: 0,
                router_invocations: 20,
                audit_router_invocations: 2,
            },
            PipelineEvent::StrategyLaneWon {
                ii: 2,
                lane: 1,
                strategy: "constructive",
                cost: 12.5,
            },
        ];
        let mut tags: Vec<&str> = events.iter().map(PipelineEvent::tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), events.len());
    }

    #[test]
    fn json_lines_carry_the_tag_and_fields() {
        let e = PipelineEvent::LabelGenFinished {
            dfg_index: 7,
            result: LabelGenResult::Mapped {
                best_ii: 3,
                mii: 2,
                candidates: 4,
            },
            resumed: true,
        };
        let json = e.to_json();
        assert!(json.starts_with("{\"event\":\"label_gen_finished\""));
        assert!(json.contains("\"dfg_index\":7"));
        assert!(json.contains("\"best_ii\":3"));
        assert!(json.contains("\"resumed\":true"));
        assert!(json.ends_with('}'));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn unmapped_round_encodes_null_ii() {
        let e = PipelineEvent::LabelGenRound {
            dfg_index: 0,
            round: 2,
            ii: None,
            routing_cells: 0,
            improved: false,
        };
        assert!(e.to_json().contains("\"ii\":null"));
    }

    #[test]
    fn movement_sample_encodes_feature_array() {
        let e = PipelineEvent::SaMovementSample {
            chain: 1,
            ii: 3,
            features: vec![0.5, f64::NAN, 2.0],
            delta_cost: -7.25,
        };
        let json = e.to_json();
        assert!(json.starts_with("{\"event\":\"sa_movement_sample\""));
        assert!(json.contains("\"features\":[0.5,null,2]"));
        assert!(json.contains("\"delta_cost\":-7.25"));
    }

    #[test]
    fn filter_summary_carries_every_counter() {
        let e = PipelineEvent::SaFilterSummary {
            chain: 2,
            ii: 4,
            proposals: 100,
            admitted: 40,
            rejected: 60,
            audited: 4,
            false_rejects: 1,
            router_invocations: 250,
            audit_router_invocations: 9,
        };
        let json = e.to_json();
        assert!(json.contains("\"proposals\":100"));
        assert!(json.contains("\"false_rejects\":1"));
        assert!(json.contains("\"router_invocations\":250"));
        assert!(json.contains("\"audit_router_invocations\":9"));
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let e = PipelineEvent::EpochLoss {
            network: "edge",
            epoch: 1,
            loss: f64::NAN,
        };
        assert!(e.to_json().contains("\"loss\":null"));
    }
}
