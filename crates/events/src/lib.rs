//! Structured observability for the LISA training pipeline.
//!
//! Every long-running stage of the framework — synthetic DFG generation,
//! iterative label generation, GNN training, the annealer itself — emits
//! [`PipelineEvent`]s through an [`EventSink`] handle instead of printing
//! ad-hoc `eprintln!` lines or reading debug environment variables. A
//! sink is a cheap clonable handle around an [`Observer`]; the null sink
//! costs one branch per event, so hot paths stay observable without a
//! measurable tax when nobody is listening.
//!
//! The crate sits below every other workspace member (it depends only on
//! `std`), so the mapper, the GNN stack, the label generator, and the
//! end-to-end pipeline all speak the same event vocabulary.
//!
//! Shipped observers:
//!
//! * [`StderrObserver`] — human-readable progress lines (the replacement
//!   for the bench harness's ad-hoc `eprintln!` calls and the old
//!   `LISA_SA_DEBUG` env-var path);
//! * [`JsonlObserver`] — one JSON object per line, for machine-readable
//!   experiment logs;
//! * [`MultiObserver`] — fans one event out to several observers.
//!
//! # Example
//!
//! ```
//! use lisa_events::{EventSink, PipelineEvent, RecordingObserver};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(RecordingObserver::default());
//! let sink = EventSink::new(recorder.clone());
//! sink.emit(PipelineEvent::StageStarted { stage: "GenerateDfgs" });
//! assert_eq!(recorder.take().len(), 1);
//! ```

mod event;
mod observers;

pub use event::{LabelGenResult, PipelineEvent};
pub use observers::{JsonlObserver, MultiObserver, RecordingObserver, StderrObserver};

use std::fmt;
use std::sync::Arc;

/// Receives every event a pipeline run produces. Implementations must be
/// thread-safe: the annealer portfolio and the label generator emit from
/// worker threads.
pub trait Observer: Send + Sync {
    /// Handles one event. Called synchronously from the emitting stage;
    /// keep it cheap (buffer, don't block).
    fn event(&self, event: &PipelineEvent);
}

/// A cheap, clonable handle to an optional [`Observer`].
///
/// The default (null) sink drops every event after a single branch, so
/// the observability layer can be threaded through hot paths
/// unconditionally.
#[derive(Clone, Default)]
pub struct EventSink(Option<Arc<dyn Observer>>);

impl EventSink {
    /// The null sink: every event is discarded.
    pub fn null() -> Self {
        EventSink(None)
    }

    /// A sink forwarding to the given observer.
    pub fn new(observer: Arc<dyn Observer>) -> Self {
        EventSink(Some(observer))
    }

    /// Whether anyone is listening. Stages may skip building expensive
    /// event payloads when this is `false`.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Emits one event (no-op on the null sink).
    pub fn emit(&self, event: PipelineEvent) {
        if let Some(observer) = &self.0 {
            observer.event(&event);
        }
    }
}

impl fmt::Debug for EventSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_active() {
            "EventSink(active)"
        } else {
            "EventSink(null)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_discards_and_reports_inactive() {
        let sink = EventSink::null();
        assert!(!sink.is_active());
        sink.emit(PipelineEvent::StageStarted { stage: "x" });
    }

    #[test]
    fn active_sink_forwards_events() {
        let recorder = Arc::new(RecordingObserver::default());
        let sink = EventSink::new(recorder.clone());
        assert!(sink.is_active());
        sink.emit(PipelineEvent::StageStarted { stage: "a" });
        sink.emit(PipelineEvent::StageFinished {
            stage: "a",
            duration: std::time::Duration::from_millis(3),
        });
        let events = recorder.take();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            PipelineEvent::StageStarted { stage: "a" }
        ));
    }

    #[test]
    fn clones_share_the_observer() {
        let recorder = Arc::new(RecordingObserver::default());
        let sink = EventSink::new(recorder.clone());
        let clone = sink.clone();
        clone.emit(PipelineEvent::StageStarted { stage: "b" });
        assert_eq!(recorder.take().len(), 1);
    }

    #[test]
    fn debug_formats_by_activity() {
        assert_eq!(format!("{:?}", EventSink::null()), "EventSink(null)");
        let sink = EventSink::new(Arc::new(RecordingObserver::default()));
        assert_eq!(format!("{sink:?}"), "EventSink(active)");
    }
}
