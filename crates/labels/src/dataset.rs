//! Conversion of labelled DFGs into GNN training samples, the
//! per-accelerator training-set container, and the `lisa-dataset v1`
//! checkpoint format for label-generation output.
//!
//! # The `lisa-dataset v1` format
//!
//! Label generation is the time-dominant one-off step of porting LISA to
//! a new accelerator (§V-B), so its output persists incrementally: a
//! [`DatasetWriter`] appends one self-contained entry per DFG and flushes
//! it immediately, and a run killed mid-generation leaves a prefix that
//! [`parse_dataset_partial`] recovers losslessly. The layout follows the
//! sectioned `lisa-model v1` style:
//!
//! ```text
//! lisa-dataset v1
//! accelerator 4x4
//! count 12
//!
//! entry 0
//! lisa-dfg v1
//! ...
//! end dfg
//! labels
//! best_ii 3
//! mii 2
//! candidates 4
//! schedule_order 0.0 1.0 ...
//! same_level 1
//! sl 0 1 1.5
//! spatial 1.0 ...
//! temporal 1.0 ...
//! end labels
//! end entry
//! ```
//!
//! Unmappable DFGs record a single `unmappable` line in place of the
//! `labels` section. Floats use Rust's shortest-round-trip `{:?}`
//! formatting, so parse → re-serialize reproduces the original bytes —
//! the property the resume path relies on for byte-identical checkpoint
//! rewrites.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use lisa_dfg::text::{parse_dfg_lines, write_dfg_into, ParseDfgError};
use lisa_dfg::{Dfg, NodeId};
use lisa_gnn::dataset::{ContextEdgeSample, EdgeSample, NodeGraphSample};
use lisa_mapper::GuidanceLabels;

use crate::attributes::DfgAttributes;
use crate::iter_gen::GeneratedLabels;

/// The full training set of one accelerator, split per label network.
#[derive(Debug, Clone, Default)]
pub struct TrainingSet {
    /// Whole-graph samples for the schedule-order GNN (label 1).
    pub node_graphs: Vec<NodeGraphSample>,
    /// Dummy-edge samples for the same-level MLP (label 2).
    pub same_level: Vec<EdgeSample>,
    /// Context samples for the spatial-distance network (label 3).
    pub spatial: Vec<ContextEdgeSample>,
    /// Edge samples for the temporal-distance MLP (label 4).
    pub temporal: Vec<EdgeSample>,
}

impl TrainingSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TrainingSet::default()
    }

    /// Appends all samples derived from one labelled DFG.
    ///
    /// # Panics
    ///
    /// Panics if the labels do not match the DFG's shape.
    pub fn push(&mut self, dfg: &Dfg, labels: &GuidanceLabels) {
        assert!(labels.matches(dfg), "labels do not match the DFG");
        let attrs = DfgAttributes::generate(dfg);

        self.node_graphs.push(NodeGraphSample {
            node_attrs: attrs.node.clone(),
            neighbors: DfgAttributes::adjacency(dfg),
            targets: labels.schedule_order.clone(),
        });

        // Dummy edges come back in the same canonical order the labels use
        // (both derive from `same_level::dummy_edges`).
        debug_assert_eq!(attrs.dummy_edges.len(), labels.same_level.len());
        for (i, (d, &(a, b, target))) in
            attrs.dummy_edges.iter().zip(&labels.same_level).enumerate()
        {
            debug_assert_eq!((d.a, d.b), (a, b), "dummy edge order mismatch");
            self.same_level.push(EdgeSample {
                attrs: attrs.dummy[i].clone(),
                target,
            });
        }

        for e in dfg.edge_ids() {
            self.spatial.push(ContextEdgeSample {
                attrs: attrs.edge[e.index()].clone(),
                neighbor_attrs: attrs.edge_neighborhood(dfg, e),
                target: labels.spatial[e.index()],
            });
            self.temporal.push(EdgeSample {
                attrs: attrs.edge[e.index()].clone(),
                target: labels.temporal[e.index()],
            });
        }
    }

    /// Number of contributing DFGs.
    pub fn graph_count(&self) -> usize {
        self.node_graphs.len()
    }

    /// Whether the set holds any samples at all.
    pub fn is_empty(&self) -> bool {
        self.node_graphs.is_empty()
    }
}

/// Header line of the labelled-dataset format.
pub const DATASET_HEADER: &str = "lisa-dataset v1";

/// One checkpointed label-generation outcome: the source DFG plus its
/// labels (`None` when no round produced a complete mapping).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetEntry {
    /// The DFG the labels were generated for.
    pub dfg: Dfg,
    /// The generation outcome; `None` marks an unmappable DFG.
    pub outcome: Option<GeneratedLabels>,
}

/// Why a `lisa-dataset v1` document failed to parse.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetParseError {
    /// The first line was not `lisa-dataset v1`.
    BadHeader,
    /// A structural line did not match its expected shape.
    BadLine {
        /// The offending line, verbatim.
        line: String,
    },
    /// An embedded DFG block failed to parse.
    Dfg(ParseDfgError),
    /// A `labels` section disagreed with its DFG's node/edge counts.
    LabelShapeMismatch {
        /// Index of the offending entry.
        entry: usize,
    },
    /// The document ended before the structure was complete.
    UnexpectedEof,
    /// Fewer or more entries than the header's `count` declared.
    CountMismatch {
        /// Count declared in the header.
        declared: usize,
        /// Entries actually present.
        found: usize,
    },
    /// Non-blank content followed the final entry.
    TrailingContent {
        /// The first unexpected line.
        line: String,
    },
}

impl fmt::Display for DatasetParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetParseError::BadHeader => {
                write!(f, "missing `{DATASET_HEADER}` header")
            }
            DatasetParseError::BadLine { line } => write!(f, "malformed line: `{line}`"),
            DatasetParseError::Dfg(e) => write!(f, "embedded DFG: {e}"),
            DatasetParseError::LabelShapeMismatch { entry } => {
                write!(f, "entry {entry}: labels do not match the DFG shape")
            }
            DatasetParseError::UnexpectedEof => write!(f, "unexpected end of input"),
            DatasetParseError::CountMismatch { declared, found } => {
                write!(f, "header declares {declared} entries but {found} present")
            }
            DatasetParseError::TrailingContent { line } => {
                write!(f, "unexpected content after final entry: `{line}`")
            }
        }
    }
}

impl std::error::Error for DatasetParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetParseError::Dfg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseDfgError> for DatasetParseError {
    fn from(e: ParseDfgError) -> Self {
        DatasetParseError::Dfg(e)
    }
}

/// A parsed (possibly partial) `lisa-dataset v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Accelerator the labels were generated for.
    pub accelerator: String,
    /// Total entry count the producing run planned.
    pub declared_count: usize,
    /// The entries present, in DFG-index order.
    pub entries: Vec<DatasetEntry>,
}

impl Dataset {
    /// Whether every planned entry is present.
    pub fn is_complete(&self) -> bool {
        self.entries.len() == self.declared_count
    }
}

/// Serializes the dataset header.
pub fn write_dataset_header(accelerator: &str, count: usize) -> String {
    format!("{DATASET_HEADER}\naccelerator {accelerator}\ncount {count}\n")
}

/// Appends one entry block (preceded by a blank separator line) to `out`.
pub fn write_entry_into(out: &mut String, index: usize, entry: &DatasetEntry) {
    out.push('\n');
    out.push_str(&format!("entry {index}\n"));
    write_dfg_into(out, &entry.dfg);
    match &entry.outcome {
        None => out.push_str("unmappable\n"),
        Some(generated) => {
            out.push_str("labels\n");
            out.push_str(&format!("best_ii {}\n", generated.best_ii));
            out.push_str(&format!("mii {}\n", generated.mii));
            out.push_str(&format!("candidates {}\n", generated.candidate_count));
            push_f64_line(out, "schedule_order", &generated.labels.schedule_order);
            out.push_str(&format!(
                "same_level {}\n",
                generated.labels.same_level.len()
            ));
            for (a, b, v) in &generated.labels.same_level {
                out.push_str(&format!("sl {} {} {v:?}\n", a.index(), b.index()));
            }
            push_f64_line(out, "spatial", &generated.labels.spatial);
            push_f64_line(out, "temporal", &generated.labels.temporal);
            out.push_str("end labels\n");
        }
    }
    out.push_str("end entry\n");
}

/// Serializes a whole dataset (header plus every entry).
pub fn write_dataset(dataset: &Dataset) -> String {
    let mut out = write_dataset_header(&dataset.accelerator, dataset.declared_count);
    for (i, entry) in dataset.entries.iter().enumerate() {
        write_entry_into(&mut out, i, entry);
    }
    out
}

fn push_f64_line(out: &mut String, key: &str, values: &[f64]) {
    out.push_str(key);
    for v in values {
        out.push(' ');
        out.push_str(&format!("{v:?}"));
    }
    out.push('\n');
}

/// Incremental checkpoint writer: every appended entry reaches the file
/// before `append` returns, so a killed run loses at most the entry being
/// written.
#[derive(Debug)]
pub struct DatasetWriter {
    file: File,
    written: usize,
}

impl DatasetWriter {
    /// Creates (truncating) the dataset file and writes its header.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn create(path: &Path, accelerator: &str, count: usize) -> io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(write_dataset_header(accelerator, count).as_bytes())?;
        file.flush()?;
        Ok(DatasetWriter { file, written: 0 })
    }

    /// Reopens a dataset checkpoint for appending after `entries` were
    /// recovered from it, without ever holding the file in a destroyed
    /// state.
    ///
    /// The expected on-disk prefix (header plus the recovered entries) is
    /// re-serialized — byte-identical, thanks to shortest-round-trip float
    /// formatting. If the existing file starts with exactly those bytes,
    /// the file is truncated to the prefix length in place, dropping only
    /// the torn tail a killed writer left behind. Otherwise (file missing,
    /// or bytes that disagree with the recovered entries) the prefix is
    /// written to a `.tmp` sibling, synced, and atomically renamed over
    /// the target. Either way a crash at any instant leaves a file whose
    /// complete leading entries are recoverable — never a truncated-then-
    /// partially-rewritten checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn resume(
        path: &Path,
        accelerator: &str,
        count: usize,
        entries: &[DatasetEntry],
    ) -> io::Result<Self> {
        let mut prefix = write_dataset_header(accelerator, count);
        for (i, entry) in entries.iter().enumerate() {
            write_entry_into(&mut prefix, i, entry);
        }
        let prefix = prefix.into_bytes();

        let existing = match fs::read(path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        if let Some(bytes) = existing {
            if bytes.len() >= prefix.len() && bytes[..prefix.len()] == prefix[..] {
                // In append mode every write lands at the (new) end, so
                // truncating the torn tail is the only mutation needed.
                let file = OpenOptions::new().append(true).open(path)?;
                file.set_len(prefix.len() as u64)?;
                return Ok(DatasetWriter {
                    file,
                    written: entries.len(),
                });
            }
        }

        let tmp = path.with_extension("tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&prefix)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(DatasetWriter {
            file,
            written: entries.len(),
        })
    }

    /// Appends and flushes one entry.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append(&mut self, entry: &DatasetEntry) -> io::Result<()> {
        let mut block = String::new();
        write_entry_into(&mut block, self.written, entry);
        self.file.write_all(block.as_bytes())?;
        self.file.flush()?;
        self.written += 1;
        Ok(())
    }

    /// How many entries have been appended.
    pub fn written(&self) -> usize {
        self.written
    }
}

/// Strict parse: requires exactly `count` well-formed entries and nothing
/// after them.
///
/// # Errors
///
/// Returns a [`DatasetParseError`] describing the first problem.
pub fn parse_dataset(text: &str) -> Result<Dataset, DatasetParseError> {
    let (dataset, leftover) = parse_prefix(text, false)?;
    if let Some(line) = leftover {
        return Err(DatasetParseError::TrailingContent { line });
    }
    if !dataset.is_complete() {
        return Err(DatasetParseError::CountMismatch {
            declared: dataset.declared_count,
            found: dataset.entries.len(),
        });
    }
    Ok(dataset)
}

/// Lenient parse for resume: returns every complete leading entry and
/// silently drops a truncated tail (the artifact of a killed writer).
/// Only the header must be intact.
///
/// # Errors
///
/// Returns a [`DatasetParseError`] when the three header lines are
/// malformed.
pub fn parse_dataset_partial(text: &str) -> Result<Dataset, DatasetParseError> {
    parse_prefix(text, true).map(|(dataset, _)| dataset)
}

/// Shared parsing loop. In lenient mode the first malformed entry ends
/// the parse (truncation); in strict mode it is an error. Returns the
/// first unconsumed non-blank line, if any.
fn parse_prefix(text: &str, lenient: bool) -> Result<(Dataset, Option<String>), DatasetParseError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(DatasetParseError::UnexpectedEof)?;
    if header.trim_end() != DATASET_HEADER {
        return Err(DatasetParseError::BadHeader);
    }
    let acc_line = lines.next().ok_or(DatasetParseError::UnexpectedEof)?;
    let accelerator = acc_line
        .strip_prefix("accelerator ")
        .ok_or_else(|| DatasetParseError::BadLine {
            line: acc_line.to_string(),
        })?
        .to_string();
    let count_line = lines.next().ok_or(DatasetParseError::UnexpectedEof)?;
    let declared_count: usize = count_line
        .strip_prefix("count ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| DatasetParseError::BadLine {
            line: count_line.to_string(),
        })?;

    let mut entries = Vec::new();
    let leftover = loop {
        let Some(first) = lines.by_ref().find(|l| !l.trim().is_empty()) else {
            break None;
        };
        match parse_entry(first, &mut lines, entries.len()) {
            Ok(entry) => entries.push(entry),
            Err(e) if lenient => {
                let _ = e; // truncated tail: drop it
                break None;
            }
            Err(e) => return Err(e),
        }
    };
    Ok((
        Dataset {
            accelerator,
            declared_count,
            entries,
        },
        leftover,
    ))
}

/// Parses one entry whose `entry <i>` line has already been consumed as
/// `first`.
fn parse_entry<'a, I>(
    first: &'a str,
    lines: &mut I,
    index: usize,
) -> Result<DatasetEntry, DatasetParseError>
where
    I: Iterator<Item = &'a str>,
{
    let declared: usize = first
        .strip_prefix("entry ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| DatasetParseError::BadLine {
            line: first.to_string(),
        })?;
    if declared != index {
        return Err(DatasetParseError::BadLine {
            line: first.to_string(),
        });
    }
    let dfg = parse_dfg_lines(lines)?;
    let marker = lines.next().ok_or(DatasetParseError::UnexpectedEof)?;
    let outcome = match marker.trim_end() {
        "unmappable" => None,
        "labels" => Some(parse_labels_section(lines, &dfg, index)?),
        _ => {
            return Err(DatasetParseError::BadLine {
                line: marker.to_string(),
            })
        }
    };
    let trailer = lines.next().ok_or(DatasetParseError::UnexpectedEof)?;
    if trailer.trim_end() != "end entry" {
        return Err(DatasetParseError::BadLine {
            line: trailer.to_string(),
        });
    }
    Ok(DatasetEntry { dfg, outcome })
}

fn parse_labels_section<'a, I>(
    lines: &mut I,
    dfg: &Dfg,
    entry: usize,
) -> Result<GeneratedLabels, DatasetParseError>
where
    I: Iterator<Item = &'a str>,
{
    let best_ii = parse_keyed_int(lines.next(), "best_ii")? as u32;
    let mii = parse_keyed_int(lines.next(), "mii")? as u32;
    let candidate_count = parse_keyed_int(lines.next(), "candidates")?;
    let schedule_order = parse_f64_line(lines.next(), "schedule_order")?;
    let same_level_count = parse_keyed_int(lines.next(), "same_level")?;
    let mut same_level = Vec::with_capacity(same_level_count);
    for _ in 0..same_level_count {
        let line = lines.next().ok_or(DatasetParseError::UnexpectedEof)?;
        let bad = || DatasetParseError::BadLine {
            line: line.to_string(),
        };
        let parts: Vec<&str> = line
            .strip_prefix("sl ")
            .ok_or_else(bad)?
            .split(' ')
            .collect();
        if parts.len() != 3 {
            return Err(bad());
        }
        let a: usize = parts[0].parse().map_err(|_| bad())?;
        let b: usize = parts[1].parse().map_err(|_| bad())?;
        let v: f64 = parts[2].parse().map_err(|_| bad())?;
        same_level.push((NodeId::new(a), NodeId::new(b), v));
    }
    let spatial = parse_f64_line(lines.next(), "spatial")?;
    let temporal = parse_f64_line(lines.next(), "temporal")?;
    let trailer = lines.next().ok_or(DatasetParseError::UnexpectedEof)?;
    if trailer.trim_end() != "end labels" {
        return Err(DatasetParseError::BadLine {
            line: trailer.to_string(),
        });
    }
    let labels = GuidanceLabels {
        schedule_order,
        same_level,
        spatial,
        temporal,
    };
    if !labels.matches(dfg) {
        return Err(DatasetParseError::LabelShapeMismatch { entry });
    }
    Ok(GeneratedLabels {
        labels,
        best_ii,
        mii,
        candidate_count,
    })
}

fn parse_keyed_int(line: Option<&str>, key: &'static str) -> Result<usize, DatasetParseError> {
    let line = line.ok_or(DatasetParseError::UnexpectedEof)?;
    line.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix(' '))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| DatasetParseError::BadLine {
            line: line.to_string(),
        })
}

fn parse_f64_line(line: Option<&str>, key: &'static str) -> Result<Vec<f64>, DatasetParseError> {
    let line = line.ok_or(DatasetParseError::UnexpectedEof)?;
    let rest = line
        .strip_prefix(key)
        .ok_or_else(|| DatasetParseError::BadLine {
            line: line.to_string(),
        })?;
    rest.split_whitespace()
        .map(|s| {
            s.parse().map_err(|_| DatasetParseError::BadLine {
                line: line.to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::polybench;

    #[test]
    fn push_produces_consistent_samples() {
        let dfg = polybench::kernel("gemm").unwrap();
        let labels = GuidanceLabels::initial(&dfg);
        let mut set = TrainingSet::new();
        set.push(&dfg, &labels);
        assert_eq!(set.graph_count(), 1);
        assert!(set.node_graphs[0].is_consistent());
        assert_eq!(set.temporal.len(), dfg.edge_count());
        assert_eq!(set.spatial.len(), dfg.edge_count());
        assert_eq!(set.same_level.len(), labels.same_level.len());
        // Every spatial sample carries a non-empty neighbourhood (the edge
        // itself is always included).
        assert!(set.spatial.iter().all(|s| !s.neighbor_attrs.is_empty()));
    }

    #[test]
    fn multiple_dfgs_accumulate() {
        let mut set = TrainingSet::new();
        for name in ["gemm", "mvt", "atax"] {
            let dfg = polybench::kernel(name).unwrap();
            let labels = GuidanceLabels::initial(&dfg);
            set.push(&dfg, &labels);
        }
        assert_eq!(set.graph_count(), 3);
        assert!(!set.is_empty());
        assert!(set.temporal.len() > 40);
    }

    #[test]
    #[should_panic(expected = "labels do not match")]
    fn mismatched_labels_panic() {
        let dfg = polybench::kernel("gemm").unwrap();
        let other = polybench::kernel("syr2k").unwrap();
        let labels = GuidanceLabels::initial(&other);
        TrainingSet::new().push(&dfg, &labels);
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;
    use lisa_dfg::random::{generate_random_dfg, RandomDfgConfig};
    use lisa_rng::Rng;

    /// Synthetic labels with non-trivial float values, derived
    /// deterministically from a seed.
    fn fake_outcome(dfg: &Dfg, seed: u64) -> GeneratedLabels {
        let mut rng = Rng::seed_from_u64(seed);
        let mut labels = GuidanceLabels::initial(dfg);
        for v in labels
            .schedule_order
            .iter_mut()
            .chain(labels.spatial.iter_mut())
            .chain(labels.temporal.iter_mut())
        {
            *v = rng.gen_range(0.0..10.0);
        }
        for (_, _, v) in &mut labels.same_level {
            *v = rng.gen_range(0.0..5.0);
        }
        GeneratedLabels {
            labels,
            best_ii: rng.gen_range(1u32..8),
            mii: 1,
            candidate_count: rng.gen_range(1usize..5),
        }
    }

    fn sample_dataset(seed: u64, count: usize) -> Dataset {
        let cfg = RandomDfgConfig::default();
        let entries: Vec<DatasetEntry> = (0..count)
            .map(|i| {
                let dfg = generate_random_dfg(&cfg, seed + i as u64);
                let outcome = (i % 3 != 2).then(|| fake_outcome(&dfg, seed ^ i as u64));
                DatasetEntry { dfg, outcome }
            })
            .collect();
        Dataset {
            accelerator: "4x4".to_string(),
            declared_count: count,
            entries,
        }
    }

    #[test]
    fn dataset_round_trips() {
        let ds = sample_dataset(11, 5);
        let text = write_dataset(&ds);
        assert_eq!(parse_dataset(&text).unwrap(), ds);
    }

    #[test]
    fn reserialization_is_byte_identical() {
        let ds = sample_dataset(23, 4);
        let text = write_dataset(&ds);
        let reparsed = parse_dataset(&text).unwrap();
        assert_eq!(write_dataset(&reparsed), text);
    }

    #[test]
    fn writer_matches_whole_document_serialization() {
        let ds = sample_dataset(5, 3);
        let dir = std::env::temp_dir().join("lisa_dataset_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.lisa-dataset");
        let mut writer = DatasetWriter::create(&path, &ds.accelerator, ds.declared_count).unwrap();
        for entry in &ds.entries {
            writer.append(entry).unwrap();
        }
        assert_eq!(writer.written(), 3);
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, write_dataset(&ds));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_truncates_only_the_torn_tail_in_place() {
        let ds = sample_dataset(31, 4);
        let dir = std::env::temp_dir().join("lisa_dataset_resume_tail");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.lisa-dataset");

        // A killed writer leaves complete entries plus a torn last block.
        let mut writer = DatasetWriter::create(&path, &ds.accelerator, ds.declared_count).unwrap();
        for entry in &ds.entries[..2] {
            writer.append(entry).unwrap();
        }
        drop(writer);
        let mut torn = String::new();
        write_entry_into(&mut torn, 2, &ds.entries[2]);
        let torn = &torn[..torn.len() / 2];
        let complete = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{complete}{torn}")).unwrap();

        let recovered = parse_dataset_partial(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(recovered.entries.len(), 2);
        let mut writer = DatasetWriter::resume(
            &path,
            &ds.accelerator,
            ds.declared_count,
            &recovered.entries,
        )
        .unwrap();
        // The torn tail is gone; the complete prefix survived in place
        // and was never routed through a temp file.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), complete);
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(writer.written(), 2);
        for entry in &ds.entries[2..] {
            writer.append(entry).unwrap();
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), write_dataset(&ds));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_replaces_a_disagreeing_file_atomically() {
        let ds = sample_dataset(37, 3);
        let dir = std::env::temp_dir().join("lisa_dataset_resume_rewrite");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.lisa-dataset");
        std::fs::write(&path, "lisa-dataset v1\naccelerator 4x4\ncount 99\n").unwrap();

        let mut writer =
            DatasetWriter::resume(&path, &ds.accelerator, ds.declared_count, &ds.entries[..1])
                .unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp file left behind");
        for entry in &ds.entries[1..] {
            writer.append(entry).unwrap();
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), write_dataset(&ds));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_creates_a_missing_file() {
        let ds = sample_dataset(41, 2);
        let dir = std::env::temp_dir().join("lisa_dataset_resume_fresh");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.lisa-dataset");
        let mut writer =
            DatasetWriter::resume(&path, &ds.accelerator, ds.declared_count, &[]).unwrap();
        assert_eq!(writer.written(), 0);
        for entry in &ds.entries {
            writer.append(entry).unwrap();
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), write_dataset(&ds));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strict_parse_rejects_truncation() {
        let ds = sample_dataset(7, 3);
        let text = write_dataset(&ds);
        let cut = &text[..text.len() * 2 / 3];
        let cut = &cut[..cut.rfind('\n').unwrap() + 1];
        assert!(parse_dataset(cut).is_err());
    }

    #[test]
    fn partial_parse_recovers_complete_prefix() {
        let ds = sample_dataset(7, 4);
        let text = write_dataset(&ds);
        // Cut in the middle of the last entry.
        let last_entry = text.rfind("entry 3").unwrap();
        let cut = &text[..last_entry + 40];
        let recovered = parse_dataset_partial(cut).unwrap();
        assert!(!recovered.is_complete());
        assert_eq!(recovered.declared_count, 4);
        assert_eq!(recovered.entries, ds.entries[..3]);
    }

    #[test]
    fn partial_parse_of_header_only_is_empty() {
        let text = write_dataset_header("4x4", 9);
        let ds = parse_dataset_partial(&text).unwrap();
        assert_eq!(ds.declared_count, 9);
        assert!(ds.entries.is_empty());
    }

    #[test]
    fn bad_header_rejected_even_leniently() {
        assert_eq!(
            parse_dataset_partial("lisa-dataset v2\n"),
            Err(DatasetParseError::BadHeader)
        );
    }

    #[test]
    fn label_shape_mismatch_rejected() {
        let ds = sample_dataset(3, 1);
        let text = write_dataset(&ds);
        // Drop one schedule-order value: the vector no longer matches the
        // DFG's node count.
        let line_start = text.find("schedule_order ").unwrap();
        let line_end = text[line_start..].find('\n').unwrap() + line_start;
        let line = &text[line_start..line_end];
        let shortened = &line[..line.rfind(' ').unwrap()];
        let mutated = text.replace(line, shortened);
        assert!(matches!(
            parse_dataset(&mutated),
            Err(DatasetParseError::LabelShapeMismatch { entry: 0 })
        ));
    }

    #[test]
    fn count_mismatch_rejected_strictly() {
        let ds = sample_dataset(9, 2);
        let text = write_dataset(&ds).replace("count 2", "count 5");
        assert_eq!(
            parse_dataset(&text),
            Err(DatasetParseError::CountMismatch {
                declared: 5,
                found: 2
            })
        );
    }

    #[test]
    fn errors_display() {
        let err = DatasetParseError::LabelShapeMismatch { entry: 4 };
        assert!(err.to_string().contains("entry 4"));
    }

    lisa_rng::props! {
        cases = 24;

        /// Random datasets survive a full write/parse round trip, and
        /// re-serializing reproduces the exact bytes.
        fn datasets_round_trip(seed in 0u64..1_000_000, count in 1usize..5) {
            let ds = sample_dataset(seed, count);
            let text = write_dataset(&ds);
            let parsed = parse_dataset(&text).unwrap();
            assert_eq!(parsed, ds);
            assert_eq!(write_dataset(&parsed), text);
        }

        /// Cutting the document at any line boundary leaves a parseable
        /// prefix whose entries match the originals exactly.
        fn truncation_recovers_a_prefix(seed in 0u64..100_000, frac in 0.1f64..1.0) {
            let ds = sample_dataset(seed, 4);
            let text = write_dataset(&ds);
            let cut_at = ((text.len() as f64) * frac) as usize;
            let prefix = &text[..cut_at];
            let prefix = &prefix[..prefix.rfind('\n').map_or(0, |i| i + 1)];
            if prefix.is_empty() || parse_dataset_partial(prefix).is_err() {
                // Header itself truncated: nothing to recover.
                return;
            }
            let recovered = parse_dataset_partial(prefix).unwrap();
            assert!(recovered.entries.len() <= ds.entries.len());
            assert_eq!(recovered.entries, ds.entries[..recovered.entries.len()]);
        }
    }
}
