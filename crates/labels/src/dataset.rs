//! Conversion of labelled DFGs into GNN training samples, and the
//! per-accelerator training-set container.

use lisa_dfg::Dfg;
use lisa_gnn::dataset::{ContextEdgeSample, EdgeSample, NodeGraphSample};
use lisa_mapper::GuidanceLabels;

use crate::attributes::DfgAttributes;

/// The full training set of one accelerator, split per label network.
#[derive(Debug, Clone, Default)]
pub struct TrainingSet {
    /// Whole-graph samples for the schedule-order GNN (label 1).
    pub node_graphs: Vec<NodeGraphSample>,
    /// Dummy-edge samples for the same-level MLP (label 2).
    pub same_level: Vec<EdgeSample>,
    /// Context samples for the spatial-distance network (label 3).
    pub spatial: Vec<ContextEdgeSample>,
    /// Edge samples for the temporal-distance MLP (label 4).
    pub temporal: Vec<EdgeSample>,
}

impl TrainingSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TrainingSet::default()
    }

    /// Appends all samples derived from one labelled DFG.
    ///
    /// # Panics
    ///
    /// Panics if the labels do not match the DFG's shape.
    pub fn push(&mut self, dfg: &Dfg, labels: &GuidanceLabels) {
        assert!(labels.matches(dfg), "labels do not match the DFG");
        let attrs = DfgAttributes::generate(dfg);

        self.node_graphs.push(NodeGraphSample {
            node_attrs: attrs.node.clone(),
            neighbors: DfgAttributes::adjacency(dfg),
            targets: labels.schedule_order.clone(),
        });

        // Dummy edges come back in the same canonical order the labels use
        // (both derive from `same_level::dummy_edges`).
        debug_assert_eq!(attrs.dummy_edges.len(), labels.same_level.len());
        for (i, (d, &(a, b, target))) in
            attrs.dummy_edges.iter().zip(&labels.same_level).enumerate()
        {
            debug_assert_eq!((d.a, d.b), (a, b), "dummy edge order mismatch");
            self.same_level.push(EdgeSample {
                attrs: attrs.dummy[i].clone(),
                target,
            });
        }

        for e in dfg.edge_ids() {
            self.spatial.push(ContextEdgeSample {
                attrs: attrs.edge[e.index()].clone(),
                neighbor_attrs: attrs.edge_neighborhood(dfg, e),
                target: labels.spatial[e.index()],
            });
            self.temporal.push(EdgeSample {
                attrs: attrs.edge[e.index()].clone(),
                target: labels.temporal[e.index()],
            });
        }
    }

    /// Number of contributing DFGs.
    pub fn graph_count(&self) -> usize {
        self.node_graphs.len()
    }

    /// Whether the set holds any samples at all.
    pub fn is_empty(&self) -> bool {
        self.node_graphs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::polybench;

    #[test]
    fn push_produces_consistent_samples() {
        let dfg = polybench::kernel("gemm").unwrap();
        let labels = GuidanceLabels::initial(&dfg);
        let mut set = TrainingSet::new();
        set.push(&dfg, &labels);
        assert_eq!(set.graph_count(), 1);
        assert!(set.node_graphs[0].is_consistent());
        assert_eq!(set.temporal.len(), dfg.edge_count());
        assert_eq!(set.spatial.len(), dfg.edge_count());
        assert_eq!(set.same_level.len(), labels.same_level.len());
        // Every spatial sample carries a non-empty neighbourhood (the edge
        // itself is always included).
        assert!(set.spatial.iter().all(|s| !s.neighbor_attrs.is_empty()));
    }

    #[test]
    fn multiple_dfgs_accumulate() {
        let mut set = TrainingSet::new();
        for name in ["gemm", "mvt", "atax"] {
            let dfg = polybench::kernel(name).unwrap();
            let labels = GuidanceLabels::initial(&dfg);
            set.push(&dfg, &labels);
        }
        assert_eq!(set.graph_count(), 3);
        assert!(!set.is_empty());
        assert!(set.temporal.len() > 40);
    }

    #[test]
    #[should_panic(expected = "labels do not match")]
    fn mismatched_labels_panic() {
        let dfg = polybench::kernel("gemm").unwrap();
        let other = polybench::kernel("syr2k").unwrap();
        let labels = GuidanceLabels::initial(&other);
        TrainingSet::new().push(&dfg, &labels);
    }
}
