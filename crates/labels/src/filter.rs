//! The label filter of paper §V-C.
//!
//! Not every generated label is worth training on: "We use a metric
//! e = O + σ × N, where O represents how close the execution time of
//! label-corresponding mapping is to the theoretical minimal execution
//! time, N represents the number of candidate labels, and σ is a
//! customized factor. [...] As long as we get the minimum II for a DFG,
//! only one candidate label is sufficient to be used as training data."

use crate::iter_gen::GeneratedLabels;

/// Filter configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// The σ weight on the candidate count.
    pub sigma: f64,
    /// Minimum `e` for inclusion.
    pub threshold: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            sigma: 0.1,
            threshold: 0.9,
        }
    }
}

/// Closeness of the achieved II to the theoretical minimum: `MII / II`,
/// in (0, 1], higher is better.
pub fn optimality(gen: &GeneratedLabels) -> f64 {
    f64::from(gen.mii) / f64::from(gen.best_ii.max(1))
}

/// The paper's quality metric `e = O + σ·N`.
pub fn quality(gen: &GeneratedLabels, config: &FilterConfig) -> f64 {
    optimality(gen) + config.sigma * gen.candidate_count as f64
}

/// Whether the generated labels enter the training set.
///
/// Optimal mappings (`II == MII`) are always kept, even with a single
/// candidate; otherwise the metric must clear the threshold.
pub fn accept(gen: &GeneratedLabels, config: &FilterConfig) -> bool {
    gen.best_ii == gen.mii || quality(gen, config) >= config.threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::polybench;
    use lisa_mapper::GuidanceLabels;

    fn gen(best_ii: u32, mii: u32, candidates: usize) -> GeneratedLabels {
        let dfg = polybench::kernel("doitgen").unwrap();
        GeneratedLabels {
            labels: GuidanceLabels::initial(&dfg),
            best_ii,
            mii,
            candidate_count: candidates,
        }
    }

    #[test]
    fn optimal_mapping_always_accepted() {
        let g = gen(2, 2, 1);
        assert!(accept(&g, &FilterConfig::default()));
        assert!((optimality(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn far_from_optimal_with_few_candidates_rejected() {
        // II 8 vs MII 2: O = 0.25; one candidate: e = 0.35 < 0.9.
        let g = gen(8, 2, 1);
        assert!(!accept(&g, &FilterConfig::default()));
    }

    #[test]
    fn many_candidates_can_compensate() {
        // O = 0.5, 5 candidates: e = 1.0 >= 0.9.
        let g = gen(4, 2, 5);
        assert!(accept(&g, &FilterConfig::default()));
    }

    #[test]
    fn threshold_is_configurable() {
        let g = gen(4, 2, 2); // e = 0.7
        assert!(!accept(&g, &FilterConfig::default()));
        let loose = FilterConfig {
            sigma: 0.1,
            threshold: 0.6,
        };
        assert!(accept(&g, &loose));
    }
}
