//! Iterative label generation for GNN training data (paper §V-B).
//!
//! For each raw DFG: initialise labels, map with the *partial* label-aware
//! SA (labels steer only the initial mapping), extract labels from the
//! result, and iterate. Labels are only updated when the new mapping is
//! better (lower II, or equal II with lower routing cost); otherwise the
//! previous labels drive the next round. Every successful round yields a
//! *candidate* label set; the final label combines the candidates that
//! achieve the minimum II with routing cost within 1.15× of the best.

use std::time::Duration;

use lisa_arch::Accelerator;
use lisa_dfg::Dfg;
use lisa_events::{EventSink, LabelGenResult, PipelineEvent};
use lisa_mapper::schedule::{mii, IiSearch};
use lisa_mapper::{GuidanceLabels, LabelSaMapper, SaParams};

use crate::extract::{average_labels, labels_from_mapping};

/// Routing-cost slack for the second candidate-selection round
/// ("if the routing cost is less than 1.15x of the routing cost of the
/// standard one, the label is a candidate", §V-B).
pub const ROUTING_COST_SLACK: f64 = 1.15;

/// Configuration of the iterative generator.
#[derive(Debug, Clone, PartialEq)]
pub struct IterGenConfig {
    /// Mapping rounds per DFG.
    pub rounds: usize,
    /// Annealer parameters for the partial label-aware SA.
    pub sa: SaParams,
    /// Cap on the II search (keeps the one-off generation bounded).
    pub max_ii: Option<u32>,
    /// Worker threads for each round's speculative II search. Results are
    /// byte-identical for every value. Defaults to 1: the framework
    /// already fans out across DFGs, and nesting thread pools would
    /// oversubscribe; raise it when generating labels for a single DFG.
    pub parallelism: usize,
    /// Base RNG seed; each round perturbs it.
    pub seed: u64,
}

impl Default for IterGenConfig {
    fn default() -> Self {
        IterGenConfig {
            rounds: 5,
            sa: SaParams::paper(),
            max_ii: None,
            parallelism: 1,
            seed: 0xBADCAFE,
        }
    }
}

impl IterGenConfig {
    /// Reduced budget for tests.
    pub fn fast() -> Self {
        IterGenConfig {
            rounds: 3,
            sa: SaParams {
                time_limit: Duration::from_millis(500),
                ..SaParams::fast()
            },
            max_ii: Some(8),
            parallelism: 1,
            seed: 7,
        }
    }
}

/// One candidate label set with the quality of its source mapping.
#[derive(Debug, Clone)]
pub struct LabelCandidate {
    /// The extracted labels.
    pub labels: GuidanceLabels,
    /// II achieved by the mapping the labels came from.
    pub ii: u32,
    /// Routing cells used by that mapping.
    pub routing_cost: usize,
}

/// Result of the iterative generation for one DFG.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedLabels {
    /// The combined final labels (average of selected candidates).
    pub labels: GuidanceLabels,
    /// Best II achieved across rounds.
    pub best_ii: u32,
    /// Theoretical minimum II of the (DFG, accelerator) pair.
    pub mii: u32,
    /// Number of candidates that survived both selection rounds.
    pub candidate_count: usize,
}

/// Runs the iterative generator for one DFG on one accelerator.
///
/// Returns `None` when no round produced a complete mapping — such DFGs
/// cannot contribute training labels (the filter would reject them
/// anyway).
pub fn generate_labels(
    dfg: &Dfg,
    acc: &Accelerator,
    config: &IterGenConfig,
) -> Option<GeneratedLabels> {
    generate_labels_with(dfg, acc, config, 0, &EventSink::null())
}

/// Like [`generate_labels`], emitting a [`PipelineEvent::LabelGenRound`]
/// per mapping round and a closing [`PipelineEvent::LabelGenFinished`] to
/// `sink`, all tagged with `dfg_index`. The sink is also threaded into the
/// underlying annealer, so an active observer additionally sees
/// [`PipelineEvent::SaSnapshot`]s. Events are pure observations: the
/// result is identical to [`generate_labels`] (pinned by test).
pub fn generate_labels_with(
    dfg: &Dfg,
    acc: &Accelerator,
    config: &IterGenConfig,
    dfg_index: usize,
    sink: &EventSink,
) -> Option<GeneratedLabels> {
    let mut current = GuidanceLabels::initial(dfg);
    let mut candidates: Vec<LabelCandidate> = Vec::new();
    let mut best: Option<(u32, usize)> = None;

    for round in 0..config.rounds {
        let seed = config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(round as u64);
        let mapper = LabelSaMapper::initial_only(current.clone(), config.sa.clone(), seed)
            .with_observer(sink.clone());
        let search = IiSearch {
            max_ii: config.max_ii,
        };
        let (outcome, mapping) = search.run_with_mapping_par(&mapper, dfg, acc, config.parallelism);
        let Some(mapping) = mapping else {
            if sink.is_active() {
                sink.emit(PipelineEvent::LabelGenRound {
                    dfg_index,
                    round,
                    ii: None,
                    routing_cells: 0,
                    improved: false,
                });
            }
            continue; // keep previous labels, try again (paper §V-B)
        };
        let ii = outcome.ii.expect("mapping implies an II");
        let routing_cost = outcome.routing_cells;
        let extracted = labels_from_mapping(&mapping);
        candidates.push(LabelCandidate {
            labels: extracted.clone(),
            ii,
            routing_cost,
        });
        let better = match best {
            None => true,
            Some((bi, bc)) => ii < bi || (ii == bi && routing_cost < bc),
        };
        if sink.is_active() {
            sink.emit(PipelineEvent::LabelGenRound {
                dfg_index,
                round,
                ii: Some(ii),
                routing_cells: routing_cost,
                improved: better,
            });
        }
        if better {
            best = Some((ii, routing_cost));
            current = extracted;
        }
    }

    let generated = best.map(|(best_ii, _)| {
        let selected = select_candidates(&candidates, best_ii);
        let labels = average_labels(
            &selected
                .iter()
                .map(|c| c.labels.clone())
                .collect::<Vec<_>>(),
        );
        GeneratedLabels {
            labels,
            best_ii,
            mii: mii(dfg, acc),
            candidate_count: selected.len(),
        }
    });
    if sink.is_active() {
        let result = match &generated {
            Some(g) => LabelGenResult::Mapped {
                best_ii: g.best_ii,
                mii: g.mii,
                candidates: g.candidate_count,
            },
            None => LabelGenResult::Unmappable,
        };
        sink.emit(PipelineEvent::LabelGenFinished {
            dfg_index,
            result,
            resumed: false,
        });
    }
    generated
}

/// The paper's two selection rounds: keep minimum-II candidates, then those
/// whose routing cost is within [`ROUTING_COST_SLACK`] of the best.
fn select_candidates(candidates: &[LabelCandidate], best_ii: u32) -> Vec<&LabelCandidate> {
    let min_ii: Vec<&LabelCandidate> = candidates.iter().filter(|c| c.ii == best_ii).collect();
    let standard = min_ii
        .iter()
        .map(|c| c.routing_cost)
        .min()
        .expect("at least the best candidate survives");
    min_ii
        .into_iter()
        .filter(|c| (c.routing_cost as f64) <= standard as f64 * ROUTING_COST_SLACK)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::polybench;

    #[test]
    fn generates_labels_for_small_kernel() {
        let dfg = polybench::kernel("doitgen").unwrap();
        let acc = Accelerator::cgra("4x4", 4, 4);
        let gen =
            generate_labels(&dfg, &acc, &IterGenConfig::fast()).expect("doitgen maps on a 4x4");
        assert!(gen.labels.matches(&dfg));
        assert!(gen.best_ii >= gen.mii);
        assert!(gen.candidate_count >= 1);
        // Extracted temporal distances are causal.
        assert!(gen.labels.temporal.iter().all(|&t| t >= 1.0));
    }

    #[test]
    fn impossible_target_returns_none() {
        let dfg = polybench::kernel("syr2k").unwrap();
        // A 1x1 CGRA with II capped below the node count cannot map.
        let acc = Accelerator::cgra("1x1", 1, 1).with_max_ii(2);
        let config = IterGenConfig::fast();
        assert!(generate_labels(&dfg, &acc, &config).is_none());
    }

    #[test]
    fn selection_rounds_filter_costly_candidates() {
        let dfg = polybench::kernel("doitgen").unwrap();
        let base = GuidanceLabels::initial(&dfg);
        let mk = |ii, cost| LabelCandidate {
            labels: base.clone(),
            ii,
            routing_cost: cost,
        };
        let candidates = vec![mk(2, 10), mk(2, 11), mk(2, 20), mk(3, 5)];
        let selected = select_candidates(&candidates, 2);
        // II 3 excluded; cost 20 > 1.15 * 10 excluded.
        assert_eq!(selected.len(), 2);
        assert!(selected.iter().all(|c| c.ii == 2));
    }

    #[test]
    fn observer_sees_rounds_and_a_finish() {
        use lisa_events::RecordingObserver;
        use std::sync::Arc;

        let dfg = polybench::kernel("doitgen").unwrap();
        let acc = Accelerator::cgra("4x4", 4, 4);
        let config = IterGenConfig::fast();
        let recorder = Arc::new(RecordingObserver::default());
        let sink = EventSink::new(recorder.clone());
        let gen = generate_labels_with(&dfg, &acc, &config, 3, &sink).unwrap();
        let events = recorder.take();

        let rounds: Vec<&PipelineEvent> = events
            .iter()
            .filter(|e| matches!(e, PipelineEvent::LabelGenRound { .. }))
            .collect();
        assert_eq!(rounds.len(), config.rounds);
        for (i, event) in rounds.iter().enumerate() {
            let PipelineEvent::LabelGenRound {
                dfg_index, round, ..
            } = event
            else {
                unreachable!()
            };
            assert_eq!((*dfg_index, *round), (3, i));
        }
        // SA snapshots from the threaded annealer sink appear too.
        assert!(events
            .iter()
            .any(|e| matches!(e, PipelineEvent::SaSnapshot { .. })));
        assert_eq!(
            *events.last().unwrap(),
            PipelineEvent::LabelGenFinished {
                dfg_index: 3,
                result: LabelGenResult::Mapped {
                    best_ii: gen.best_ii,
                    mii: gen.mii,
                    candidates: gen.candidate_count,
                },
                resumed: false,
            }
        );
    }

    #[test]
    fn observer_reports_unmappable_and_changes_nothing() {
        use lisa_events::RecordingObserver;
        use std::sync::Arc;

        let dfg = polybench::kernel("syr2k").unwrap();
        let acc = Accelerator::cgra("1x1", 1, 1).with_max_ii(2);
        let config = IterGenConfig::fast();
        let recorder = Arc::new(RecordingObserver::default());
        let sink = EventSink::new(recorder.clone());
        assert!(generate_labels_with(&dfg, &acc, &config, 0, &sink).is_none());
        let events = recorder.take();
        assert_eq!(
            *events.last().unwrap(),
            PipelineEvent::LabelGenFinished {
                dfg_index: 0,
                result: LabelGenResult::Unmappable,
                resumed: false,
            }
        );
        // Failed rounds still report, with no II.
        assert!(events
            .iter()
            .any(|e| matches!(e, PipelineEvent::LabelGenRound { ii: None, .. })));
    }

    #[test]
    fn observer_does_not_change_the_labels() {
        use lisa_events::RecordingObserver;
        use std::sync::Arc;

        let dfg = polybench::kernel("doitgen").unwrap();
        let acc = Accelerator::cgra("4x4", 4, 4);
        let config = IterGenConfig::fast();
        let silent = generate_labels(&dfg, &acc, &config).unwrap();
        let sink = EventSink::new(Arc::new(RecordingObserver::default()));
        let observed = generate_labels_with(&dfg, &acc, &config, 0, &sink).unwrap();
        assert_eq!(silent, observed);
    }

    #[test]
    fn deterministic_given_config() {
        let dfg = polybench::kernel("doitgen").unwrap();
        let acc = Accelerator::cgra("4x4", 4, 4);
        let a = generate_labels(&dfg, &acc, &IterGenConfig::fast()).unwrap();
        let b = generate_labels(&dfg, &acc, &IterGenConfig::fast()).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.best_ii, b.best_ii);
    }
}
