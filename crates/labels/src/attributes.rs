//! The Attributes Generator of paper §IV-A.
//!
//! DFGs carry almost no natural attributes ("nodes usually only have
//! operation type"), so LISA derives richer structure descriptors with
//! classic graph algorithms:
//!
//! * **6 node attributes** — ASAP, in-degree, out-degree, number of
//!   ancestors, number of descendants, operation type;
//! * **5 edge attributes** — ASAP difference, nodes between the endpoints,
//!   nodes sharing an endpoint's ASAP level, ancestors of the parent,
//!   descendants of the child;
//! * **7 dummy-edge attributes** — distances to the closest common
//!   ancestor/descendant and the level/path populations around them.

use lisa_dfg::analysis::{ancestor_sets, asap, descendant_sets, nodes_at_level};
use lisa_dfg::{same_level, Dfg, DummyEdge, EdgeId, NodeId};

/// Width of the node-attribute vectors.
pub const NODE_ATTR_DIM: usize = 6;
/// Width of the edge-attribute vectors.
pub const EDGE_ATTR_DIM: usize = 5;
/// Width of the dummy-edge-attribute vectors.
pub const DUMMY_ATTR_DIM: usize = 7;

/// All attributes of one DFG, produced in a single pass.
///
/// # Example
///
/// ```
/// use lisa_dfg::polybench;
/// use lisa_labels::attributes::{DfgAttributes, NODE_ATTR_DIM};
///
/// let dfg = polybench::kernel("gemm")?;
/// let attrs = DfgAttributes::generate(&dfg);
/// assert_eq!(attrs.node.len(), dfg.node_count());
/// assert_eq!(attrs.node[0].len(), NODE_ATTR_DIM);
/// # Ok::<(), lisa_dfg::DfgError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DfgAttributes {
    /// Per-node attribute vectors, indexed by [`NodeId::index`].
    pub node: Vec<Vec<f64>>,
    /// Per-edge attribute vectors, indexed by [`EdgeId::index`].
    pub edge: Vec<Vec<f64>>,
    /// The same-level dummy edges, parallel to [`Self::dummy`].
    pub dummy_edges: Vec<DummyEdge>,
    /// Per-dummy-edge attribute vectors.
    pub dummy: Vec<Vec<f64>>,
}

impl DfgAttributes {
    /// Runs the Attributes Generator on a validated DFG.
    ///
    /// # Panics
    ///
    /// Panics if the DFG's data subgraph has a cycle.
    pub fn generate(dfg: &Dfg) -> Self {
        let levels = asap(dfg);
        let anc = ancestor_sets(dfg);
        let desc = descendant_sets(dfg);

        let node = dfg
            .node_ids()
            .map(|v| {
                vec![
                    f64::from(levels[v.index()]),
                    dfg.in_degree(v) as f64,
                    dfg.out_degree(v) as f64,
                    anc[v.index()].count() as f64,
                    desc[v.index()].count() as f64,
                    dfg.node(v).op.code() as f64,
                ]
            })
            .collect();

        let edge = dfg
            .edge_ids()
            .map(|e| {
                let edge = dfg.edge(e);
                let (u, v) = (edge.src, edge.dst);
                let lu = levels[u.index()];
                let lv = levels[v.index()];
                // (1) ASAP difference between child and parent.
                let diff = f64::from(lv) - f64::from(lu);
                // (2) nodes whose ASAP lies strictly between the endpoints.
                let between = lisa_dfg::analysis::nodes_between_levels(&levels, lu, lv) as f64;
                // (3) nodes sharing the parent's or child's level (others).
                let mut same = nodes_at_level(&levels, lu) - 1;
                if lv != lu {
                    same += nodes_at_level(&levels, lv) - 1;
                }
                // (4) ancestors of the parent, (5) descendants of the child.
                vec![
                    diff,
                    between,
                    same as f64,
                    anc[u.index()].count() as f64,
                    desc[v.index()].count() as f64,
                ]
            })
            .collect();

        let dummy_edges = same_level::dummy_edges_annotated(dfg);
        let dummy = dummy_edges
            .iter()
            .map(|d| dummy_edge_attributes(d, &levels))
            .collect();

        DfgAttributes {
            node,
            edge,
            dummy_edges,
            dummy,
        }
    }

    /// Undirected adjacency over all edges (message-passing neighbours for
    /// the schedule-order GNN).
    pub fn adjacency(dfg: &Dfg) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); dfg.node_count()];
        for e in dfg.edges() {
            if e.src == e.dst {
                continue;
            }
            if !adj[e.src.index()].contains(&e.dst.index()) {
                adj[e.src.index()].push(e.dst.index());
            }
            if !adj[e.dst.index()].contains(&e.src.index()) {
                adj[e.dst.index()].push(e.src.index());
            }
        }
        adj
    }

    /// Attribute vectors of edges incident to either endpoint of `edge`
    /// (the `e(v)` neighbourhood of Eq. 5), including the edge itself.
    pub fn edge_neighborhood(&self, dfg: &Dfg, edge: EdgeId) -> Vec<Vec<f64>> {
        let e = dfg.edge(edge);
        let mut seen = Vec::new();
        let mut out = Vec::new();
        for endpoint in [e.src, e.dst] {
            for &inc in dfg.in_edges(endpoint).iter().chain(dfg.out_edges(endpoint)) {
                if !seen.contains(&inc) {
                    seen.push(inc);
                    out.push(self.edge[inc.index()].clone());
                }
            }
        }
        out
    }
}

/// The seven dummy-edge attributes for one same-level pair.
fn dummy_edge_attributes(d: &DummyEdge, levels: &[u32]) -> Vec<f64> {
    let pair_level = d.level;
    let (anc_dist, anc_level, anc_path) = match d.ancestor {
        Some(c) => (c.mean_dist(), Some(levels[c.node.index()]), c.on_path_count),
        None => (0.0, None, 0),
    };
    let (desc_dist, desc_level, desc_path) = match d.descendant {
        Some(c) => (c.mean_dist(), Some(levels[c.node.index()]), c.on_path_count),
        None => (0.0, None, 0),
    };
    // (3) nodes with ASAP above the ancestor's and below the pair's.
    let above_anc = anc_level.map_or(0, |al| {
        levels.iter().filter(|&&l| l > al && l < pair_level).count()
    });
    // (4) nodes with ASAP below the descendant's and above the pair's.
    let below_desc = desc_level.map_or(0, |dl| {
        levels.iter().filter(|&&l| l < dl && l > pair_level).count()
    });
    // (5) nodes sharing the ancestor's, descendant's, or pair's level.
    let mut key_levels: Vec<u32> = vec![pair_level];
    key_levels.extend(anc_level);
    key_levels.extend(desc_level);
    key_levels.sort_unstable();
    key_levels.dedup();
    let peers: usize = key_levels.iter().map(|&l| nodes_at_level(levels, l)).sum();
    vec![
        anc_dist,
        desc_dist,
        above_anc as f64,
        below_desc as f64,
        peers as f64,
        anc_path as f64,
        desc_path as f64,
    ]
}

/// Convenience: the node attribute vector of one node.
pub fn node_attributes(dfg: &Dfg, node: NodeId) -> Vec<f64> {
    DfgAttributes::generate(dfg).node[node.index()].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::{polybench, OpKind};

    fn fig4() -> Dfg {
        let mut g = Dfg::new("fig4");
        let ops = [
            OpKind::Load,
            OpKind::Load,
            OpKind::Add,
            OpKind::Mul,
            OpKind::Add,
            OpKind::Sub,
            OpKind::Add,
            OpKind::Mul,
            OpKind::Add,
            OpKind::Store,
        ];
        let ids: Vec<NodeId> = ops
            .iter()
            .enumerate()
            .map(|(i, &op)| g.add_node(op, format!("n{i}")))
            .collect();
        for (s, d) in [
            (0, 2),
            (1, 3),
            (1, 4),
            (1, 5),
            (1, 8),
            (2, 6),
            (3, 6),
            (3, 7),
            (4, 7),
            (4, 8),
            (6, 9),
            (7, 9),
        ] {
            g.add_data_edge(ids[s], ids[d]).unwrap();
        }
        g
    }

    #[test]
    fn dimensions_are_stable() {
        let dfg = fig4();
        let a = DfgAttributes::generate(&dfg);
        assert_eq!(a.node.len(), 10);
        assert!(a.node.iter().all(|v| v.len() == NODE_ATTR_DIM));
        assert_eq!(a.edge.len(), 12);
        assert!(a.edge.iter().all(|v| v.len() == EDGE_ATTR_DIM));
        assert_eq!(a.dummy.len(), a.dummy_edges.len());
        assert!(a.dummy.iter().all(|v| v.len() == DUMMY_ATTR_DIM));
    }

    #[test]
    fn node_attributes_of_b() {
        // B (index 1) has out-degree 4, 0 ancestors, 7 descendants.
        let dfg = fig4();
        let a = DfgAttributes::generate(&dfg);
        let b = &a.node[1];
        assert_eq!(b[0], 0.0); // asap
        assert_eq!(b[1], 0.0); // in-degree
        assert_eq!(b[2], 4.0); // out-degree
        assert_eq!(b[3], 0.0); // ancestors
        assert_eq!(b[4], 7.0); // descendants
        assert_eq!(b[5], OpKind::Load.code() as f64);
    }

    #[test]
    fn edge_attributes_of_long_edge() {
        // Edge B -> I: levels 0 -> 2, diff 2, four nodes at level 1
        // between them.
        let dfg = fig4();
        let a = DfgAttributes::generate(&dfg);
        let eid = dfg
            .edge_ids()
            .find(|&e| dfg.edge(e).src.index() == 1 && dfg.edge(e).dst.index() == 8)
            .unwrap();
        let attrs = &a.edge[eid.index()];
        assert_eq!(attrs[0], 2.0); // ASAP diff
        assert_eq!(attrs[1], 4.0); // C, D, E, F in between
        assert_eq!(attrs[3], 0.0); // B has no ancestors
    }

    #[test]
    fn adjacency_is_symmetric_and_loop_free() {
        let dfg = polybench::kernel("gemm").unwrap();
        let adj = DfgAttributes::adjacency(&dfg);
        for (v, ns) in adj.iter().enumerate() {
            for &u in ns {
                assert!(adj[u].contains(&v), "asymmetric {v}-{u}");
                assert_ne!(u, v, "self-loop in adjacency");
            }
        }
    }

    #[test]
    fn edge_neighborhood_includes_self_and_peers() {
        let dfg = fig4();
        let a = DfgAttributes::generate(&dfg);
        // Edge B -> D: B touches 4 edges, D touches 3 (B->D, D->G, D->H).
        let eid = dfg
            .edge_ids()
            .find(|&e| dfg.edge(e).src.index() == 1 && dfg.edge(e).dst.index() == 3)
            .unwrap();
        let hood = a.edge_neighborhood(&dfg, eid);
        assert_eq!(hood.len(), 6); // 4 from B + 2 more from D (B->D shared)
    }

    #[test]
    fn dummy_attributes_on_polybench() {
        for name in ["gemm", "syr2k", "atax"] {
            let dfg = polybench::kernel(name).unwrap();
            let a = DfgAttributes::generate(&dfg);
            for (d, attrs) in a.dummy_edges.iter().zip(&a.dummy) {
                // At least one of the common-node distances is set.
                assert!(
                    attrs[0] > 0.0 || attrs[1] > 0.0,
                    "{name}: pair {:?} has no common node distance",
                    (d.a, d.b)
                );
                assert!(attrs.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let dfg = polybench::kernel("mvt").unwrap();
        assert_eq!(DfgAttributes::generate(&dfg), DfgAttributes::generate(&dfg));
    }
}
