//! Predict-then-verify movement filter: training-pair capture, the
//! `lisa-movement-set v1` text format, and the learned
//! [`MovementPredictor`] that gates the SA router (see
//! `lisa_mapper::predictor` for the mapper-side contract and DESIGN.md
//! "Predict-then-verify movement filter" for the exactness argument).
//!
//! # The `lisa-movement-set v1` format
//!
//! Training pairs come for free: any annealing run with an observer
//! attached emits one `SaMovementSample` event per proposed movement,
//! carrying the movement feature vector and the exact routed Δcost. A
//! [`MovementRecorder`] collects them; [`write_movement_set`] persists
//! them in the `labels::dataset` style:
//!
//! ```text
//! lisa-movement-set v1
//! features 14
//! pairs 2
//!
//! pair 0
//! x 0.25 0.0 1.0 ...
//! y -42.5
//!
//! pair 1
//! x 0.5 0.0 0.75 ...
//! y 100.01
//! ```
//!
//! Floats use Rust's shortest-round-trip `{:?}` formatting, so
//! parse → re-serialize reproduces the original bytes.
//!
//! # Training and the admission threshold
//!
//! [`MovementPredictor::train`] fits the existing [`EdgeMlp`] regressor
//! to squashed deltas `y = Δ / (1 + |Δ|)` (bounded targets keep the MSE
//! loss well-conditioned against the annealer's occasional huge
//! unroute penalties). The admission threshold is then chosen from the
//! training set itself: the 95th percentile of the net's own scores on
//! the *improving* pairs (`Δ ≤ 0`), so on the training distribution at
//! most ~5% of genuinely good movements are filtered. Admission is
//! additionally temperature-aware: while the chain is hot, movements
//! whose predicted delta is within `TEMP_SLACK · temp` are admitted
//! even above the threshold, because metropolis would routinely accept
//! them — a temperature-blind gate starves tight feasibility searches
//! of the uphill moves they converge through. Runs audit the realised
//! false-reject rate deterministically (1 in 16 rejects is routed
//! measure-only), surfacing drift between the training kernels and the
//! mapped kernel.

use std::fmt;
use std::sync::Mutex;

use lisa_events::{Observer, PipelineEvent};
use lisa_gnn::dataset::EdgeSample;
use lisa_gnn::models::EdgeMlp;
use lisa_gnn::{CompiledEdgeMlp, PlanScratch, TrainConfig, TrainReport};
use lisa_mapper::{MovementScorer, MOVEMENT_FEATURE_DIM};

/// One captured movement: the pre-routing feature vector and the exact
/// routed cost delta the annealer measured for it.
#[derive(Debug, Clone, PartialEq)]
pub struct MovementPair {
    /// Movement feature vector (see `lisa_mapper::predictor`).
    pub features: Vec<f64>,
    /// Exact `new_cost - old_cost` of the routed movement.
    pub delta_cost: f64,
}

/// A training set of captured movements with a fixed feature width.
#[derive(Debug, Clone, PartialEq)]
pub struct MovementSet {
    /// Width of every feature vector in `pairs`.
    pub feature_dim: usize,
    /// The captured pairs, in emission order.
    pub pairs: Vec<MovementPair>,
}

impl MovementSet {
    /// Creates an empty set for the mapper's current feature layout.
    pub fn new() -> Self {
        MovementSet {
            feature_dim: MOVEMENT_FEATURE_DIM,
            pairs: Vec::new(),
        }
    }

    /// Appends a pair whose feature width matches the set.
    ///
    /// Pairs of any other width are dropped (the set stays rectangular;
    /// callers mixing mapper versions lose the foreign samples rather
    /// than corrupting the set).
    pub fn push(&mut self, pair: MovementPair) {
        if pair.features.len() == self.feature_dim {
            self.pairs.push(pair);
        }
    }

    /// Number of captured pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs were captured.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl Default for MovementSet {
    fn default() -> Self {
        MovementSet::new()
    }
}

/// Serialises a movement set in the `lisa-movement-set v1` format.
pub fn write_movement_set(set: &MovementSet) -> String {
    let mut out = String::new();
    out.push_str("lisa-movement-set v1\n");
    out.push_str(&format!("features {}\n", set.feature_dim));
    out.push_str(&format!("pairs {}\n", set.pairs.len()));
    for (i, p) in set.pairs.iter().enumerate() {
        out.push_str(&format!("\npair {i}\nx"));
        for v in &p.features {
            out.push_str(&format!(" {v:?}"));
        }
        out.push_str(&format!("\ny {:?}\n", p.delta_cost));
    }
    out
}

/// Errors from [`parse_movement_set`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MovementSetParseError {
    /// The document does not start with `lisa-movement-set v1`.
    BadHeader,
    /// A header field or pair record is malformed.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was expected there.
        expected: &'static str,
    },
    /// The document ended before the declared pair count.
    Truncated {
        /// Pairs declared in the header.
        declared: usize,
        /// Pairs actually present.
        found: usize,
    },
}

impl fmt::Display for MovementSetParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MovementSetParseError::BadHeader => {
                write!(f, "not a lisa-movement-set v1 document")
            }
            MovementSetParseError::Malformed { line, expected } => {
                write!(f, "line {line}: expected {expected}")
            }
            MovementSetParseError::Truncated { declared, found } => {
                write!(f, "document declares {declared} pairs but holds {found}")
            }
        }
    }
}

impl std::error::Error for MovementSetParseError {}

/// Parses a `lisa-movement-set v1` document written by
/// [`write_movement_set`].
///
/// # Errors
///
/// Returns a [`MovementSetParseError`] describing the first malformed
/// line; partial documents are rejected (capture is atomic, unlike the
/// incremental dataset checkpoints).
pub fn parse_movement_set(text: &str) -> Result<MovementSet, MovementSetParseError> {
    let mut lines = text.lines().enumerate();
    let mut next_content = |expected: &'static str| {
        for (i, l) in lines.by_ref() {
            if !l.is_empty() {
                return Ok((i + 1, l));
            }
        }
        Err(MovementSetParseError::Malformed { line: 0, expected })
    };

    let (_, header) = next_content("header").map_err(|_| MovementSetParseError::BadHeader)?;
    if header != "lisa-movement-set v1" {
        return Err(MovementSetParseError::BadHeader);
    }
    let feature_dim = parse_field(next_content("features <n>")?, "features")?;
    let declared: usize = parse_field(next_content("pairs <n>")?, "pairs")?;

    let mut set = MovementSet {
        feature_dim,
        pairs: Vec::with_capacity(declared),
    };
    for i in 0..declared {
        let (line, l) = next_content("pair <i>")
            .map_err(|_| MovementSetParseError::Truncated { declared, found: i })?;
        if l != format!("pair {i}") {
            return Err(MovementSetParseError::Malformed {
                line,
                expected: "pair <i>",
            });
        }
        let (line, l) = next_content("x <f64>...")?;
        let rest = l
            .strip_prefix("x")
            .ok_or(MovementSetParseError::Malformed {
                line,
                expected: "x <f64>...",
            })?;
        let features = rest
            .split_ascii_whitespace()
            .map(str::parse)
            .collect::<Result<Vec<f64>, _>>()
            .map_err(|_| MovementSetParseError::Malformed {
                line,
                expected: "x <f64>...",
            })?;
        if features.len() != feature_dim {
            return Err(MovementSetParseError::Malformed {
                line,
                expected: "feature vector of declared width",
            });
        }
        let (line, l) = next_content("y <f64>")?;
        let delta_cost = l.strip_prefix("y ").and_then(|v| v.parse().ok()).ok_or(
            MovementSetParseError::Malformed {
                line,
                expected: "y <f64>",
            },
        )?;
        set.pairs.push(MovementPair {
            features,
            delta_cost,
        });
    }
    if let Some((i, l)) = lines.find(|(_, l)| !l.is_empty()) {
        let _ = l;
        return Err(MovementSetParseError::Malformed {
            line: i + 1,
            expected: "end of document",
        });
    }
    Ok(set)
}

fn parse_field(
    (line, l): (usize, &str),
    key: &'static str,
) -> Result<usize, MovementSetParseError> {
    l.strip_prefix(key)
        .and_then(|v| v.trim().parse().ok())
        .ok_or(MovementSetParseError::Malformed {
            line,
            expected: key,
        })
}

/// An [`Observer`] that collects `SaMovementSample` events into a
/// [`MovementSet`]. Attach it to any annealing run (`with_observer`) and
/// training pairs accumulate as a free by-product of the search.
#[derive(Debug, Default)]
pub struct MovementRecorder {
    pairs: Mutex<Vec<MovementPair>>,
}

impl MovementRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        MovementRecorder::default()
    }

    /// Copies everything captured so far into a [`MovementSet`].
    pub fn snapshot(&self) -> MovementSet {
        let pairs = match self.pairs.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        let mut set = MovementSet::new();
        for p in pairs {
            set.push(p);
        }
        set
    }
}

impl Observer for MovementRecorder {
    fn event(&self, event: &PipelineEvent) {
        if let PipelineEvent::SaMovementSample {
            features,
            delta_cost,
            ..
        } = event
        {
            let mut guard = match self.pairs.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.push(MovementPair {
                features: features.clone(),
                delta_cost: *delta_cost,
            });
        }
    }
}

/// Share of improving training movements the threshold must admit.
const ADMIT_QUANTILE: f64 = 0.95;
/// Below this many improving pairs the percentile is noise; the
/// predictor then admits everything (threshold `+inf`).
const MIN_IMPROVING: usize = 8;
/// Temperature slack of the admission rule: a predicted-worsening
/// movement is still admitted while its predicted cost delta is within
/// `TEMP_SLACK * temp`, i.e. while its metropolis acceptance probability
/// is at least `e^-TEMP_SLACK`. Only movements the accept test would
/// almost surely throw away are pruned, so the filter never starves the
/// hot phase of the uphill moves annealing converges through.
const TEMP_SLACK: f64 = 0.75;

/// The learned movement filter: an [`EdgeMlp`] scoring movements by
/// predicted (squashed) Δcost, admitting those at or below a threshold
/// calibrated on the training set.
#[derive(Debug, Clone)]
pub struct MovementPredictor {
    net: EdgeMlp,
    compiled: CompiledEdgeMlp,
    threshold: f64,
}

/// Errors from [`MovementPredictor::train`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MovementTrainError {
    /// The training set holds no pairs.
    EmptySet,
    /// The training set declares a zero feature width.
    ZeroFeatureDim,
}

impl fmt::Display for MovementTrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MovementTrainError::EmptySet => write!(f, "movement set holds no pairs"),
            MovementTrainError::ZeroFeatureDim => write!(f, "movement set has zero-width features"),
        }
    }
}

impl std::error::Error for MovementTrainError {}

/// Errors from [`MovementPredictor::parse`].
#[derive(Debug)]
pub enum MovementPredictorParseError {
    /// The document does not start with `lisa-movement-predictor v1`.
    BadHeader,
    /// The `features <n>` line is missing or malformed.
    BadFeatures,
    /// The `threshold <f64>` line is missing or malformed.
    BadThreshold,
    /// The `net` section is missing.
    MissingNet,
    /// The embedded weight dump failed to parse.
    BadWeights(lisa_gnn::io::ParseParamsError),
}

impl fmt::Display for MovementPredictorParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MovementPredictorParseError::BadHeader => {
                write!(f, "not a lisa-movement-predictor v1 document")
            }
            MovementPredictorParseError::BadFeatures => {
                write!(f, "missing or malformed `features <n>` line")
            }
            MovementPredictorParseError::BadThreshold => {
                write!(f, "missing or malformed `threshold <f64>` line")
            }
            MovementPredictorParseError::MissingNet => write!(f, "missing `net` section"),
            MovementPredictorParseError::BadWeights(e) => write!(f, "net weights: {e}"),
        }
    }
}

impl std::error::Error for MovementPredictorParseError {}

/// Bounds a raw cost delta to `(-1, 1)`: `y = Δ / (1 + |Δ|)`.
fn squash(delta: f64) -> f64 {
    delta / (1.0 + delta.abs())
}

impl MovementPredictor {
    /// Trains a predictor on a captured movement set and calibrates its
    /// admission threshold (see the module docs).
    ///
    /// Deterministic in `(set, config, seed)` including
    /// `config.parallelism` (the gradient loop is order-invariant).
    ///
    /// # Errors
    ///
    /// Fails on an empty or zero-width set.
    pub fn train(
        set: &MovementSet,
        config: &TrainConfig,
        seed: u64,
    ) -> Result<(MovementPredictor, TrainReport), MovementTrainError> {
        if set.feature_dim == 0 {
            return Err(MovementTrainError::ZeroFeatureDim);
        }
        if set.pairs.is_empty() {
            return Err(MovementTrainError::EmptySet);
        }
        let samples: Vec<EdgeSample> = set
            .pairs
            .iter()
            .map(|p| EdgeSample {
                attrs: p.features.clone(),
                target: squash(p.delta_cost),
            })
            .collect();
        let mut net = EdgeMlp::new(set.feature_dim, seed);
        let report = net.train(&samples, config);
        let compiled = net.compile();

        let mut improving: Vec<f64> = PlanScratch::with(|scratch| {
            set.pairs
                .iter()
                .filter(|p| p.delta_cost <= 0.0)
                .map(|p| compiled.predict(scratch, &p.features))
                .collect()
        });
        let threshold = if improving.len() < MIN_IMPROVING {
            f64::INFINITY
        } else {
            improving.sort_by(f64::total_cmp);
            let idx = ((improving.len() - 1) as f64 * ADMIT_QUANTILE).round() as usize;
            improving[idx.min(improving.len() - 1)]
        };
        Ok((
            MovementPredictor {
                net,
                compiled,
                threshold,
            },
            report,
        ))
    }

    /// The calibrated admission threshold (`+inf` admits everything).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Expected feature vector width.
    pub fn feature_dim(&self) -> usize {
        self.net.attr_dim()
    }

    /// Raw predicted score for a movement — the net's estimate of the
    /// squashed cost delta `Δ / (1 + |Δ|)`. Lower is better; admission
    /// compares this against the threshold and the temperature slack.
    pub fn score(&self, features: &[f64]) -> f64 {
        PlanScratch::with(|scratch| self.compiled.predict(scratch, features))
    }

    /// Serialises the predictor (`lisa-movement-predictor v1`): header,
    /// feature width, threshold, then the net's `lisa-gnn-params v1`
    /// dump. Bit-exact round trip through [`MovementPredictor::parse`].
    pub fn export(&self) -> String {
        format!(
            "lisa-movement-predictor v1\nfeatures {}\nthreshold {:?}\nnet\n{}",
            self.net.attr_dim(),
            self.threshold,
            self.net.export_weights()
        )
    }

    /// Restores a predictor written by [`MovementPredictor::export`].
    ///
    /// # Errors
    ///
    /// Returns a [`MovementPredictorParseError`] naming the malformed
    /// section.
    pub fn parse(text: &str) -> Result<MovementPredictor, MovementPredictorParseError> {
        let mut lines = text.splitn(5, '\n');
        if lines.next() != Some("lisa-movement-predictor v1") {
            return Err(MovementPredictorParseError::BadHeader);
        }
        let feature_dim: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("features "))
            .and_then(|v| v.parse().ok())
            .filter(|&d| d > 0)
            .ok_or(MovementPredictorParseError::BadFeatures)?;
        let threshold: f64 = lines
            .next()
            .and_then(|l| l.strip_prefix("threshold "))
            .and_then(|v| v.parse().ok())
            .ok_or(MovementPredictorParseError::BadThreshold)?;
        if lines.next() != Some("net") {
            return Err(MovementPredictorParseError::MissingNet);
        }
        let weights = lines
            .next()
            .ok_or(MovementPredictorParseError::MissingNet)?;
        let mut net = EdgeMlp::new(feature_dim, 0);
        net.import_weights(weights)
            .map_err(MovementPredictorParseError::BadWeights)?;
        let compiled = net.compile();
        Ok(MovementPredictor {
            net,
            compiled,
            threshold,
        })
    }
}

impl MovementScorer for MovementPredictor {
    fn admit(&self, features: &[f64], temp: f64) -> bool {
        // Fail open: a feature layout from a different mapper version
        // cannot be scored, and admitting preserves exactness.
        if features.len() != self.net.attr_dim() {
            return true;
        }
        let score = self.score(features);
        // Temperature-aware admission: the trained threshold separates
        // improving movements from worsening ones, but while the annealer
        // is hot, metropolis *accepts* worsening movements routinely —
        // rejecting them starves tight feasibility searches of the large
        // uphill perturbations they converge through. Scores approximate
        // the squashed cost delta y = d/(1+|d|), which is monotone in d,
        // so "predicted delta <= TEMP_SLACK * temp" (a metropolis
        // acceptance probability of at least e^-TEMP_SLACK) is exactly
        // "score <= squash(TEMP_SLACK * temp)" — no inverse needed.
        let slack = TEMP_SLACK * temp;
        score <= self.threshold.max(slack / (1.0 + slack))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_set(seed: u64, count: usize) -> MovementSet {
        let mut set = MovementSet::new();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..count {
            let features: Vec<f64> = (0..MOVEMENT_FEATURE_DIM).map(|_| next()).collect();
            let delta_cost = (next() - 0.5) * 2000.0;
            set.push(MovementPair {
                features,
                delta_cost,
            });
        }
        set
    }

    /// A set the net can separate: feature 0 alone decides the sign of
    /// the delta, with a wide margin.
    fn separable_set(n: usize) -> MovementSet {
        let mut set = MovementSet::new();
        for i in 0..n {
            let good = i % 2 == 0;
            let mut features = vec![0.0; MOVEMENT_FEATURE_DIM];
            features[0] = if good { 0.0 } else { 1.0 };
            features[1] = (i % 7) as f64 / 7.0;
            set.push(MovementPair {
                features,
                delta_cost: if good { -50.0 } else { 400.0 },
            });
        }
        set
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let set = sample_set(7, 5);
        let text = write_movement_set(&set);
        let parsed = parse_movement_set(&text).unwrap();
        assert_eq!(parsed, set);
        assert_eq!(write_movement_set(&parsed), text);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert_eq!(
            parse_movement_set("nope"),
            Err(MovementSetParseError::BadHeader)
        );
        let text = write_movement_set(&sample_set(1, 3));
        let truncated: String = text.lines().take(6).map(|l| format!("{l}\n")).collect();
        assert!(matches!(
            parse_movement_set(&truncated),
            Err(MovementSetParseError::Malformed { .. })
        ));
        let mut missing = write_movement_set(&sample_set(1, 1));
        missing = missing.replace("pairs 1", "pairs 2");
        assert_eq!(
            parse_movement_set(&missing),
            Err(MovementSetParseError::Truncated {
                declared: 2,
                found: 1
            })
        );
    }

    #[test]
    fn recorder_collects_movement_samples_only() {
        let rec = MovementRecorder::new();
        rec.event(&PipelineEvent::SaMovementSample {
            chain: 0,
            ii: 2,
            features: vec![0.5; MOVEMENT_FEATURE_DIM],
            delta_cost: -3.0,
        });
        rec.event(&PipelineEvent::SaFilterSummary {
            chain: 0,
            ii: 2,
            proposals: 1,
            admitted: 1,
            rejected: 0,
            audited: 0,
            false_rejects: 0,
            router_invocations: 2,
            audit_router_invocations: 0,
        });
        let set = rec.snapshot();
        assert_eq!(set.len(), 1);
        assert_eq!(set.pairs[0].delta_cost, -3.0);
    }

    #[test]
    fn trained_predictor_separates_good_from_bad_movements() {
        let set = separable_set(64);
        let config = TrainConfig {
            epochs: 200,
            ..TrainConfig::fast()
        };
        let (p, report) = MovementPredictor::train(&set, &config, 11).unwrap();
        assert!(report.improved());
        assert!(p.threshold().is_finite());
        let mut good = vec![0.0; MOVEMENT_FEATURE_DIM];
        good[1] = 0.3;
        let mut bad = good.clone();
        bad[0] = 1.0;
        assert!(p.admit(&good, 0.0), "improving movement must be admitted");
        assert!(!p.admit(&bad, 0.0), "worsening movement must be rejected");
    }

    #[test]
    fn hot_chains_keep_their_uphill_moves() {
        let set = separable_set(64);
        let config = TrainConfig {
            epochs: 200,
            ..TrainConfig::fast()
        };
        let (p, _) = MovementPredictor::train(&set, &config, 11).unwrap();
        // Temperature-aware admission: a worsening movement whose score
        // is finite in squash space (below 1, i.e. a finite predicted
        // delta) is rejected by a cold chain but admitted while the
        // chain is hot enough that metropolis would routinely accept
        // its predicted delta anyway. Scores at or above 1 ("worse than
        // any finite delta") stay rejected at every temperature.
        let mut exercised = 0;
        for pair in &set.pairs {
            let s = p.score(&pair.features);
            if s > p.threshold().max(0.0) && s < 1.0 {
                assert!(!p.admit(&pair.features, 0.0), "cold chain must reject");
                // squash(TEMP_SLACK * hot) = 2s/(1+s) > s for s in (0, 1).
                let hot = 2.0 * s / (TEMP_SLACK * (1.0 - s));
                assert!(p.admit(&pair.features, hot), "hot chain must admit");
                exercised += 1;
            }
        }
        assert!(exercised > 0, "no worsening pair scored in (threshold, 1)");
    }

    #[test]
    fn too_few_improving_pairs_admits_everything() {
        let mut set = MovementSet::new();
        for i in 0..20 {
            set.push(MovementPair {
                features: vec![i as f64 / 20.0; MOVEMENT_FEATURE_DIM],
                delta_cost: 10.0,
            });
        }
        let (p, _) = MovementPredictor::train(&set, &TrainConfig::fast(), 3).unwrap();
        assert_eq!(p.threshold(), f64::INFINITY);
        assert!(p.admit(&vec![0.9; MOVEMENT_FEATURE_DIM], 0.0));
    }

    #[test]
    fn train_rejects_degenerate_sets() {
        assert_eq!(
            MovementPredictor::train(&MovementSet::new(), &TrainConfig::fast(), 0).err(),
            Some(MovementTrainError::EmptySet)
        );
        let zero = MovementSet {
            feature_dim: 0,
            pairs: vec![MovementPair {
                features: vec![],
                delta_cost: 0.0,
            }],
        };
        assert_eq!(
            MovementPredictor::train(&zero, &TrainConfig::fast(), 0).err(),
            Some(MovementTrainError::ZeroFeatureDim)
        );
    }

    #[test]
    fn predictor_round_trips_through_text() {
        let (p, _) = MovementPredictor::train(&separable_set(32), &TrainConfig::fast(), 5).unwrap();
        let text = p.export();
        let q = MovementPredictor::parse(&text).unwrap();
        assert_eq!(q.export(), text);
        assert_eq!(q.threshold(), p.threshold());
        for pair in &separable_set(32).pairs {
            assert_eq!(p.admit(&pair.features, 0.0), q.admit(&pair.features, 0.0));
        }
    }

    #[test]
    fn predictor_is_shareable_across_threads() {
        let (p, _) = MovementPredictor::train(&separable_set(32), &TrainConfig::fast(), 5).unwrap();
        let p: Arc<dyn MovementScorer> = Arc::new(p);
        let feats = vec![0.2; MOVEMENT_FEATURE_DIM];
        let expect = p.admit(&feats, 0.0);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                let feats = feats.clone();
                std::thread::spawn(move || p.admit(&feats, 0.0))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expect);
        }
    }

    #[test]
    fn mismatched_feature_width_fails_open() {
        let (p, _) = MovementPredictor::train(&separable_set(32), &TrainConfig::fast(), 5).unwrap();
        assert!(p.admit(&[0.0; 3], 0.0));
    }

    #[test]
    fn parse_errors_name_the_section() {
        assert!(matches!(
            MovementPredictor::parse("junk"),
            Err(MovementPredictorParseError::BadHeader)
        ));
        assert!(matches!(
            MovementPredictor::parse("lisa-movement-predictor v1\nfeatures 0\n"),
            Err(MovementPredictorParseError::BadFeatures)
        ));
        assert!(matches!(
            MovementPredictor::parse("lisa-movement-predictor v1\nfeatures 14\nthreshold x\n"),
            Err(MovementPredictorParseError::BadThreshold)
        ));
        assert!(matches!(
            MovementPredictor::parse("lisa-movement-predictor v1\nfeatures 14\nthreshold 0.5\n"),
            Err(MovementPredictorParseError::MissingNet)
        ));
        assert!(matches!(
            MovementPredictor::parse(
                "lisa-movement-predictor v1\nfeatures 14\nthreshold 0.5\nnet\njunk"
            ),
            Err(MovementPredictorParseError::BadWeights(_))
        ));
    }

    lisa_rng::props! {
        cases = 24;

        /// Random movement sets survive a write/parse round trip and
        /// re-serializing reproduces the exact bytes.
        fn movement_sets_round_trip(seed in 0u64..1_000_000, count in 0usize..8) {
            let set = sample_set(seed, count);
            let text = write_movement_set(&set);
            let parsed = parse_movement_set(&text).unwrap();
            assert_eq!(parsed, set);
            assert_eq!(write_movement_set(&parsed), text);
        }
    }
}
