//! Label machinery for the LISA reproduction: the Attributes Generator,
//! label extraction from mappings, iterative training-data generation, the
//! label filter, and the conversion into GNN training samples.
//!
//! This crate bridges the mapping substrate (`lisa-mapper`) and the
//! learning stack (`lisa-gnn`):
//!
//! * [`attributes`] — §IV-A: derives 6 node, 5 edge, and 7 dummy-edge
//!   attributes from graph structure;
//! * [`extract`] — §V-B: reads the four labels back out of a completed
//!   mapping (normalised execution time, Manhattan distances, cycle
//!   distances);
//! * [`iter_gen`] — §V-B: the iterative partial-label-aware SA loop that
//!   produces candidate labels and combines them;
//! * [`filter`] — §V-C: the `e = O + σ·N` quality filter;
//! * [`dataset`] — packages labelled DFGs into per-network training sets;
//! * [`movement`] — the predict-then-verify movement filter: captures
//!   `(movement features, Δcost)` pairs from annealing runs and trains
//!   the router-gating [`MovementPredictor`].
//!
//! # Example
//!
//! ```
//! use lisa_dfg::polybench;
//! use lisa_arch::Accelerator;
//! use lisa_labels::{attributes::DfgAttributes, iter_gen};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = polybench::kernel("doitgen")?;
//! let acc = Accelerator::cgra("4x4", 4, 4);
//! let attrs = DfgAttributes::generate(&dfg);
//! assert_eq!(attrs.node.len(), dfg.node_count());
//!
//! let config = iter_gen::IterGenConfig::fast();
//! let generated = iter_gen::generate_labels(&dfg, &acc, &config)
//!     .expect("doitgen maps on a 4x4 CGRA");
//! assert!(generated.labels.matches(&dfg));
//! # Ok(())
//! # }
//! ```

pub mod attributes;
pub mod dataset;
pub mod extract;
pub mod filter;
pub mod iter_gen;
pub mod movement;

pub use attributes::DfgAttributes;
pub use dataset::{
    parse_dataset, parse_dataset_partial, write_dataset, Dataset, DatasetEntry, DatasetParseError,
    DatasetWriter, TrainingSet,
};
pub use filter::FilterConfig;
pub use iter_gen::{generate_labels, generate_labels_with, GeneratedLabels, IterGenConfig};
pub use movement::{
    parse_movement_set, write_movement_set, MovementPair, MovementPredictor, MovementRecorder,
    MovementSet,
};
