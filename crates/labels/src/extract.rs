//! Label extraction from a completed mapping (paper §V-B).
//!
//! "We extract label values from the mapping result. [...] we normalize
//! the execution time to the range from zero to the length of the longest
//! path to get the schedule order. For the other three labels, we
//! calculate the distance according to the mapping distance" — Manhattan
//! on the 2D mesh, cycles along the temporal dimension.

use lisa_dfg::same_level;
use lisa_mapper::{GuidanceLabels, Mapping};

/// Extracts the four guidance labels from a complete mapping.
///
/// # Panics
///
/// Panics if the mapping is not complete (every node placed).
///
/// # Example
///
/// ```
/// use lisa_dfg::{Dfg, OpKind};
/// use lisa_arch::{Accelerator, PeId};
/// use lisa_mapper::Mapping;
/// use lisa_labels::extract::labels_from_mapping;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dfg = Dfg::new("t");
/// let a = dfg.add_node(OpKind::Load, "a");
/// let b = dfg.add_node(OpKind::Store, "b");
/// let e = dfg.add_data_edge(a, b)?;
/// let acc = Accelerator::cgra("2x2", 2, 2);
/// let mut m = Mapping::new(&dfg, &acc, 2)?;
/// m.place(a, PeId::new(0), 0)?;
/// m.place(b, PeId::new(1), 1)?;
/// m.route_edge(e)?;
/// let labels = labels_from_mapping(&m);
/// assert_eq!(labels.spatial[e.index()], 1.0);  // adjacent PEs
/// assert_eq!(labels.temporal[e.index()], 1.0); // one cycle apart
/// # Ok(())
/// # }
/// ```
pub fn labels_from_mapping(mapping: &Mapping<'_>) -> GuidanceLabels {
    let dfg = mapping.dfg();
    let acc = mapping.accelerator();
    assert!(
        mapping.unplaced_nodes().is_empty(),
        "label extraction requires a fully placed mapping"
    );

    // Label 1: schedule order = execution time normalised to the critical
    // path length.
    let cp = f64::from(lisa_dfg::analysis::critical_path_len(dfg));
    let makespan = f64::from(mapping.makespan().max(1));
    let schedule_order = dfg
        .node_ids()
        .map(|v| {
            let t = f64::from(mapping.placement(v).expect("placed").time);
            t / makespan * (cp - 1.0).max(1.0)
        })
        .collect();

    // Label 2: spatial distance between mapped same-level pairs.
    let same_level = same_level::dummy_edges(dfg)
        .iter()
        .map(|d| {
            let pa = mapping.placement(d.a).expect("placed");
            let pb = mapping.placement(d.b).expect("placed");
            (d.a, d.b, f64::from(acc.spatial_distance(pa.pe, pb.pe)))
        })
        .collect();

    // Labels 3 and 4: spatial and temporal mapping distance per edge.
    let mut spatial = Vec::with_capacity(dfg.edge_count());
    let mut temporal = Vec::with_capacity(dfg.edge_count());
    for e in dfg.edge_ids() {
        let edge = dfg.edge(e);
        let ps = mapping.placement(edge.src).expect("placed");
        let pd = mapping.placement(edge.dst).expect("placed");
        spatial.push(f64::from(acc.spatial_distance(ps.pe, pd.pe)));
        let dst_eff = pd.time + edge.kind.distance() * mapping.ii();
        temporal.push(f64::from(dst_eff) - f64::from(ps.time));
    }

    GuidanceLabels {
        schedule_order,
        same_level,
        spatial,
        temporal,
    }
}

/// Element-wise average of several label sets over the same DFG — the
/// paper combines candidate labels "using the average value of candidate
/// labels (including the standard one)" (§V-B).
///
/// # Panics
///
/// Panics if `sets` is empty or the sets have mismatched shapes.
pub fn average_labels(sets: &[GuidanceLabels]) -> GuidanceLabels {
    assert!(!sets.is_empty(), "need at least one label set");
    let n = sets.len() as f64;
    let first = &sets[0];
    let mut out = first.clone();
    for s in &sets[1..] {
        assert_eq!(s.schedule_order.len(), first.schedule_order.len());
        assert_eq!(s.spatial.len(), first.spatial.len());
        assert_eq!(s.same_level.len(), first.same_level.len());
        for (o, v) in out.schedule_order.iter_mut().zip(&s.schedule_order) {
            *o += v;
        }
        for (o, v) in out.spatial.iter_mut().zip(&s.spatial) {
            *o += v;
        }
        for (o, v) in out.temporal.iter_mut().zip(&s.temporal) {
            *o += v;
        }
        for (o, v) in out.same_level.iter_mut().zip(&s.same_level) {
            debug_assert_eq!((o.0, o.1), (v.0, v.1), "pair order mismatch");
            o.2 += v.2;
        }
    }
    for v in &mut out.schedule_order {
        *v /= n;
    }
    for v in &mut out.spatial {
        *v /= n;
    }
    for v in &mut out.temporal {
        *v /= n;
    }
    for v in &mut out.same_level {
        v.2 /= n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_arch::{Accelerator, PeId};
    use lisa_dfg::{Dfg, NodeId, OpKind};

    fn mapped_diamond<'a>(dfg: &'a Dfg, acc: &'a Accelerator) -> Mapping<'a> {
        let mut m = Mapping::new(dfg, acc, 3).unwrap();
        m.place(NodeId::new(0), PeId::new(0), 0).unwrap();
        m.place(NodeId::new(1), PeId::new(1), 1).unwrap();
        m.place(NodeId::new(2), PeId::new(2), 1).unwrap();
        m.place(NodeId::new(3), PeId::new(3), 2).unwrap();
        for e in dfg.edge_ids() {
            m.route_edge(e).unwrap();
        }
        m
    }

    fn diamond() -> Dfg {
        let mut g = Dfg::new("d");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        let c = g.add_node(OpKind::Mul, "c");
        let d = g.add_node(OpKind::Store, "d");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(a, c).unwrap();
        g.add_data_edge(b, d).unwrap();
        g.add_data_edge(c, d).unwrap();
        g
    }

    #[test]
    fn extraction_matches_geometry() {
        let dfg = diamond();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let m = mapped_diamond(&dfg, &acc);
        let labels = labels_from_mapping(&m);
        // Edge a->b: PE0 -> PE1 distance 1, 1 cycle.
        assert_eq!(labels.spatial[0], 1.0);
        assert_eq!(labels.temporal[0], 1.0);
        // b and c are same-level (children of a with common child d):
        // PE1 (0,1) to PE2 (1,0): Manhattan 2.
        assert_eq!(labels.same_level.len(), 1);
        assert_eq!(labels.same_level[0].2, 2.0);
        // Schedule order is normalised: source 0, sink = cp-1 = 2.
        assert_eq!(labels.schedule_order[0], 0.0);
        assert!((labels.schedule_order[3] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn recurrence_edge_temporal_includes_ii() {
        let mut g = Dfg::new("acc");
        let x = g.add_node(OpKind::Add, "x");
        let e = g.add_recurrence_edge(x, x, 1).unwrap();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let mut m = Mapping::new(&g, &acc, 2).unwrap();
        m.place(x, PeId::new(0), 0).unwrap();
        m.route_edge(e).unwrap();
        let labels = labels_from_mapping(&m);
        assert_eq!(labels.temporal[e.index()], 2.0); // distance * II
        assert_eq!(labels.spatial[e.index()], 0.0);
    }

    #[test]
    fn averaging_is_elementwise() {
        let dfg = diamond();
        let acc = Accelerator::cgra("2x2", 2, 2);
        let m = mapped_diamond(&dfg, &acc);
        let l1 = labels_from_mapping(&m);
        let mut l2 = l1.clone();
        l2.spatial[0] = 3.0;
        l2.schedule_order[1] += 1.0;
        let avg = average_labels(&[l1.clone(), l2]);
        assert!((avg.spatial[0] - 2.0).abs() < 1e-9);
        assert!((avg.schedule_order[1] - (l1.schedule_order[1] + 0.5)).abs() < 1e-9);
        // Untouched entries unchanged.
        assert_eq!(avg.temporal, l1.temporal);
    }

    #[test]
    #[should_panic(expected = "need at least one label set")]
    fn empty_average_panics() {
        let _ = average_labels(&[]);
    }
}
