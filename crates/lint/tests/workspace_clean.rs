//! Meta-test: the committed workspace lints clean under the committed
//! `lint.toml`. This is the same scan `scripts/verify.sh` gates on, so
//! a violation fails `cargo test` even before the gate runs.

use std::path::Path;

use lisa_lint::{config, lint_root, render_text};

#[test]
fn workspace_is_clean_under_the_committed_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml is committed");
    let config = config::parse(&text).expect("lint.toml parses");
    let outcome = lint_root(&root, &config).expect("workspace scan");
    assert!(outcome.clean(), "\n{}", render_text(&outcome));
    // Sanity: the scan really covered the workspace (a misconfigured
    // root that scans nothing would pass vacuously).
    assert!(
        outcome.files_scanned > 50,
        "only {} files scanned — lint.toml roots look wrong",
        outcome.files_scanned
    );
}
