//! Every rule is pinned to a fixture seeded with known violations: the
//! checker must report exactly those file:line pairs — no more (false
//! positives in strings/comments/test modules) and no fewer (waivers
//! must not over-suppress).

use std::path::Path;

use lisa_lint::{lint_text, Config, RuleId, CATALOG};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Findings for one fixture as (line, rule), with the file name checked.
fn findings(name: &str, rules: &[RuleId]) -> Vec<(usize, RuleId)> {
    let mut config = Config::default();
    for &rule in rules {
        config
            .rule_paths
            .insert(rule, vec!["fixtures/".to_string()]);
    }
    let rel = format!("fixtures/{name}");
    lint_text(&config, &rel, &fixture(name))
        .into_iter()
        .map(|f| {
            assert_eq!(f.file, rel);
            (f.line, f.rule)
        })
        .collect()
}

#[test]
fn every_rule_has_a_fixture() {
    for rule in CATALOG {
        let name = format!("{}.rs", rule.as_str().to_lowercase());
        assert!(
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("fixtures")
                .join(&name)
                .is_file(),
            "missing fixture {name}"
        );
    }
}

#[test]
fn det001_reports_exact_lines() {
    use RuleId::Det001;
    assert_eq!(
        findings("det001.rs", &[Det001]),
        [(5, Det001), (6, Det001), (9, Det001), (10, Det001)]
    );
}

#[test]
fn det002_reports_exact_lines() {
    use RuleId::Det002;
    assert_eq!(
        findings("det002.rs", &[Det002]),
        [(5, Det002), (6, Det002), (9, Det002)]
    );
}

#[test]
fn det003_reports_exact_lines() {
    use RuleId::Det003;
    // Line 5 fires twice: `rand::` and `thread_rng` are distinct signals.
    assert_eq!(
        findings("det003.rs", &[Det003]),
        [(5, Det003), (5, Det003), (6, Det003)]
    );
}

#[test]
fn safe001_reports_exact_lines() {
    use RuleId::Safe001;
    // One bare `unsafe`; the `// SAFETY:` and `# Safety` sites pass.
    assert_eq!(findings("safe001.rs", &[Safe001]), [(5, Safe001)]);
}

#[test]
fn panic001_reports_exact_lines() {
    use RuleId::Panic001;
    // `unwrap_or_else(PoisonError::into_inner)` on line 14 must not fire.
    assert_eq!(
        findings("panic001.rs", &[Panic001]),
        [(5, Panic001), (6, Panic001), (8, Panic001)]
    );
}

#[test]
fn evt001_reports_exact_lines() {
    use RuleId::Evt001;
    // Only the unwaived observer-impl lines; the same calls outside an
    // `impl … Observer for` block are clean.
    assert_eq!(
        findings("evt001.rs", &[Evt001]),
        [(10, Evt001), (11, Evt001)]
    );
}

#[test]
fn lint001_polices_waivers() {
    use RuleId::{Lint001, Panic001};
    // Stale (5), unknown rule (11), missing reason (17) — and the
    // reason-less waiver does NOT suppress the violation it sits on (18).
    assert_eq!(
        findings("lint001.rs", &[Panic001]),
        [(5, Lint001), (11, Lint001), (17, Lint001), (18, Panic001)]
    );
}
