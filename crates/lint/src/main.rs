//! The `lisa-lint` binary — the tier-1 static-analysis gate.
//!
//! ```text
//! lisa-lint [--root DIR] [--config FILE] [--json] [FILE...]
//! ```
//!
//! With no file arguments, walks the `[scan] roots` of `lint.toml`
//! (resolved relative to `--root`, default the current directory) and
//! exits nonzero when any unwaived finding exists — `scripts/verify.sh`
//! runs exactly that between `cargo fmt --check` and the test tier.
//! Explicit file arguments restrict the scan to those files (still
//! rule-scoped by their paths). `--json` emits the `lisa-lint v1`
//! document instead of text, so findings can be diffed across PRs like
//! the bench JSON.

use std::path::PathBuf;
use std::process::ExitCode;

use lisa_lint::{config, lint_root, lint_text, render_json, render_text, Outcome};

struct Args {
    root: PathBuf,
    config: PathBuf,
    json: bool,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: PathBuf::from("lint.toml"),
        json: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a value")?.into(),
            "--config" => args.config = it.next().ok_or("--config needs a value")?.into(),
            "--json" => args.json = true,
            "--help" | "-h" => {
                return Err(
                    "usage: lisa-lint [--root DIR] [--config FILE] [--json] [FILE...]".to_string(),
                )
            }
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<Outcome, String> {
    let config_path = if args.config.is_absolute() {
        args.config.clone()
    } else {
        args.root.join(&args.config)
    };
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
    let config = config::parse(&text).map_err(|e| e.to_string())?;
    if args.files.is_empty() {
        return lint_root(&args.root, &config).map_err(|e| format!("scanning: {e}"));
    }
    let mut outcome = Outcome::default();
    for file in &args.files {
        let source = std::fs::read_to_string(args.root.join(file))
            .map_err(|e| format!("reading {file}: {e}"))?;
        let rel = file.trim_start_matches("./");
        outcome.findings.extend(lint_text(&config, rel, &source));
        outcome.files_scanned += 1;
    }
    Ok(outcome)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(outcome) => {
            print!(
                "{}",
                if args.json {
                    render_json(&outcome)
                } else {
                    render_text(&outcome)
                }
            );
            if outcome.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("lisa-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
