//! `lisa-lint` — static analysis for the invariants the LISA workspace
//! is built on.
//!
//! Everything downstream of the mapper assumes mapping is a *pure,
//! reproducible function*: the deterministic parallel portfolio, the
//! byte-identical training resume, and the content-addressed
//! `lisa-serve` cache are all unsound the moment a `HashMap` iteration
//! order, a wall-clock read, or an ambient RNG call leaks into an
//! output. This crate walks the workspace source with a
//! comment/string/`#[cfg(test)]`-aware line lexer ([`lexer`]) and
//! enforces a repo-specific rule catalog ([`rules`]), configured per
//! path in `lint.toml` ([`config`]) and waivable inline with a
//! mandatory reason. `scripts/verify.sh` runs the binary as a tier-1
//! gate: any unwaived finding fails the build.
//!
//! Like `lisa-rng` and `lisa-bench`, the crate is hermetic — zero
//! registry dependencies — so the gate works offline from a clean
//! checkout.

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Config, ConfigError};
pub use rules::{check_file, Finding, RuleId, CATALOG};

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The result of linting a file set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Outcome {
    /// All findings, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// Whether the gate passes.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints one in-memory file against the rules `config` assigns to its
/// path. Exposed for fixture tests; [`lint_root`] is the directory
/// walker built on it.
pub fn lint_text(config: &Config, rel_path: &str, source: &str) -> Vec<Finding> {
    let lines = lexer::lex(source);
    check_file(rel_path, &lines, &config.rules_for(rel_path))
}

/// Walks `config.roots` under `root` and lints every `.rs` file not
/// excluded. Files are visited in sorted path order, so reports (and
/// their JSON diffs across PRs) are deterministic.
///
/// # Errors
///
/// Propagates filesystem failures; an unreadable source file is an
/// error, not a skip (a gate that skips what it cannot read is no gate).
pub fn lint_root(root: &Path, config: &Config) -> io::Result<Outcome> {
    let mut files = Vec::new();
    for r in &config.roots {
        collect_rs_files(root, &root.join(r), config, &mut files)?;
    }
    files.sort();
    let mut outcome = Outcome::default();
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel_unix(&rel);
        outcome
            .findings
            .extend(lint_text(config, &rel_str, &source));
        outcome.files_scanned += 1;
    }
    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(outcome)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<PathBuf>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let rel_str = rel_unix(&rel);
        if config.excluded(&rel_str) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, config, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Root-relative path with `/` separators (stable across platforms, so
/// findings and waiver paths in `lint.toml` are portable).
fn rel_unix(path: &Path) -> String {
    path.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Human-readable report: one `file:line: RULE message` block per
/// finding, with the fix hint, ending in a summary line.
pub fn render_text(outcome: &Outcome) -> String {
    let mut out = String::new();
    for f in &outcome.findings {
        let _ = writeln!(
            out,
            "{}:{}: {} {}\n    hint: {}",
            f.file,
            f.line,
            f.rule.as_str(),
            f.message,
            f.rule.hint()
        );
    }
    let _ = writeln!(
        out,
        "lisa-lint: {} finding(s) in {} file(s)",
        outcome.findings.len(),
        outcome.files_scanned
    );
    out
}

/// Machine-readable report (`lisa-lint v1` JSON): findings can be
/// diffed across PRs like the bench JSON artifacts.
pub fn render_json(outcome: &Outcome) -> String {
    let mut out = String::from("{\n  \"lisa-lint\": \"v1\",\n  \"findings\": [");
    for (i, f) in outcome.findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"hint\": {}}}",
            json_string(&f.file),
            f.line,
            json_string(f.rule.as_str()),
            json_string(&f.message),
            json_string(f.rule.hint())
        );
    }
    if !outcome.findings.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(
        out,
        "],\n  \"files_scanned\": {},\n  \"findings_total\": {}\n}}\n",
        outcome.files_scanned,
        outcome.findings.len()
    );
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_all(path_prefix: &str) -> Config {
        let mut c = Config {
            roots: vec!["src".to_string()],
            ..Config::default()
        };
        for rule in CATALOG {
            c.rule_paths.insert(rule, vec![path_prefix.to_string()]);
        }
        c
    }

    #[test]
    fn lint_text_applies_only_configured_rules() {
        let src = "use std::collections::HashMap;\n";
        let all = config_all("src/");
        assert_eq!(lint_text(&all, "src/a.rs", src).len(), 1);
        assert!(lint_text(&all, "other/a.rs", src).is_empty());
    }

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let outcome = Outcome {
            findings: vec![Finding {
                file: "a\"b.rs".to_string(),
                line: 3,
                rule: RuleId::Det001,
                message: "uses `HashMap`".to_string(),
            }],
            files_scanned: 2,
        };
        let json = render_json(&outcome);
        assert!(json.contains("\"lisa-lint\": \"v1\""));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("\"findings_total\": 1"));
        // Balanced braces/brackets (cheap well-formedness probe).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_outcome_renders_cleanly() {
        let outcome = Outcome::default();
        assert!(render_text(&outcome).contains("0 finding(s)"));
        assert!(render_json(&outcome).contains("\"findings\": [],"));
    }
}
