//! `lint.toml` — which files are scanned and which rule applies where.
//!
//! The workspace is hermetic (no registry dependencies), so this module
//! carries its own parser for the small TOML subset the config uses:
//! `[section]` headers, `key = "string"`, and (possibly multi-line)
//! `key = ["a", "b"]` string arrays. Comments start with `#` outside
//! strings. Anything beyond that subset is a [`ConfigError`], not a
//! silent skip — a typo in the gate's own config must fail the gate.

use std::collections::BTreeMap;
use std::fmt;

use crate::rules::RuleId;

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Directories (relative to the lint root) walked for `.rs` files.
    pub roots: Vec<String>,
    /// Path substrings excluded from the walk (fixture trees, test
    /// directories).
    pub exclude: Vec<String>,
    /// Per-rule path prefixes; a rule applies to a file iff some prefix
    /// matches. Paths use `/` separators relative to the lint root.
    pub rule_paths: BTreeMap<RuleId, Vec<String>>,
}

impl Config {
    /// The rules that apply to `rel_path` (a `/`-separated path relative
    /// to the lint root).
    pub fn rules_for(&self, rel_path: &str) -> Vec<RuleId> {
        self.rule_paths
            .iter()
            .filter(|(_, prefixes)| prefixes.iter().any(|p| rel_path.starts_with(p.as_str())))
            .map(|(&rule, _)| rule)
            .collect()
    }

    /// Whether the walker should skip `rel_path`.
    pub fn excluded(&self, rel_path: &str) -> bool {
        self.exclude.iter().any(|e| rel_path.contains(e.as_str()))
    }
}

/// Why `lint.toml` failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in the config file (0 for end-of-file conditions).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Parses the config text.
///
/// # Errors
///
/// Any line outside the supported subset, an unknown section or rule
/// name, or an unterminated array.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut config = Config::default();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            let known = section == "scan"
                || section
                    .strip_prefix("rules.")
                    .is_some_and(|r| RuleId::parse(r).is_some());
            if !known {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown section `[{section}]`"),
                });
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            });
        };
        let key = key.trim();
        let mut value = value.trim().to_string();
        // Multi-line arrays: keep consuming lines until brackets close.
        while value.starts_with('[') && !value.ends_with(']') {
            let Some((_, next)) = lines.next() else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unterminated array for `{key}`"),
                });
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let items = parse_string_array(&value).ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("`{key}` must be a string or an array of strings"),
        })?;
        match (section.as_str(), key) {
            ("scan", "roots") => config.roots = items,
            ("scan", "exclude") => config.exclude = items,
            (s, "paths") => {
                let rule = s
                    .strip_prefix("rules.")
                    .and_then(RuleId::parse)
                    .ok_or_else(|| ConfigError {
                        line: lineno,
                        message: format!("`paths` outside a `[rules.*]` section (in `[{s}]`)"),
                    })?;
                config.rule_paths.insert(rule, items);
            }
            (s, k) => {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown key `{k}` in section `[{s}]`"),
                });
            }
        }
    }
    if config.roots.is_empty() {
        return Err(ConfigError {
            line: 0,
            message: "missing `[scan] roots`".to_string(),
        });
    }
    Ok(config)
}

/// Drops a trailing `# …` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"a"` (singleton) or `["a", "b"]` into the item list.
fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = if let Some(stripped) = value.strip_prefix('[') {
        stripped.strip_suffix(']')?
    } else {
        // A bare string is a one-element list.
        return Some(vec![parse_string(value)?]);
    };
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        items.push(parse_string(part)?);
    }
    Some(items)
}

fn parse_string(value: &str) -> Option<String> {
    value
        .strip_prefix('"')?
        .strip_suffix('"')
        .map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let text = r#"
# top comment
[scan]
roots = ["crates", "src"] # trailing
exclude = ["/tests/"]

[rules.DET001]
paths = [
    "crates/core/",
    "crates/mapper/", # comment inside array
]

[rules.PANIC001]
paths = "crates/serve/src/"
"#;
        let c = parse(text).unwrap();
        assert_eq!(c.roots, ["crates", "src"]);
        assert_eq!(c.exclude, ["/tests/"]);
        assert_eq!(
            c.rule_paths[&RuleId::Det001],
            ["crates/core/", "crates/mapper/"]
        );
        assert_eq!(c.rule_paths[&RuleId::Panic001], ["crates/serve/src/"]);
        assert_eq!(c.rules_for("crates/mapper/src/sa.rs"), [RuleId::Det001]);
        assert!(c.rules_for("crates/arch/src/pe.rs").is_empty());
        assert!(c.excluded("crates/gnn/tests/determinism.rs"));
    }

    #[test]
    fn unknown_rule_section_is_an_error() {
        let err = parse("[rules.NOPE]\npaths = [\"x\"]\n").unwrap_err();
        assert!(err.message.contains("unknown section"), "{err}");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn missing_roots_is_an_error() {
        let err = parse("[rules.DET001]\npaths = [\"x\"]\n").unwrap_err();
        assert!(err.message.contains("roots"), "{err}");
    }

    #[test]
    fn malformed_lines_are_errors_not_skips() {
        assert!(parse("[scan]\nroots\n").is_err());
        assert!(parse("[scan]\nroots = [unquoted]\n").is_err());
        assert!(parse("[scan]\nroots = [\"a\"\n").is_err());
        assert!(parse("[scan]\nbogus = \"x\"\n").is_err());
    }
}
