//! The rule catalog and the per-file checker.
//!
//! Each rule protects a system invariant documented in DESIGN.md
//! ("Static invariant catalog"): cache-key soundness, byte-identical
//! resume, daemon availability. Rules operate on the code projection of
//! non-test lines ([`crate::lexer`]), so strings, comments, and
//! `#[cfg(test)]` modules never produce findings.
//!
//! Findings are waivable inline:
//!
//! ```text
//! // lisa-lint: allow(DET001) membership-only set; iteration never runs
//! ```
//!
//! A waiver covers its own line and, when it is a comment-only line, the
//! next code line (consecutive waiver lines stack). The reason text is
//! mandatory — a bare `allow(RULE)` is itself a finding (`LINT001`), as
//! is a waiver naming an unknown rule. Waivers that never match a
//! finding are reported too: a stale waiver hides nothing but rots into
//! false documentation.

use crate::lexer::LexedLine;

/// Identifier of one rule in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// No `HashMap`/`HashSet` in determinism-critical crates.
    Det001,
    /// No wall-clock reads in code feeding cache-keyed bodies or
    /// serialized artifacts.
    Det002,
    /// No ambient randomness; RNG flows from a seeded `lisa_rng` handle.
    Det003,
    /// Every `unsafe` block or fn carries a `// SAFETY:` justification.
    Safe001,
    /// No panic paths (`unwrap`/`expect`/`panic!`/`todo!`) in
    /// daemon-request and pipeline-resume code.
    Panic001,
    /// `lisa-events` observer callbacks must not mutate
    /// trajectory-affecting state.
    Evt001,
    /// Meta-rule: malformed or unused waiver comments.
    Lint001,
}

/// Every real (waivable, configurable) rule. `LINT001` is excluded: it
/// polices the waiver mechanism itself and always applies.
pub const CATALOG: [RuleId; 6] = [
    RuleId::Det001,
    RuleId::Det002,
    RuleId::Det003,
    RuleId::Safe001,
    RuleId::Panic001,
    RuleId::Evt001,
];

impl RuleId {
    /// The stable rule name used in config, waivers, and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::Det001 => "DET001",
            RuleId::Det002 => "DET002",
            RuleId::Det003 => "DET003",
            RuleId::Safe001 => "SAFE001",
            RuleId::Panic001 => "PANIC001",
            RuleId::Evt001 => "EVT001",
            RuleId::Lint001 => "LINT001",
        }
    }

    /// Parses a rule name (as written in config or a waiver).
    pub fn parse(name: &str) -> Option<RuleId> {
        match name {
            "DET001" => Some(RuleId::Det001),
            "DET002" => Some(RuleId::Det002),
            "DET003" => Some(RuleId::Det003),
            "SAFE001" => Some(RuleId::Safe001),
            "PANIC001" => Some(RuleId::Panic001),
            "EVT001" => Some(RuleId::Evt001),
            "LINT001" => Some(RuleId::Lint001),
            _ => None,
        }
    }

    /// The fix hint printed with each finding.
    pub fn hint(self) -> &'static str {
        match self {
            RuleId::Det001 => {
                "use BTreeMap/BTreeSet or a sorted Vec; if iteration provably \
                 never reaches output, waive with the proof as the reason"
            }
            RuleId::Det002 => {
                "response bodies and artifacts must be wall-clock-free; move \
                 timing into lisa-events telemetry"
            }
            RuleId::Det003 => "take a seeded lisa_rng::Rng handle from the caller",
            RuleId::Safe001 => {
                "state the preconditions (bounds, alignment, CPU-feature gate) \
                 in a `// SAFETY:` comment immediately above"
            }
            RuleId::Panic001 => {
                "return a typed error (ServeError/PipelineError) instead; the \
                 daemon answers `status error`, it does not die"
            }
            RuleId::Evt001 => {
                "observers are read-only taps; route state changes through the \
                 owning stage, not the callback"
            }
            RuleId::Lint001 => "write `// lisa-lint: allow(RULE) <reason>` with a non-empty reason",
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Root-relative `/`-separated path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: RuleId,
    /// What was found, with the offending token.
    pub message: String,
}

/// A parsed `// lisa-lint: allow(...)` comment.
#[derive(Debug)]
struct Waiver {
    line: usize,
    /// `None` for an unparseable rule name.
    rule: Option<RuleId>,
    reason_given: bool,
    /// Whether the waiver line has code of its own (trailing comment) —
    /// then it covers only that line, not the next.
    trailing: bool,
    used: bool,
}

const WAIVER_MARKER: &str = "lisa-lint: allow(";

/// Checks one lexed file against the rules configured for it.
pub fn check_file(rel_path: &str, lines: &[LexedLine], rules: &[RuleId]) -> Vec<Finding> {
    let mut waivers = collect_waivers(lines);
    let mut findings = Vec::new();

    let observer_lines = observer_impl_lines(lines);
    for line in lines.iter().filter(|l| !l.in_test) {
        for &rule in rules {
            for message in match_rule(rule, line, &observer_lines) {
                // SAFE001's escape hatch is the SAFETY comment itself
                // (same line, or the contiguous comment/attribute run
                // above), not a waiver.
                if rule == RuleId::Safe001
                    && (line.comment.contains("SAFETY:")
                        || has_safety_comment_above(lines, line.number))
                {
                    continue;
                }
                if let Some(w) = waiver_for(&mut waivers, lines, line.number, rule) {
                    w.used = true;
                    continue;
                }
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line.number,
                    rule,
                    message,
                });
            }
        }
    }

    // The waiver mechanism polices itself: missing reasons, unknown rule
    // names, and waivers that matched nothing are all findings.
    for w in &waivers {
        let message = match w.rule {
            None => "waiver names an unknown rule".to_string(),
            Some(rule) if !w.reason_given => {
                format!("waiver for {} is missing its reason", rule.as_str())
            }
            Some(rule) if !w.used => {
                format!("waiver for {} matched no finding (stale?)", rule.as_str())
            }
            Some(_) => continue,
        };
        findings.push(Finding {
            file: rel_path.to_string(),
            line: w.line,
            rule: RuleId::Lint001,
            message,
        });
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Pattern checks for one rule against one line; returns the finding
/// messages (usually zero or one).
fn match_rule(rule: RuleId, line: &LexedLine, observer_lines: &[usize]) -> Vec<String> {
    let code = line.code.as_str();
    let mut out = Vec::new();
    match rule {
        RuleId::Det001 => {
            for ident in ["HashMap", "HashSet"] {
                if contains_word(code, ident) {
                    out.push(format!(
                        "`{ident}` in a determinism-critical crate: iteration \
                         order is seeded per process and can leak into output"
                    ));
                }
            }
        }
        RuleId::Det002 => {
            for pat in ["SystemTime::now", "Instant::now", "UNIX_EPOCH"] {
                if code.contains(pat) {
                    out.push(format!(
                        "`{pat}` in code that feeds cache-keyed response bodies \
                         or serialized artifacts"
                    ));
                }
            }
        }
        RuleId::Det003 => {
            for pat in ["thread_rng", "from_entropy", "RandomState", "rand::"] {
                if code.contains(pat) {
                    out.push(format!(
                        "`{pat}`: ambient randomness breaks byte-identical reruns"
                    ));
                }
            }
        }
        RuleId::Safe001 => {
            if contains_word(code, "unsafe") {
                out.push(
                    "`unsafe` without a `// SAFETY:` comment on the preceding \
                     lines"
                        .to_string(),
                );
            }
        }
        RuleId::Panic001 => {
            for pat in [".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"] {
                if code.contains(pat) {
                    out.push(format!(
                        "`{pat}` on a no-panic path: a panic here kills the \
                         daemon or tears a resume"
                    ));
                }
            }
        }
        RuleId::Evt001 => {
            if observer_lines.contains(&line.number) {
                for pat in [
                    "begin_txn",
                    ".commit(",
                    ".rollback(",
                    ".anneal(",
                    ".train(",
                    "map_request(",
                    ".emit(",
                ] {
                    if code.contains(pat) {
                        out.push(format!(
                            "`{pat}` inside an `impl Observer` callback: \
                             observers must not steer the trajectory"
                        ));
                    }
                }
            }
        }
        RuleId::Lint001 => {}
    }
    out
}

/// Whether a `SAFETY:` comment (or a `# Safety` doc section) appears on
/// the contiguous run of comment/attribute lines directly above
/// `number`.
fn has_safety_comment_above(lines: &[LexedLine], number: usize) -> bool {
    // `number` is 1-based; scan upward from the line above it.
    let mut idx = number - 1;
    while idx > 0 {
        idx -= 1;
        let l = &lines[idx];
        let comment_only = !l.has_code();
        let attribute = l.is_attribute_only();
        if !comment_only && !attribute {
            return false;
        }
        if l.comment.contains("SAFETY:") || l.comment.contains("# Safety") {
            return true;
        }
    }
    false
}

/// Lines (1-based) that sit inside an `impl … Observer for …` block.
fn observer_impl_lines(lines: &[LexedLine]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_close: Option<i64> = None;
    for line in lines {
        if region_close.is_none()
            && line.code.contains("impl")
            && line.code.contains("Observer for")
        {
            pending = true;
        }
        let mut inside = region_close.is_some();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending && region_close.is_none() {
                        region_close = Some(depth);
                        pending = false;
                        inside = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_close == Some(depth) {
                        region_close = None;
                    }
                }
                _ => {}
            }
        }
        if inside {
            out.push(line.number);
        }
    }
    out
}

/// Collects every waiver comment in the file.
fn collect_waivers(lines: &[LexedLine]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for line in lines {
        if line.doc {
            continue;
        }
        let Some(pos) = line.comment.find(WAIVER_MARKER) else {
            continue;
        };
        let rest = &line.comment[pos + WAIVER_MARKER.len()..];
        let (rule, reason_given) = match rest.split_once(')') {
            Some((name, reason)) => (RuleId::parse(name.trim()), !reason.trim().is_empty()),
            None => (None, false),
        };
        out.push(Waiver {
            line: line.number,
            rule,
            reason_given,
            trailing: line.has_code(),
            used: false,
        });
    }
    out
}

/// The waiver covering (`number`, `rule`), if any: either a trailing
/// waiver on the line itself, or a comment-line waiver on the contiguous
/// run of comment-only lines directly above.
fn waiver_for<'w>(
    waivers: &'w mut [Waiver],
    lines: &[LexedLine],
    number: usize,
    rule: RuleId,
) -> Option<&'w mut Waiver> {
    // The contiguous run of comment-only waiver lines above `number`.
    let mut lo = number;
    while lo > 1 {
        let above = &lines[lo - 2];
        if above.has_code() || above.doc || !above.comment.contains(WAIVER_MARKER) {
            break;
        }
        lo -= 1;
    }
    waivers.iter_mut().find(|w| {
        w.rule == Some(rule)
            && w.reason_given
            && (w.line == number || (!w.trailing && (lo..number).contains(&w.line)))
    })
}

/// Whole-word containment: `pat` not flanked by identifier characters.
fn contains_word(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(at) = code[start..].find(pat) {
        let at = start + at;
        let before = code[..at].chars().last();
        let after = code[at + pat.len()..].chars().next();
        let is_ident = |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !is_ident(before) && !is_ident(after) {
            return true;
        }
        start = at + pat.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, rules: &[RuleId]) -> Vec<Finding> {
        check_file("test.rs", &lex(src), rules)
    }

    #[test]
    fn word_boundaries_protect_lookalikes() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("struct MyHashMap;", "HashMap"));
        assert!(!contains_word("HashMapLike", "HashMap"));
    }

    #[test]
    fn trailing_waiver_covers_its_own_line_only() {
        let src = "let m = HashMap::new(); // lisa-lint: allow(DET001) lookup only\nlet n = HashMap::new();";
        let f = run(src, &[RuleId::Det001]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn comment_line_waivers_stack_over_the_next_code_line() {
        let src = "// lisa-lint: allow(DET001) membership only\n// lisa-lint: allow(DET003) seeded upstream\nlet m = HashMap::with_hasher(rand::thing());";
        let f = run(src, &[RuleId::Det001, RuleId::Det003]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn waiver_without_reason_is_a_finding_and_does_not_waive() {
        let src = "// lisa-lint: allow(DET001)\nlet m = HashMap::new();";
        let f = run(src, &[RuleId::Det001]);
        let rules: Vec<_> = f.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&RuleId::Det001), "{f:?}");
        assert!(rules.contains(&RuleId::Lint001), "{f:?}");
    }

    #[test]
    fn doc_comment_waiver_examples_are_inert() {
        // A doc comment may show a verbatim waiver without creating one
        // (or a stale-waiver finding).
        let src = "/// // lisa-lint: allow(DET001) membership only\nlet m = HashMap::new();";
        let f = run(src, &[RuleId::Det001]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::Det001);
    }

    #[test]
    fn unknown_rule_waiver_is_a_finding() {
        let f = run("// lisa-lint: allow(BOGUS) why\nlet x = 1;", &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::Lint001);
    }

    #[test]
    fn stale_waiver_is_a_finding() {
        let f = run("// lisa-lint: allow(DET001) nothing here\nlet x = 1;", &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("stale"), "{f:?}");
    }

    #[test]
    fn safety_comment_suppresses_safe001_across_attributes() {
        let ok = "/// # Safety\n/// caller checked avx2\n#[target_feature(enable = \"avx2\")]\nunsafe fn f() {}";
        assert!(run(ok, &[RuleId::Safe001]).is_empty());
        let ok2 = "// SAFETY: i < len checked above\nlet x = unsafe { *p.get_unchecked(i) };";
        assert!(run(ok2, &[RuleId::Safe001]).is_empty());
        let bad = "fn g() {}\nlet x = unsafe { *p.get_unchecked(i) };";
        assert_eq!(run(bad, &[RuleId::Safe001]).len(), 1);
    }

    #[test]
    fn panic_patterns_skip_unwrap_or_else() {
        let src = "m.lock().unwrap_or_else(PoisonError::into_inner);\nm.lock().unwrap();";
        let f = run(src, &[RuleId::Panic001]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn evt001_fires_only_inside_observer_impls() {
        let src = "impl Observer for Tap {\n    fn event(&self, e: &E) {\n        self.sink.emit(e);\n    }\n}\nfn free() { sink.emit(x); }";
        let f = run(src, &[RuleId::Evt001]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { x.unwrap(); }\n}";
        assert!(run(src, &[RuleId::Det001, RuleId::Panic001]).is_empty());
    }
}
