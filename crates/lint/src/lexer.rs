//! A line lexer that separates code from comments and blanks out string
//! and character literals, so rule patterns never fire inside a string,
//! a doc comment, or a `#[cfg(test)]` module.
//!
//! This is deliberately not a full Rust parser: rules match on
//! line-local token patterns (`HashMap`, `.unwrap()`, `unsafe`), so the
//! lexer only has to answer three questions exactly:
//!
//! 1. which bytes of a line are *code* (literal contents replaced by
//!    spaces so offsets survive),
//! 2. which bytes are *comment text* (`//`, `///`, `//!`, and `/* */`
//!    including nesting — waivers and `// SAFETY:` discipline live
//!    here), and
//! 3. whether the line sits inside a test-gated region
//!    (`#[cfg(test)] mod … { … }` or a `#[test]` item), which the rule
//!    catalog exempts wholesale.
//!
//! Multi-line constructs — block comments, plain and raw string
//! literals — carry state across lines; everything else is resolved
//! within one line. Unterminated constructs at end of file are treated
//! leniently (the remainder is swallowed in its current mode) because
//! the workspace gate runs after `cargo build`, which has already
//! rejected genuinely malformed source.

/// One source line, split into its code and comment projections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexedLine {
    /// 1-based line number.
    pub number: usize,
    /// The code projection: comments removed, string/char literal
    /// contents replaced by spaces (quotes kept so the text stays
    /// readable in findings).
    pub code: String,
    /// Concatenated comment text of the line (line, doc, and block
    /// comment bodies), without the comment markers.
    pub comment: String,
    /// Whether the line's comment is a doc comment (`///` or `//!`).
    /// Waivers are only honoured in plain comments, so documentation can
    /// show verbatim waiver examples without creating one.
    pub doc: bool,
    /// Whether the line is inside a `#[cfg(test)]`/`#[test]`-gated item.
    pub in_test: bool,
}

impl LexedLine {
    /// Whether the code projection holds anything but whitespace.
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }

    /// Whether the code projection is only an attribute (possibly the
    /// start of a multi-line attribute), e.g. `#[inline]`.
    pub fn is_attribute_only(&self) -> bool {
        let t = self.code.trim();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

/// Cross-line lexer mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside `/* */`, with the current nesting depth (Rust block
    /// comments nest).
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` followed by this many
    /// `#`s.
    RawStr(u32),
}

/// Lexes a whole file into per-line code/comment projections with
/// test-region marking.
pub fn lex(source: &str) -> Vec<LexedLine> {
    let mut mode = Mode::Code;
    let mut lines = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let (code, comment, doc, next) = lex_line(raw, mode);
        mode = next;
        lines.push(LexedLine {
            number: idx + 1,
            code,
            comment,
            doc,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    lines
}

/// Lexes one line starting in `mode`; returns (code, comment, whether
/// the comment is a doc comment, next mode).
#[allow(clippy::too_many_lines)]
fn lex_line(raw: &str, mut mode: Mode) -> (String, String, bool, Mode) {
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut doc = false;
    let bytes: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::Code => {
                if c == '/' && next == Some('/') {
                    // Line comment (also /// and //!): rest is comment.
                    doc = matches!(bytes.get(i + 2), Some('/' | '!'));
                    comment.extend(bytes[i + 2..].iter());
                    break;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                    continue;
                }
                // Raw (and byte/raw-byte) string openers: r"…", r#"…"#,
                // br"…", b"…".
                if (c == 'r' || c == 'b') && !prev_is_ident(&code) {
                    if let Some((hashes, consumed)) = raw_string_open(&bytes[i..]) {
                        code.push('"');
                        mode = Mode::RawStr(hashes);
                        i += consumed;
                        continue;
                    }
                    if c == 'b' && next == Some('"') {
                        code.push('"');
                        mode = Mode::Str;
                        i += 2;
                        continue;
                    }
                }
                if c == '\'' {
                    // Distinguish a char literal from a lifetime. A char
                    // literal closes with a `'` after one (possibly
                    // escaped) character; a lifetime never closes.
                    if let Some(consumed) = char_literal_len(&bytes[i..]) {
                        code.push('\'');
                        for _ in 0..consumed.saturating_sub(2) {
                            code.push(' ');
                        }
                        code.push('\'');
                        i += consumed;
                        continue;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            Mode::Block(depth) => {
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                    continue;
                }
                comment.push(c);
                i += 1;
            }
            Mode::Str => {
                if c == '\\' {
                    // Escapes, including an escaped quote and the
                    // trailing-backslash line continuation.
                    code.push(' ');
                    if next.is_some() {
                        code.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                    continue;
                }
                code.push(' ');
                i += 1;
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes[i + 1..], hashes) {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                    continue;
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    (code, comment, doc, mode)
}

/// Whether the code emitted so far ends in an identifier character (so
/// `r`/`b` here would be the tail of a name like `var`, not a raw-string
/// prefix).
fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Detects `r`/`rb`/`br` raw-string openers at the slice start; returns
/// (hash count, chars consumed through the opening quote).
fn raw_string_open(s: &[char]) -> Option<(u32, usize)> {
    let mut i = 1;
    if s[0] == 'b' {
        if s.get(1) != Some(&'r') {
            return None;
        }
        i = 2;
    } else if s[0] != 'r' {
        return None;
    }
    let mut hashes = 0u32;
    while s.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    (s.get(i) == Some(&'"')).then_some((hashes, i + 1))
}

/// Whether the `"` just seen closes a raw string with `hashes` hashes.
fn closes_raw(rest: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| rest.get(k) == Some(&'#'))
}

/// If the slice (starting at a `'`) begins a char literal, returns its
/// total length in chars; `None` means it is a lifetime.
fn char_literal_len(s: &[char]) -> Option<usize> {
    match s.get(1)? {
        '\\' => {
            // Escaped char: scan to the closing quote (handles \u{…}).
            let mut i = 2;
            while let Some(&c) = s.get(i) {
                if c == '\'' {
                    return Some(i + 1);
                }
                i += 1;
            }
            None
        }
        &c => {
            // `'x'` is a char literal; `'a` (no closing quote right
            // after one char) is a lifetime. `''` never occurs in valid
            // Rust.
            (c != '\'' && s.get(2) == Some(&'\'')).then_some(3)
        }
    }
}

/// Marks every line inside a `#[cfg(test)]`- or `#[test]`-gated item.
///
/// Strategy: brace depth over the code projections. When a test
/// attribute is seen, the next `{` opens the gated region at the depth
/// it was seen; the region closes when depth returns there. A gated
/// item that ends in `;` before any `{` (e.g. `#[cfg(test)] use …;`)
/// just clears the pending attribute.
fn mark_test_regions(lines: &mut [LexedLine]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_close: Option<i64> = None;
    for line in lines.iter_mut() {
        let mut in_test = region_close.is_some();
        if !pending
            && region_close.is_none()
            && (line.code.contains("#[cfg(test)]")
                || line.code.contains("#[cfg(all(test")
                || line.code.contains("#[test]"))
        {
            pending = true;
            in_test = true;
        }
        // A pending attribute marks this line even if the gated item
        // ends here (`#[cfg(test)] use …;` clears `pending` at the `;`).
        let was_pending = pending;
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending && region_close.is_none() {
                        region_close = Some(depth);
                        pending = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_close == Some(depth) {
                        region_close = None;
                        in_test = true;
                    }
                }
                ';' if pending && region_close.is_none() => pending = false,
                _ => {}
            }
        }
        line.in_test = in_test || was_pending || pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_split_out() {
        let lines = lex("let x = 1; // trailing note\n// full line\nlet y = 2;");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert_eq!(lines[0].comment, " trailing note");
        assert!(!lines[1].has_code());
        assert_eq!(lines[1].comment, " full line");
        assert!(lines[2].has_code());
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = lex(r#"let s = "unsafe { HashMap }"; s.unwrap();"#);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains(".unwrap()"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lines = lex(r#"let s = "a \" unsafe"; let t = 1;"#);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_span_lines() {
        let src = "let s = r#\"line one unsafe\nline two HashMap\"#;\nlet x = 1;";
        let codes = code_of(src);
        assert!(!codes[0].contains("unsafe"));
        assert!(!codes[1].contains("HashMap"));
        assert!(codes[2].contains("let x"));
    }

    #[test]
    fn plain_strings_span_lines() {
        let src = "let s = \"first unsafe\nsecond HashMap\";\nlet x = 1;";
        let codes = code_of(src);
        assert!(!codes[0].contains("unsafe"));
        assert!(!codes[1].contains("HashMap"));
        assert!(codes[2].contains("let x"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a(); /* one /* two\nstill comment unsafe */ still */ b();";
        let lines = lex(src);
        assert_eq!(lines[0].code.trim_end(), "a();");
        assert!(lines[1].comment.contains("still comment unsafe"));
        assert!(lines[1].code.contains("b();"));
    }

    #[test]
    fn doc_comments_are_comment_text() {
        let lines = lex("/// calls .unwrap() on success\nfn f() {}");
        assert!(!lines[0].has_code());
        assert!(lines[0].comment.contains(".unwrap()"));
        assert!(lines[1].has_code());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = lex("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'y'; // 'q");
        assert!(lines[0].code.contains("&'a str"));
        assert!(!lines[0].code.contains('y'), "char contents blanked");
        assert_eq!(lines[0].comment, " 'q");
    }

    #[test]
    fn escaped_char_literals_close() {
        let lines = lex(r"let c = '\u{1F600}'; let d = '\''; real();");
        assert!(lines[0].code.contains("real();"));
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test, "the attribute line itself");
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test, "closing brace line");
        assert!(!lines[5].in_test);
    }

    #[test]
    fn test_attribute_gates_one_fn() {
        let src = "#[test]\nfn t() {\n    boom.unwrap();\n}\nfn live() {}";
        let lines = lex(src);
        assert!(lines[2].in_test);
        assert!(!lines[4].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}";
        let lines = lex(src);
        assert!(lines[1].in_test);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn cfg_test_in_string_is_ignored() {
        let src = "let s = \"#[cfg(test)]\";\nfn live() { x }";
        let lines = lex(src);
        assert!(!lines[1].in_test);
    }

    #[test]
    fn byte_strings_are_blanked() {
        let lines = lex(r#"w.write(b"unsafe").unwrap();"#);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains(".unwrap()"));
    }

    #[test]
    fn identifier_tail_r_is_not_raw_prefix() {
        let lines = lex(r#"let var = 1; let b = var"; ok();"#);
        // `var"` — the quote after the identifier opens a plain string;
        // the `r` in `var` must not be taken as a raw-string prefix.
        assert!(lines[0].code.contains("let b = var\""));
    }
}
