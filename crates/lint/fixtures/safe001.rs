//! SAFE001 fixture: `unsafe` with and without a justification.
//! Never compiled.

fn violation(p: *const u8) -> u8 {
    unsafe { *p }
}

fn justified(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

/// # Safety
///
/// `p` must be valid for reads.
#[inline]
unsafe fn doc_justified(p: *const u8) -> u8 {
    *p
}

fn waived(p: *const u8) -> u8 {
    // lisa-lint: allow(SAFE001) justification lives on the sole caller
    unsafe { *p }
}
