//! EVT001 fixture: observer callbacks must not mutate
//! trajectory-affecting state. Never compiled.

struct Tap {
    sink: Sink,
}

impl Observer for Tap {
    fn on_step(&mut self, e: &Event) {
        self.sink.emit(e);
        self.stage.commit(e);
    }
}

impl Waived {
    fn not_an_observer(&self) {
        self.stage.commit(());
    }
}

impl Observer for Waived {
    fn on_step(&mut self, e: &Event) {
        // lisa-lint: allow(EVT001) sink is a bounded buffer; read-only tap
        self.sink.emit(e);
    }
}

fn outside_any_observer(sink: &Sink, e: &Event) {
    sink.emit(e);
}
