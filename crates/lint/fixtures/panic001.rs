//! PANIC001 fixture: panic paths in daemon-request / pipeline-resume
//! code. Never compiled.

fn violations(x: Option<u8>, r: Result<u8, u8>) -> u8 {
    let a = x.unwrap();
    let b = r.expect("always ok");
    if a == 0 {
        panic!("boom");
    }
    a + b
}

fn poison_recovery_is_fine(m: &std::sync::Mutex<u8>) -> u8 {
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn waived(x: Option<u8>) -> u8 {
    // lisa-lint: allow(PANIC001) startup-only; unreachable per request
    x.unwrap()
}
