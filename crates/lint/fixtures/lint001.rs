//! LINT001 fixture: the waiver mechanism polices itself. Never
//! compiled.

fn stale() {
    // lisa-lint: allow(DET001) nothing hashed here
    let x = 1;
    let _ = x;
}

fn unknown_rule() {
    // lisa-lint: allow(NOPE001) who knows
    let y = 2;
    let _ = y;
}

fn missing_reason(x: Option<u8>) -> u8 {
    // lisa-lint: allow(PANIC001)
    x.unwrap()
}
