//! DET003 fixture: ambient randomness outside a seeded `lisa_rng`
//! handle. Never compiled.

fn violations() {
    let r = rand::thread_rng();
    let s = std::collections::hash_map::RandomState::new();
    let _ = (r, s);
}

fn waived(rng: SmallRng) {
    // lisa-lint: allow(DET003) reseed path is gated behind --entropy
    let f = SmallRng::from_entropy();
    let _ = (rng, f);
}

fn strings_are_inert() {
    let _ = "thread_rng() quoted in prose";
}
