//! DET002 fixture: wall-clock reads in code that feeds cache-keyed
//! response bodies or serialized artifacts. Never compiled.

fn violations() -> u128 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or_default();
    let i = std::time::Instant::now();
    let _ = i;
    t
}

fn waived() {
    // lisa-lint: allow(DET002) telemetry only; never keyed or persisted
    let _ = std::time::Instant::now();
}

fn strings_and_comments_are_inert() {
    // Instant::now() named in a comment is fine.
    let _ = "so is SystemTime::now() in a string";
}
