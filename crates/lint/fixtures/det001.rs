//! DET001 fixture: hash containers in a determinism-critical crate.
//! Never compiled — scanned only by `tests/fixtures_test.rs`
//! (`lint.toml` excludes this tree from the workspace gate).

use std::collections::HashMap;
use std::collections::HashSet;

fn violations() {
    let a: HashMap<u32, u32> = HashMap::new();
    let b = HashSet::from([1u8]);
    let _ = (a, b);
}

fn waived() {
    // lisa-lint: allow(DET001) membership-only probe; never iterated
    let c: HashSet<u8> = HashSet::new();
    let _ = c;
}

fn lookalikes_and_strings_are_inert() {
    struct MyHashMapLike;
    let _ = MyHashMapLike;
    let s = "a HashMap mentioned in a string literal";
    let _ = s;
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_modules_are_exempt() {
        let _ = HashMap::<u8, u8>::new();
    }
}
