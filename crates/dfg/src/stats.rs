//! Structural statistics of a DFG, used by the experiment harness and
//! documentation tables (and handy when characterising new workloads).

use std::fmt;

use crate::{analysis, Dfg, EdgeKind, OpKind};

/// Summary statistics of one DFG.
#[derive(Debug, Clone, PartialEq)]
pub struct DfgStats {
    /// Kernel name.
    pub name: String,
    /// Node count.
    pub nodes: usize,
    /// Data-edge count.
    pub data_edges: usize,
    /// Recurrence-edge count.
    pub recurrence_edges: usize,
    /// Critical path length (levels).
    pub critical_path: u32,
    /// Maximum data out-degree (fanout pressure).
    pub max_out_degree: usize,
    /// Mean data out-degree over value-producing nodes.
    pub mean_out_degree: f64,
    /// Memory operations (loads + stores).
    pub memory_ops: usize,
    /// Multiplications (expensive-unit pressure on heterogeneous CGRAs).
    pub multiplies: usize,
    /// Width of the widest ASAP level (spatial parallelism demand).
    pub max_level_width: usize,
}

impl DfgStats {
    /// Computes the statistics for one DFG.
    ///
    /// # Panics
    ///
    /// Panics if the data subgraph has a cycle.
    ///
    /// # Example
    ///
    /// ```
    /// use lisa_dfg::{polybench, stats::DfgStats};
    ///
    /// let stats = DfgStats::of(&polybench::kernel("gemm")?);
    /// assert!(stats.nodes > 10);
    /// assert!(stats.memory_ops >= 3);
    /// # Ok::<(), lisa_dfg::DfgError>(())
    /// ```
    pub fn of(dfg: &Dfg) -> DfgStats {
        let levels = analysis::asap(dfg);
        // Ordered map (DET001): only the max of the values is read, but
        // stats render into EXPERIMENTS tables — keep them order-free.
        let mut level_width = std::collections::BTreeMap::new();
        for &l in &levels {
            *level_width.entry(l).or_insert(0usize) += 1;
        }
        let producers: Vec<usize> = dfg
            .node_ids()
            .filter(|&v| dfg.node(v).op.produces_value())
            .map(|v| dfg.data_out_degree(v))
            .collect();
        DfgStats {
            name: dfg.name().to_string(),
            nodes: dfg.node_count(),
            data_edges: dfg
                .edges()
                .iter()
                .filter(|e| e.kind == EdgeKind::Data)
                .count(),
            recurrence_edges: dfg
                .edges()
                .iter()
                .filter(|e| matches!(e.kind, EdgeKind::Recurrence { .. }))
                .count(),
            critical_path: analysis::critical_path_len(dfg),
            max_out_degree: producers.iter().copied().max().unwrap_or(0),
            mean_out_degree: if producers.is_empty() {
                0.0
            } else {
                producers.iter().sum::<usize>() as f64 / producers.len() as f64
            },
            memory_ops: dfg.nodes().iter().filter(|n| n.op.is_memory()).count(),
            multiplies: dfg.nodes().iter().filter(|n| n.op == OpKind::Mul).count(),
            max_level_width: level_width.values().copied().max().unwrap_or(0),
        }
    }
}

impl fmt::Display for DfgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} nodes, {}+{} edges, cp {}, fanout {}/{:.1}, {} mem, {} mul, width {}",
            self.name,
            self.nodes,
            self.data_edges,
            self.recurrence_edges,
            self.critical_path,
            self.max_out_degree,
            self.mean_out_degree,
            self.memory_ops,
            self.multiplies,
            self.max_level_width
        )
    }
}

/// Statistics table over a set of DFGs (e.g. the PolyBench suite).
pub fn table(dfgs: &[Dfg]) -> Vec<DfgStats> {
    dfgs.iter().map(DfgStats::of).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polybench;

    #[test]
    fn polybench_suite_statistics() {
        let stats = table(&polybench::all_kernels());
        assert_eq!(stats.len(), 12);
        for s in &stats {
            assert!(s.nodes >= 10);
            assert!(s.critical_path >= 3);
            assert!(s.memory_ops >= 2);
            assert!(s.max_level_width >= 2);
            assert!(!s.to_string().is_empty());
        }
        // syr2k is denser than doitgen in every communication dimension.
        let syr2k = stats.iter().find(|s| s.name == "syr2k").unwrap();
        let doitgen = stats.iter().find(|s| s.name == "doitgen").unwrap();
        assert!(syr2k.data_edges > doitgen.data_edges);
    }

    #[test]
    fn recurrences_counted() {
        let gemm = polybench::kernel("gemm").unwrap();
        let s = DfgStats::of(&gemm);
        // Induction variable + accumulator.
        assert_eq!(s.recurrence_edges, 2);
    }

    #[test]
    fn unrolled_statistics_scale() {
        let base = DfgStats::of(&polybench::kernel("mvt").unwrap());
        let u2 = DfgStats::of(&crate::unroll::unroll(
            &polybench::kernel("mvt").unwrap(),
            2,
        ));
        assert_eq!(u2.nodes, 2 * base.nodes);
        assert!(u2.max_level_width >= base.max_level_width);
    }
}
