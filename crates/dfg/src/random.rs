//! Synthetic DFG generation for GNN training sets (paper §V-A).
//!
//! The paper: "we generate a set of random DFGs with wide spectrum of
//! structures. We first generate random directed and weakly connected
//! graphs. The number of DFG nodes are set from n to m, which is based on
//! the real applications. The number of connected edges for each node is
//! also set to a range. [...] Then according to the supported operations, we
//! randomly assign operations to guarantee the validity of the DFGs."

use lisa_rng::Rng;

use crate::{Dfg, NodeId, OpKind};

/// Parameters of the random DFG generator.
///
/// Defaults track the evaluation's "tens of nodes and edges" per DFG.
///
/// # Example
///
/// ```
/// use lisa_dfg::{RandomDfgConfig, generate_random_dfg};
///
/// let cfg = RandomDfgConfig::default();
/// let dfg = generate_random_dfg(&cfg, 42);
/// dfg.validate().expect("generated DFGs are always valid");
/// assert!(dfg.is_weakly_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomDfgConfig {
    /// Minimum node count (inclusive).
    pub min_nodes: usize,
    /// Maximum node count (inclusive).
    pub max_nodes: usize,
    /// Maximum data out-degree given to a node during edge generation.
    pub max_out_degree: usize,
    /// Maximum data in-degree (further capped by each op's arity).
    pub max_in_degree: usize,
    /// Operations eligible for interior nodes. Sources become loads or
    /// constants and sinks stores regardless, mirroring real loop bodies.
    pub interior_ops: Vec<OpKind>,
    /// Probability (in percent) that an accumulator-style recurrence edge is
    /// added onto one eligible node.
    pub recurrence_percent: u8,
    /// Inclusive range of source (parentless) nodes. Real loop bodies have
    /// several independent operand streams, not one.
    pub sources: (usize, usize),
    /// Upper bound on sink (childless) nodes; surplus sinks are rewired
    /// into later consumers. Architectures with dedicated store ports
    /// (systolic right column) need this bounded.
    pub max_sinks: Option<usize>,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        RandomDfgConfig {
            min_nodes: 8,
            max_nodes: 24,
            max_out_degree: 4,
            max_in_degree: 2,
            interior_ops: vec![
                OpKind::Add,
                OpKind::Sub,
                OpKind::Mul,
                OpKind::Add,
                OpKind::Mul,
                OpKind::Shl,
                OpKind::And,
            ],
            recurrence_percent: 25,
            sources: (1, 4),
            max_sinks: None,
        }
    }
}

impl RandomDfgConfig {
    /// Configuration for the systolic-array training set: only
    /// systolic-supported interior operations are emitted.
    pub fn systolic() -> Self {
        RandomDfgConfig {
            interior_ops: vec![OpKind::Add, OpKind::Mul, OpKind::Sub],
            recurrence_percent: 20,
            min_nodes: 6,
            max_nodes: 14,
            sources: (2, 4),
            max_sinks: Some(4),
            ..RandomDfgConfig::default()
        }
    }
}

/// Generates one random, valid, weakly connected DFG from a seed.
///
/// The construction works level-free: nodes are created in a random
/// topological order; each new node connects backwards to 1–`max_in_degree`
/// earlier nodes with spare out-degree, which guarantees acyclicity and weak
/// connectivity in one pass. Sources are then rewritten to loads/constants
/// and sinks to stores so that operation arities hold.
///
/// # Panics
///
/// Panics if `min_nodes > max_nodes` or `min_nodes < 3`.
pub fn generate_random_dfg(config: &RandomDfgConfig, seed: u64) -> Dfg {
    assert!(config.min_nodes <= config.max_nodes, "node range inverted");
    assert!(config.min_nodes >= 3, "need at least 3 nodes");
    let mut rng = Rng::seed_from_u64(seed);
    let n = rng.gen_range(config.min_nodes..=config.max_nodes);

    // Phase 1: random DAG skeleton with degree caps. The first `sources`
    // nodes stay parentless (independent operand streams).
    let sources = rng
        .gen_range(config.sources.0..=config.sources.1.max(config.sources.0))
        .clamp(1, n - 2);
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut out_deg = vec![0usize; n];
    for v in sources..n {
        let in_deg = rng.gen_range(1..=config.max_in_degree.max(1));
        let mut attempts = 0;
        while parents[v].len() < in_deg && attempts < 8 * n {
            attempts += 1;
            let p = rng.gen_range(0..v);
            if out_deg[p] >= config.max_out_degree || parents[v].contains(&p) {
                continue;
            }
            parents[v].push(p);
            out_deg[p] += 1;
        }
        if parents[v].is_empty() {
            // Degree caps exhausted: link to the previous node regardless so
            // the graph stays weakly connected.
            parents[v].push(v - 1);
            out_deg[v - 1] += 1;
        }
    }

    // Optional sink bound: rewire surplus sinks into later consumers with
    // spare fan-in (they become interior nodes).
    if let Some(max_sinks) = config.max_sinks {
        loop {
            let sinks: Vec<usize> = (0..n).filter(|&v| out_deg[v] == 0).collect();
            if sinks.len() <= max_sinks.max(1) {
                break;
            }
            let mut rewired = false;
            for &v in &sinks {
                if let Some(u) =
                    (v + 1..n).find(|&u| parents[u].len() < 2 && !parents[u].contains(&v))
                {
                    parents[u].push(v);
                    out_deg[v] += 1;
                    rewired = true;
                    break;
                }
            }
            if !rewired {
                break; // no legal rewiring left; accept the surplus
            }
        }
    }

    // Phase 2: assign operations respecting arity and sink/source shape.
    let mut g = Dfg::new(format!("rand_{seed}"));
    let mut ids: Vec<NodeId> = Vec::with_capacity(n);
    for v in 0..n {
        let is_source = parents[v].is_empty();
        let is_sink = out_deg[v] == 0;
        let op = if is_source {
            if rng.gen_bool(0.85) {
                OpKind::Load
            } else {
                OpKind::Const
            }
        } else if is_sink {
            OpKind::Store
        } else {
            config.interior_ops[rng.gen_range(0..config.interior_ops.len())]
        };
        ids.push(g.add_node(op, format!("v{v}")));
    }
    for v in 0..n {
        let max_in = g.node(ids[v]).op.max_inputs();
        for (k, &p) in parents[v].iter().enumerate() {
            if k >= max_in {
                break;
            }
            g.add_data_edge(ids[p], ids[v])
                .expect("skeleton edges are unique and acyclic");
        }
    }

    // Phase 3: optional accumulator recurrence on one eligible interior node.
    if rng.gen_range(0..100u32) < u32::from(config.recurrence_percent) {
        // Keep one operand slot free so the accumulator stays unrollable:
        // factor-2 unrolling turns the self-recurrence into a data edge
        // into the next copy, which must not overflow the op's arity.
        let eligible: Vec<NodeId> = g
            .node_ids()
            .filter(|&id| {
                matches!(g.node(id).op, OpKind::Add | OpKind::Sub)
                    && g.data_in_degree(id) < g.node(id).op.max_inputs()
            })
            .collect();
        if !eligible.is_empty() {
            let acc = eligible[rng.gen_range(0..eligible.len())];
            g.add_recurrence_edge(acc, acc, 1)
                .expect("fresh self-recurrence");
        }
    }

    // Phase 1 may orphan arity-overflow parents; re-check connectivity and
    // stitch if needed (rare).
    if !g.is_weakly_connected() {
        stitch_components(&mut g);
    }
    debug_assert!(g.validate().is_ok(), "generator produced invalid DFG");
    g
}

/// Connects weakly-connected components by feeding a value-producing node of
/// each later component from a node of the first component... in practice by
/// adding a data edge from a producer in the main component to a node with
/// spare arity in the orphaned one.
fn stitch_components(g: &mut Dfg) {
    loop {
        let comp = component_labels(g);
        let max_label = *comp.iter().max().expect("non-empty");
        if max_label == 0 {
            return;
        }
        // Find a producer in component 0 and a consumer with spare arity in
        // the highest-labelled component.
        let producer = g
            .node_ids()
            .find(|&v| comp[v.index()] == 0 && g.node(v).op.produces_value());
        let consumer = g.node_ids().find(|&v| {
            comp[v.index()] == max_label && g.data_in_degree(v) < g.node(v).op.max_inputs()
        });
        // Reverse-direction pairing if the forward one is unavailable.
        let reverse_producer = g
            .node_ids()
            .find(|&v| comp[v.index()] == max_label && g.node(v).op.produces_value());
        let reverse_consumer = g
            .node_ids()
            .find(|&v| comp[v.index()] == 0 && g.data_in_degree(v) < g.node(v).op.max_inputs());
        match (producer, consumer, reverse_producer, reverse_consumer) {
            (Some(p), Some(c), _, _) | (_, _, Some(p), Some(c)) => {
                g.add_data_edge(p, c)
                    .expect("cross-component edge is fresh");
            }
            (producer, _, reverse_producer, _) => {
                // No spare data arity anywhere: connect with a loop-carried
                // dependency instead, which consumes no operand slot (the
                // arity invariant only constrains data edges). Every
                // component has a value producer (sources are loads or
                // constants by construction).
                let (src, dst_comp) = match (producer, reverse_producer) {
                    (Some(p), _) => (p, max_label),
                    (None, Some(p)) => (p, 0),
                    (None, None) => unreachable!("components always hold a producer"),
                };
                let dst = g
                    .node_ids()
                    .find(|&v| comp[v.index()] == dst_comp && g.node(v).op != OpKind::Const)
                    .or_else(|| {
                        g.node_ids()
                            .find(|&v| comp[v.index()] == dst_comp && v != src)
                    })
                    .expect("target component is non-empty");
                g.add_recurrence_edge(src, dst, 1)
                    .expect("cross-component recurrence is fresh");
            }
        }
        if g.is_weakly_connected() {
            return;
        }
    }
}

fn component_labels(g: &Dfg) -> Vec<usize> {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![NodeId::new(start)];
        label[start] = next;
        while let Some(v) = stack.pop() {
            let nbrs: Vec<NodeId> = g.successors(v).chain(g.predecessors(v)).collect();
            for u in nbrs {
                if label[u.index()] == usize::MAX {
                    label[u.index()] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    label
}

/// Generates `count` random DFGs with consecutive seeds starting at
/// `base_seed`. Convenience for dataset construction (paper: 1,000 DFGs per
/// accelerator).
pub fn generate_dataset(config: &RandomDfgConfig, base_seed: u64, count: usize) -> Vec<Dfg> {
    (0..count)
        .map(|i| generate_random_dfg(config, base_seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_valid_and_connected() {
        let cfg = RandomDfgConfig::default();
        for seed in 0..50 {
            let g = generate_random_dfg(&cfg, seed);
            g.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(g.is_weakly_connected(), "seed {seed} disconnected");
            assert!(g.node_count() >= cfg.min_nodes);
            assert!(g.node_count() <= cfg.max_nodes);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomDfgConfig::default();
        let a = generate_random_dfg(&cfg, 7);
        let b = generate_random_dfg(&cfg, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomDfgConfig::default();
        let a = generate_random_dfg(&cfg, 1);
        let b = generate_random_dfg(&cfg, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn systolic_config_avoids_unsupported_ops() {
        let cfg = RandomDfgConfig::systolic();
        for seed in 0..30 {
            let g = generate_random_dfg(&cfg, seed);
            for n in g.nodes() {
                assert!(
                    n.op.systolic_supported() || n.op == OpKind::Const,
                    "seed {seed}: op {} not systolic-supported",
                    n.op
                );
            }
        }
    }

    #[test]
    fn degree_caps_respected() {
        let cfg = RandomDfgConfig {
            max_out_degree: 3,
            ..RandomDfgConfig::default()
        };
        for seed in 0..30 {
            let g = generate_random_dfg(&cfg, seed);
            for v in g.node_ids() {
                // +1 slack: the connectivity stitcher may add one edge.
                assert!(
                    g.data_out_degree(v) <= cfg.max_out_degree + 1,
                    "seed {seed} node {v} out-degree {}",
                    g.data_out_degree(v)
                );
                assert!(g.data_in_degree(v) <= g.node(v).op.max_inputs());
            }
        }
    }

    #[test]
    fn dataset_has_requested_size() {
        let cfg = RandomDfgConfig::default();
        let set = generate_dataset(&cfg, 100, 10);
        assert_eq!(set.len(), 10);
        // Seeds are distinct, so names are distinct.
        let names: std::collections::HashSet<_> =
            set.iter().map(|g| g.name().to_string()).collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn sources_are_loads_or_consts_and_sinks_are_stores() {
        let cfg = RandomDfgConfig::default();
        for seed in 0..30 {
            let g = generate_random_dfg(&cfg, seed);
            for v in g.node_ids() {
                if g.data_in_degree(v) == 0 {
                    assert!(
                        matches!(g.node(v).op, OpKind::Load | OpKind::Const),
                        "seed {seed}: source {v} is {}",
                        g.node(v).op
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;

    #[test]
    fn source_count_is_in_range() {
        let cfg = RandomDfgConfig {
            sources: (2, 4),
            ..RandomDfgConfig::default()
        };
        for seed in 0..40 {
            let g = generate_random_dfg(&cfg, seed);
            let sources = g.node_ids().filter(|&v| g.data_in_degree(v) == 0).count();
            // The connectivity stitcher may consume at most a couple of
            // sources; at least one always remains.
            assert!((1..=4).contains(&sources), "seed {seed}: {sources} sources");
        }
    }

    #[test]
    fn systolic_config_bounds_sinks() {
        let cfg = RandomDfgConfig::systolic();
        let mut over = 0;
        for seed in 0..60 {
            let g = generate_random_dfg(&cfg, seed);
            let sinks = g.node_ids().filter(|&v| g.data_out_degree(v) == 0).count();
            if sinks > 4 {
                over += 1;
            }
        }
        // Rewiring is best-effort; the overwhelming majority must comply.
        assert!(over <= 3, "{over}/60 graphs exceeded the sink bound");
    }

    #[test]
    fn multi_source_graphs_stay_valid() {
        let cfg = RandomDfgConfig {
            sources: (3, 5),
            min_nodes: 10,
            max_nodes: 20,
            ..RandomDfgConfig::default()
        };
        for seed in 100..140 {
            let g = generate_random_dfg(&cfg, seed);
            g.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(g.is_weakly_connected());
        }
    }
}

#[cfg(test)]
mod stitch_tests {
    use super::*;

    #[test]
    fn generator_never_panics_over_a_wide_seed_sweep() {
        // Regression for the stitcher panic ("component has spare arity"):
        // seeds that orphan a saturated component must still connect.
        let cfg = RandomDfgConfig::default();
        for seed in 0..4000 {
            let g = generate_random_dfg(&cfg, seed);
            assert!(g.validate().is_ok(), "seed {seed}");
            assert!(g.is_weakly_connected(), "seed {seed} disconnected");
        }
    }
}
