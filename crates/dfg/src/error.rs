//! Error type for DFG construction and validation.

use std::error::Error;
use std::fmt;

use crate::{EdgeKind, NodeId, OpKind};

/// Errors produced while building or validating a [`crate::Dfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DfgError {
    /// An edge endpoint refers to a node that does not exist.
    UnknownNode(NodeId),
    /// The same data edge was inserted twice.
    DuplicateEdge {
        /// Producer endpoint of the duplicated edge.
        src: NodeId,
        /// Consumer endpoint of the duplicated edge.
        dst: NodeId,
    },
    /// A data edge leaves a node whose operation produces no value.
    SourceProducesNoValue {
        /// The offending producer node.
        src: NodeId,
        /// Its operation kind.
        op: OpKind,
    },
    /// A node has more data inputs than its operation accepts.
    TooManyInputs {
        /// The over-subscribed consumer node.
        node: NodeId,
        /// Its operation kind.
        op: OpKind,
        /// Number of incoming data edges found.
        found: usize,
        /// Maximum allowed by the operation.
        max: usize,
    },
    /// The data-dependency subgraph contains a cycle (only recurrence edges
    /// may close cycles).
    DataCycle,
    /// A recurrence edge was declared with distance zero.
    ZeroDistanceRecurrence {
        /// Producer endpoint.
        src: NodeId,
        /// Consumer endpoint.
        dst: NodeId,
    },
    /// A self-loop with an invalid edge kind was inserted.
    InvalidSelfLoop {
        /// The node with the self-loop.
        node: NodeId,
        /// Kind of the offending edge.
        kind: EdgeKind,
    },
    /// The graph is empty where a non-empty graph is required.
    Empty,
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::UnknownNode(n) => write!(f, "unknown node id {}", n.index()),
            DfgError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {} -> {}", src.index(), dst.index())
            }
            DfgError::SourceProducesNoValue { src, op } => write!(
                f,
                "node {} ({op}) produces no value but has an outgoing data edge",
                src.index()
            ),
            DfgError::TooManyInputs {
                node,
                op,
                found,
                max,
            } => write!(
                f,
                "node {} ({op}) has {found} data inputs, at most {max} allowed",
                node.index()
            ),
            DfgError::DataCycle => write!(f, "data-dependency subgraph contains a cycle"),
            DfgError::ZeroDistanceRecurrence { src, dst } => write!(
                f,
                "recurrence edge {} -> {} has distance zero",
                src.index(),
                dst.index()
            ),
            DfgError::InvalidSelfLoop { node, kind } => write!(
                f,
                "self-loop on node {} with non-recurrence kind {kind:?}",
                node.index()
            ),
            DfgError::Empty => write!(f, "graph is empty"),
        }
    }
}

impl Error for DfgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            DfgError::UnknownNode(NodeId::new(3)),
            DfgError::DataCycle,
            DfgError::Empty,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
