//! Operation kinds supported by the modelled spatial accelerators.

use std::fmt;

/// The kind of computation a DFG node performs.
///
/// The set mirrors what CGRA-ME-style functional units expose: memory
/// accesses, integer arithmetic/logic, comparisons and selects, plus
/// constants. The systolic array (paper Fig. 3) only supports a subset —
/// see [`OpKind::systolic_supported`].
///
/// # Example
///
/// ```
/// use lisa_dfg::OpKind;
///
/// assert!(OpKind::Load.is_memory());
/// assert!(OpKind::Mul.systolic_supported());
/// assert!(!OpKind::Div.systolic_supported());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Memory load. Inputs: optional address. Sources data into the DFG.
    Load,
    /// Memory store. Inputs: value (and optionally address). DFG sink.
    Store,
    /// Integer/floating addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Comparison producing a predicate.
    Cmp,
    /// Two-way select driven by a predicate.
    Select,
    /// Compile-time constant. No inputs.
    Const,
}

impl OpKind {
    /// All operation kinds, in a fixed order used for attribute encoding.
    pub const ALL: [OpKind; 14] = [
        OpKind::Load,
        OpKind::Store,
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Shl,
        OpKind::Shr,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::Cmp,
        OpKind::Select,
        OpKind::Const,
    ];

    /// Returns `true` for memory operations ([`Load`](OpKind::Load) and
    /// [`Store`](OpKind::Store)), which on memory-constrained CGRAs may only
    /// be placed on memory-capable PEs.
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Returns `true` if the operation produces a value consumed by others.
    ///
    /// Stores are sinks: they produce no value, so they never have outgoing
    /// data edges.
    pub fn produces_value(self) -> bool {
        !matches!(self, OpKind::Store)
    }

    /// Maximum number of data inputs the operation accepts.
    pub fn max_inputs(self) -> usize {
        match self {
            OpKind::Const => 0,
            OpKind::Load => 1,
            OpKind::Store | OpKind::Cmp => 2,
            OpKind::Select => 3,
            _ => 2,
        }
    }

    /// Whether the Revel-like systolic basic unit can execute this
    /// operation. Per the paper (§II-A): "The PEs can execute either
    /// multiply or add operations"; memory ops are handled by the array
    /// boundary (left-most column loads, right-most column stores).
    pub fn systolic_supported(self) -> bool {
        matches!(
            self,
            OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Load | OpKind::Store
        )
    }

    /// A stable small integer code for the operation, used as the
    /// "operation type" node attribute (paper §IV-A, node attribute 6).
    pub fn code(self) -> usize {
        OpKind::ALL.iter().position(|&k| k == self).expect("in ALL")
    }

    /// Resolves a mnemonic back to its operation (the inverse of
    /// [`OpKind::mnemonic`], used by the text format parser).
    pub fn from_mnemonic(s: &str) -> Option<OpKind> {
        OpKind::ALL.iter().copied().find(|k| k.mnemonic() == s)
    }

    /// Short lowercase mnemonic (also used by Graphviz export).
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Cmp => "cmp",
            OpKind::Select => "select",
            OpKind::Const => "const",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_dense() {
        let mut seen = vec![false; OpKind::ALL.len()];
        for op in OpKind::ALL {
            assert!(!seen[op.code()], "duplicate code for {op}");
            seen[op.code()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn memory_classification() {
        assert!(OpKind::Load.is_memory());
        assert!(OpKind::Store.is_memory());
        for op in OpKind::ALL {
            if !matches!(op, OpKind::Load | OpKind::Store) {
                assert!(!op.is_memory(), "{op} wrongly classified as memory");
            }
        }
    }

    #[test]
    fn stores_do_not_produce_values() {
        assert!(!OpKind::Store.produces_value());
        assert!(OpKind::Add.produces_value());
        assert!(OpKind::Const.produces_value());
    }

    #[test]
    fn const_has_no_inputs() {
        assert_eq!(OpKind::Const.max_inputs(), 0);
        assert_eq!(OpKind::Select.max_inputs(), 3);
    }

    #[test]
    fn systolic_subset() {
        assert!(OpKind::Mul.systolic_supported());
        assert!(OpKind::Add.systolic_supported());
        assert!(!OpKind::Div.systolic_supported());
        assert!(!OpKind::Select.systolic_supported());
    }

    #[test]
    fn display_matches_mnemonic() {
        for op in OpKind::ALL {
            assert_eq!(op.to_string(), op.mnemonic());
        }
    }

    #[test]
    fn from_mnemonic_inverts_mnemonic() {
        for op in OpKind::ALL {
            assert_eq!(OpKind::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(OpKind::from_mnemonic("fma"), None);
        assert_eq!(OpKind::from_mnemonic("ADD"), None);
    }
}
