//! Same-level node association: the *dummy edges* of paper §III-A (Fig. 7).
//!
//! Two nodes are *same-level* when they share an ASAP level, have no data
//! dependency in either direction, and have a common ancestor or common
//! descendant. The pair is materialised as a [`DummyEdge`] carrying the
//! nearest common ancestor/descendant information the Attributes Generator
//! needs (§IV-A, dummy-edge attributes 1–7).

use crate::analysis::{ancestor_sets, asap, descendant_sets, distances_down, distances_up};
use crate::{Dfg, NodeId};

/// The nearest common ancestor or descendant of a same-level pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonNode {
    /// The common ancestor/descendant node.
    pub node: NodeId,
    /// Shortest hop distance from the first pair member to [`Self::node`].
    pub dist_a: u32,
    /// Shortest hop distance from the second pair member to [`Self::node`].
    pub dist_b: u32,
    /// Number of distinct intermediate nodes lying on some path between a
    /// pair member and [`Self::node`] (both endpoints excluded).
    pub on_path_count: usize,
}

impl CommonNode {
    /// Mean of the two member distances — the paper initialises the
    /// same-level association label with "the average value of the shortest
    /// distances between nodes and common ancestor/descendant" (§V-B).
    pub fn mean_dist(&self) -> f64 {
        f64::from(self.dist_a + self.dist_b) / 2.0
    }
}

/// A dummy edge between two same-level nodes (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DummyEdge {
    /// First member of the pair (smaller node index).
    pub a: NodeId,
    /// Second member of the pair.
    pub b: NodeId,
    /// Shared ASAP level of the two members.
    pub level: u32,
    /// Nearest common ancestor, if any.
    pub ancestor: Option<CommonNode>,
    /// Nearest common descendant, if any.
    pub descendant: Option<CommonNode>,
}

/// Computes all dummy edges of a DFG.
///
/// A pair qualifies if the nodes share an ASAP level and have a common
/// ancestor **or** a common descendant (paper: nodes `C` and `F` in Fig. 4
/// get no dummy edge because they share neither).
///
/// # Panics
///
/// Panics if the data subgraph has a cycle.
///
/// # Example
///
/// ```
/// use lisa_dfg::{Dfg, OpKind, dummy_edges};
///
/// # fn main() -> Result<(), lisa_dfg::DfgError> {
/// // b and c are both children of a: same level, common ancestor.
/// let mut dfg = Dfg::new("v");
/// let a = dfg.add_node(OpKind::Load, "a");
/// let b = dfg.add_node(OpKind::Add, "b");
/// let c = dfg.add_node(OpKind::Mul, "c");
/// dfg.add_data_edge(a, b)?;
/// dfg.add_data_edge(a, c)?;
/// let dummies = dummy_edges(&dfg);
/// assert_eq!(dummies.len(), 1);
/// assert_eq!(dummies[0].ancestor.unwrap().node, a);
/// # Ok(())
/// # }
/// ```
pub fn dummy_edges(dfg: &Dfg) -> Vec<DummyEdge> {
    let levels = asap(dfg);
    let anc = ancestor_sets(dfg);
    let desc = descendant_sets(dfg);
    let n = dfg.node_count();

    // Cache per-node BFS distances lazily: pairs are sparse relative to n^2
    // only in large graphs, but graphs here are small, so precompute all.
    let up: Vec<Vec<Option<u32>>> = (0..n).map(|i| distances_up(dfg, NodeId::new(i))).collect();
    let down: Vec<Vec<Option<u32>>> = (0..n)
        .map(|i| distances_down(dfg, NodeId::new(i)))
        .collect();

    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if levels[i] != levels[j] {
                continue;
            }
            let (a, b) = (NodeId::new(i), NodeId::new(j));
            // Same ASAP level implies no data dependency either way, but be
            // explicit: skip related nodes.
            if anc[i].contains(b) || anc[j].contains(a) {
                continue;
            }
            let ancestor = closest_common(&anc[i], &anc[j], &up[i], &up[j]);
            let descendant = closest_common(&desc[i], &desc[j], &down[i], &down[j]);
            if ancestor.is_none() && descendant.is_none() {
                continue;
            }
            out.push(DummyEdge {
                a,
                b,
                level: levels[i],
                ancestor,
                descendant,
            });
        }
    }
    out
}

/// Picks the common node minimising the pair's summed distance.
/// `on_path_count` is left at zero; see [`annotate_path_counts`].
fn closest_common(
    set_a: &crate::analysis::NodeSet,
    set_b: &crate::analysis::NodeSet,
    dist_a: &[Option<u32>],
    dist_b: &[Option<u32>],
) -> Option<CommonNode> {
    let common = set_a.intersection(set_b);
    let mut best: Option<CommonNode> = None;
    for c in common.iter() {
        let (Some(da), Some(db)) = (dist_a[c.index()], dist_b[c.index()]) else {
            continue;
        };
        let better = best.is_none_or(|cur| da + db < cur.dist_a + cur.dist_b);
        if better {
            best = Some(CommonNode {
                node: c,
                dist_a: da,
                dist_b: db,
                on_path_count: 0,
            });
        }
    }
    best
}

/// Recomputes the `on_path_count` fields of a set of dummy edges.
///
/// Separated from [`dummy_edges`] so it can intersect per-pair node sets:
/// toward the ancestor, intermediates are descendants of the common
/// ancestor that are ancestors of `a` or `b`; toward the descendant,
/// intermediates are ancestors of the common descendant that are
/// descendants of `a` or `b`.
pub fn annotate_path_counts(dfg: &Dfg, edges: &mut [DummyEdge]) {
    let anc = ancestor_sets(dfg);
    let desc = descendant_sets(dfg);
    for e in edges.iter_mut() {
        if let Some(c) = e.ancestor.as_mut() {
            let mut count = 0;
            for m in desc[c.node.index()].iter() {
                if m == e.a || m == e.b {
                    continue;
                }
                if anc[e.a.index()].contains(m) || anc[e.b.index()].contains(m) {
                    count += 1;
                }
            }
            c.on_path_count = count;
        }
        if let Some(c) = e.descendant.as_mut() {
            let mut count = 0;
            for m in anc[c.node.index()].iter() {
                if m == e.a || m == e.b {
                    continue;
                }
                if desc[e.a.index()].contains(m) || desc[e.b.index()].contains(m) {
                    count += 1;
                }
            }
            c.on_path_count = count;
        }
    }
}

/// Convenience: dummy edges with path counts already annotated.
pub fn dummy_edges_annotated(dfg: &Dfg) -> Vec<DummyEdge> {
    let mut edges = dummy_edges(dfg);
    annotate_path_counts(dfg, &mut edges);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    /// Paper Fig. 4 graph (same construction as the analysis tests).
    fn fig4() -> Dfg {
        let mut g = Dfg::new("fig4");
        let a = g.add_node(OpKind::Load, "A");
        let b = g.add_node(OpKind::Load, "B");
        let c = g.add_node(OpKind::Add, "C");
        let d = g.add_node(OpKind::Mul, "D");
        let e = g.add_node(OpKind::Add, "E");
        let f = g.add_node(OpKind::Sub, "F");
        let gg = g.add_node(OpKind::Add, "G");
        let h = g.add_node(OpKind::Mul, "H");
        let i = g.add_node(OpKind::Add, "I");
        let j = g.add_node(OpKind::Store, "J");
        g.add_data_edge(a, c).unwrap();
        g.add_data_edge(b, d).unwrap();
        g.add_data_edge(b, e).unwrap();
        g.add_data_edge(b, f).unwrap();
        g.add_data_edge(b, i).unwrap();
        g.add_data_edge(c, gg).unwrap();
        g.add_data_edge(d, gg).unwrap();
        g.add_data_edge(d, h).unwrap();
        g.add_data_edge(e, h).unwrap();
        g.add_data_edge(e, i).unwrap();
        g.add_data_edge(gg, j).unwrap();
        g.add_data_edge(h, j).unwrap();
        g
    }

    fn find(edges: &[DummyEdge], a: usize, b: usize) -> Option<&DummyEdge> {
        edges
            .iter()
            .find(|e| e.a.index() == a.min(b) && e.b.index() == a.max(b))
    }

    #[test]
    fn fig7_associations() {
        // The paper shows dummy edges among the same-level nodes C, E, F:
        // C–E exists (common descendant J via G and H... E and C: E's
        // descendants {H,I,J}, C's {G,J} -> common J), E–F share ancestor B,
        // and C–F share nothing -> no dummy edge.
        let g = fig4();
        let edges = dummy_edges_annotated(&g);
        assert!(find(&edges, 2, 4).is_some(), "C-E dummy edge missing");
        assert!(find(&edges, 4, 5).is_some(), "E-F dummy edge missing");
        assert!(find(&edges, 2, 5).is_none(), "C-F must have no dummy edge");
    }

    #[test]
    fn ef_common_ancestor_is_b() {
        let g = fig4();
        let edges = dummy_edges_annotated(&g);
        let ef = find(&edges, 4, 5).unwrap();
        let anc = ef.ancestor.unwrap();
        assert_eq!(anc.node.index(), 1); // B
        assert_eq!(anc.dist_a, 1);
        assert_eq!(anc.dist_b, 1);
        assert!((anc.mean_dist() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ce_common_descendant_is_j() {
        let g = fig4();
        let edges = dummy_edges_annotated(&g);
        let ce = find(&edges, 2, 4).unwrap();
        let d = ce.descendant.unwrap();
        assert_eq!(d.node.index(), 9); // J
        assert_eq!(d.dist_a, 2); // C -> G -> J
        assert_eq!(d.dist_b, 2); // E -> H -> J
                                 // Intermediates on the paths: G (from C) and H (from E).
        assert_eq!(d.on_path_count, 2);
    }

    #[test]
    fn same_level_roots_share_descendant() {
        // A and B are both level 0; they share descendant J.
        let g = fig4();
        let edges = dummy_edges_annotated(&g);
        let ab = find(&edges, 0, 1).unwrap();
        assert!(ab.descendant.is_some());
        assert!(ab.ancestor.is_none());
        assert_eq!(ab.level, 0);
    }

    #[test]
    fn dependent_nodes_never_pair() {
        let g = fig4();
        let edges = dummy_edges(&g);
        for e in &edges {
            let anc = ancestor_sets(&g);
            assert!(!anc[e.a.index()].contains(e.b));
            assert!(!anc[e.b.index()].contains(e.a));
        }
    }

    #[test]
    fn pair_ordering_is_canonical() {
        let g = fig4();
        for e in dummy_edges(&g) {
            assert!(e.a.index() < e.b.index());
        }
    }

    #[test]
    fn no_dummy_edges_in_chain() {
        let mut g = Dfg::new("chain");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        let c = g.add_node(OpKind::Store, "c");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(b, c).unwrap();
        assert!(dummy_edges(&g).is_empty());
    }
}
