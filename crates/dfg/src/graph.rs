//! The dataflow graph IR: nodes, edges, and the [`Dfg`] container.

use std::fmt;

use crate::{DfgError, OpKind};

/// Index of a node within a [`Dfg`].
///
/// Node ids are dense: they index directly into [`Dfg::nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }

    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of an edge within a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a raw index.
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index fits in u32"))
    }

    /// The raw index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The dependency kind carried by an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Intra-iteration data dependency: the consumer reads the value the
    /// producer computes in the same loop iteration.
    Data,
    /// Loop-carried dependency: the consumer reads the value the producer
    /// computed `distance` iterations earlier. These edges may close cycles
    /// and bound the recurrence-constrained minimum II.
    Recurrence {
        /// Iteration distance, always at least 1.
        distance: u32,
    },
}

impl EdgeKind {
    /// Iteration distance of the dependency (0 for intra-iteration data).
    pub fn distance(self) -> u32 {
        match self {
            EdgeKind::Data => 0,
            EdgeKind::Recurrence { distance } => distance,
        }
    }
}

/// A DFG node: one operation of the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfgNode {
    /// Which operation the node performs.
    pub op: OpKind,
    /// Human-readable name used in dumps and Graphviz output.
    pub name: String,
}

/// A DFG edge: a data dependency between two operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfgEdge {
    /// Producer node.
    pub src: NodeId,
    /// Consumer node.
    pub dst: NodeId,
    /// Dependency kind (intra-iteration or loop-carried).
    pub kind: EdgeKind,
}

/// A dataflow graph: the unit of work every mapper in this repository
/// places and routes onto a spatial accelerator.
///
/// Invariants (checked by [`Dfg::validate`]):
///
/// * endpoints of every edge exist;
/// * no duplicate edges between the same ordered pair with the same kind;
/// * [`EdgeKind::Data`] edges form a DAG (recurrence edges may close
///   cycles);
/// * producers of data edges produce values (no edges out of stores);
/// * in-degree respects the operation's arity.
///
/// # Example
///
/// ```
/// use lisa_dfg::{Dfg, OpKind};
///
/// # fn main() -> Result<(), lisa_dfg::DfgError> {
/// let mut dfg = Dfg::new("mac");
/// let a = dfg.add_node(OpKind::Load, "a");
/// let b = dfg.add_node(OpKind::Load, "b");
/// let m = dfg.add_node(OpKind::Mul, "m");
/// let acc = dfg.add_node(OpKind::Add, "acc");
/// dfg.add_data_edge(a, m)?;
/// dfg.add_data_edge(b, m)?;
/// dfg.add_data_edge(m, acc)?;
/// // The accumulator feeds itself in the next iteration.
/// dfg.add_recurrence_edge(acc, acc, 1)?;
/// dfg.validate()?;
/// assert_eq!(dfg.node_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfg {
    name: String,
    nodes: Vec<DfgNode>,
    edges: Vec<DfgEdge>,
    succ: Vec<Vec<EdgeId>>,
    pred: Vec<Vec<EdgeId>>,
}

impl Dfg {
    /// Creates an empty graph with the given kernel name.
    pub fn new(name: impl Into<String>) -> Self {
        Dfg {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            succ: Vec::new(),
            pred: Vec::new(),
        }
    }

    /// Kernel name (e.g. `"gemm"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph (used by the unroller to tag `_u2` variants).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (data and recurrence).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Appends a node and returns its id.
    pub fn add_node(&mut self, op: OpKind, name: impl Into<String>) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(DfgNode {
            op,
            name: name.into(),
        });
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds an intra-iteration data edge.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is unknown, the edge duplicates
    /// an existing data edge, or the edge is a self-loop (self-dependencies
    /// must be recurrence edges).
    pub fn add_data_edge(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, DfgError> {
        if src == dst {
            return Err(DfgError::InvalidSelfLoop {
                node: src,
                kind: EdgeKind::Data,
            });
        }
        self.add_edge(src, dst, EdgeKind::Data)
    }

    /// Adds a loop-carried dependency with the given iteration distance.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is unknown, the edge is a duplicate,
    /// or `distance` is zero.
    pub fn add_recurrence_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        distance: u32,
    ) -> Result<EdgeId, DfgError> {
        if distance == 0 {
            return Err(DfgError::ZeroDistanceRecurrence { src, dst });
        }
        self.add_edge(src, dst, EdgeKind::Recurrence { distance })
    }

    fn add_edge(&mut self, src: NodeId, dst: NodeId, kind: EdgeKind) -> Result<EdgeId, DfgError> {
        if src.index() >= self.nodes.len() {
            return Err(DfgError::UnknownNode(src));
        }
        if dst.index() >= self.nodes.len() {
            return Err(DfgError::UnknownNode(dst));
        }
        let dup = self.succ[src.index()]
            .iter()
            .any(|&e| self.edges[e.index()].dst == dst && self.edges[e.index()].kind == kind);
        if dup {
            return Err(DfgError::DuplicateEdge { src, dst });
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(DfgEdge { src, dst, kind });
        self.succ[src.index()].push(id);
        self.pred[dst.index()].push(id);
        Ok(id)
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &DfgNode {
        &self.nodes[id.index()]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn edge(&self, id: EdgeId) -> &DfgEdge {
        &self.edges[id.index()]
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::new)
    }

    /// All nodes as a slice (indexed by [`NodeId::index`]).
    pub fn nodes(&self) -> &[DfgNode] {
        &self.nodes
    }

    /// All edges as a slice (indexed by [`EdgeId::index`]).
    pub fn edges(&self) -> &[DfgEdge] {
        &self.edges
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.succ[id.index()]
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.pred[id.index()]
    }

    /// Successor nodes over all edge kinds (may repeat on multi-edges).
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succ[id.index()]
            .iter()
            .map(|e| self.edges[e.index()].dst)
    }

    /// Predecessor nodes over all edge kinds.
    pub fn predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.pred[id.index()]
            .iter()
            .map(|e| self.edges[e.index()].src)
    }

    /// Successor nodes reachable through intra-iteration data edges only.
    pub fn data_successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succ[id.index()]
            .iter()
            .filter(|e| self.edges[e.index()].kind == EdgeKind::Data)
            .map(|e| self.edges[e.index()].dst)
    }

    /// Predecessor nodes over intra-iteration data edges only.
    pub fn data_predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.pred[id.index()]
            .iter()
            .filter(|e| self.edges[e.index()].kind == EdgeKind::Data)
            .map(|e| self.edges[e.index()].src)
    }

    /// In-degree counting data edges only.
    pub fn data_in_degree(&self, id: NodeId) -> usize {
        self.pred[id.index()]
            .iter()
            .filter(|e| self.edges[e.index()].kind == EdgeKind::Data)
            .count()
    }

    /// Out-degree counting data edges only.
    pub fn data_out_degree(&self, id: NodeId) -> usize {
        self.succ[id.index()]
            .iter()
            .filter(|e| self.edges[e.index()].kind == EdgeKind::Data)
            .count()
    }

    /// In-degree over all edge kinds.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.pred[id.index()].len()
    }

    /// Out-degree over all edge kinds.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.succ[id.index()].len()
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant; see [`DfgError`] for the list.
    pub fn validate(&self) -> Result<(), DfgError> {
        if self.nodes.is_empty() {
            return Err(DfgError::Empty);
        }
        for edge in &self.edges {
            let src_op = self.nodes[edge.src.index()].op;
            if edge.kind == EdgeKind::Data && !src_op.produces_value() {
                return Err(DfgError::SourceProducesNoValue {
                    src: edge.src,
                    op: src_op,
                });
            }
        }
        for id in self.node_ids() {
            let op = self.nodes[id.index()].op;
            let found = self.data_in_degree(id);
            if found > op.max_inputs() {
                return Err(DfgError::TooManyInputs {
                    node: id,
                    op,
                    found,
                    max: op.max_inputs(),
                });
            }
        }
        if self.topological_order().is_none() {
            return Err(DfgError::DataCycle);
        }
        Ok(())
    }

    /// A topological order of the nodes over data edges, or `None` if the
    /// data subgraph has a cycle. Recurrence edges are ignored.
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for edge in &self.edges {
            if edge.kind == EdgeKind::Data {
                indeg[edge.dst.index()] += 1;
            }
        }
        let mut stack: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).map(NodeId::new).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = stack.pop() {
            order.push(v);
            for s in self.data_successors(v) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    stack.push(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Whether the graph is weakly connected (treating all edges as
    /// undirected). The random DFG generator guarantees this property for
    /// training graphs (paper §V-A).
    pub fn is_weakly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            let next = self
                .successors(v)
                .chain(self.predecessors(v))
                .collect::<Vec<_>>();
            for u in next {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Total number of operations executed per loop iteration, used by the
    /// power-efficiency metric (MOPS/W, paper Fig. 10). Constants are
    /// configured, not executed, so they are excluded.
    pub fn op_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.op != OpKind::Const).count()
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dfg {} ({} nodes, {} edges)",
            self.name,
            self.nodes.len(),
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dfg {
        // a -> b, a -> c, b -> d, c -> d
        let mut g = Dfg::new("diamond");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        let c = g.add_node(OpKind::Mul, "c");
        let d = g.add_node(OpKind::Store, "d");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(a, c).unwrap();
        g.add_data_edge(b, d).unwrap();
        g.add_data_edge(c, d).unwrap();
        g
    }

    #[test]
    fn build_and_validate_diamond() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        g.validate().unwrap();
        assert!(g.is_weakly_connected());
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = diamond();
        let err = g.add_data_edge(NodeId::new(0), NodeId::new(1)).unwrap_err();
        assert!(matches!(err, DfgError::DuplicateEdge { .. }));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = diamond();
        let err = g
            .add_data_edge(NodeId::new(0), NodeId::new(99))
            .unwrap_err();
        assert!(matches!(err, DfgError::UnknownNode(_)));
    }

    #[test]
    fn data_self_loop_rejected() {
        let mut g = diamond();
        let err = g.add_data_edge(NodeId::new(1), NodeId::new(1)).unwrap_err();
        assert!(matches!(err, DfgError::InvalidSelfLoop { .. }));
    }

    #[test]
    fn recurrence_self_loop_allowed() {
        let mut g = diamond();
        g.add_recurrence_edge(NodeId::new(1), NodeId::new(1), 1)
            .unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn zero_distance_recurrence_rejected() {
        let mut g = diamond();
        let err = g
            .add_recurrence_edge(NodeId::new(1), NodeId::new(2), 0)
            .unwrap_err();
        assert!(matches!(err, DfgError::ZeroDistanceRecurrence { .. }));
    }

    #[test]
    fn edge_out_of_store_rejected_by_validate() {
        let mut g = Dfg::new("bad");
        let s = g.add_node(OpKind::Store, "s");
        let a = g.add_node(OpKind::Add, "a");
        g.add_edge(s, a, EdgeKind::Data).unwrap();
        assert!(matches!(
            g.validate(),
            Err(DfgError::SourceProducesNoValue { .. })
        ));
    }

    #[test]
    fn arity_overflow_rejected() {
        let mut g = Dfg::new("bad");
        let l = g.add_node(OpKind::Load, "l");
        let a = g.add_node(OpKind::Add, "a");
        let b = g.add_node(OpKind::Sub, "b");
        let c = g.add_node(OpKind::Mul, "c");
        let add2 = g.add_node(OpKind::Add, "sink");
        for src in [l, a, b, c] {
            let _ = g.add_data_edge(src, add2);
        }
        assert!(matches!(g.validate(), Err(DfgError::TooManyInputs { .. })));
    }

    #[test]
    fn data_cycle_detected() {
        let mut g = Dfg::new("cycle");
        let a = g.add_node(OpKind::Add, "a");
        let b = g.add_node(OpKind::Add, "b");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(b, a).unwrap();
        assert_eq!(g.validate(), Err(DfgError::DataCycle));
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn recurrence_cycle_is_fine() {
        let mut g = Dfg::new("rec");
        let a = g.add_node(OpKind::Add, "a");
        let b = g.add_node(OpKind::Add, "b");
        g.add_data_edge(a, b).unwrap();
        g.add_recurrence_edge(b, a, 1).unwrap();
        g.validate().unwrap();
        assert!(g.topological_order().is_some());
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, n) in order.iter().enumerate() {
                p[n.index()] = i;
            }
            p
        };
        for e in g.edges() {
            if e.kind == EdgeKind::Data {
                assert!(pos[e.src.index()] < pos[e.dst.index()]);
            }
        }
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(NodeId::new(0)), 2);
        assert_eq!(g.in_degree(NodeId::new(3)), 2);
        assert_eq!(g.data_out_degree(NodeId::new(0)), 2);
        assert_eq!(g.data_in_degree(NodeId::new(0)), 0);
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = Dfg::new("disc");
        g.add_node(OpKind::Add, "a");
        g.add_node(OpKind::Add, "b");
        assert!(!g.is_weakly_connected());
    }

    #[test]
    fn op_count_excludes_consts() {
        let mut g = Dfg::new("c");
        g.add_node(OpKind::Const, "k");
        g.add_node(OpKind::Add, "a");
        assert_eq!(g.op_count(), 1);
    }

    #[test]
    fn empty_graph_invalid() {
        let g = Dfg::new("empty");
        assert_eq!(g.validate(), Err(DfgError::Empty));
    }
}
