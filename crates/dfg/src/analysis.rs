//! Classic graph analyses over [`Dfg`]s.
//!
//! These feed the Attributes Generator (paper §IV-A), the label
//! initialisation (§V-B), and the mappers' schedule windows. All analyses
//! operate on the *data* subgraph (intra-iteration edges), which is
//! guaranteed acyclic by [`Dfg::validate`]; recurrence edges only
//! participate in [`rec_mii`].

use crate::{Dfg, EdgeKind, NodeId};

/// A compact bit set over node indices, sized for one [`Dfg`].
///
/// Used to hold ancestor/descendant sets; graphs in this repository have
/// tens to low hundreds of nodes, so a `Vec<u64>` of words is both compact
/// and fast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set for graphs with `len` nodes.
    pub fn new(len: usize) -> Self {
        NodeSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Inserts a node. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the node index is out of range for this set.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let i = id.index();
        assert!(i < self.len, "node {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let newly = *w & mask == 0;
        *w |= mask;
        newly
    }

    /// Whether the set contains a node.
    pub fn contains(&self, id: NodeId) -> bool {
        let i = id.index();
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of nodes in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union with another set of the same size.
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Iterates over the contained node ids in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len)
            .map(NodeId::new)
            .filter(move |&id| self.contains(id))
    }

    /// Nodes present in both sets.
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        debug_assert_eq!(self.len, other.len);
        let mut out = NodeSet::new(self.len);
        for (o, (a, b)) in out
            .words
            .iter_mut()
            .zip(self.words.iter().zip(&other.words))
        {
            *o = a & b;
        }
        out
    }

    /// Whether the two sets share at least one node.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }
}

/// As-Soon-As-Possible level of every node over data edges.
///
/// Sources have level 0; every other node sits one level after its latest
/// data predecessor. This is the scheduling-order seed the paper uses
/// (§II-B) and node attribute 1 of the Attributes Generator.
///
/// # Panics
///
/// Panics if the data subgraph has a cycle (call [`Dfg::validate`] first).
pub fn asap(dfg: &Dfg) -> Vec<u32> {
    let order = dfg
        .topological_order()
        .expect("asap requires an acyclic data subgraph");
    let mut level = vec![0u32; dfg.node_count()];
    for v in order {
        let mut best = 0;
        for p in dfg.data_predecessors(v) {
            best = best.max(level[p.index()] + 1);
        }
        level[v.index()] = best;
    }
    level
}

/// As-Late-As-Possible level of every node, anchored so that the latest
/// node shares its ASAP level (i.e. `alap(sink) == asap(sink)` on the
/// critical path). Slack is `alap - asap`.
///
/// # Panics
///
/// Panics if the data subgraph has a cycle.
pub fn alap(dfg: &Dfg) -> Vec<u32> {
    let order = dfg
        .topological_order()
        .expect("alap requires an acyclic data subgraph");
    let asap_levels = asap(dfg);
    let max_level = asap_levels.iter().copied().max().unwrap_or(0);
    let mut level = vec![max_level; dfg.node_count()];
    for v in order.iter().rev() {
        let mut best: Option<u32> = None;
        for s in dfg.data_successors(*v) {
            let cand = level[s.index()].saturating_sub(1);
            best = Some(best.map_or(cand, |b: u32| b.min(cand)));
        }
        if let Some(b) = best {
            level[v.index()] = b;
        }
    }
    level
}

/// Length (in levels) of the longest data path: `max(asap) + 1` nodes, i.e.
/// the critical path length used to normalise schedule-order labels
/// (paper §V-B).
pub fn critical_path_len(dfg: &Dfg) -> u32 {
    asap(dfg).into_iter().max().map_or(0, |m| m + 1)
}

/// Ancestor set of every node (nodes reachable by walking data edges
/// backwards), excluding the node itself.
pub fn ancestor_sets(dfg: &Dfg) -> Vec<NodeSet> {
    let order = dfg
        .topological_order()
        .expect("ancestors require an acyclic data subgraph");
    let n = dfg.node_count();
    let mut sets: Vec<NodeSet> = (0..n).map(|_| NodeSet::new(n)).collect();
    for v in order {
        let preds: Vec<NodeId> = dfg.data_predecessors(v).collect();
        for p in preds {
            let pset = sets[p.index()].clone();
            sets[v.index()].union_with(&pset);
            sets[v.index()].insert(p);
        }
    }
    sets
}

/// Descendant set of every node (reachable by data edges), excluding the
/// node itself.
pub fn descendant_sets(dfg: &Dfg) -> Vec<NodeSet> {
    let order = dfg
        .topological_order()
        .expect("descendants require an acyclic data subgraph");
    let n = dfg.node_count();
    let mut sets: Vec<NodeSet> = (0..n).map(|_| NodeSet::new(n)).collect();
    for v in order.iter().rev() {
        let succs: Vec<NodeId> = dfg.data_successors(*v).collect();
        for s in succs {
            let sset = sets[s.index()].clone();
            sets[v.index()].union_with(&sset);
            sets[v.index()].insert(s);
        }
    }
    sets
}

/// BFS hop distances from `from` walking data edges forwards.
/// `None` means unreachable.
pub fn distances_down(dfg: &Dfg, from: NodeId) -> Vec<Option<u32>> {
    bfs(dfg, from, /*forward=*/ true)
}

/// BFS hop distances from `from` walking data edges backwards.
pub fn distances_up(dfg: &Dfg, from: NodeId) -> Vec<Option<u32>> {
    bfs(dfg, from, /*forward=*/ false)
}

fn bfs(dfg: &Dfg, from: NodeId, forward: bool) -> Vec<Option<u32>> {
    let mut dist = vec![None; dfg.node_count()];
    dist[from.index()] = Some(0);
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("queued nodes have distances");
        let next: Vec<NodeId> = if forward {
            dfg.data_successors(v).collect()
        } else {
            dfg.data_predecessors(v).collect()
        };
        for u in next {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Longest data-path length (in edges) from `from` to every node.
/// `None` means unreachable.
pub fn longest_paths_from(dfg: &Dfg, from: NodeId) -> Vec<Option<u32>> {
    let order = dfg
        .topological_order()
        .expect("longest paths require an acyclic data subgraph");
    let mut dist: Vec<Option<u32>> = vec![None; dfg.node_count()];
    dist[from.index()] = Some(0);
    for v in order {
        if let Some(d) = dist[v.index()] {
            for s in dfg.data_successors(v) {
                let cand = d + 1;
                if dist[s.index()].is_none_or(|cur| cur < cand) {
                    dist[s.index()] = Some(cand);
                }
            }
        }
    }
    dist
}

/// Number of nodes whose ASAP level lies strictly between two levels
/// (edge attribute 2 of the Attributes Generator, §IV-A).
pub fn nodes_between_levels(asap_levels: &[u32], lo: u32, hi: u32) -> usize {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    asap_levels.iter().filter(|&&l| l > lo && l < hi).count()
}

/// Number of nodes sharing the given ASAP level.
pub fn nodes_at_level(asap_levels: &[u32], level: u32) -> usize {
    asap_levels.iter().filter(|&&l| l == level).count()
}

/// Recurrence-constrained minimum II (RecMII).
///
/// For every recurrence edge `u -> v` with iteration distance `d`, any
/// schedule must satisfy `st(u) + 1 <= st(v) + d * II` (the value computed
/// by `u` must arrive at `v` `d` iterations later). Closing the cycle
/// through the longest data path from `v` back to `u` of length `L` edges
/// (L+1 single-cycle ops) yields `II >= ceil((L + 1) / d)`.
/// Graphs without recurrences have `RecMII = 1`.
pub fn rec_mii(dfg: &Dfg) -> u32 {
    let mut mii = 1u32;
    for e in dfg.edges() {
        if let EdgeKind::Recurrence { distance } = e.kind {
            // Longest data path from the consumer back to the producer.
            let paths = longest_paths_from(dfg, e.dst);
            let l = paths[e.src.index()].unwrap_or(0);
            let cycle_latency = l + 1;
            mii = mii.max(cycle_latency.div_ceil(distance));
        }
    }
    mii
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    /// The paper's Fig. 4 DFG: A..J with the dense region around B.
    ///
    /// Edges: A->C, B->D, B->E, B->F, B->I, C->G, D->G, E->H(no... )
    /// We reconstruct a faithful shape: A,B roots; C child of A;
    /// D,E,F children of B; G children of C,D; H child of D,E; I child of
    /// B,E; J child of G,H.
    pub(crate) fn fig4() -> Dfg {
        let mut g = Dfg::new("fig4");
        let a = g.add_node(OpKind::Load, "A");
        let b = g.add_node(OpKind::Load, "B");
        let c = g.add_node(OpKind::Add, "C");
        let d = g.add_node(OpKind::Mul, "D");
        let e = g.add_node(OpKind::Add, "E");
        let f = g.add_node(OpKind::Sub, "F");
        let gg = g.add_node(OpKind::Add, "G");
        let h = g.add_node(OpKind::Mul, "H");
        let i = g.add_node(OpKind::Add, "I");
        let j = g.add_node(OpKind::Store, "J");
        g.add_data_edge(a, c).unwrap();
        g.add_data_edge(b, d).unwrap();
        g.add_data_edge(b, e).unwrap();
        g.add_data_edge(b, f).unwrap();
        g.add_data_edge(b, i).unwrap();
        g.add_data_edge(c, gg).unwrap();
        g.add_data_edge(d, gg).unwrap();
        g.add_data_edge(d, h).unwrap();
        g.add_data_edge(e, h).unwrap();
        g.add_data_edge(e, i).unwrap();
        g.add_data_edge(gg, j).unwrap();
        g.add_data_edge(h, j).unwrap();
        g.validate().unwrap();
        g
    }

    #[test]
    fn asap_levels_fig4() {
        let g = fig4();
        let lv = asap(&g);
        assert_eq!(lv[0], 0); // A
        assert_eq!(lv[1], 0); // B
        assert_eq!(lv[2], 1); // C
        assert_eq!(lv[6], 2); // G
        assert_eq!(lv[9], 3); // J
        assert_eq!(critical_path_len(&g), 4);
    }

    #[test]
    fn alap_no_less_than_asap() {
        let g = fig4();
        let a = asap(&g);
        let l = alap(&g);
        for i in 0..g.node_count() {
            assert!(l[i] >= a[i], "node {i}: alap {} < asap {}", l[i], a[i]);
        }
        // J is the sink on the critical path: no slack.
        assert_eq!(a[9], l[9]);
    }

    #[test]
    fn ancestors_and_descendants() {
        let g = fig4();
        let anc = ancestor_sets(&g);
        let desc = descendant_sets(&g);
        // J's ancestors: everyone except F, I, J itself.
        let j = 9;
        assert_eq!(anc[j].count(), 7);
        assert!(!anc[j].contains(NodeId::new(5))); // F
                                                   // B's descendants: D,E,F,G,H,I,J = 7.
        assert_eq!(desc[1].count(), 7);
        assert!(!desc[1].contains(NodeId::new(2))); // C not from B
    }

    #[test]
    fn bfs_distances() {
        let g = fig4();
        let down = distances_down(&g, NodeId::new(1)); // from B
        assert_eq!(down[3], Some(1)); // D
        assert_eq!(down[9], Some(3)); // J via D->G->J or D->H->J
        assert_eq!(down[2], None); // C unreachable from B
        let up = distances_up(&g, NodeId::new(9)); // from J
        assert_eq!(up[1], Some(3)); // B
        assert_eq!(up[5], None); // F not an ancestor of J
    }

    #[test]
    fn longest_paths() {
        let g = fig4();
        let lp = longest_paths_from(&g, NodeId::new(1));
        assert_eq!(lp[9], Some(3));
        assert_eq!(lp[5], Some(1));
        assert_eq!(lp[0], None);
    }

    #[test]
    fn levels_between() {
        let g = fig4();
        let lv = asap(&g);
        // Between level 0 and 3: levels 1 and 2 -> C,D,E,F,I (lvl 1 has C,D,E,F; I is level 2? check)
        let n = nodes_between_levels(&lv, 0, 3);
        // levels: A0 B0 C1 D1 E1 F1 G2 H2 I2 J3 -> strictly between: 7
        assert_eq!(n, 7);
        assert_eq!(nodes_at_level(&lv, 0), 2);
        assert_eq!(nodes_at_level(&lv, 3), 1);
        // Order of bounds must not matter.
        assert_eq!(nodes_between_levels(&lv, 3, 0), 7);
    }

    #[test]
    fn rec_mii_without_recurrence_is_one() {
        assert_eq!(rec_mii(&fig4()), 1);
    }

    #[test]
    fn rec_mii_accumulator() {
        let mut g = Dfg::new("acc");
        let a = g.add_node(OpKind::Add, "acc");
        g.add_recurrence_edge(a, a, 1).unwrap();
        assert_eq!(rec_mii(&g), 1);
        // Two-op cycle with distance 1: II >= 2.
        let mut g2 = Dfg::new("acc2");
        let x = g2.add_node(OpKind::Add, "x");
        let y = g2.add_node(OpKind::Mul, "y");
        g2.add_data_edge(x, y).unwrap();
        g2.add_recurrence_edge(y, x, 1).unwrap();
        assert_eq!(rec_mii(&g2), 2);
        // Same cycle with distance 2 halves the bound.
        let mut g3 = Dfg::new("acc3");
        let x = g3.add_node(OpKind::Add, "x");
        let y = g3.add_node(OpKind::Mul, "y");
        g3.add_data_edge(x, y).unwrap();
        g3.add_recurrence_edge(y, x, 2).unwrap();
        assert_eq!(rec_mii(&g3), 1);
    }

    #[test]
    fn nodeset_basics() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(NodeId::new(0)));
        assert!(s.insert(NodeId::new(129)));
        assert!(!s.insert(NodeId::new(0)));
        assert_eq!(s.count(), 2);
        assert!(s.contains(NodeId::new(129)));
        assert!(!s.contains(NodeId::new(64)));
        let collected: Vec<usize> = s.iter().map(|n| n.index()).collect();
        assert_eq!(collected, vec![0, 129]);
    }

    #[test]
    fn nodeset_intersection() {
        let mut a = NodeSet::new(10);
        let mut b = NodeSet::new(10);
        a.insert(NodeId::new(1));
        a.insert(NodeId::new(5));
        b.insert(NodeId::new(5));
        b.insert(NodeId::new(7));
        assert!(a.intersects(&b));
        let i = a.intersection(&b);
        assert_eq!(i.count(), 1);
        assert!(i.contains(NodeId::new(5)));
    }
}
