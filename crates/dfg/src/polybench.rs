//! Hand-constructed DFGs for the 12 PolyBench kernels used in the paper's
//! evaluation (§VI, Fig. 9–13).
//!
//! The paper extracts these from LLVM via CGRA-ME; offline we build the
//! innermost-loop bodies by hand (see DESIGN.md "Substitutions"). Every
//! kernel follows the same recipe real CGRA DFGs exhibit:
//!
//! * an induction variable updated by a self-recurrent `add` plus a `cmp`
//!   against the loop bound,
//! * affine address computation feeding `load`s,
//! * the arithmetic core (mul/add trees, accumulations as recurrences),
//! * `store`s of the produced values.
//!
//! Node counts land in the tens — the range CGRA-ME's mappers handle and the
//! paper's Fig. 9 exercises.

use crate::{Dfg, DfgError, NodeId, OpKind};

/// Names of the twelve kernels, in the order the figures plot them.
pub const KERNEL_NAMES: [&str; 12] = [
    "atax", "bicg", "gemm", "gesummv", "mvt", "symm", "syrk", "syr2k", "trmm", "doitgen", "2mm",
    "3mm",
];

/// Kernels whose unrolled (factor 2) variants appear in Fig. 9d (4×4 CGRA).
pub const UNROLLED_4X4_NAMES: [&str; 6] = ["atax", "bicg", "gemm", "gesummv", "mvt", "symm"];

/// Kernels whose unrolled variants appear in Fig. 9f (8×8 CGRA).
pub const UNROLLED_8X8_NAMES: [&str; 8] = [
    "atax", "bicg", "gemm", "gesummv", "mvt", "symm", "syrk", "syr2k",
];

/// Builds the DFG for a kernel by name.
///
/// # Errors
///
/// Returns [`DfgError`] only if an internal construction bug violates the
/// graph invariants (never in practice; covered by tests).
///
/// # Panics
///
/// Panics on an unknown kernel name.
pub fn kernel(name: &str) -> Result<Dfg, DfgError> {
    let g = match name {
        "atax" => atax(),
        "bicg" => bicg(),
        "gemm" => gemm(),
        "gesummv" => gesummv(),
        "mvt" => mvt(),
        "symm" => symm(),
        "syrk" => syrk(),
        "syr2k" => syr2k(),
        "trmm" => trmm(),
        "doitgen" => doitgen(),
        "2mm" => mm2(),
        "3mm" => mm3(),
        other => panic!("unknown PolyBench kernel {other:?}"),
    }?;
    g.validate()?;
    Ok(g)
}

/// All twelve kernels in figure order.
///
/// # Example
///
/// ```
/// let kernels = lisa_dfg::polybench::all_kernels();
/// assert_eq!(kernels.len(), 12);
/// for k in &kernels {
///     assert!(k.validate().is_ok());
/// }
/// ```
pub fn all_kernels() -> Vec<Dfg> {
    KERNEL_NAMES
        .iter()
        .map(|n| kernel(n).expect("built-in kernels are valid"))
        .collect()
}

/// Factor-2 unrolled variants of the named kernels.
pub fn unrolled_kernels(names: &[&str]) -> Vec<Dfg> {
    names
        .iter()
        .map(|n| crate::unroll::unroll(&kernel(n).expect("built-in kernels are valid"), 2))
        .collect()
}

/// Shared scaffolding for kernel construction.
struct Builder {
    g: Dfg,
}

impl Builder {
    fn new(name: &str) -> Self {
        Builder { g: Dfg::new(name) }
    }

    fn node(&mut self, op: OpKind, name: &str) -> NodeId {
        self.g.add_node(op, name)
    }

    fn edge(&mut self, src: NodeId, dst: NodeId) -> Result<(), DfgError> {
        self.g.add_data_edge(src, dst)?;
        Ok(())
    }

    /// Induction variable: `i_next = i + step` with a distance-1 recurrence
    /// onto itself, plus a `cmp` against the loop bound. Returns the add
    /// node (the live induction value).
    fn induction(&mut self, name: &str) -> Result<NodeId, DfgError> {
        let step = self.node(OpKind::Const, &format!("{name}_step"));
        let add = self.node(OpKind::Add, &format!("{name}_next"));
        let bound = self.node(OpKind::Const, &format!("{name}_bound"));
        let cmp = self.node(OpKind::Cmp, &format!("{name}_cmp"));
        self.edge(step, add)?;
        self.g.add_recurrence_edge(add, add, 1)?;
        self.edge(add, cmp)?;
        self.edge(bound, cmp)?;
        Ok(add)
    }

    /// Affine address `base + idx` feeding a load; returns the load.
    fn load_at(&mut self, idx: NodeId, name: &str) -> Result<NodeId, DfgError> {
        let base = self.node(OpKind::Const, &format!("{name}_base"));
        let addr = self.node(OpKind::Add, &format!("{name}_addr"));
        let ld = self.node(OpKind::Load, name);
        self.edge(base, addr)?;
        self.edge(idx, addr)?;
        self.edge(addr, ld)?;
        Ok(ld)
    }

    /// Strided address `base + idx * stride` feeding a load.
    fn load_strided(&mut self, idx: NodeId, name: &str) -> Result<NodeId, DfgError> {
        let stride = self.node(OpKind::Const, &format!("{name}_stride"));
        let mul = self.node(OpKind::Mul, &format!("{name}_off"));
        self.edge(idx, mul)?;
        self.edge(stride, mul)?;
        self.load_at(mul, name)
    }

    /// Accumulator `acc += value`: an add with a distance-1 self-recurrence.
    fn accumulate(&mut self, value: NodeId, name: &str) -> Result<NodeId, DfgError> {
        let acc = self.node(OpKind::Add, name);
        self.edge(value, acc)?;
        self.g.add_recurrence_edge(acc, acc, 1)?;
        Ok(acc)
    }

    /// `store value` (address folded into the store port).
    fn store(&mut self, value: NodeId, name: &str) -> Result<NodeId, DfgError> {
        let st = self.node(OpKind::Store, name);
        self.edge(value, st)?;
        Ok(st)
    }

    fn finish(self) -> Result<Dfg, DfgError> {
        self.g.validate()?;
        Ok(self.g)
    }
}

/// `atax`: y += A[i][j] * tmp_x  twice-nested matrix–vector chain.
/// Inner body: tmp += A[i][j] * x[j]; y[j] += A[i][j] * tmp.
fn atax() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("atax");
    let j = b.induction("j")?;
    let a_ij = b.load_at(j, "A_ij")?;
    let x_j = b.load_at(j, "x_j")?;
    let m1 = b.node(OpKind::Mul, "mul_ax");
    b.edge(a_ij, m1)?;
    b.edge(x_j, m1)?;
    let tmp = b.accumulate(m1, "tmp_acc")?;
    let m2 = b.node(OpKind::Mul, "mul_at");
    b.edge(a_ij, m2)?;
    b.edge(tmp, m2)?;
    let y_j = b.load_at(j, "y_j")?;
    let upd = b.node(OpKind::Add, "y_upd");
    b.edge(y_j, upd)?;
    b.edge(m2, upd)?;
    b.store(upd, "y_store")?;
    b.finish()
}

/// `bicg`: s[j] += r[i]*A[i][j]; q[i] += A[i][j]*p[j].
fn bicg() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("bicg");
    let j = b.induction("j")?;
    let a_ij = b.load_at(j, "A_ij")?;
    let r_i = b.load_at(j, "r_i")?;
    let p_j = b.load_at(j, "p_j")?;
    let s_j = b.load_at(j, "s_j")?;
    let m1 = b.node(OpKind::Mul, "r_mul_a");
    b.edge(r_i, m1)?;
    b.edge(a_ij, m1)?;
    let s_upd = b.node(OpKind::Add, "s_upd");
    b.edge(s_j, s_upd)?;
    b.edge(m1, s_upd)?;
    b.store(s_upd, "s_store")?;
    let m2 = b.node(OpKind::Mul, "a_mul_p");
    b.edge(a_ij, m2)?;
    b.edge(p_j, m2)?;
    let q = b.accumulate(m2, "q_acc")?;
    b.store(q, "q_store")?;
    b.finish()
}

/// `gemm`: C[i][j] = beta*C[i][j] + alpha * Σ_k A[i][k]*B[k][j].
/// Inner body over k with the alpha product folded into the accumulation.
fn gemm() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("gemm");
    let k = b.induction("k")?;
    let a_ik = b.load_at(k, "A_ik")?;
    let b_kj = b.load_strided(k, "B_kj")?;
    let alpha = b.node(OpKind::Const, "alpha");
    let m1 = b.node(OpKind::Mul, "ab");
    b.edge(a_ik, m1)?;
    b.edge(b_kj, m1)?;
    let m2 = b.node(OpKind::Mul, "ab_alpha");
    b.edge(m1, m2)?;
    b.edge(alpha, m2)?;
    let acc = b.accumulate(m2, "c_acc")?;
    b.store(acc, "c_store")?;
    b.finish()
}

/// `gesummv`: tmp[i] += A[i][j]*x[j]; y[i] += B[i][j]*x[j]; then the
/// alpha/beta combine feeds the store.
fn gesummv() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("gesummv");
    let j = b.induction("j")?;
    let a_ij = b.load_at(j, "A_ij")?;
    let b_ij = b.load_at(j, "B_ij")?;
    let x_j = b.load_at(j, "x_j")?;
    let m1 = b.node(OpKind::Mul, "ax");
    b.edge(a_ij, m1)?;
    b.edge(x_j, m1)?;
    let m2 = b.node(OpKind::Mul, "bx");
    b.edge(b_ij, m2)?;
    b.edge(x_j, m2)?;
    let tmp = b.accumulate(m1, "tmp_acc")?;
    let y = b.accumulate(m2, "y_acc")?;
    let alpha = b.node(OpKind::Const, "alpha");
    let beta = b.node(OpKind::Const, "beta");
    let at = b.node(OpKind::Mul, "alpha_tmp");
    b.edge(alpha, at)?;
    b.edge(tmp, at)?;
    let by = b.node(OpKind::Mul, "beta_y");
    b.edge(beta, by)?;
    b.edge(y, by)?;
    let sum = b.node(OpKind::Add, "combine");
    b.edge(at, sum)?;
    b.edge(by, sum)?;
    b.store(sum, "y_store")?;
    b.finish()
}

/// `mvt`: x1[i] += A[i][j]*y1[j]; x2[i] += A[j][i]*y2[j].
fn mvt() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("mvt");
    let j = b.induction("j")?;
    let a_ij = b.load_at(j, "A_ij")?;
    let a_ji = b.load_strided(j, "A_ji")?;
    let y1 = b.load_at(j, "y1_j")?;
    let y2 = b.load_at(j, "y2_j")?;
    let m1 = b.node(OpKind::Mul, "a_y1");
    b.edge(a_ij, m1)?;
    b.edge(y1, m1)?;
    let m2 = b.node(OpKind::Mul, "a_y2");
    b.edge(a_ji, m2)?;
    b.edge(y2, m2)?;
    let x1 = b.accumulate(m1, "x1_acc")?;
    let x2 = b.accumulate(m2, "x2_acc")?;
    b.store(x1, "x1_store")?;
    b.store(x2, "x2_store")?;
    b.finish()
}

/// `symm`: C[i][j] = beta*C[i][j] + alpha*B[i][j]*A[i][i] + alpha * Σ temp;
/// the inner body accumulates both the row and the symmetric column term.
fn symm() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("symm");
    let k = b.induction("k")?;
    let a_ik = b.load_at(k, "A_ik")?;
    let b_kj = b.load_strided(k, "B_kj")?;
    let b_ij = b.load_at(k, "B_ij")?;
    let alpha = b.node(OpKind::Const, "alpha");
    let m1 = b.node(OpKind::Mul, "ab");
    b.edge(a_ik, m1)?;
    b.edge(b_kj, m1)?;
    let m2 = b.node(OpKind::Mul, "ab_alpha");
    b.edge(m1, m2)?;
    b.edge(alpha, m2)?;
    let acc = b.accumulate(m2, "c_acc")?;
    // Symmetric update: C[k][j] += alpha * B[i][j] * A[i][k].
    let m3 = b.node(OpKind::Mul, "ba");
    b.edge(b_ij, m3)?;
    b.edge(a_ik, m3)?;
    let m4 = b.node(OpKind::Mul, "ba_alpha");
    b.edge(m3, m4)?;
    b.edge(alpha, m4)?;
    let c_kj = b.load_strided(k, "C_kj")?;
    let upd = b.node(OpKind::Add, "c_kj_upd");
    b.edge(c_kj, upd)?;
    b.edge(m4, upd)?;
    b.store(upd, "c_kj_store")?;
    b.store(acc, "c_ij_store")?;
    b.finish()
}

/// `syrk`: C[i][j] = beta*C[i][j] + alpha * Σ_k A[i][k]*A[j][k].
fn syrk() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("syrk");
    let k = b.induction("k")?;
    let a_ik = b.load_at(k, "A_ik")?;
    let a_jk = b.load_strided(k, "A_jk")?;
    let m1 = b.node(OpKind::Mul, "aa");
    b.edge(a_ik, m1)?;
    b.edge(a_jk, m1)?;
    let alpha = b.node(OpKind::Const, "alpha");
    let m2 = b.node(OpKind::Mul, "aa_alpha");
    b.edge(m1, m2)?;
    b.edge(alpha, m2)?;
    let acc = b.accumulate(m2, "c_acc")?;
    b.store(acc, "c_store")?;
    b.finish()
}

/// `syr2k`: C[i][j] += alpha*A[i][k]*B[j][k] + alpha*B[i][k]*A[j][k].
/// The densest kernel: four loads feed two products combined per iteration.
fn syr2k() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("syr2k");
    let k = b.induction("k")?;
    let a_ik = b.load_at(k, "A_ik")?;
    let b_jk = b.load_strided(k, "B_jk")?;
    let b_ik = b.load_at(k, "B_ik")?;
    let a_jk = b.load_strided(k, "A_jk")?;
    let alpha = b.node(OpKind::Const, "alpha");
    let m1 = b.node(OpKind::Mul, "ab1");
    b.edge(a_ik, m1)?;
    b.edge(b_jk, m1)?;
    let m2 = b.node(OpKind::Mul, "ab2");
    b.edge(b_ik, m2)?;
    b.edge(a_jk, m2)?;
    let s = b.node(OpKind::Add, "pair_sum");
    b.edge(m1, s)?;
    b.edge(m2, s)?;
    let m3 = b.node(OpKind::Mul, "sum_alpha");
    b.edge(s, m3)?;
    b.edge(alpha, m3)?;
    let acc = b.accumulate(m3, "c_acc")?;
    b.store(acc, "c_store")?;
    b.finish()
}

/// `trmm`: B[i][j] += A[k][i] * B[k][j] over the triangular range, then the
/// alpha scale at the store.
fn trmm() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("trmm");
    let k = b.induction("k")?;
    let a_ki = b.load_strided(k, "A_ki")?;
    let b_kj = b.load_strided(k, "B_kj")?;
    let m1 = b.node(OpKind::Mul, "ab");
    b.edge(a_ki, m1)?;
    b.edge(b_kj, m1)?;
    let acc = b.accumulate(m1, "b_acc")?;
    let alpha = b.node(OpKind::Const, "alpha");
    let m2 = b.node(OpKind::Mul, "acc_alpha");
    b.edge(acc, m2)?;
    b.edge(alpha, m2)?;
    b.store(m2, "b_store")?;
    b.finish()
}

/// `doitgen`: sum[p] += A[r][q][s] * C4[s][p].
fn doitgen() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("doitgen");
    let s = b.induction("s")?;
    let a_rqs = b.load_at(s, "A_rqs")?;
    let c4_sp = b.load_strided(s, "C4_sp")?;
    let m = b.node(OpKind::Mul, "ac");
    b.edge(a_rqs, m)?;
    b.edge(c4_sp, m)?;
    let acc = b.accumulate(m, "sum_acc")?;
    b.store(acc, "sum_store")?;
    b.finish()
}

/// `2mm`: tmp = alpha*A*B then D = tmp*C + beta*D; fused inner body.
fn mm2() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("2mm");
    let k = b.induction("k")?;
    let a_ik = b.load_at(k, "A_ik")?;
    let b_kj = b.load_strided(k, "B_kj")?;
    let alpha = b.node(OpKind::Const, "alpha");
    let m1 = b.node(OpKind::Mul, "ab");
    b.edge(a_ik, m1)?;
    b.edge(b_kj, m1)?;
    let m2 = b.node(OpKind::Mul, "ab_alpha");
    b.edge(m1, m2)?;
    b.edge(alpha, m2)?;
    let tmp = b.accumulate(m2, "tmp_acc")?;
    let c_kj = b.load_strided(k, "C_kj")?;
    let m3 = b.node(OpKind::Mul, "tmp_c");
    b.edge(tmp, m3)?;
    b.edge(c_kj, m3)?;
    let d = b.accumulate(m3, "d_acc")?;
    b.store(d, "d_store")?;
    b.finish()
}

/// `3mm`: E = A*B, F = C*D, G = E*F; fused inner body with three products.
fn mm3() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("3mm");
    let k = b.induction("k")?;
    let a_ik = b.load_at(k, "A_ik")?;
    let b_kj = b.load_strided(k, "B_kj")?;
    let c_ik = b.load_at(k, "C_ik")?;
    let d_kj = b.load_strided(k, "D_kj")?;
    let m1 = b.node(OpKind::Mul, "ab");
    b.edge(a_ik, m1)?;
    b.edge(b_kj, m1)?;
    let e = b.accumulate(m1, "e_acc")?;
    let m2 = b.node(OpKind::Mul, "cd");
    b.edge(c_ik, m2)?;
    b.edge(d_kj, m2)?;
    let f = b.accumulate(m2, "f_acc")?;
    let m3 = b.node(OpKind::Mul, "ef");
    b.edge(e, m3)?;
    b.edge(f, m3)?;
    let g = b.accumulate(m3, "g_acc")?;
    b.store(g, "g_store")?;
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn all_twelve_build_and_validate() {
        let kernels = all_kernels();
        assert_eq!(kernels.len(), 12);
        for k in &kernels {
            k.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            assert!(k.is_weakly_connected(), "{} disconnected", k.name());
        }
    }

    #[test]
    fn kernel_names_match() {
        for name in KERNEL_NAMES {
            let g = kernel(name).unwrap();
            assert_eq!(g.name(), name);
        }
    }

    #[test]
    fn sizes_are_in_cgra_range() {
        for g in all_kernels() {
            assert!(
                (10..=40).contains(&g.node_count()),
                "{}: {} nodes outside expected range",
                g.name(),
                g.node_count()
            );
        }
    }

    #[test]
    fn every_kernel_has_memory_ops_and_recurrence() {
        for g in all_kernels() {
            assert!(
                g.nodes().iter().any(|n| n.op == OpKind::Load),
                "{} has no load",
                g.name()
            );
            assert!(
                g.nodes().iter().any(|n| n.op == OpKind::Store),
                "{} has no store",
                g.name()
            );
            assert!(analysis::rec_mii(&g) >= 1, "{} rec_mii broken", g.name());
        }
    }

    #[test]
    fn syr2k_is_denser_than_doitgen() {
        // Fig. 9 relies on syr2k being among the hardest kernels; make sure
        // our construction preserves that density relationship.
        let syr2k = kernel("syr2k").unwrap();
        let doitgen = kernel("doitgen").unwrap();
        assert!(syr2k.node_count() > doitgen.node_count());
        assert!(syr2k.edge_count() > doitgen.edge_count());
    }

    #[test]
    fn unrolled_sets_have_expected_sizes() {
        let u4 = unrolled_kernels(&UNROLLED_4X4_NAMES);
        assert_eq!(u4.len(), 6);
        let u8 = unrolled_kernels(&UNROLLED_8X8_NAMES);
        assert_eq!(u8.len(), 8);
        for g in u4.iter().chain(u8.iter()) {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            assert!(g.name().ends_with("_u2"));
        }
    }

    #[test]
    #[should_panic(expected = "unknown PolyBench kernel")]
    fn unknown_kernel_panics() {
        let _ = kernel("nosuch");
    }

    #[test]
    fn deterministic_construction() {
        let a = kernel("gemm").unwrap();
        let b = kernel("gemm").unwrap();
        assert_eq!(a, b);
    }
}

/// Compute-core variant of a kernel for the systolic-array experiments
/// (Fig. 9g): the loop body without address arithmetic or induction
/// variables. Systolic arrays stream operands in from the boundary, so
/// loads are direct sources, the interior computes the mul/add tree, and
/// results stream out through stores. Only systolic-supported operations
/// appear.
///
/// # Errors
///
/// Returns [`DfgError`] only on internal construction bugs (covered by
/// tests).
///
/// # Panics
///
/// Panics on an unknown kernel name.
pub fn kernel_core(name: &str) -> Result<Dfg, DfgError> {
    let mut b = Builder::new(&format!("{name}-core"));
    match name {
        "atax" => {
            let a = b.node(OpKind::Load, "A_ij");
            let x = b.node(OpKind::Load, "x_j");
            let y = b.node(OpKind::Load, "y_j");
            let m1 = b.node(OpKind::Mul, "ax");
            b.edge(a, m1)?;
            b.edge(x, m1)?;
            let tmp = b.accumulate(m1, "tmp")?;
            let m2 = b.node(OpKind::Mul, "at");
            b.edge(a, m2)?;
            b.edge(tmp, m2)?;
            let upd = b.node(OpKind::Add, "y_upd");
            b.edge(y, upd)?;
            b.edge(m2, upd)?;
            b.store(upd, "y_store")?;
        }
        "bicg" => {
            let a = b.node(OpKind::Load, "A_ij");
            let r = b.node(OpKind::Load, "r_i");
            let p = b.node(OpKind::Load, "p_j");
            let s = b.node(OpKind::Load, "s_j");
            let m1 = b.node(OpKind::Mul, "ra");
            b.edge(r, m1)?;
            b.edge(a, m1)?;
            let s_upd = b.node(OpKind::Add, "s_upd");
            b.edge(s, s_upd)?;
            b.edge(m1, s_upd)?;
            b.store(s_upd, "s_store")?;
            let m2 = b.node(OpKind::Mul, "ap");
            b.edge(a, m2)?;
            b.edge(p, m2)?;
            let q = b.accumulate(m2, "q")?;
            b.store(q, "q_store")?;
        }
        "gemm" => {
            let a = b.node(OpKind::Load, "A_ik");
            let bb = b.node(OpKind::Load, "B_kj");
            let alpha = b.node(OpKind::Const, "alpha");
            let m1 = b.node(OpKind::Mul, "ab");
            b.edge(a, m1)?;
            b.edge(bb, m1)?;
            let m2 = b.node(OpKind::Mul, "ab_alpha");
            b.edge(m1, m2)?;
            b.edge(alpha, m2)?;
            let acc = b.accumulate(m2, "c")?;
            b.store(acc, "c_store")?;
        }
        "gesummv" => {
            let a = b.node(OpKind::Load, "A_ij");
            let bb = b.node(OpKind::Load, "B_ij");
            let x = b.node(OpKind::Load, "x_j");
            let m1 = b.node(OpKind::Mul, "ax");
            b.edge(a, m1)?;
            b.edge(x, m1)?;
            let m2 = b.node(OpKind::Mul, "bx");
            b.edge(bb, m2)?;
            b.edge(x, m2)?;
            let t = b.accumulate(m1, "tmp")?;
            let y = b.accumulate(m2, "y")?;
            let sum = b.node(OpKind::Add, "combine");
            b.edge(t, sum)?;
            b.edge(y, sum)?;
            b.store(sum, "y_store")?;
        }
        "mvt" => {
            let a1 = b.node(OpKind::Load, "A_ij");
            let a2 = b.node(OpKind::Load, "A_ji");
            let y1 = b.node(OpKind::Load, "y1");
            let y2 = b.node(OpKind::Load, "y2");
            let m1 = b.node(OpKind::Mul, "ay1");
            b.edge(a1, m1)?;
            b.edge(y1, m1)?;
            let m2 = b.node(OpKind::Mul, "ay2");
            b.edge(a2, m2)?;
            b.edge(y2, m2)?;
            let x1 = b.accumulate(m1, "x1")?;
            let x2 = b.accumulate(m2, "x2")?;
            b.store(x1, "x1_store")?;
            b.store(x2, "x2_store")?;
        }
        "symm" => {
            let a = b.node(OpKind::Load, "A_ik");
            let bkj = b.node(OpKind::Load, "B_kj");
            let bij = b.node(OpKind::Load, "B_ij");
            let ckj = b.node(OpKind::Load, "C_kj");
            let alpha = b.node(OpKind::Const, "alpha");
            let m1 = b.node(OpKind::Mul, "ab");
            b.edge(a, m1)?;
            b.edge(bkj, m1)?;
            let m2 = b.node(OpKind::Mul, "ab_alpha");
            b.edge(m1, m2)?;
            b.edge(alpha, m2)?;
            let acc = b.accumulate(m2, "c_acc")?;
            let m3 = b.node(OpKind::Mul, "ba");
            b.edge(bij, m3)?;
            b.edge(a, m3)?;
            let upd = b.node(OpKind::Add, "ckj_upd");
            b.edge(ckj, upd)?;
            b.edge(m3, upd)?;
            b.store(upd, "ckj_store")?;
            b.store(acc, "cij_store")?;
        }
        "syrk" => {
            let a1 = b.node(OpKind::Load, "A_ik");
            let a2 = b.node(OpKind::Load, "A_jk");
            let alpha = b.node(OpKind::Const, "alpha");
            let m1 = b.node(OpKind::Mul, "aa");
            b.edge(a1, m1)?;
            b.edge(a2, m1)?;
            let m2 = b.node(OpKind::Mul, "aa_alpha");
            b.edge(m1, m2)?;
            b.edge(alpha, m2)?;
            let acc = b.accumulate(m2, "c")?;
            b.store(acc, "c_store")?;
        }
        "syr2k" => {
            let a1 = b.node(OpKind::Load, "A_ik");
            let b1 = b.node(OpKind::Load, "B_jk");
            let b2 = b.node(OpKind::Load, "B_ik");
            let a2 = b.node(OpKind::Load, "A_jk");
            let alpha = b.node(OpKind::Const, "alpha");
            let m1 = b.node(OpKind::Mul, "ab1");
            b.edge(a1, m1)?;
            b.edge(b1, m1)?;
            let m2 = b.node(OpKind::Mul, "ab2");
            b.edge(b2, m2)?;
            b.edge(a2, m2)?;
            let s = b.node(OpKind::Add, "pair");
            b.edge(m1, s)?;
            b.edge(m2, s)?;
            let m3 = b.node(OpKind::Mul, "scaled");
            b.edge(s, m3)?;
            b.edge(alpha, m3)?;
            let acc = b.accumulate(m3, "c")?;
            b.store(acc, "c_store")?;
        }
        "trmm" => {
            // The densest per-load fanout of the core set: one operand
            // stream feeds two multipliers and a symmetric update, which is
            // what makes trmm hard to lay out on forward-only links.
            let a = b.node(OpKind::Load, "A_ki");
            let bkj = b.node(OpKind::Load, "B_kj");
            let bij = b.node(OpKind::Load, "B_ij");
            let alpha = b.node(OpKind::Const, "alpha");
            let m1 = b.node(OpKind::Mul, "ab");
            b.edge(a, m1)?;
            b.edge(bkj, m1)?;
            let m2 = b.node(OpKind::Mul, "ab2");
            b.edge(a, m2)?;
            b.edge(bij, m2)?;
            let acc = b.accumulate(m1, "b_acc")?;
            let s = b.node(OpKind::Add, "mix");
            b.edge(acc, s)?;
            b.edge(m2, s)?;
            let m3 = b.node(OpKind::Mul, "scaled");
            b.edge(s, m3)?;
            b.edge(alpha, m3)?;
            let s2 = b.node(OpKind::Add, "mix2");
            b.edge(m3, s2)?;
            b.edge(m1, s2)?;
            b.store(s2, "b_store")?;
        }
        "doitgen" => {
            let a = b.node(OpKind::Load, "A_rqs");
            let c4 = b.node(OpKind::Load, "C4_sp");
            let m = b.node(OpKind::Mul, "ac");
            b.edge(a, m)?;
            b.edge(c4, m)?;
            let acc = b.accumulate(m, "sum")?;
            b.store(acc, "sum_store")?;
        }
        "2mm" => {
            let a = b.node(OpKind::Load, "A_ik");
            let bb = b.node(OpKind::Load, "B_kj");
            let c = b.node(OpKind::Load, "C_kj");
            let alpha = b.node(OpKind::Const, "alpha");
            let m1 = b.node(OpKind::Mul, "ab");
            b.edge(a, m1)?;
            b.edge(bb, m1)?;
            let m2 = b.node(OpKind::Mul, "ab_alpha");
            b.edge(m1, m2)?;
            b.edge(alpha, m2)?;
            let tmp = b.accumulate(m2, "tmp")?;
            let m3 = b.node(OpKind::Mul, "tmp_c");
            b.edge(tmp, m3)?;
            b.edge(c, m3)?;
            let d = b.accumulate(m3, "d")?;
            b.store(d, "d_store")?;
        }
        "3mm" => {
            let a = b.node(OpKind::Load, "A_ik");
            let bb = b.node(OpKind::Load, "B_kj");
            let c = b.node(OpKind::Load, "C_ik");
            let d = b.node(OpKind::Load, "D_kj");
            let m1 = b.node(OpKind::Mul, "ab");
            b.edge(a, m1)?;
            b.edge(bb, m1)?;
            let e = b.accumulate(m1, "e")?;
            let m2 = b.node(OpKind::Mul, "cd");
            b.edge(c, m2)?;
            b.edge(d, m2)?;
            let f = b.accumulate(m2, "f")?;
            let m3 = b.node(OpKind::Mul, "ef");
            b.edge(e, m3)?;
            b.edge(f, m3)?;
            let g = b.accumulate(m3, "g")?;
            b.store(g, "g_store")?;
        }
        other => panic!("unknown PolyBench kernel {other:?}"),
    }
    b.finish()
}

/// Compute-core variants of all twelve kernels (systolic experiments).
pub fn all_cores() -> Vec<Dfg> {
    KERNEL_NAMES
        .iter()
        .map(|n| kernel_core(n).expect("built-in cores are valid"))
        .collect()
}

#[cfg(test)]
mod core_tests {
    use super::*;

    #[test]
    fn cores_build_and_are_systolic_compatible() {
        for g in all_cores() {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            // Note: mvt-core is legitimately two independent MAC chains,
            // so weak connectivity is not asserted here.
            for n in g.nodes() {
                assert!(
                    n.op.systolic_supported() || n.op == OpKind::Const,
                    "{}: op {} unsupported on systolic",
                    g.name(),
                    n.op
                );
            }
        }
    }

    #[test]
    fn cores_are_smaller_than_full_kernels() {
        for name in KERNEL_NAMES {
            let full = kernel(name).unwrap();
            let core = kernel_core(name).unwrap();
            assert!(
                core.node_count() < full.node_count(),
                "{name}: core not smaller"
            );
        }
    }

    #[test]
    fn cores_fit_boundary_constraints_of_5x5() {
        // At most 5 loads (left column) and 5 stores (right column).
        for g in all_cores() {
            let loads = g.nodes().iter().filter(|n| n.op == OpKind::Load).count();
            let stores = g.nodes().iter().filter(|n| n.op == OpKind::Store).count();
            assert!(loads <= 5, "{}: {loads} loads", g.name());
            assert!(stores <= 5, "{}: {stores} stores", g.name());
        }
    }
}

/// Additional PolyBench kernels beyond the twelve the paper's figures use.
/// These exercise workload classes the core set lacks — stencils
/// (jacobi-1d/2d), a rank-1-update-plus-mv composite (gemver), and a
/// triangular solve (trisolv) — and back the `ext_stencils` extension
/// experiment.
pub const EXTRA_KERNEL_NAMES: [&str; 4] = ["gemver", "jacobi-1d", "jacobi-2d", "trisolv"];

/// Builds one of the extra kernels by name.
///
/// # Errors
///
/// Returns [`DfgError`] only on internal construction bugs.
///
/// # Panics
///
/// Panics on an unknown kernel name.
pub fn extra_kernel(name: &str) -> Result<Dfg, DfgError> {
    let g = match name {
        "gemver" => gemver(),
        "jacobi-1d" => jacobi1d(),
        "jacobi-2d" => jacobi2d(),
        "trisolv" => trisolv(),
        other => panic!("unknown extra PolyBench kernel {other:?}"),
    }?;
    g.validate()?;
    Ok(g)
}

/// All extra kernels in declaration order.
pub fn extra_kernels() -> Vec<Dfg> {
    EXTRA_KERNEL_NAMES
        .iter()
        .map(|n| extra_kernel(n).expect("built-in kernels are valid"))
        .collect()
}

/// `gemver`: A += u1·v1ᵀ + u2·v2ᵀ fused with x += βAᵀy (inner body).
fn gemver() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("gemver");
    let j = b.induction("j")?;
    let a_ij = b.load_at(j, "A_ij")?;
    let u1 = b.load_at(j, "u1_i")?;
    let v1 = b.load_at(j, "v1_j")?;
    let u2 = b.load_at(j, "u2_i")?;
    let v2 = b.load_at(j, "v2_j")?;
    let m1 = b.node(OpKind::Mul, "u1v1");
    b.edge(u1, m1)?;
    b.edge(v1, m1)?;
    let m2 = b.node(OpKind::Mul, "u2v2");
    b.edge(u2, m2)?;
    b.edge(v2, m2)?;
    let s1 = b.node(OpKind::Add, "rank1");
    b.edge(m1, s1)?;
    b.edge(m2, s1)?;
    let upd = b.node(OpKind::Add, "a_upd");
    b.edge(a_ij, upd)?;
    b.edge(s1, upd)?;
    b.store(upd, "a_store")?;
    let y = b.load_at(j, "y_j")?;
    let beta = b.node(OpKind::Const, "beta");
    let m3 = b.node(OpKind::Mul, "ay");
    b.edge(upd, m3)?;
    b.edge(y, m3)?;
    let m4 = b.node(OpKind::Mul, "ay_beta");
    b.edge(m3, m4)?;
    b.edge(beta, m4)?;
    let x = b.accumulate(m4, "x_acc")?;
    b.store(x, "x_store")?;
    b.finish()
}

/// `jacobi-1d`: B[i] = 0.33 * (A[i-1] + A[i] + A[i+1]).
fn jacobi1d() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("jacobi-1d");
    let i = b.induction("i")?;
    let left = b.load_at(i, "A_im1")?;
    let mid = b.load_at(i, "A_i")?;
    let right = b.load_at(i, "A_ip1")?;
    let s1 = b.node(OpKind::Add, "lm");
    b.edge(left, s1)?;
    b.edge(mid, s1)?;
    let s2 = b.node(OpKind::Add, "lmr");
    b.edge(s1, s2)?;
    b.edge(right, s2)?;
    let third = b.node(OpKind::Const, "third");
    let m = b.node(OpKind::Mul, "scaled");
    b.edge(s2, m)?;
    b.edge(third, m)?;
    b.store(m, "b_store")?;
    b.finish()
}

/// `jacobi-2d`: B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1]
///                               + A[i-1][j] + A[i+1][j]).
fn jacobi2d() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("jacobi-2d");
    let j = b.induction("j")?;
    let c = b.load_at(j, "A_c")?;
    let w = b.load_at(j, "A_w")?;
    let e = b.load_at(j, "A_e")?;
    let n = b.load_strided(j, "A_n")?;
    let s = b.load_strided(j, "A_s")?;
    let s1 = b.node(OpKind::Add, "cw");
    b.edge(c, s1)?;
    b.edge(w, s1)?;
    let s2 = b.node(OpKind::Add, "cwe");
    b.edge(s1, s2)?;
    b.edge(e, s2)?;
    let s3 = b.node(OpKind::Add, "cwen");
    b.edge(s2, s3)?;
    b.edge(n, s3)?;
    let s4 = b.node(OpKind::Add, "cwens");
    b.edge(s3, s4)?;
    b.edge(s, s4)?;
    let fifth = b.node(OpKind::Const, "fifth");
    let m = b.node(OpKind::Mul, "scaled");
    b.edge(s4, m)?;
    b.edge(fifth, m)?;
    b.store(m, "b_store")?;
    b.finish()
}

/// `trisolv`: x[i] = (b[i] - Σ_j L[i][j] * x[j]) / L[i][i] (inner body).
fn trisolv() -> Result<Dfg, DfgError> {
    let mut b = Builder::new("trisolv");
    let j = b.induction("j")?;
    let l_ij = b.load_at(j, "L_ij")?;
    let x_j = b.load_at(j, "x_j")?;
    let m = b.node(OpKind::Mul, "lx");
    b.edge(l_ij, m)?;
    b.edge(x_j, m)?;
    let acc = b.accumulate(m, "sum_acc")?;
    let b_i = b.load_at(j, "b_i")?;
    let sub = b.node(OpKind::Sub, "residual");
    b.edge(b_i, sub)?;
    b.edge(acc, sub)?;
    let l_ii = b.load_at(j, "L_ii")?;
    let div = b.node(OpKind::Div, "solve");
    b.edge(sub, div)?;
    b.edge(l_ii, div)?;
    b.store(div, "x_store")?;
    b.finish()
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn extra_kernels_build_and_validate() {
        let ks = extra_kernels();
        assert_eq!(ks.len(), 4);
        for k in &ks {
            k.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            assert!(k.is_weakly_connected(), "{} disconnected", k.name());
            assert!((10..=45).contains(&k.node_count()), "{}", k.name());
        }
    }

    #[test]
    fn stencils_have_wide_fanin_trees() {
        let j2 = extra_kernel("jacobi-2d").unwrap();
        let loads = j2.nodes().iter().filter(|n| n.op == OpKind::Load).count();
        assert_eq!(loads, 5, "five-point stencil reads five values");
    }

    #[test]
    fn trisolv_uses_division() {
        let t = extra_kernel("trisolv").unwrap();
        assert!(t.nodes().iter().any(|n| n.op == OpKind::Div));
    }

    #[test]
    #[should_panic(expected = "unknown extra PolyBench kernel")]
    fn unknown_extra_kernel_panics() {
        let _ = extra_kernel("nope");
    }
}
