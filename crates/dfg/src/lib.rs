//! Dataflow graph (DFG) infrastructure for the LISA reproduction.
//!
//! A [`Dfg`] represents the loop body of a compute kernel as operations
//! (nodes) connected by data dependencies (edges), exactly as in §II-B of the
//! LISA paper (HPCA 2022). This crate provides:
//!
//! * the graph IR itself ([`Dfg`], [`OpKind`], [`EdgeKind`]),
//! * classic graph analyses used throughout the mapping pipeline
//!   ([`analysis`]: ASAP/ALAP levels, ancestor/descendant sets, longest
//!   paths),
//! * same-level *dummy edges* between non-dependent nodes that share a
//!   common ancestor or descendant ([`same_level`], paper §III-A Fig. 7),
//! * the synthetic random DFG generator used to build GNN training sets
//!   ([`random`], paper §V-A),
//! * hand-constructed DFGs for the 12 PolyBench kernels used in the paper's
//!   evaluation ([`polybench`]), plus factor-2 loop unrolling ([`unroll`]),
//! * Graphviz export for debugging ([`dot`]).
//!
//! # Example
//!
//! ```
//! use lisa_dfg::{Dfg, OpKind};
//!
//! # fn main() -> Result<(), lisa_dfg::DfgError> {
//! let mut dfg = Dfg::new("example");
//! let a = dfg.add_node(OpKind::Load, "a");
//! let b = dfg.add_node(OpKind::Load, "b");
//! let m = dfg.add_node(OpKind::Mul, "m");
//! let s = dfg.add_node(OpKind::Store, "s");
//! dfg.add_data_edge(a, m)?;
//! dfg.add_data_edge(b, m)?;
//! dfg.add_data_edge(m, s)?;
//! dfg.validate()?;
//! assert_eq!(lisa_dfg::analysis::asap(&dfg)[m.index()], 1);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod dot;
mod error;
mod graph;
mod op;
pub mod polybench;
pub mod random;
pub mod same_level;
pub mod stats;
pub mod text;
pub mod unroll;

pub use error::DfgError;
pub use graph::{Dfg, DfgEdge, DfgNode, EdgeId, EdgeKind, NodeId};
pub use op::OpKind;
pub use random::{generate_random_dfg, RandomDfgConfig};
pub use same_level::{dummy_edges, DummyEdge};
