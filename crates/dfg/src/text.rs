//! The `lisa-dfg v1` text round-trip format.
//!
//! A persisted DFG is a line-oriented block:
//!
//! ```text
//! lisa-dfg v1
//! name mac
//! nodes 3
//! node 0 load a
//! node 1 mul m
//! node 2 store s
//! edges 2
//! edge 0 0 1 data
//! edge 1 1 2 data
//! end dfg
//! ```
//!
//! Node and edge lines appear in id order, so parsing rebuilds the graph
//! through the ordinary [`Dfg`] construction API and the result compares
//! equal (`==`) to the original, adjacency lists included. Node names are
//! the rest of the line after the mnemonic and may contain spaces; they
//! must not contain newlines (enforced by the writer in debug builds).
//!
//! Multiple DFGs persist as a `lisa-dfg-set v1` container: a two-line
//! header (`lisa-dfg-set v1`, `count N`) followed by N blocks separated
//! by blank lines. The labelled-dataset format in `lisa-labels` embeds
//! single blocks the same way.

use std::fmt;

use crate::{Dfg, DfgError, EdgeKind, NodeId, OpKind};

/// Header line opening every serialized DFG block.
pub const DFG_HEADER: &str = "lisa-dfg v1";
/// Trailer line closing every serialized DFG block.
pub const DFG_TRAILER: &str = "end dfg";
/// Header line of the multi-DFG container.
pub const SET_HEADER: &str = "lisa-dfg-set v1";

/// Why a `lisa-dfg v1` document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseDfgError {
    /// The first line was not the expected format header.
    BadHeader {
        /// The header that was expected.
        expected: &'static str,
    },
    /// A structural line did not match its expected shape.
    BadLine {
        /// The offending line, verbatim.
        line: String,
    },
    /// A `node`/`edge` line carried an id different from its position.
    BadIndex {
        /// The offending line, verbatim.
        line: String,
    },
    /// An unknown operation mnemonic.
    UnknownOp {
        /// The mnemonic that failed to resolve.
        mnemonic: String,
    },
    /// The document ended before the block was complete.
    UnexpectedEof,
    /// Non-blank content followed the final trailer.
    TrailingContent {
        /// The first unexpected line.
        line: String,
    },
    /// The declared count disagreed with the parsed blocks.
    CountMismatch {
        /// Count declared in the header.
        declared: usize,
        /// Blocks actually present.
        found: usize,
    },
    /// The edges violated a [`Dfg`] structural invariant.
    Graph(DfgError),
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDfgError::BadHeader { expected } => {
                write!(f, "missing `{expected}` header")
            }
            ParseDfgError::BadLine { line } => write!(f, "malformed line: `{line}`"),
            ParseDfgError::BadIndex { line } => {
                write!(f, "id out of sequence: `{line}`")
            }
            ParseDfgError::UnknownOp { mnemonic } => {
                write!(f, "unknown operation mnemonic `{mnemonic}`")
            }
            ParseDfgError::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseDfgError::TrailingContent { line } => {
                write!(f, "unexpected content after trailer: `{line}`")
            }
            ParseDfgError::CountMismatch { declared, found } => {
                write!(f, "header declares {declared} DFGs but {found} present")
            }
            ParseDfgError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseDfgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseDfgError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfgError> for ParseDfgError {
    fn from(e: DfgError) -> Self {
        ParseDfgError::Graph(e)
    }
}

/// Serializes one DFG as a `lisa-dfg v1` block (trailing newline
/// included).
pub fn write_dfg(dfg: &Dfg) -> String {
    let mut out = String::new();
    write_dfg_into(&mut out, dfg);
    out
}

/// Appends one `lisa-dfg v1` block to `out`.
pub fn write_dfg_into(out: &mut String, dfg: &Dfg) {
    debug_assert!(
        !dfg.name().contains('\n') && dfg.nodes().iter().all(|n| !n.name.contains('\n')),
        "names must be single-line to serialize"
    );
    out.push_str(DFG_HEADER);
    out.push('\n');
    out.push_str(&format!("name {}\n", dfg.name()));
    out.push_str(&format!("nodes {}\n", dfg.node_count()));
    for (i, node) in dfg.nodes().iter().enumerate() {
        out.push_str(&format!("node {i} {} {}\n", node.op.mnemonic(), node.name));
    }
    out.push_str(&format!("edges {}\n", dfg.edge_count()));
    for (i, edge) in dfg.edges().iter().enumerate() {
        match edge.kind {
            EdgeKind::Data => out.push_str(&format!(
                "edge {i} {} {} data\n",
                edge.src.index(),
                edge.dst.index()
            )),
            EdgeKind::Recurrence { distance } => out.push_str(&format!(
                "edge {i} {} {} rec {distance}\n",
                edge.src.index(),
                edge.dst.index()
            )),
        }
    }
    out.push_str(DFG_TRAILER);
    out.push('\n');
}

/// Parses a document holding exactly one `lisa-dfg v1` block.
///
/// # Errors
///
/// Returns a [`ParseDfgError`] describing the first structural problem.
pub fn parse_dfg(text: &str) -> Result<Dfg, ParseDfgError> {
    let mut lines = text.lines();
    let dfg = parse_dfg_lines(&mut lines)?;
    if let Some(extra) = lines.find(|l| !l.trim().is_empty()) {
        return Err(ParseDfgError::TrailingContent {
            line: extra.to_string(),
        });
    }
    Ok(dfg)
}

/// Parses one `lisa-dfg v1` block from a line cursor, consuming lines up
/// to and including the `end dfg` trailer. Leading blank lines are
/// skipped. Other formats (the labelled-dataset container) reuse this to
/// embed DFG blocks.
///
/// # Errors
///
/// Returns a [`ParseDfgError`] describing the first structural problem.
pub fn parse_dfg_lines<'a, I>(lines: &mut I) -> Result<Dfg, ParseDfgError>
where
    I: Iterator<Item = &'a str>,
{
    let header = lines
        .find(|l| !l.trim().is_empty())
        .ok_or(ParseDfgError::UnexpectedEof)?;
    if header.trim_end() != DFG_HEADER {
        return Err(ParseDfgError::BadHeader {
            expected: DFG_HEADER,
        });
    }
    let name_line = lines.next().ok_or(ParseDfgError::UnexpectedEof)?;
    let name = name_line
        .strip_prefix("name ")
        .or_else(|| (name_line == "name").then_some(""))
        .ok_or_else(|| ParseDfgError::BadLine {
            line: name_line.to_string(),
        })?;
    let mut dfg = Dfg::new(name);

    let node_count = parse_count(lines.next(), "nodes")?;
    for i in 0..node_count {
        let line = lines.next().ok_or(ParseDfgError::UnexpectedEof)?;
        let rest = line
            .strip_prefix("node ")
            .ok_or_else(|| ParseDfgError::BadLine {
                line: line.to_string(),
            })?;
        let bad = || ParseDfgError::BadLine {
            line: line.to_string(),
        };
        let mut parts = rest.splitn(3, ' ');
        let id: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        if id != i {
            return Err(ParseDfgError::BadIndex {
                line: line.to_string(),
            });
        }
        let mnemonic = parts.next().ok_or_else(bad)?;
        let op = OpKind::from_mnemonic(mnemonic).ok_or_else(|| ParseDfgError::UnknownOp {
            mnemonic: mnemonic.to_string(),
        })?;
        let node_name = parts.next().unwrap_or("");
        dfg.add_node(op, node_name);
    }

    let edge_count = parse_count(lines.next(), "edges")?;
    for i in 0..edge_count {
        let line = lines.next().ok_or(ParseDfgError::UnexpectedEof)?;
        let rest = line
            .strip_prefix("edge ")
            .ok_or_else(|| ParseDfgError::BadLine {
                line: line.to_string(),
            })?;
        let bad = || ParseDfgError::BadLine {
            line: line.to_string(),
        };
        let parts: Vec<&str> = rest.split(' ').collect();
        if parts.len() < 4 {
            return Err(bad());
        }
        let id: usize = parts[0].parse().map_err(|_| bad())?;
        if id != i {
            return Err(ParseDfgError::BadIndex {
                line: line.to_string(),
            });
        }
        let src: usize = parts[1].parse().map_err(|_| bad())?;
        let dst: usize = parts[2].parse().map_err(|_| bad())?;
        let (src, dst) = (NodeId::new(src), NodeId::new(dst));
        match (parts[3], parts.len()) {
            ("data", 4) => {
                dfg.add_data_edge(src, dst)?;
            }
            ("rec", 5) => {
                let distance: u32 = parts[4].parse().map_err(|_| bad())?;
                dfg.add_recurrence_edge(src, dst, distance)?;
            }
            _ => return Err(bad()),
        }
    }

    let trailer = lines.next().ok_or(ParseDfgError::UnexpectedEof)?;
    if trailer.trim_end() != DFG_TRAILER {
        return Err(ParseDfgError::BadLine {
            line: trailer.to_string(),
        });
    }
    Ok(dfg)
}

fn parse_count(line: Option<&str>, keyword: &'static str) -> Result<usize, ParseDfgError> {
    let line = line.ok_or(ParseDfgError::UnexpectedEof)?;
    line.strip_prefix(keyword)
        .and_then(|rest| rest.strip_prefix(' '))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseDfgError::BadLine {
            line: line.to_string(),
        })
}

/// Serializes a list of DFGs as a `lisa-dfg-set v1` container.
pub fn write_dfg_set(dfgs: &[Dfg]) -> String {
    let mut out = String::new();
    out.push_str(SET_HEADER);
    out.push('\n');
    out.push_str(&format!("count {}\n", dfgs.len()));
    for dfg in dfgs {
        out.push('\n');
        write_dfg_into(&mut out, dfg);
    }
    out
}

/// Parses a `lisa-dfg-set v1` container.
///
/// # Errors
///
/// Returns a [`ParseDfgError`] on a malformed header, block, or a block
/// count disagreeing with the declared `count`.
pub fn parse_dfg_set(text: &str) -> Result<Vec<Dfg>, ParseDfgError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(ParseDfgError::UnexpectedEof)?;
    if header.trim_end() != SET_HEADER {
        return Err(ParseDfgError::BadHeader {
            expected: SET_HEADER,
        });
    }
    let count = parse_count(lines.next(), "count")?;
    let mut dfgs = Vec::with_capacity(count);
    for _ in 0..count {
        dfgs.push(parse_dfg_lines(&mut lines)?);
    }
    if let Some(extra) = lines.find(|l| !l.trim().is_empty()) {
        return Err(ParseDfgError::TrailingContent {
            line: extra.to_string(),
        });
    }
    Ok(dfgs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{generate_random_dfg, RandomDfgConfig};

    fn mac() -> Dfg {
        let mut g = Dfg::new("mac");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Load, "b");
        let m = g.add_node(OpKind::Mul, "m");
        let acc = g.add_node(OpKind::Add, "acc");
        g.add_data_edge(a, m).unwrap();
        g.add_data_edge(b, m).unwrap();
        g.add_data_edge(m, acc).unwrap();
        g.add_recurrence_edge(acc, acc, 1).unwrap();
        g
    }

    #[test]
    fn hand_built_graph_round_trips() {
        let g = mac();
        let text = write_dfg(&g);
        assert!(text.starts_with(DFG_HEADER));
        assert!(text.ends_with("end dfg\n"));
        assert_eq!(parse_dfg(&text).unwrap(), g);
    }

    #[test]
    fn names_with_spaces_round_trip() {
        let mut g = Dfg::new("kernel with spaces");
        g.add_node(OpKind::Const, "two words");
        assert_eq!(parse_dfg(&write_dfg(&g)).unwrap(), g);
    }

    #[test]
    fn set_round_trips() {
        let cfg = RandomDfgConfig::default();
        let dfgs: Vec<Dfg> = (0..5).map(|s| generate_random_dfg(&cfg, s)).collect();
        assert_eq!(parse_dfg_set(&write_dfg_set(&dfgs)).unwrap(), dfgs);
    }

    #[test]
    fn empty_set_round_trips() {
        assert_eq!(
            parse_dfg_set(&write_dfg_set(&[])).unwrap(),
            Vec::<Dfg>::new()
        );
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            parse_dfg("lisa-dfg v2\n"),
            Err(ParseDfgError::BadHeader { .. })
        ));
        assert!(matches!(
            parse_dfg_set("lisa-dfg v1\n"),
            Err(ParseDfgError::BadHeader { .. })
        ));
    }

    #[test]
    fn truncated_block_is_unexpected_eof() {
        let text = write_dfg(&mac());
        let cut = &text[..text.len() / 2];
        let trimmed = &cut[..cut.rfind('\n').unwrap() + 1];
        assert!(matches!(
            parse_dfg(trimmed),
            Err(ParseDfgError::UnexpectedEof | ParseDfgError::BadLine { .. })
        ));
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let text = write_dfg(&mac()).replace("node 2 mul m", "node 2 fma m");
        assert_eq!(
            parse_dfg(&text),
            Err(ParseDfgError::UnknownOp {
                mnemonic: "fma".to_string()
            })
        );
    }

    #[test]
    fn out_of_sequence_ids_rejected() {
        let text = write_dfg(&mac()).replace("node 2 mul m", "node 7 mul m");
        assert!(matches!(
            parse_dfg(&text),
            Err(ParseDfgError::BadIndex { .. })
        ));
    }

    #[test]
    fn invalid_edges_surface_graph_errors() {
        let text = write_dfg(&mac()).replace("edge 2 2 3 data", "edge 2 2 9 data");
        assert!(matches!(parse_dfg(&text), Err(ParseDfgError::Graph(_))));
    }

    #[test]
    fn trailing_content_rejected() {
        let text = format!("{}garbage\n", write_dfg(&mac()));
        assert!(matches!(
            parse_dfg(&text),
            Err(ParseDfgError::TrailingContent { .. })
        ));
    }

    #[test]
    fn set_count_must_cover_all_blocks() {
        let dfgs = vec![mac(), mac()];
        let text = write_dfg_set(&dfgs).replace("count 2", "count 1");
        // The second block becomes trailing content.
        assert!(matches!(
            parse_dfg_set(&text),
            Err(ParseDfgError::TrailingContent { .. })
        ));
    }

    #[test]
    fn errors_display_and_chain() {
        let err = parse_dfg("lisa-dfg v0\n").unwrap_err();
        assert!(err.to_string().contains("lisa-dfg v1"));
        let graph_err = ParseDfgError::from(DfgError::DataCycle);
        assert!(std::error::Error::source(&graph_err).is_some());
    }

    lisa_rng::props! {
        cases = 48;

        /// Every random DFG survives a write/parse round trip exactly,
        /// adjacency lists included.
        fn random_dfgs_round_trip(seed in 0u64..1_000_000) {
            let g = generate_random_dfg(&RandomDfgConfig::default(), seed);
            assert_eq!(parse_dfg(&write_dfg(&g)).unwrap(), g);
        }

        /// The systolic training distribution round-trips too (different
        /// op mix, bounded sinks).
        fn systolic_dfgs_round_trip(seed in 0u64..1_000_000) {
            let g = generate_random_dfg(&RandomDfgConfig::systolic(), seed);
            assert_eq!(parse_dfg(&write_dfg(&g)).unwrap(), g);
        }

        /// Containers of several DFGs round-trip in order.
        fn dfg_sets_round_trip(seed in 0u64..100_000, count in 1usize..6) {
            let cfg = RandomDfgConfig::default();
            let dfgs: Vec<Dfg> = (0..count)
                .map(|i| generate_random_dfg(&cfg, seed + i as u64))
                .collect();
            assert_eq!(parse_dfg_set(&write_dfg_set(&dfgs)).unwrap(), dfgs);
        }
    }
}
