//! Graphviz (DOT) export of DFGs, for debugging and documentation.

use std::fmt::Write as _;

use crate::{Dfg, EdgeKind};

/// Renders the graph in Graphviz DOT syntax.
///
/// Data edges are solid; recurrence edges are dashed and labelled with
/// their iteration distance.
///
/// # Example
///
/// ```
/// use lisa_dfg::{Dfg, OpKind, dot::to_dot};
///
/// # fn main() -> Result<(), lisa_dfg::DfgError> {
/// let mut g = Dfg::new("tiny");
/// let a = g.add_node(OpKind::Load, "a");
/// let b = g.add_node(OpKind::Store, "b");
/// g.add_data_edge(a, b)?;
/// let dot = to_dot(&g);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("a\\nload"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(dfg: &Dfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dfg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for id in dfg.node_ids() {
        let n = dfg.node(id);
        let _ = writeln!(out, "  {} [label=\"{}\\n{}\"];", id, escape(&n.name), n.op);
    }
    for eid in dfg.edge_ids() {
        let e = dfg.edge(eid);
        match e.kind {
            EdgeKind::Data => {
                let _ = writeln!(out, "  {} -> {};", e.src, e.dst);
            }
            EdgeKind::Recurrence { distance } => {
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dashed, label=\"d={distance}\"];",
                    e.src, e.dst
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut g = Dfg::new("t");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Add, "b");
        g.add_data_edge(a, b).unwrap();
        g.add_recurrence_edge(b, b, 1).unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("d=1"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_escaped() {
        let mut g = Dfg::new("q");
        g.add_node(OpKind::Add, "we\"ird");
        let dot = to_dot(&g);
        assert!(dot.contains("we\\\"ird"));
    }
}
