//! Loop unrolling of DFGs (paper §VI: "an unrolled version (unrolling
//! factor is 2) of kernels").
//!
//! Unrolling by factor `k` replicates the loop body `k` times inside one
//! DFG. Intra-iteration data edges are replicated within each copy.
//! Recurrence edges with distance 1 become *data* edges from copy `i` to
//! copy `i+1` (the dependency is now satisfied inside the unrolled body) and
//! a single recurrence edge from the last copy back to the first; distances
//! greater than the unroll factor stay recurrences with an adjusted
//! distance.

use crate::{Dfg, EdgeKind, NodeId};

/// Unrolls `dfg` by `factor`, producing a new DFG named `<name>_u<factor>`.
///
/// # Panics
///
/// Panics if `factor == 0`.
///
/// # Example
///
/// ```
/// use lisa_dfg::{Dfg, OpKind, unroll::unroll};
///
/// # fn main() -> Result<(), lisa_dfg::DfgError> {
/// let mut body = Dfg::new("k");
/// let a = body.add_node(OpKind::Load, "a");
/// let s = body.add_node(OpKind::Store, "s");
/// body.add_data_edge(a, s)?;
/// let u2 = unroll(&body, 2);
/// assert_eq!(u2.node_count(), 4);
/// assert_eq!(u2.name(), "k_u2");
/// # Ok(())
/// # }
/// ```
pub fn unroll(dfg: &Dfg, factor: u32) -> Dfg {
    assert!(factor > 0, "unroll factor must be positive");
    let mut out = Dfg::new(format!("{}_u{}", dfg.name(), factor));
    let n = dfg.node_count();
    // ids[copy][orig] = new node id
    let mut ids: Vec<Vec<NodeId>> = Vec::with_capacity(factor as usize);
    for copy in 0..factor {
        let mut row = Vec::with_capacity(n);
        for v in dfg.node_ids() {
            let node = dfg.node(v);
            row.push(out.add_node(node.op, format!("{}_{copy}", node.name)));
        }
        ids.push(row);
    }
    for e in dfg.edges() {
        match e.kind {
            EdgeKind::Data => {
                for copy in 0..factor as usize {
                    out.add_data_edge(ids[copy][e.src.index()], ids[copy][e.dst.index()])
                        .expect("replicated data edge is fresh");
                }
            }
            EdgeKind::Recurrence { distance } => {
                // Copy c of the producer feeds copy c + distance of the
                // consumer; crossings beyond the last copy wrap to a
                // recurrence over the unrolled loop.
                for copy in 0..factor as usize {
                    let target = copy + distance as usize;
                    if target < factor as usize {
                        out.add_data_edge(ids[copy][e.src.index()], ids[target][e.dst.index()])
                            .expect("forwarded recurrence edge is fresh");
                    } else {
                        let wrapped_copy = target % factor as usize;
                        let new_distance = (target / factor as usize) as u32;
                        out.add_recurrence_edge(
                            ids[copy][e.src.index()],
                            ids[wrapped_copy][e.dst.index()],
                            new_distance,
                        )
                        .expect("wrapped recurrence edge is fresh");
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn mac_body() -> Dfg {
        let mut g = Dfg::new("mac");
        let a = g.add_node(OpKind::Load, "a");
        let b = g.add_node(OpKind::Load, "b");
        let m = g.add_node(OpKind::Mul, "m");
        let acc = g.add_node(OpKind::Add, "acc");
        let st = g.add_node(OpKind::Store, "st");
        g.add_data_edge(a, m).unwrap();
        g.add_data_edge(b, m).unwrap();
        g.add_data_edge(m, acc).unwrap();
        g.add_data_edge(acc, st).unwrap();
        g.add_recurrence_edge(acc, acc, 1).unwrap();
        g.validate().unwrap();
        g
    }

    #[test]
    fn factor_one_is_a_rename() {
        let g = mac_body();
        let u = unroll(&g, 1);
        assert_eq!(u.node_count(), g.node_count());
        assert_eq!(u.edge_count(), g.edge_count());
        assert_eq!(u.name(), "mac_u1");
        u.validate().unwrap();
    }

    #[test]
    fn factor_two_duplicates_nodes() {
        let g = mac_body();
        let u = unroll(&g, 2);
        assert_eq!(u.node_count(), 2 * g.node_count());
        u.validate().unwrap();
        assert!(u.is_weakly_connected());
    }

    #[test]
    fn recurrence_becomes_internal_data_edge_plus_wrap() {
        let g = mac_body();
        let u = unroll(&g, 2);
        // acc_0 -> acc_1 is now a data edge; acc_1 -> acc_0 is a recurrence
        // with distance 1.
        let acc0 = NodeId::new(3);
        let acc1 = NodeId::new(3 + g.node_count());
        let has_data = u
            .edges()
            .iter()
            .any(|e| e.src == acc0 && e.dst == acc1 && e.kind == EdgeKind::Data);
        assert!(has_data, "expected acc_0 -> acc_1 data edge");
        let wrap = u
            .edges()
            .iter()
            .find(|e| e.src == acc1 && e.dst == acc0)
            .expect("wrap edge");
        assert_eq!(wrap.kind, EdgeKind::Recurrence { distance: 1 });
    }

    #[test]
    fn pure_dag_unroll_has_no_recurrences() {
        let mut g = Dfg::new("dag");
        let a = g.add_node(OpKind::Load, "a");
        let s = g.add_node(OpKind::Store, "s");
        g.add_data_edge(a, s).unwrap();
        let u = unroll(&g, 3);
        assert_eq!(u.node_count(), 6);
        assert!(u.edges().iter().all(|e| e.kind == EdgeKind::Data));
        u.validate().unwrap();
    }

    #[test]
    fn distance_two_recurrence_unrolled_by_two() {
        let mut g = Dfg::new("d2");
        let x = g.add_node(OpKind::Add, "x");
        let y = g.add_node(OpKind::Mul, "y");
        g.add_data_edge(x, y).unwrap();
        g.add_recurrence_edge(y, x, 2).unwrap();
        let u = unroll(&g, 2);
        u.validate().unwrap();
        // y_0 -> x_0 at distance 1 (2 iterations of original = 1 of unrolled)
        // and y_1 -> x_1 at distance 1.
        let recs: Vec<_> = u
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::Recurrence { .. }))
            .collect();
        assert_eq!(recs.len(), 2);
        for r in recs {
            assert_eq!(r.kind, EdgeKind::Recurrence { distance: 1 });
        }
    }

    #[test]
    #[should_panic(expected = "unroll factor must be positive")]
    fn zero_factor_panics() {
        let g = mac_body();
        let _ = unroll(&g, 0);
    }
}
