//! Wire framing and the `lisa-response v1` document.
//!
//! # Framing
//!
//! Every message — in both directions — is one frame: a 4-byte
//! big-endian length followed by that many bytes of UTF-8 payload.
//! Client payloads are either a `lisa-request v1` document, the word
//! `stats`, or the word `shutdown`; the daemon answers each frame with
//! exactly one response frame.
//!
//! # Response documents
//!
//! ```text
//! lisa-response v1
//! status ok            (or unmappable | error | overloaded)
//! accelerator 4x4
//! kernel gemm
//! seed 2022
//! max_ii 8
//! ii 4
//! routing_cells 3
//! ops 11
//! attempts 3
//! mapping
//! <deterministic grid render>
//! end mapping
//! ```
//!
//! Response bodies are deliberately wall-clock-free: the body of an `ok`
//! or `unmappable` response is a pure function of the request, so a
//! cached response is byte-identical to a freshly computed one and the
//! cache is invisible to clients except through latency and the `stats`
//! counters. Timing lives in telemetry (`lisa-events`), not in the body.

use std::io::{self, Read, Write};

use lisa_core::MapRequest;
use lisa_mapper::{display, Mapping, MappingOutcome};

use crate::error::ServeError;

/// Header line of every response document.
pub const RESPONSE_HEADER: &str = "lisa-response v1";
/// Header line of the `stats` answer.
pub const STATS_HEADER: &str = "lisa-serve-stats v1";
/// Upper bound on a frame payload; larger frames are a protocol error.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates write failures; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Propagates read failures; a truncated frame or an oversized length is
/// an error, not EOF.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Renders a successful mapping response.
///
/// # Errors
///
/// [`ServeError::MissingIi`] when the outcome carries no initiation
/// interval — an internal inconsistency the caller turns into a
/// `status error` frame instead of a panic (PANIC001).
pub fn render_ok(
    req: &MapRequest,
    outcome: &MappingOutcome,
    mapping: &Mapping<'_>,
) -> Result<String, ServeError> {
    let ii = outcome.ii.ok_or(ServeError::MissingIi)?;
    let mut out = header(req, "ok");
    out.push_str(&format!("ii {ii}\n"));
    out.push_str(&format!("routing_cells {}\n", outcome.routing_cells));
    out.push_str(&format!("ops {}\n", outcome.ops));
    out.push_str(&format!("attempts {}\n", outcome.attempts));
    out.push_str("mapping\n");
    out.push_str(&display::render(mapping));
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("end mapping\n");
    Ok(out)
}

/// Renders the response for a request whose II search exhausted the cap.
pub fn render_unmappable(req: &MapRequest, outcome: &MappingOutcome) -> String {
    let mut out = header(req, "unmappable");
    out.push_str(&format!("attempts {}\n", outcome.attempts));
    out
}

/// Renders an error response. The reason is flattened to a single line.
pub fn render_error(reason: &str) -> String {
    format!(
        "{RESPONSE_HEADER}\nstatus error\nreason {}\n",
        reason.replace(['\n', '\r'], " ")
    )
}

/// Renders the explicit-overload response (the backpressure contract:
/// reject loudly instead of queueing without bound).
pub fn render_overloaded() -> String {
    format!("{RESPONSE_HEADER}\nstatus overloaded\n")
}

fn header(req: &MapRequest, status: &str) -> String {
    format!(
        "{RESPONSE_HEADER}\nstatus {status}\naccelerator {}\nkernel {}\nseed {}\nmax_ii {}\n",
        req.accelerator,
        req.dfg.name(),
        req.seed,
        req.max_ii
    )
}

/// The `status` line value of a response document, if well-formed.
pub fn response_status(body: &str) -> Option<&str> {
    let mut lines = body.lines();
    if lines.next()?.trim_end() != RESPONSE_HEADER {
        return None;
    }
    lines.next()?.strip_prefix("status ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"x");
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn error_reasons_stay_single_line() {
        let body = render_error("line one\nline two");
        assert_eq!(body.lines().count(), 3);
        assert_eq!(response_status(&body), Some("error"));
        assert_eq!(response_status(&render_overloaded()), Some("overloaded"));
        assert_eq!(response_status("garbage"), None);
    }
}
