//! Typed failures on the request path.
//!
//! The daemon's availability contract (PANIC001 in the static invariant
//! catalog) is that nothing a client sends — and no internal oddity a
//! request trips over — may panic on the request path: every failure
//! becomes a `status error` response frame and the daemon keeps
//! serving. This module is the vocabulary of those failures;
//! [`crate::protocol::render_error`] turns them into response bodies.

use std::fmt;

/// Why a request could not be answered with a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The payload did not parse as a `lisa-request v1` document.
    BadRequest(String),
    /// The request names an accelerator outside the standard catalog.
    UnknownAccelerator(String),
    /// No trained model is resident for the requested accelerator.
    NoModel(String),
    /// Internal inconsistency: a successful mapping outcome carried no
    /// initiation interval.
    MissingIi,
    /// The mapping computation panicked; the panic was contained at the
    /// request boundary.
    MappingPanicked,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(reason) => write!(f, "bad request: {reason}"),
            ServeError::UnknownAccelerator(name) => {
                write!(f, "unknown accelerator `{name}`")
            }
            ServeError::NoModel(name) => write!(f, "no model resident for `{name}`"),
            ServeError::MissingIi => f.write_str("internal error: mapped outcome carried no II"),
            ServeError::MappingPanicked => f.write_str("internal error: mapping panicked"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_the_wire_reasons() {
        assert_eq!(
            ServeError::BadRequest("missing header".into()).to_string(),
            "bad request: missing header"
        );
        assert_eq!(
            ServeError::UnknownAccelerator("9x9".into()).to_string(),
            "unknown accelerator `9x9`"
        );
        assert_eq!(
            ServeError::NoModel("4x4".into()).to_string(),
            "no model resident for `4x4`"
        );
        assert_eq!(
            ServeError::MappingPanicked.to_string(),
            "internal error: mapping panicked"
        );
    }
}
