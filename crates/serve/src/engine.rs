//! Request handling: canonicalize → hash → cache probe → single-flight
//! compute under a bounded admission gate.
//!
//! Concurrency structure, outermost first:
//!
//! * **Single-flight.** Concurrent identical misses register one
//!   in-flight entry per key; one caller (the leader) computes, the rest
//!   block on the entry and receive the same shared body. Determinism
//!   makes this free: followers lose nothing by not computing.
//! * **Admission gate.** At most `workers` leaders compute at once; at
//!   most `queue` more may wait. Beyond that the daemon answers
//!   `status overloaded` immediately — explicit rejection instead of an
//!   unbounded queue (the backpressure contract).
//! * **Portfolio parallelism.** Inside one compute, the existing
//!   `par_map` portfolio machinery fans out annealing chains across
//!   `parallelism` threads; thread count never changes the result.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

use lisa_arch::Accelerator;
use lisa_core::{MapRequest, ModelRegistry};
use lisa_events::{EventSink, PipelineEvent};

use crate::cache::{CacheTier, ResultCache};
use crate::error::ServeError;
use crate::lock_unpoisoned;
use crate::protocol::{render_error, render_ok, render_overloaded, render_unmappable};

/// Daemon sizing knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Memory-tier capacity in entries (0 disables the tier).
    pub mem_cache: usize,
    /// Disk-tier directory (`None` disables the tier).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Concurrent mapping computations admitted.
    pub workers: usize,
    /// Requests allowed to wait for a compute slot before overload.
    pub queue: usize,
    /// Annealing-portfolio threads per computation.
    pub parallelism: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            mem_cache: 256,
            cache_dir: None,
            workers: 2,
            queue: 8,
            parallelism: 1,
        }
    }
}

/// How one request was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Answered from the in-memory tier.
    HitMemory,
    /// Answered from the on-disk tier.
    HitDisk,
    /// Computed by this request (the annealer ran).
    Computed,
    /// Waited on an identical in-flight computation.
    Coalesced,
    /// Rejected: workers and queue were full.
    Overloaded,
    /// Malformed request, unknown accelerator, or internal failure.
    Error,
}

impl Disposition {
    /// Stable snake_case name (telemetry and stats use it).
    pub fn as_str(self) -> &'static str {
        match self {
            Disposition::HitMemory => "hit_memory",
            Disposition::HitDisk => "hit_disk",
            Disposition::Computed => "computed",
            Disposition::Coalesced => "coalesced",
            Disposition::Overloaded => "overloaded",
            Disposition::Error => "error",
        }
    }
}

/// Monotonic counters, readable while the daemon runs.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    hit_memory: AtomicU64,
    hit_disk: AtomicU64,
    anneals: AtomicU64,
    coalesced: AtomicU64,
    overloaded: AtomicU64,
    errors: AtomicU64,
}

/// A point-in-time copy of the daemon counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests received (all dispositions).
    pub requests: u64,
    /// Memory-tier cache hits.
    pub hit_memory: u64,
    /// Disk-tier cache hits.
    pub hit_disk: u64,
    /// Annealer invocations (cache misses actually computed).
    pub anneals: u64,
    /// Requests served by waiting on an identical in-flight computation.
    pub coalesced: u64,
    /// Requests rejected for overload.
    pub overloaded: u64,
    /// Requests answered with `status error`.
    pub errors: u64,
}

/// One in-flight computation; followers block on `done`.
#[derive(Debug, Default)]
struct Flight {
    done: Mutex<Option<Arc<String>>>,
    cv: Condvar,
}

/// Bounded admission: `active` compute permits plus a bounded wait queue.
#[derive(Debug)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_active: usize,
    max_waiting: usize,
}

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    waiting: usize,
}

impl Gate {
    fn new(max_active: usize, max_waiting: usize) -> Self {
        Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            max_active: max_active.max(1),
            max_waiting,
        }
    }

    /// Blocks until a permit is free, or fails fast when the wait queue
    /// is already full.
    fn acquire(&self) -> Result<(), Overloaded> {
        let mut s = lock_unpoisoned(&self.state);
        if s.active < self.max_active {
            s.active += 1;
            return Ok(());
        }
        if s.waiting >= self.max_waiting {
            return Err(Overloaded);
        }
        s.waiting += 1;
        loop {
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
            if s.active < self.max_active {
                s.active += 1;
                s.waiting -= 1;
                return Ok(());
            }
        }
    }

    fn release(&self) {
        let mut s = lock_unpoisoned(&self.state);
        s.active -= 1;
        drop(s);
        self.cv.notify_one();
    }

    fn waiting(&self) -> usize {
        lock_unpoisoned(&self.state).waiting
    }
}

struct Overloaded;

/// The serving engine: warm models, two-tier cache, single-flight
/// computation, telemetry. Transport-agnostic — [`crate::server`] feeds
/// it request payloads.
pub struct ServeEngine {
    registry: ModelRegistry,
    cache: ResultCache,
    config: ServeConfig,
    sink: EventSink,
    counters: Counters,
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    gate: Gate,
    next_request: AtomicU64,
}

impl ServeEngine {
    /// Builds an engine over resident models.
    ///
    /// # Errors
    ///
    /// Propagates cache-directory creation failures.
    pub fn new(
        registry: ModelRegistry,
        config: ServeConfig,
        sink: EventSink,
    ) -> std::io::Result<Self> {
        let cache = ResultCache::new(config.mem_cache, config.cache_dir.clone())?;
        Ok(ServeEngine {
            registry,
            cache,
            gate: Gate::new(config.workers, config.queue),
            config,
            sink,
            counters: Counters::default(),
            inflight: Mutex::new(HashMap::new()),
            next_request: AtomicU64::new(1),
        })
    }

    /// The accelerators this engine can map for.
    pub fn accelerators(&self) -> Vec<&str> {
        self.registry.accelerators()
    }

    /// Handles one request document and returns the response body plus
    /// how it was served.
    pub fn handle(&self, text: &str) -> (Arc<String>, Disposition) {
        let id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.sink.emit(PipelineEvent::ServeEnqueued {
            request: id,
            queue_depth: self.gate.waiting(),
        });

        let req = match MapRequest::parse(text) {
            Ok(req) => req,
            Err(e) => {
                let err = ServeError::BadRequest(e.to_string());
                let body = Arc::new(render_error(&err.to_string()));
                return self.respond(id, started, body, Disposition::Error);
            }
        };
        let key = req.cache_key();

        if let Some((body, tier)) = self.cache.get(key) {
            let (tier_name, disposition) = match tier {
                CacheTier::Memory => ("memory", Disposition::HitMemory),
                CacheTier::Disk => ("disk", Disposition::HitDisk),
            };
            self.sink.emit(PipelineEvent::ServeCacheProbe {
                request: id,
                key,
                tier: tier_name,
            });
            return self.respond(id, started, body, disposition);
        }
        self.sink.emit(PipelineEvent::ServeCacheProbe {
            request: id,
            key,
            tier: "none",
        });

        // Single-flight: one leader per key; everyone else waits for its
        // shared result.
        let (flight, leader) = {
            let mut map = lock_unpoisoned(&self.inflight);
            match map.get(&key) {
                Some(flight) => (flight.clone(), false),
                None => {
                    let flight = Arc::new(Flight::default());
                    map.insert(key, flight.clone());
                    (flight, true)
                }
            }
        };
        if !leader {
            let mut done = lock_unpoisoned(&flight.done);
            let body = loop {
                if let Some(body) = done.as_ref() {
                    break body.clone();
                }
                done = flight.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
            };
            return self.respond(id, started, body, Disposition::Coalesced);
        }

        let (body, disposition) = match self.gate.acquire() {
            Err(Overloaded) => (Arc::new(render_overloaded()), Disposition::Overloaded),
            Ok(()) => {
                self.sink
                    .emit(PipelineEvent::ServeAnnealStarted { request: id });
                self.counters.anneals.fetch_add(1, Ordering::Relaxed);
                let computed = std::panic::catch_unwind(AssertUnwindSafe(|| self.compute(&req)));
                self.gate.release();
                match computed.unwrap_or(Err(ServeError::MappingPanicked)) {
                    Ok(body) => {
                        let body = Arc::new(body);
                        // A failed disk write only costs a future
                        // recompute; the response already exists.
                        let _ = self.cache.put(key, body.clone());
                        (body, Disposition::Computed)
                    }
                    // Errors are never cached: a model loaded later (or
                    // a fixed bug) must not be shadowed by a cached
                    // failure.
                    Err(e) => (Arc::new(render_error(&e.to_string())), Disposition::Error),
                }
            }
        };

        // Publish to followers before answering, then retire the flight.
        *lock_unpoisoned(&flight.done) = Some(body.clone());
        flight.cv.notify_all();
        lock_unpoisoned(&self.inflight).remove(&key);
        self.respond(id, started, body, disposition)
    }

    /// The miss path: resolve accelerator and model, run the annealer.
    ///
    /// # Errors
    ///
    /// Typed [`ServeError`]s for an unknown accelerator, a missing
    /// model, or an internally inconsistent outcome — the caller answers
    /// `status error` and keeps serving.
    fn compute(&self, req: &MapRequest) -> Result<String, ServeError> {
        let acc = Accelerator::standard(&req.accelerator)
            .ok_or_else(|| ServeError::UnknownAccelerator(req.accelerator.clone()))?;
        let model = self
            .registry
            .get(acc.name())
            .ok_or_else(|| ServeError::NoModel(acc.name().to_string()))?;
        let (outcome, mapping) = model.map_request(
            &req.dfg,
            &acc,
            req.seed,
            req.max_ii,
            &req.strategy,
            self.config.parallelism,
        );
        match &mapping {
            Some(m) => render_ok(req, &outcome, m),
            None => Ok(render_unmappable(req, &outcome)),
        }
    }

    fn respond(
        &self,
        id: u64,
        started: Instant,
        body: Arc<String>,
        disposition: Disposition,
    ) -> (Arc<String>, Disposition) {
        let counter = match disposition {
            Disposition::HitMemory => &self.counters.hit_memory,
            Disposition::HitDisk => &self.counters.hit_disk,
            Disposition::Computed => return self.finish(id, started, body, disposition),
            Disposition::Coalesced => &self.counters.coalesced,
            Disposition::Overloaded => &self.counters.overloaded,
            Disposition::Error => &self.counters.errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.finish(id, started, body, disposition)
    }

    fn finish(
        &self,
        id: u64,
        started: Instant,
        body: Arc<String>,
        disposition: Disposition,
    ) -> (Arc<String>, Disposition) {
        self.sink.emit(PipelineEvent::ServeResponded {
            request: id,
            disposition: disposition.as_str(),
            duration: started.elapsed(),
        });
        (body, disposition)
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.counters.requests.load(Ordering::Relaxed),
            hit_memory: self.counters.hit_memory.load(Ordering::Relaxed),
            hit_disk: self.counters.hit_disk.load(Ordering::Relaxed),
            anneals: self.counters.anneals.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            overloaded: self.counters.overloaded.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
        }
    }

    /// The `lisa-serve-stats v1` document the `stats` command answers
    /// with.
    pub fn stats_text(&self) -> String {
        let s = self.stats();
        format!(
            "{}\nrequests {}\nhit_memory {}\nhit_disk {}\nanneals {}\ncoalesced {}\noverloaded {}\nerrors {}\nmodels {}\ncache_entries {}\n",
            crate::protocol::STATS_HEADER,
            s.requests,
            s.hit_memory,
            s.hit_disk,
            s.anneals,
            s.coalesced,
            s.overloaded,
            s.errors,
            self.registry.len(),
            self.cache.memory_len(),
        )
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("models", &self.registry.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_workers_and_bounds_the_queue() {
        let gate = Gate::new(1, 0);
        gate.acquire().ok().expect("first permit");
        assert!(
            gate.acquire().is_err(),
            "queue of 0 must reject a second leader immediately"
        );
        gate.release();
        assert!(gate.acquire().is_ok(), "released permit is reusable");
    }

    #[test]
    fn gate_wakes_a_bounded_waiter() {
        let gate = Arc::new(Gate::new(1, 1));
        gate.acquire().ok().expect("permit");
        let waiter = {
            let gate = gate.clone();
            std::thread::spawn(move || gate.acquire().is_ok())
        };
        // Give the waiter time to enter the queue, then free the permit.
        while gate.waiting() == 0 {
            std::thread::yield_now();
        }
        gate.release();
        assert!(waiter.join().unwrap(), "waiter must get the permit");
        gate.release();
    }

    #[test]
    fn bad_requests_are_error_responses_not_panics() {
        let engine = ServeEngine::new(
            ModelRegistry::new(),
            ServeConfig::default(),
            EventSink::null(),
        )
        .unwrap();
        let (body, disposition) = engine.handle("not a request");
        assert_eq!(disposition, Disposition::Error);
        assert!(body.contains("status error"));
        assert_eq!(engine.stats().errors, 1);
        assert_eq!(engine.stats().anneals, 0, "errors never reach the annealer");
    }

    #[test]
    fn unknown_accelerator_and_missing_model_are_errors() {
        let engine = ServeEngine::new(
            ModelRegistry::new(),
            ServeConfig::default(),
            EventSink::null(),
        )
        .unwrap();
        let req = MapRequest {
            accelerator: "not-a-fabric".to_string(),
            seed: 1,
            max_ii: 4,
            strategy: Default::default(),
            dfg: lisa_dfg::polybench::kernel("gemm").unwrap(),
        };
        let (body, disposition) = engine.handle(&req.canonical_text());
        assert_eq!(disposition, Disposition::Error);
        assert!(body.contains("unknown accelerator"));

        let req = MapRequest {
            accelerator: "4x4".to_string(),
            ..req
        };
        let (body, disposition) = engine.handle(&req.canonical_text());
        assert_eq!(disposition, Disposition::Error);
        assert!(body.contains("no model resident"));
        // Error responses are never cached: a model loaded later must not
        // be shadowed by a cached failure.
        let (_, disposition) = engine.handle(&req.canonical_text());
        assert_eq!(disposition, Disposition::Error);
    }
}
