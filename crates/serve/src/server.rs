//! Transport loops: one framed request/response exchange at a time per
//! connection, over TCP (one thread per connection) or stdio.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::engine::ServeEngine;
use crate::protocol::{read_frame, render_error, write_frame};

/// Why a connection loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// The peer closed the stream.
    Eof,
    /// The peer sent the `shutdown` command; the daemon should exit.
    Shutdown,
}

/// Serves framed commands from `r`, answering each on `w`, until EOF or
/// `shutdown`.
///
/// Commands: a `lisa-request v1` document, `stats`, or `shutdown`.
///
/// # Errors
///
/// Propagates transport failures.
pub fn serve_connection(
    engine: &ServeEngine,
    r: &mut impl Read,
    w: &mut impl Write,
) -> io::Result<Served> {
    while let Some(frame) = read_frame(r)? {
        let Ok(text) = String::from_utf8(frame) else {
            write_frame(w, render_error("payload is not UTF-8").as_bytes())?;
            continue;
        };
        match text.trim() {
            "stats" => write_frame(w, engine.stats_text().as_bytes())?,
            "shutdown" => {
                write_frame(w, b"ok\n")?;
                return Ok(Served::Shutdown);
            }
            _ => {
                let (body, _) = engine.handle(&text);
                write_frame(w, body.as_bytes())?;
            }
        }
    }
    Ok(Served::Eof)
}

/// Serves one session over arbitrary streams (the stdio transport).
///
/// # Errors
///
/// Propagates transport failures.
pub fn serve_stdio(
    engine: &ServeEngine,
    r: &mut impl Read,
    w: &mut impl Write,
) -> io::Result<Served> {
    serve_connection(engine, r, w)
}

/// Accept loop: one thread per connection, all sharing the engine.
/// Returns when a connection issues `shutdown`.
///
/// # Errors
///
/// Propagates accept failures; per-connection I/O errors only end that
/// connection.
pub fn serve_tcp(engine: Arc<ServeEngine>, listener: TcpListener) -> io::Result<()> {
    let shutdown = Arc::new(AtomicBool::new(false));
    let local = listener.local_addr()?;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = stream?;
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let engine = engine.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            let mut reader = match stream.try_clone() {
                Ok(r) => r,
                Err(_) => return,
            };
            let mut writer = stream;
            if let Ok(Served::Shutdown) = serve_connection(&engine, &mut reader, &mut writer) {
                shutdown.store(true, Ordering::Release);
                // Unblock the accept loop with a no-op connection.
                let _ = TcpStream::connect(local);
            }
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::protocol::STATS_HEADER;
    use lisa_core::ModelRegistry;
    use lisa_events::EventSink;

    fn engine() -> ServeEngine {
        ServeEngine::new(
            ModelRegistry::new(),
            ServeConfig::default(),
            EventSink::null(),
        )
        .unwrap()
    }

    fn roundtrip(commands: &[&str]) -> (Vec<String>, Served) {
        let mut input = Vec::new();
        for c in commands {
            write_frame(&mut input, c.as_bytes()).unwrap();
        }
        let mut output = Vec::new();
        let served = serve_stdio(&engine(), &mut io::Cursor::new(input), &mut output).unwrap();
        let mut frames = Vec::new();
        let mut r = io::Cursor::new(output);
        while let Some(f) = read_frame(&mut r).unwrap() {
            frames.push(String::from_utf8(f).unwrap());
        }
        (frames, served)
    }

    #[test]
    fn stats_and_shutdown_commands() {
        let (frames, served) = roundtrip(&["stats", "shutdown", "stats"]);
        assert_eq!(served, Served::Shutdown);
        // The frame after shutdown is never processed.
        assert_eq!(frames.len(), 2);
        assert!(frames[0].starts_with(STATS_HEADER));
        assert_eq!(frames[1], "ok\n");
    }

    #[test]
    fn eof_ends_the_session_cleanly() {
        let (frames, served) = roundtrip(&["garbage request"]);
        assert_eq!(served, Served::Eof);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].contains("status error"));
    }

    #[test]
    fn garbage_frames_get_error_responses_and_the_daemon_keeps_serving() {
        // The availability contract (PANIC001): a malformed frame — not
        // even UTF-8, or UTF-8 that is not a request — answers `status
        // error` and the same connection keeps being served.
        let mut input = Vec::new();
        write_frame(&mut input, &[0xff, 0xfe, 0x80, 0x00]).unwrap();
        write_frame(&mut input, b"lisa-request v1\nbut torn").unwrap();
        write_frame(&mut input, b"stats").unwrap();
        let mut output = Vec::new();
        let served = serve_stdio(&engine(), &mut io::Cursor::new(input), &mut output).unwrap();
        assert_eq!(served, Served::Eof);

        let mut frames = Vec::new();
        let mut r = io::Cursor::new(output);
        while let Some(f) = read_frame(&mut r).unwrap() {
            frames.push(String::from_utf8(f).unwrap());
        }
        assert_eq!(frames.len(), 3, "{frames:?}");
        assert!(frames[0].contains("status error"), "{}", frames[0]);
        assert!(frames[0].contains("not UTF-8"), "{}", frames[0]);
        assert!(frames[1].contains("status error"), "{}", frames[1]);
        assert!(
            frames[2].starts_with(STATS_HEADER),
            "the daemon still answers after garbage: {}",
            frames[2]
        );
        // Both failures were counted as errors, not crashes.
        assert!(frames[2].contains("errors 1"), "{}", frames[2]);
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve_tcp(Arc::new(engine()), listener));

        let mut conn = TcpStream::connect(addr).unwrap();
        write_frame(&mut conn, b"stats").unwrap();
        let stats = read_frame(&mut conn).unwrap().unwrap();
        assert!(String::from_utf8(stats).unwrap().starts_with(STATS_HEADER));
        write_frame(&mut conn, b"shutdown").unwrap();
        assert_eq!(read_frame(&mut conn).unwrap().unwrap(), b"ok\n");
        drop(conn);
        server.join().unwrap().unwrap();
    }
}
