//! Two-tier content-addressed response store.
//!
//! Keys are the FNV-1a 64 hash of the canonical request text
//! ([`lisa_core::MapRequest::cache_key`]); values are complete
//! `lisa-response v1` bodies. Tier one is a bounded in-memory LRU map;
//! tier two is an optional on-disk directory with one
//! `<key>.lisa-response` file per entry, written via a temp file and an
//! atomic rename so a killed daemon never leaves a torn response. A disk
//! hit is promoted into the memory tier.
//!
//! Soundness rests on the compiler's determinism: equal keys imply equal
//! request semantics imply byte-identical responses, so a cached body —
//! from either tier, in any later daemon process — is exactly what a
//! fresh computation would produce.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::lock_unpoisoned;

use crate::protocol::RESPONSE_HEADER;

/// Which tier answered a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-memory LRU.
    Memory,
    /// The on-disk directory.
    Disk,
}

/// The two-tier store. Cheap to share behind an `Arc`; all mutation is
/// internal.
#[derive(Debug)]
pub struct ResultCache {
    memory: Mutex<MemoryTier>,
    disk: Option<PathBuf>,
}

#[derive(Debug)]
struct MemoryTier {
    capacity: usize,
    entries: HashMap<u64, Arc<String>>,
    /// Recency order, least-recent first. Linear maintenance is fine at
    /// serving-cache sizes (hundreds to low thousands of entries).
    order: Vec<u64>,
}

impl MemoryTier {
    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push(key);
    }

    fn get(&mut self, key: u64) -> Option<Arc<String>> {
        let body = self.entries.get(&key).cloned()?;
        self.touch(key);
        Some(body)
    }

    fn put(&mut self, key: u64, body: Arc<String>) {
        if self.capacity == 0 {
            return;
        }
        self.entries.insert(key, body);
        self.touch(key);
        while self.entries.len() > self.capacity {
            let evicted = self.order.remove(0);
            self.entries.remove(&evicted);
        }
    }
}

impl ResultCache {
    /// Builds the cache. `mem_capacity` of zero disables the memory tier;
    /// `disk` of `None` disables the disk tier. The disk directory is
    /// created if missing.
    ///
    /// # Errors
    ///
    /// Propagates directory creation failures.
    pub fn new(mem_capacity: usize, disk: Option<PathBuf>) -> io::Result<Self> {
        if let Some(dir) = &disk {
            fs::create_dir_all(dir)?;
        }
        Ok(ResultCache {
            memory: Mutex::new(MemoryTier {
                capacity: mem_capacity,
                entries: HashMap::new(),
                order: Vec::new(),
            }),
            disk,
        })
    }

    /// Probes both tiers. A disk hit is promoted to memory.
    pub fn get(&self, key: u64) -> Option<(Arc<String>, CacheTier)> {
        if let Some(body) = lock_unpoisoned(&self.memory).get(key) {
            return Some((body, CacheTier::Memory));
        }
        let dir = self.disk.as_deref()?;
        let body = match fs::read_to_string(entry_path(dir, key)) {
            Ok(body) => body,
            Err(_) => return None,
        };
        // A foreign or torn file under our key must not be served. Torn
        // files cannot happen through our own tmp+rename writes, but the
        // directory is user-visible.
        if !body.starts_with(RESPONSE_HEADER) {
            return None;
        }
        let body = Arc::new(body);
        lock_unpoisoned(&self.memory).put(key, body.clone());
        Some((body, CacheTier::Disk))
    }

    /// Stores a response body under its key in both tiers. Disk write
    /// failures are reported but non-fatal to the caller's response path.
    ///
    /// # Errors
    ///
    /// Propagates disk-tier write failures (the memory tier cannot fail).
    pub fn put(&self, key: u64, body: Arc<String>) -> io::Result<()> {
        lock_unpoisoned(&self.memory).put(key, body.clone());
        if let Some(dir) = &self.disk {
            let target = entry_path(dir, key);
            let tmp = target.with_extension("tmp");
            fs::write(&tmp, body.as_bytes())?;
            fs::rename(&tmp, &target)?;
        }
        Ok(())
    }

    /// Whether a disk tier is configured.
    pub fn has_disk_tier(&self) -> bool {
        self.disk.is_some()
    }

    /// Number of entries resident in the memory tier.
    pub fn memory_len(&self) -> usize {
        lock_unpoisoned(&self.memory).entries.len()
    }
}

fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.lisa-response"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<String> {
        Arc::new(format!("{RESPONSE_HEADER}\nstatus ok\n{text}\n"))
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2, None).unwrap();
        cache.put(1, body("one")).unwrap();
        cache.put(2, body("two")).unwrap();
        assert!(cache.get(1).is_some()); // 2 is now least recent
        cache.put(3, body("three")).unwrap();
        assert!(cache.get(2).is_none(), "LRU entry should be evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.memory_len(), 2);
    }

    #[test]
    fn disk_tier_survives_a_new_cache_instance() {
        let dir = std::env::temp_dir().join("lisa_serve_cache_restart");
        let _ = fs::remove_dir_all(&dir);
        let first = ResultCache::new(4, Some(dir.clone())).unwrap();
        first.put(42, body("answer")).unwrap();
        drop(first);

        // A fresh instance (a restarted daemon) hits the disk tier and
        // returns byte-identical content, then serves memory hits.
        let second = ResultCache::new(4, Some(dir.clone())).unwrap();
        let (hit, tier) = second.get(42).expect("disk hit");
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(*hit, *body("answer"));
        let (again, tier) = second.get(42).expect("promoted");
        assert_eq!(tier, CacheTier::Memory);
        assert_eq!(again, hit);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_disk_content_is_not_served() {
        let dir = std::env::temp_dir().join("lisa_serve_cache_foreign");
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::new(4, Some(dir.clone())).unwrap();
        fs::write(dir.join("000000000000002a.lisa-response"), "not a response").unwrap();
        assert!(cache.get(42).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_disables_the_memory_tier() {
        let cache = ResultCache::new(0, None).unwrap();
        cache.put(1, body("x")).unwrap();
        assert!(cache.get(1).is_none());
        assert_eq!(cache.memory_len(), 0);
    }

    #[test]
    fn no_tmp_files_remain_after_puts() {
        let dir = std::env::temp_dir().join("lisa_serve_cache_tmp");
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::new(4, Some(dir.clone())).unwrap();
        for key in 0..8u64 {
            cache.put(key, body("v")).unwrap();
        }
        let leftovers = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .count();
        assert_eq!(leftovers, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
