//! Mapping-as-a-service: a long-running daemon over the LISA compiler.
//!
//! The compiler is a deterministic pure function — `(dfg, accelerator,
//! config, seed) → mapping`, byte-identical across reruns — which makes
//! it servable: a warm model answers repeated requests without
//! retraining, and responses are content-addressed by the hash of the
//! canonical request text ([`lisa_core::MapRequest`]).
//!
//! Layering:
//!
//! * [`protocol`] — length-prefixed framing and the `lisa-response v1`
//!   document the daemon answers with;
//! * [`cache`] — the two-tier content-addressed store (in-memory LRU
//!   over an on-disk directory keyed by hash);
//! * [`engine`] — request handling: canonicalize → hash → probe →
//!   single-flight compute under a bounded admission gate, with
//!   `lisa-events` telemetry per request;
//! * [`server`] — connection loops for TCP and stdio transports.
//!
//! The wire protocol and its guarantees are documented in DESIGN.md
//! ("Serving"): identical requests are served from cache byte-identically
//! — including across daemon restarts via the disk tier — and overload is
//! an explicit `status overloaded` response, never an unbounded queue.

pub mod cache;
pub mod engine;
pub mod error;
pub mod protocol;
pub mod server;

pub use cache::{CacheTier, ResultCache};
pub use engine::{Disposition, ServeConfig, ServeEngine, StatsSnapshot};
pub use error::ServeError;
pub use server::{serve_connection, serve_stdio, serve_tcp, Served};

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering from poisoning instead of panicking.
///
/// Every mutex in this crate guards state that is valid at all times —
/// whole `Arc<String>` bodies, whole counters — and the critical
/// sections never call back into code that can panic mid-update, so a
/// poisoned lock means some *other* panic (already contained at the
/// request boundary) happened to hold it. Propagating that poison as a
/// second panic would kill the daemon; recovering serves sound data
/// (PANIC001: the daemon answers, it does not die).
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}
