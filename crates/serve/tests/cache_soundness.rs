//! Cache-soundness contract of the serving daemon: same request text →
//! same hash → byte-identical response, from any tier, in any process;
//! and concurrent identical misses compute exactly once.

use std::sync::{Arc, Barrier, OnceLock};

use lisa_core::{Lisa, LisaConfig, MapRequest, ModelRegistry};
use lisa_dfg::polybench;
use lisa_events::EventSink;
use lisa_serve::{Disposition, ServeConfig, ServeEngine};

/// One tiny 4x4 model, trained once and shared by every test (training
/// is the expensive part; the tests exercise serving, not training).
fn model_text() -> &'static str {
    static MODEL: OnceLock<String> = OnceLock::new();
    MODEL.get_or_init(|| {
        let acc = lisa_arch_accelerator();
        let config = LisaConfig {
            training_dfgs: 6,
            ..LisaConfig::fast()
        };
        Lisa::train_for(&acc, &config)
            .expect("tiny training run completes")
            .export_model()
    })
}

fn lisa_arch_accelerator() -> lisa_arch::Accelerator {
    lisa_arch::Accelerator::standard("4x4").unwrap()
}

fn registry() -> ModelRegistry {
    let mut reg = ModelRegistry::new();
    reg.insert(Lisa::import_model(&LisaConfig::fast(), model_text()).unwrap())
        .unwrap();
    reg
}

fn gemm_request() -> String {
    gemm_request_with_strategy("sa")
}

fn gemm_request_with_strategy(spec: &str) -> String {
    MapRequest {
        accelerator: "4x4".to_string(),
        seed: 2022,
        max_ii: 8,
        strategy: lisa_mapper::StrategySpec::parse(spec).unwrap(),
        dfg: polybench::kernel("gemm").unwrap(),
    }
    .canonical_text()
}

fn engine(config: ServeConfig) -> ServeEngine {
    ServeEngine::new(registry(), config, EventSink::null()).unwrap()
}

#[test]
fn repeated_request_is_a_byte_identical_cache_hit_without_annealing() {
    let engine = engine(ServeConfig::default());
    let request = gemm_request();

    let (first, d1) = engine.handle(&request);
    assert_eq!(d1, Disposition::Computed);
    assert!(first.contains("status ok"), "body was {first}");

    let (second, d2) = engine.handle(&request);
    assert_eq!(d2, Disposition::HitMemory);
    assert_eq!(*first, *second, "cache hit must be byte-identical");

    let stats = engine.stats();
    assert_eq!(stats.anneals, 1, "second request must not anneal");
    assert_eq!(stats.hit_memory, 1);

    // Formatting noise in the request text canonicalizes to the same key.
    let noisy = format!("{}\r\n", request.replace('\n', "\r\n"));
    let (third, d3) = engine.handle(&noisy);
    assert_eq!(d3, Disposition::HitMemory);
    assert_eq!(*first, *third);
    assert_eq!(engine.stats().anneals, 1);
}

#[test]
fn disk_tier_serves_byte_identical_responses_across_restarts() {
    let dir = std::env::temp_dir().join("lisa_serve_restart_soundness");
    let _ = std::fs::remove_dir_all(&dir);
    let request = gemm_request();
    let config = ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    let first_daemon = engine(config.clone());
    let (first, d1) = first_daemon.handle(&request);
    assert_eq!(d1, Disposition::Computed);
    drop(first_daemon);

    // A "restarted daemon": fresh process state, same cache directory.
    let second_daemon = engine(config);
    let (second, d2) = second_daemon.handle(&request);
    assert_eq!(d2, Disposition::HitDisk);
    assert_eq!(
        *first, *second,
        "disk-tier hit must be byte-identical across restarts"
    );
    assert_eq!(
        second_daemon.stats().anneals,
        0,
        "restarted daemon must serve the repeat from disk without annealing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_identical_misses_compute_once() {
    let engine = Arc::new(engine(ServeConfig {
        workers: 4,
        queue: 16,
        ..ServeConfig::default()
    }));
    let request = Arc::new(gemm_request());
    let callers = 8;
    let barrier = Arc::new(Barrier::new(callers));

    let handles: Vec<_> = (0..callers)
        .map(|_| {
            let engine = engine.clone();
            let request = request.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                engine.handle(&request)
            })
        })
        .collect();
    let results: Vec<(Arc<String>, Disposition)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(
        engine.stats().anneals,
        1,
        "identical concurrent misses must single-flight into one computation"
    );
    let computed = results
        .iter()
        .filter(|(_, d)| *d == Disposition::Computed)
        .count();
    assert_eq!(computed, 1, "exactly one caller computes");
    for (body, disposition) in &results {
        assert!(
            matches!(
                disposition,
                Disposition::Computed | Disposition::Coalesced | Disposition::HitMemory
            ),
            "unexpected disposition {disposition:?}"
        );
        assert_eq!(**body, *results[0].0, "all callers get the same bytes");
    }
}

#[test]
fn strategy_selection_separates_keys_and_hits_across_tiers_and_restarts() {
    let dir = std::env::temp_dir().join("lisa_serve_strategy_soundness");
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    // Requests differing only in strategy must have distinct cache keys…
    let sa = gemm_request_with_strategy("sa");
    let mixed = gemm_request_with_strategy("mixed");
    let constructive = gemm_request_with_strategy("constructive");
    let keys = [
        MapRequest::parse(&sa).unwrap().cache_key(),
        MapRequest::parse(&mixed).unwrap().cache_key(),
        MapRequest::parse(&constructive).unwrap().cache_key(),
    ];
    let mut unique = keys.to_vec();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), keys.len(), "strategy did not separate keys");
    // …while alias spellings of the same mix share one key (one cached
    // computation, not two).
    assert_eq!(
        MapRequest::parse(&mixed).unwrap().cache_key(),
        MapRequest::parse(&gemm_request_with_strategy("constructive,sa,evolutionary"))
            .unwrap()
            .cache_key()
    );

    // Each strategy computes once and then hits the memory tier with
    // byte-identical bodies.
    let first_daemon = engine(config.clone());
    let mut firsts = Vec::new();
    for request in [&sa, &mixed, &constructive] {
        let (body, d) = first_daemon.handle(request);
        assert_eq!(d, Disposition::Computed);
        assert!(body.contains("status ok"), "body was {body}");
        let (again, d) = first_daemon.handle(request);
        assert_eq!(d, Disposition::HitMemory);
        assert_eq!(*body, *again, "memory hit must be byte-identical");
        firsts.push(body);
    }
    drop(first_daemon);

    // A restarted daemon answers every strategy from the disk tier,
    // byte-identically, without annealing.
    let second_daemon = engine(config);
    for (request, first) in [&sa, &mixed, &constructive].into_iter().zip(&firsts) {
        let (body, d) = second_daemon.handle(request);
        assert_eq!(d, Disposition::HitDisk);
        assert_eq!(**first, *body, "disk hit must be byte-identical");
    }
    assert_eq!(second_daemon.stats().anneals, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
