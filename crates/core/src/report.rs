//! Training diagnostics and the Table II accuracy report.

use lisa_gnn::metrics::LabelKind;

/// Prediction accuracy of the four label networks on held-out data —
/// one row of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelAccuracy {
    /// Accuracy per label, indexed by `LabelKind::id() - 1`.
    pub values: [f64; 4],
}

impl LabelAccuracy {
    /// Accuracy of one label.
    pub fn get(&self, kind: LabelKind) -> f64 {
        self.values[usize::from(kind.id() - 1)]
    }

    /// Formats the row as Table II does.
    pub fn table_row(&self, arch: &str) -> String {
        format!(
            "{arch:<28} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            self.values[0], self.values[1], self.values[2], self.values[3]
        )
    }
}

/// Statistics of one train-for-accelerator run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingStats {
    /// Synthetic DFGs generated (§V-A).
    pub dfgs_generated: usize,
    /// DFGs for which the iterative generator produced labels.
    pub dfgs_labelled: usize,
    /// DFGs that survived the §V-C filter and entered the training set.
    pub dfgs_kept: usize,
    /// Graphs held out for accuracy evaluation.
    pub dfgs_holdout: usize,
    /// Final training loss of each label network (Table I order).
    pub final_losses: [f64; 4],
    /// Held-out accuracy (Table II).
    pub accuracy: LabelAccuracy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessor_matches_index() {
        let acc = LabelAccuracy {
            values: [0.1, 0.2, 0.3, 0.4],
        };
        assert_eq!(acc.get(LabelKind::ScheduleOrder), 0.1);
        assert_eq!(acc.get(LabelKind::Temporal), 0.4);
    }

    #[test]
    fn table_row_contains_all_values() {
        let acc = LabelAccuracy {
            values: [0.788, 0.856, 0.932, 0.992],
        };
        let row = acc.table_row("4x4 baseline");
        assert!(row.contains("4x4 baseline"));
        assert!(row.contains("0.788"));
        assert!(row.contains("0.992"));
    }
}
