//! Training diagnostics and the Table II accuracy report.

use lisa_gnn::metrics::LabelKind;

/// Renders a metric cell: three decimals for a measured value, "n/a"
/// for "no data" (e.g. an empty eval split, or a model imported from
/// text whose training metrics were not persisted).
fn cell(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:>7.3}"),
        None => format!("{:>7}", "n/a"),
    }
}

/// Prediction accuracy of the four label networks on held-out data —
/// one row of the paper's Table II.
///
/// Each entry is `None` when there was nothing to measure against (an
/// empty holdout split after filtering, or an imported model), so "no
/// data" can never masquerade as a 0.0 score in summary tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelAccuracy {
    /// Accuracy per label, indexed by `LabelKind::id() - 1`.
    pub values: [Option<f64>; 4],
}

impl LabelAccuracy {
    /// Accuracy of one label, `None` when unmeasured.
    pub fn get(&self, kind: LabelKind) -> Option<f64> {
        self.values[usize::from(kind.id() - 1)]
    }

    /// Formats the row as Table II does; unmeasured cells read "n/a".
    pub fn table_row(&self, arch: &str) -> String {
        format!(
            "{arch:<28} {} {} {} {}",
            cell(self.values[0]),
            cell(self.values[1]),
            cell(self.values[2]),
            cell(self.values[3])
        )
    }

    /// Compact bracketed form for logs: `[0.788 0.856 n/a 0.992]`.
    pub fn summary(&self) -> String {
        let cells: Vec<String> = self
            .values
            .iter()
            .map(|v| match v {
                Some(v) => format!("{v:.3}"),
                None => "n/a".to_string(),
            })
            .collect();
        format!("[{}]", cells.join(" "))
    }
}

/// Statistics of one train-for-accelerator run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingStats {
    /// Synthetic DFGs generated (§V-A).
    pub dfgs_generated: usize,
    /// DFGs for which the iterative generator produced labels.
    pub dfgs_labelled: usize,
    /// DFGs that survived the §V-C filter and entered the training set.
    pub dfgs_kept: usize,
    /// Graphs held out for accuracy evaluation.
    pub dfgs_holdout: usize,
    /// Final training loss of each label network (Table I order);
    /// `None` when unknown (imported model) or non-finite.
    pub final_losses: [Option<f64>; 4],
    /// Held-out accuracy (Table II).
    pub accuracy: LabelAccuracy,
}

impl TrainingStats {
    /// Compact final-loss form for logs: `[0.012 0.034 n/a 0.001]`.
    pub fn losses_summary(&self) -> String {
        let cells: Vec<String> = self
            .final_losses
            .iter()
            .map(|v| match v {
                Some(v) => format!("{v:.4}"),
                None => "n/a".to_string(),
            })
            .collect();
        format!("[{}]", cells.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessor_matches_index() {
        let acc = LabelAccuracy {
            values: [Some(0.1), Some(0.2), Some(0.3), None],
        };
        assert_eq!(acc.get(LabelKind::ScheduleOrder), Some(0.1));
        assert_eq!(acc.get(LabelKind::Temporal), None);
    }

    #[test]
    fn table_row_contains_all_values() {
        let acc = LabelAccuracy {
            values: [Some(0.788), Some(0.856), Some(0.932), Some(0.992)],
        };
        let row = acc.table_row("4x4 baseline");
        assert!(row.contains("4x4 baseline"));
        assert!(row.contains("0.788"));
        assert!(row.contains("0.992"));
    }

    #[test]
    fn unmeasured_cells_render_na_not_zero() {
        let acc = LabelAccuracy { values: [None; 4] };
        let row = acc.table_row("1x1 degenerate");
        assert!(row.contains("n/a"));
        assert!(!row.contains("0.000"), "no fake score for missing data");
        assert_eq!(acc.summary(), "[n/a n/a n/a n/a]");
    }

    #[test]
    fn summaries_mix_measured_and_missing() {
        let acc = LabelAccuracy {
            values: [Some(0.5), None, Some(1.0), None],
        };
        assert_eq!(acc.summary(), "[0.500 n/a 1.000 n/a]");
    }
}
