//! The end-to-end LISA framework (paper Fig. 2).
//!
//! [`Lisa::train_for`] runs the left and middle columns of Fig. 2 for one
//! accelerator: generate synthetic DFGs, derive labels with the iterative
//! mapping method, filter them, and train the four GNN label networks.
//! The resulting [`Lisa`] instance then serves the right column: given a
//! new DFG, [`Lisa::predict_labels`] derives the labels in milliseconds
//! and [`Lisa::map`] runs the label-aware simulated annealing with them.

use std::fmt;
use std::sync::Arc;

use lisa_arch::Accelerator;
use lisa_dfg::Dfg;
use lisa_events::EventSink;
use lisa_gnn::metrics::{try_accuracy, LabelKind};
use lisa_gnn::models::{EdgeMlp, ScheduleOrderNet, SpatialNet};
use lisa_gnn::PlanScratch;
use lisa_labels::attributes::{DUMMY_ATTR_DIM, EDGE_ATTR_DIM, NODE_ATTR_DIM};
use lisa_labels::movement::MovementPredictor;
use lisa_labels::TrainingSet;
use lisa_mapper::schedule::IiSearch;
use lisa_mapper::{GuidanceLabels, LabelSaMapper, Mapping, MappingOutcome, MovementScorer};

use crate::compiled::CompiledModel;
use crate::pipeline::{Pipeline, TrainError};
use crate::report::{LabelAccuracy, TrainingStats};
use crate::LisaConfig;

/// A LISA instance trained for one accelerator.
///
/// # Example
///
/// ```no_run
/// use lisa_arch::Accelerator;
/// use lisa_core::{Lisa, LisaConfig};
/// use lisa_dfg::polybench;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let acc = Accelerator::cgra("4x4", 4, 4);
/// let lisa = Lisa::train_for(&acc, &LisaConfig::default())?;
/// let dfg = polybench::kernel("gemm")?;
/// let (outcome, _mapping) = lisa.map(&dfg, &acc);
/// println!("gemm on 4x4: II = {:?}", outcome.ii);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lisa {
    accelerator_name: String,
    config: LisaConfig,
    schedule_net: ScheduleOrderNet,
    same_level_net: EdgeMlp,
    spatial_net: SpatialNet,
    temporal_net: EdgeMlp,
    /// The four networks frozen into tape-free plans at construction;
    /// every label prediction this instance serves runs on these.
    compiled: CompiledModel,
    stats: TrainingStats,
    /// Optional predict-then-verify movement filter, shared read-only by
    /// every annealing chain this instance drives.
    movement_filter: Option<Arc<dyn MovementScorer>>,
    /// Observer for inference-time annealing events (movement samples,
    /// filter summaries, SA snapshots). Null by default.
    sink: EventSink,
}

impl Lisa {
    /// Trains LISA for an accelerator: Fig. 2's training-data generation
    /// and GNN-model construction, plus the Table II holdout evaluation.
    ///
    /// This is the unobserved, uncheckpointed run of the staged
    /// [`Pipeline`]; build one directly to attach an observer or to
    /// checkpoint and resume.
    ///
    /// # Errors
    ///
    /// [`TrainError::EmptyDataset`] when no labelled DFG survives the
    /// §V-C filter — nothing to train on.
    pub fn train_for(acc: &Accelerator, config: &LisaConfig) -> Result<Lisa, TrainError> {
        let lisa = Pipeline::new(acc, config.clone())
            .run()?
            .expect("pipeline without stop_after runs to completion");
        Ok(lisa)
    }

    /// Assembles an instance from trained parts (the pipeline's final
    /// stage and the model importer).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        accelerator_name: String,
        config: LisaConfig,
        schedule_net: ScheduleOrderNet,
        same_level_net: EdgeMlp,
        spatial_net: SpatialNet,
        temporal_net: EdgeMlp,
        stats: TrainingStats,
    ) -> Lisa {
        let compiled =
            CompiledModel::freeze(&schedule_net, &same_level_net, &spatial_net, &temporal_net);
        Lisa {
            accelerator_name,
            config,
            schedule_net,
            same_level_net,
            spatial_net,
            temporal_net,
            compiled,
            stats,
            movement_filter: None,
            sink: EventSink::null(),
        }
    }

    /// Attaches a predict-then-verify movement filter; every subsequent
    /// mapping call gates its router with it (all portfolio chains share
    /// the one immutable scorer). Quality remains exact-by-construction:
    /// the filter only skips routing of rejected proposals, every
    /// accepted state is priced by the exact incremental cost.
    pub fn with_movement_filter(mut self, filter: Arc<dyn MovementScorer>) -> Lisa {
        self.movement_filter = Some(filter);
        self
    }

    /// Loads and attaches the movement predictor named by
    /// [`LisaConfig::predictor`], if any. Returns whether a filter is
    /// attached afterwards.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be read or is not a valid
    /// `lisa-movement-predictor v1` document; the instance is unchanged
    /// on error.
    pub fn load_movement_filter(&mut self) -> Result<bool, MovementFilterError> {
        let Some(path) = &self.config.predictor else {
            return Ok(self.movement_filter.is_some());
        };
        let text = std::fs::read_to_string(path).map_err(|source| MovementFilterError::Io {
            path: path.clone(),
            source,
        })?;
        let predictor =
            MovementPredictor::parse(&text).map_err(|source| MovementFilterError::Parse {
                path: path.clone(),
                source,
            })?;
        self.movement_filter = Some(Arc::new(predictor));
        Ok(true)
    }

    /// Name of the accelerator this instance was trained for.
    pub fn accelerator_name(&self) -> &str {
        &self.accelerator_name
    }

    /// Training statistics, including the Table II accuracy row.
    pub fn stats(&self) -> &TrainingStats {
        &self.stats
    }

    /// Derives the four guidance labels for a new DFG with the trained
    /// GNNs (Fig. 2 right: milliseconds instead of the iterative method's
    /// minutes). Runs on the frozen [`CompiledModel`] — no tape, no
    /// graph dispatch — with output bit-identical to the historical
    /// `Graph::inference` path.
    ///
    /// Predictions are post-processed for mapper consumption: spatial
    /// distances are clamped to ≥ 0 and temporal distances to ≥ 1
    /// (causality).
    pub fn predict_labels(&self, dfg: &Dfg) -> GuidanceLabels {
        self.compiled.predict(dfg)
    }

    /// The four label networks frozen into tape-free inference plans at
    /// construction time (see [`CompiledModel`]).
    pub fn compiled(&self) -> &CompiledModel {
        &self.compiled
    }

    /// Maps a DFG with GNN-predicted labels and the label-aware SA, driving
    /// the ascending II search. Returns the outcome metrics and, on
    /// success, the mapping.
    pub fn map<'a>(
        &self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
    ) -> (MappingOutcome, Option<Mapping<'a>>) {
        let labels = self.predict_labels(dfg);
        let mapper = self.build_mapper(labels, self.config.seed, &self.config.strategy);
        IiSearch::default().run_with_mapping_par(&mapper, dfg, acc, self.config.parallelism)
    }

    /// Streams inference-time annealing events (movement samples, filter
    /// summaries, SA snapshots) into `sink`. Events never change the
    /// trajectory; the null sink restores silence.
    pub fn with_observer(mut self, sink: EventSink) -> Lisa {
        self.sink = sink;
        self
    }

    /// Builds the inference-time mapper, attaching the strategy mix, the
    /// movement filter, and the observer when configured.
    fn build_mapper(
        &self,
        labels: GuidanceLabels,
        seed: u64,
        strategy: &lisa_mapper::StrategySpec,
    ) -> LabelSaMapper {
        let mut mapper = LabelSaMapper::new(labels, self.config.sa.clone(), seed)
            .with_strategy(strategy.clone())
            .with_observer(self.sink.clone());
        if let Some(f) = &self.movement_filter {
            mapper = mapper.with_movement_filter(Arc::clone(f));
        }
        mapper
    }

    /// Serialises the trained model (the four label networks) to the
    /// sectioned text format of [`crate::ModelImportError`]'s module.
    /// Training statistics are not persisted.
    pub fn export_model(&self) -> String {
        crate::model_io::assemble(
            &self.accelerator_name,
            [
                self.schedule_net.export_weights(),
                self.same_level_net.export_weights(),
                self.spatial_net.export_weights(),
                self.temporal_net.export_weights(),
            ],
        )
    }

    /// Reconstructs a trained model from [`Self::export_model`] output.
    /// The configuration supplies the inference-time annealer parameters;
    /// training statistics are reset (the model was not trained here).
    ///
    /// # Errors
    ///
    /// Fails on malformed input or architecture mismatch.
    pub fn import_model(config: &LisaConfig, text: &str) -> Result<Lisa, crate::ModelImportError> {
        let (accelerator_name, parts) = crate::model_io::disassemble(text)?;
        let mut schedule_net = ScheduleOrderNet::new(NODE_ATTR_DIM, 0);
        let mut same_level_net = EdgeMlp::new(DUMMY_ATTR_DIM, 0);
        let mut spatial_net = SpatialNet::new(EDGE_ATTR_DIM, 0);
        let mut temporal_net = EdgeMlp::new(EDGE_ATTR_DIM, 0);
        let wrap = |section: &'static str| {
            move |source| crate::ModelImportError::BadWeights { section, source }
        };
        schedule_net
            .import_weights(&parts[0])
            .map_err(wrap("schedule_order"))?;
        same_level_net
            .import_weights(&parts[1])
            .map_err(wrap("same_level"))?;
        spatial_net
            .import_weights(&parts[2])
            .map_err(wrap("spatial"))?;
        temporal_net
            .import_weights(&parts[3])
            .map_err(wrap("temporal"))?;
        let compiled =
            CompiledModel::freeze(&schedule_net, &same_level_net, &spatial_net, &temporal_net);
        Ok(Lisa {
            accelerator_name,
            config: config.clone(),
            schedule_net,
            same_level_net,
            spatial_net,
            temporal_net,
            compiled,
            stats: TrainingStats {
                dfgs_generated: 0,
                dfgs_labelled: 0,
                dfgs_kept: 0,
                dfgs_holdout: 0,
                final_losses: [None; 4],
                accuracy: LabelAccuracy { values: [None; 4] },
            },
            movement_filter: None,
            sink: EventSink::null(),
        })
    }

    /// Maps with an II-search cap (used by the experiment harness to bound
    /// run times).
    pub fn map_capped<'a>(
        &self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        max_ii: u32,
    ) -> (MappingOutcome, Option<Mapping<'a>>) {
        self.map_request(
            dfg,
            acc,
            self.config.seed,
            max_ii,
            &self.config.strategy,
            self.config.parallelism,
        )
    }

    /// Maps with an explicit seed, II cap, strategy mix, and worker
    /// budget — the pool-friendly entry point: `&self` is shared
    /// read-only, so one warm model can serve many concurrent requests,
    /// each with its own seed, lane mix, and thread budget, without
    /// cloning the networks.
    pub fn map_request<'a>(
        &self,
        dfg: &'a Dfg,
        acc: &'a Accelerator,
        seed: u64,
        max_ii: u32,
        strategy: &lisa_mapper::StrategySpec,
        parallelism: usize,
    ) -> (MappingOutcome, Option<Mapping<'a>>) {
        let labels = self.predict_labels(dfg);
        let mapper = self.build_mapper(labels, seed, strategy);
        IiSearch {
            max_ii: Some(max_ii),
        }
        .run_with_mapping_par(&mapper, dfg, acc, parallelism)
    }
}

/// Errors from [`Lisa::load_movement_filter`].
#[derive(Debug)]
pub enum MovementFilterError {
    /// The predictor file could not be read.
    Io {
        /// The configured predictor path.
        path: std::path::PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file is not a valid `lisa-movement-predictor v1` document.
    Parse {
        /// The configured predictor path.
        path: std::path::PathBuf,
        /// The underlying parse error.
        source: lisa_labels::movement::MovementPredictorParseError,
    },
}

impl fmt::Display for MovementFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MovementFilterError::Io { path, source } => {
                write!(f, "reading predictor {}: {source}", path.display())
            }
            MovementFilterError::Parse { path, source } => {
                write!(f, "parsing predictor {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for MovementFilterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MovementFilterError::Io { source, .. } => Some(source),
            MovementFilterError::Parse { source, .. } => Some(source),
        }
    }
}

pub(crate) fn evaluate_accuracy(
    schedule_net: &ScheduleOrderNet,
    same_level_net: &EdgeMlp,
    spatial_net: &SpatialNet,
    temporal_net: &EdgeMlp,
    set: &TrainingSet,
) -> LabelAccuracy {
    // Compiled plans and one warm scratch for the whole holdout sweep;
    // bit-identical to the historical shared-tape path.
    let schedule = schedule_net.compile();
    let same_level = same_level_net.compile();
    let spatial = spatial_net.compile();
    let temporal = temporal_net.compile();
    let (order_preds, order_truths, sl_preds, sp_preds, tp_preds) = PlanScratch::with(|scratch| {
        let mut order_preds = Vec::new();
        let mut order_truths = Vec::new();
        for g in &set.node_graphs {
            order_preds.extend(schedule.predict(scratch, g));
            order_truths.extend(g.targets.iter().copied());
        }
        let sl_preds: Vec<f64> = set
            .same_level
            .iter()
            .map(|s| same_level.predict(scratch, &s.attrs))
            .collect();
        let sp_preds: Vec<f64> = set
            .spatial
            .iter()
            .map(|s| spatial.predict(scratch, s))
            .collect();
        let tp_preds: Vec<f64> = set
            .temporal
            .iter()
            .map(|s| temporal.predict(scratch, &s.attrs))
            .collect();
        (order_preds, order_truths, sl_preds, sp_preds, tp_preds)
    });
    let sl_truths: Vec<f64> = set.same_level.iter().map(|s| s.target).collect();
    let sp_truths: Vec<f64> = set.spatial.iter().map(|s| s.target).collect();
    let tp_truths: Vec<f64> = set.temporal.iter().map(|s| s.target).collect();

    // `try_accuracy` yields None for an empty split: a fully-filtered
    // holdout renders "n/a" in Table II instead of a fake 0.0 score.
    LabelAccuracy {
        values: [
            try_accuracy(LabelKind::ScheduleOrder, &order_preds, &order_truths),
            try_accuracy(LabelKind::SameLevel, &sl_preds, &sl_truths),
            try_accuracy(LabelKind::Spatial, &sp_preds, &sp_truths),
            try_accuracy(LabelKind::Temporal, &tp_preds, &tp_truths),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_dfg::polybench;

    fn trained_fast() -> (Lisa, Accelerator) {
        let acc = Accelerator::cgra("4x4", 4, 4);
        let lisa = Lisa::train_for(&acc, &LisaConfig::fast()).unwrap();
        (lisa, acc)
    }

    #[test]
    fn end_to_end_training_and_mapping() {
        let (lisa, acc) = trained_fast();
        assert_eq!(lisa.accelerator_name(), "4x4");
        let stats = lisa.stats();
        assert!(stats.dfgs_kept > 0, "no training DFGs survived");
        assert!(stats.dfgs_labelled >= stats.dfgs_kept);

        let dfg = polybench::kernel("doitgen").unwrap();
        let labels = lisa.predict_labels(&dfg);
        assert!(labels.matches(&dfg));
        assert!(labels.temporal.iter().all(|&t| t >= 1.0));
        assert!(labels.spatial.iter().all(|&s| s >= 0.0));

        let (outcome, mapping) = lisa.map_capped(&dfg, &acc, 8);
        assert!(outcome.mapped(), "LISA should map doitgen on 4x4");
        mapping.unwrap().verify().unwrap();
    }

    /// Admits everything whose first feature is below one half — enough
    /// to exercise both gate outcomes on real movements.
    #[derive(Debug)]
    struct HalfScorer;

    impl MovementScorer for HalfScorer {
        fn admit(&self, features: &[f64], _temp: f64) -> bool {
            features.first().copied().unwrap_or(0.0) < 0.5
        }
    }

    #[test]
    fn filtered_mapping_verifies_and_is_thread_count_invariant() {
        let (lisa, acc) = trained_fast();
        let lisa = lisa.with_movement_filter(Arc::new(HalfScorer));
        let dfg = polybench::kernel("doitgen").unwrap();
        let (outcome, mapping) = lisa.map_request(&dfg, &acc, 2022, 8, &Default::default(), 1);
        assert!(outcome.mapped(), "filtered LISA should still map doitgen");
        let seq = mapping.unwrap();
        seq.verify().unwrap();
        let (outcome4, mapping4) = lisa.map_request(&dfg, &acc, 2022, 8, &Default::default(), 4);
        assert_eq!(outcome.ii, outcome4.ii);
        assert_eq!(format!("{seq:?}"), format!("{:?}", mapping4.unwrap()));
    }

    #[test]
    fn load_movement_filter_honours_the_config() {
        let (mut lisa, _) = trained_fast();
        assert!(!lisa.load_movement_filter().unwrap(), "no path configured");

        lisa.config.predictor = Some(std::path::PathBuf::from("/nonexistent/predictor.txt"));
        assert!(matches!(
            lisa.load_movement_filter(),
            Err(MovementFilterError::Io { .. })
        ));
    }

    #[test]
    fn accuracy_values_are_fractions() {
        let (lisa, _) = trained_fast();
        for v in lisa.stats().accuracy.values {
            let v = v.expect("non-empty holdout yields a measured accuracy");
            assert!((0.0..=1.0).contains(&v), "accuracy {v} out of range");
        }
    }

    #[test]
    fn empty_eval_split_reports_not_applicable() {
        // Regression: a fully-filtered (empty) eval split used to feed the
        // 0.0 empty-input sentinel straight into the Table II row, which
        // reads as "0% accurate". It must render "n/a" instead.
        let schedule = ScheduleOrderNet::new(NODE_ATTR_DIM, 1);
        let same_level = EdgeMlp::new(DUMMY_ATTR_DIM, 2);
        let spatial = SpatialNet::new(EDGE_ATTR_DIM, 3);
        let temporal = EdgeMlp::new(EDGE_ATTR_DIM, 4);
        let empty = TrainingSet::default();
        let acc = evaluate_accuracy(&schedule, &same_level, &spatial, &temporal, &empty);
        assert_eq!(acc.values, [None; 4]);
        let row = acc.table_row("4x4");
        assert!(row.contains("n/a"), "row was {row:?}");
        assert!(!row.contains("0.000"), "row was {row:?}");
    }

    #[test]
    fn imported_model_has_no_fake_metrics() {
        let (lisa, _) = trained_fast();
        let restored = Lisa::import_model(&LisaConfig::fast(), &lisa.export_model()).unwrap();
        assert_eq!(restored.stats().accuracy.values, [None; 4]);
        assert_eq!(restored.stats().final_losses, [None; 4]);
        assert_eq!(restored.stats().losses_summary(), "[n/a n/a n/a n/a]");
    }

    #[test]
    fn deterministic_training() {
        let acc = Accelerator::cgra("3x3", 3, 3);
        let a = Lisa::train_for(&acc, &LisaConfig::fast()).unwrap();
        let b = Lisa::train_for(&acc, &LisaConfig::fast()).unwrap();
        let dfg = polybench::kernel("doitgen").unwrap();
        assert_eq!(a.predict_labels(&dfg), b.predict_labels(&dfg));
    }

    #[test]
    fn training_is_parallelism_invariant() {
        // The portfolio's determinism contract at the framework level:
        // thread count changes wall clock, never the trained model.
        let acc = Accelerator::cgra("3x3", 3, 3);
        let sequential = LisaConfig {
            parallelism: 1,
            ..LisaConfig::fast()
        };
        let parallel = LisaConfig {
            parallelism: 4,
            ..LisaConfig::fast()
        };
        let a = Lisa::train_for(&acc, &sequential).unwrap();
        let b = Lisa::train_for(&acc, &parallel).unwrap();
        let dfg = polybench::kernel("doitgen").unwrap();
        assert_eq!(a.predict_labels(&dfg), b.predict_labels(&dfg));
        let (oa, _) = a.map_capped(&dfg, &acc, 8);
        let (ob, _) = b.map_capped(&dfg, &acc, 8);
        assert_eq!(oa.ii, ob.ii);
        assert_eq!(oa.routing_cells, ob.routing_cells);
        assert_eq!(oa.attempts, ob.attempts);
    }
}

#[cfg(test)]
mod model_io_tests {
    use super::*;
    use lisa_dfg::polybench;

    #[test]
    fn export_import_roundtrip_preserves_predictions() {
        let acc = Accelerator::cgra("3x3", 3, 3);
        let lisa = Lisa::train_for(&acc, &LisaConfig::fast()).unwrap();
        let text = lisa.export_model();
        let restored = Lisa::import_model(&LisaConfig::fast(), &text).unwrap();
        assert_eq!(restored.accelerator_name(), "3x3");
        let dfg = polybench::kernel("gemm").unwrap();
        assert_eq!(lisa.predict_labels(&dfg), restored.predict_labels(&dfg));
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(Lisa::import_model(&LisaConfig::fast(), "not a model").is_err());
    }

    #[test]
    fn import_rejects_dimension_mismatched_weights() {
        // A structurally valid model whose schedule_order dump comes from
        // a different architecture (wrong input width) must fail with
        // BadWeights naming the section — never panic or load silently.
        let wrong = ScheduleOrderNet::new(NODE_ATTR_DIM + 1, 9).export_weights();
        let ok_sl = EdgeMlp::new(DUMMY_ATTR_DIM, 0).export_weights();
        let ok_sp = SpatialNet::new(EDGE_ATTR_DIM, 0).export_weights();
        let ok_tp = EdgeMlp::new(EDGE_ATTR_DIM, 0).export_weights();
        let text = crate::model_io::assemble("4x4", [wrong, ok_sl, ok_sp, ok_tp]);
        let err = Lisa::import_model(&LisaConfig::fast(), &text).unwrap_err();
        assert!(
            matches!(
                err,
                crate::ModelImportError::BadWeights {
                    section: "schedule_order",
                    ..
                }
            ),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn import_rejects_swapped_sections() {
        // Spatial weights in the temporal slot: shapes differ, so the
        // mismatch must surface as BadWeights for that section.
        let acc = Accelerator::cgra("3x3", 3, 3);
        let lisa = Lisa::train_for(&acc, &LisaConfig::fast()).unwrap();
        let text = lisa.export_model();
        let swapped = text
            .replace("=== spatial ===", "=== HOLD ===")
            .replace("=== temporal ===", "=== spatial ===")
            .replace("=== HOLD ===", "=== temporal ===");
        let err = Lisa::import_model(&LisaConfig::fast(), &swapped).unwrap_err();
        assert!(
            matches!(err, crate::ModelImportError::BadWeights { .. }),
            "unexpected error: {err}"
        );
    }
}
